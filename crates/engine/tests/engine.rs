//! Integration tests of the execution engine: cache-key stability,
//! deterministic result ordering under different worker counts, and result
//! sharing across identical jobs.

use sfq_circuits::epfl;
use sfq_engine::{CacheKey, Job, SuiteRunner};
use sfq_netlist::aig::Aig;
use std::sync::Arc;
use t1map::cells::CellLibrary;
use t1map::flow::FlowConfig;

/// Builds a 4-bit adder through the public construction API (not the `epfl`
/// generator) so the test controls every gate.
fn hand_built_adder(extra_gate: bool) -> Aig {
    let mut g = Aig::new();
    let a: Vec<_> = (0..4).map(|_| g.add_pi()).collect();
    let b: Vec<_> = (0..4).map(|_| g.add_pi()).collect();
    let mut carry = None;
    for i in 0..4 {
        let (s, c) = match carry {
            None => (g.xor(a[i], b[i]), g.and(a[i], b[i])),
            Some(cin) => (g.xor3(a[i], b[i], cin), g.maj3(a[i], b[i], cin)),
        };
        g.add_po(s);
        carry = Some(c);
    }
    let mut last = carry.expect("non-empty adder");
    if extra_gate {
        last = g.and(last, a[0]);
    }
    g.add_po(last);
    g
}

#[test]
fn cache_key_is_stable_across_identical_builds() {
    let lib = CellLibrary::default();
    let cfg = FlowConfig::t1(4);
    let first = CacheKey::compute(&hand_built_adder(false), &lib, &cfg);
    let second = CacheKey::compute(&hand_built_adder(false), &lib, &cfg);
    assert_eq!(first, second, "same construction → same content address");
}

#[test]
fn cache_key_changes_on_a_one_gate_edit() {
    let lib = CellLibrary::default();
    let cfg = FlowConfig::t1(4);
    let pristine = CacheKey::compute(&hand_built_adder(false), &lib, &cfg);
    let edited = CacheKey::compute(&hand_built_adder(true), &lib, &cfg);
    assert_ne!(pristine, edited, "one extra gate → different address");
}

fn mixed_suite() -> Vec<Job> {
    let lib = CellLibrary::default();
    let mut jobs = Vec::new();
    for (name, aig) in [
        ("adder8", epfl::adder(8)),
        ("square4", epfl::square(4)),
        ("voter7", epfl::voter(7)),
    ] {
        let aig = Arc::new(aig);
        jobs.push(Job::new(
            name,
            "1φ",
            aig.clone(),
            lib,
            FlowConfig::single_phase(),
        ));
        jobs.push(Job::new(
            name,
            "4φ",
            aig.clone(),
            lib,
            FlowConfig::multiphase(4),
        ));
        jobs.push(Job::new(name, "T1", aig, lib, FlowConfig::t1(4)));
    }
    jobs
}

#[test]
fn result_order_is_deterministic_across_worker_counts() {
    let jobs = mixed_suite();
    let serial = SuiteRunner::new(1).run(&jobs);
    let parallel = SuiteRunner::new(4).run(&jobs);
    assert_eq!(serial.results.len(), parallel.results.len());
    for (i, (s, p)) in serial.results.iter().zip(&parallel.results).enumerate() {
        assert_eq!(s.stats, p.stats, "job {i} ({}) diverged", jobs[i].label());
    }
}

#[test]
fn duplicate_jobs_share_one_computation() {
    let lib = CellLibrary::default();
    let aig = Arc::new(epfl::adder(8));
    // The same content five times under different labels.
    let jobs: Vec<Job> = (0..5)
        .map(|i| {
            Job::new(
                format!("copy{i}"),
                "4φ",
                aig.clone(),
                lib,
                FlowConfig::multiphase(4),
            )
        })
        .collect();
    let report = SuiteRunner::new(3).run(&jobs);
    assert_eq!(report.cache.misses, 1, "computed exactly once");
    assert_eq!(report.cache.hits(), 4, "four requests served from cache");
    assert_eq!(
        report.cache.memory_hits, 4,
        "all hits from the in-memory tier"
    );
    let first = &report.results[0];
    for r in &report.results[1..] {
        assert!(Arc::ptr_eq(first, r), "results share one allocation");
    }
}

#[test]
fn pre_opt_jobs_get_distinct_cache_keys() {
    // The pre-mapping optimization stage is part of the job's content
    // address: an optimized run must never be served a plain run's cached
    // result (or vice versa).
    let lib = CellLibrary::default();
    let aig = Arc::new(epfl::adder(8));
    let plain = Job::new("adder", "T1", aig.clone(), lib, FlowConfig::t1(4));
    let opted = Job::new(
        "adder",
        "T1+opt",
        aig.clone(),
        lib,
        FlowConfig::t1(4).to_builder().standard_opt().build(),
    );
    assert_ne!(
        plain.key(),
        opted.key(),
        "pre_opt must contribute to the cache key"
    );
    assert_eq!(
        opted.key(),
        CacheKey::compute(
            &aig,
            &lib,
            &FlowConfig::t1(4).to_builder().standard_opt().build()
        ),
        "equal configurations agree on the key"
    );
    // Both flavors run side by side without sharing results.
    let report = SuiteRunner::new(2).run(&[plain, opted]);
    assert_eq!(report.cache.misses, 2);
    assert_eq!(report.cache.hits(), 0);
    assert!(report.results.iter().all(|r| r.stats.gates > 0));
}

#[test]
fn timing_configs_get_distinct_cache_keys() {
    // The timing-analysis stage fingerprints into the content address:
    // a timing-enabled job carries an extra summary, so serving it a plain
    // run's cached result (or vice versa) would be wrong.
    let lib = CellLibrary::default();
    let aig = Arc::new(epfl::adder(8));
    let plain = Job::new("adder", "T1", aig.clone(), lib, FlowConfig::t1(4));
    let timed = Job::new(
        "adder",
        "T1+sta",
        aig.clone(),
        lib,
        FlowConfig::t1(4).to_builder().timing(true).build(),
    );
    assert_ne!(
        plain.key(),
        timed.key(),
        "the timing stage must contribute to the cache key"
    );
    // top_paths is a rendering knob, not a computation input: two timing
    // configs differing only there must SHARE a cache entry.
    let mut deep = FlowConfig::t1(4).to_builder().timing(true).build();
    deep.timing.top_paths = 10;
    assert_eq!(timed.key(), CacheKey::compute(&aig, &lib, &deep));
    // The slack-aware pre-opt stage keys differently from the standard one.
    assert_ne!(
        CacheKey::compute(
            &aig,
            &lib,
            &FlowConfig::t1(4).to_builder().standard_opt().build()
        ),
        CacheKey::compute(
            &aig,
            &lib,
            &FlowConfig::t1(4).to_builder().slack_opt().build()
        ),
        "conservative and slack-aware pre-opt must not share results"
    );
    // End to end: the timed job's result carries the summary, the plain
    // one's does not, and no cache sharing happens.
    let report = SuiteRunner::new(2).run(&[plain, timed]);
    assert_eq!(report.cache.misses, 2);
    assert_eq!(report.cache.hits(), 0);
    assert!(report.results[0].timing.is_none());
    let summary = report.results[1].timing.expect("timing summary attached");
    assert_eq!(summary.worst_slack, 0);
}
