//! Integration tests of the persistent result store: codec round-trips
//! (property-based and on real flows), corrupt/stale entries behaving as
//! misses, cross-process sharing, warm starts computing nothing, and
//! concurrent runners sharing one disk-backed store.

use sfq_circuits::epfl;
use sfq_engine::store::codec;
use sfq_engine::{DiskStore, Job, ResultCache, ResultStore, SuiteRunner};
use std::path::PathBuf;
use std::sync::Arc;
use t1map::cells::CellLibrary;
use t1map::dff::{Chain, Consumer, DffPlan, DriverPlan, Requirement};
use t1map::flow::{FlowConfig, FlowResult, FlowStats};
use t1map::mapped::{CellId, Edge, MappedCircuit};
use t1map::phase::Schedule;
use t1map::timing::TimingSummary;

use proptest::prelude::*;
use sfq_netlist::truth_table::TruthTable;
use sfq_opt::{CtxCounters, OptReport, PassKind, PassStats};

/// Fresh per-test scratch directory (removed by the test when it cares;
/// the temp dir is process-unique so parallel test binaries never clash).
fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sfq-store-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Small deterministic generator for the synthetic-result proptest.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn stage(&mut self) -> i64 {
        self.below(2001) as i64 - 1000
    }
}

/// Builds a structurally valid — but otherwise arbitrary — [`FlowResult`]
/// from a seed: random netlist shape, schedule, DFF plan and optional
/// reports. This exercises codec paths real flows rarely produce (empty
/// chains, negative stages, exotic truth tables, multi-round reports).
fn synthetic_result(seed: u64, with_pre_opt: bool, with_timing: bool) -> FlowResult {
    let mut rng = XorShift(seed | 1);
    let mut mc = MappedCircuit::new();
    // Output-port count of each built cell (3 for T1, 1 otherwise).
    let mut ports: Vec<u8> = Vec::new();

    let inputs = 1 + rng.below(4) as usize;
    for _ in 0..inputs {
        mc.add_input();
    }
    ports.resize(inputs, 1);
    if rng.below(2) == 0 {
        mc.add_const0();
        ports.push(1);
    }
    fn edge(rng: &mut XorShift, ports: &[u8], positive: bool) -> Edge {
        let cell = rng.below(ports.len() as u64) as usize;
        Edge {
            cell: CellId(cell as u32),
            port: rng.below(ports[cell] as u64) as u8,
            invert: !positive && rng.below(2) == 0,
        }
    }
    let extra = rng.below(12) as usize;
    for _ in 0..extra {
        if ports.len() >= 3 && rng.below(4) == 0 {
            let fanins = [
                edge(&mut rng, &ports, true),
                edge(&mut rng, &ports, true),
                edge(&mut rng, &ports, true),
            ];
            mc.add_t1(fanins);
            ports.push(3);
        } else {
            let nvars = 1 + rng.below(6) as usize;
            let tt = TruthTable::from_bits(nvars, rng.next());
            let fanins: Vec<Edge> = (0..nvars).map(|_| edge(&mut rng, &ports, false)).collect();
            mc.add_gate(tt, fanins);
            ports.push(1);
        }
    }
    let pos = 1 + rng.below(3) as usize;
    for _ in 0..pos {
        let cell = rng.below(ports.len() as u64) as usize;
        mc.add_po(Edge {
            cell: CellId(cell as u32),
            port: rng.below(ports[cell] as u64) as u8,
            invert: rng.below(2) == 0,
        });
    }

    let ncells = ports.len();
    let schedule = Schedule {
        n: 1 + rng.below(8) as u32,
        stages: (0..ncells).map(|_| rng.stage()).collect(),
        horizon: rng.stage(),
        t1_offsets: (0..ncells)
            .map(|i| (ports[i] == 3).then(|| [rng.stage(), rng.stage(), rng.stage()]))
            .collect(),
    };

    let drivers = (0..rng.below(5))
        .map(|_| {
            let cell = rng.below(ncells as u64) as usize;
            let ncons = rng.below(4) as usize;
            DriverPlan {
                source: (CellId(cell as u32), rng.below(ports[cell] as u64) as u8),
                source_stage: rng.stage(),
                chain: Chain {
                    members: (0..rng.below(6)).map(|_| rng.stage()).collect(),
                    taps: (0..ncons).map(|_| rng.stage()).collect(),
                },
                consumers: (0..ncons)
                    .map(|_| {
                        let consumer = match rng.below(3) {
                            0 => Consumer::GateInput {
                                cell: CellId(rng.below(ncells as u64) as u32),
                                slot: rng.below(6) as usize,
                            },
                            1 => Consumer::T1Input {
                                cell: CellId(rng.below(ncells as u64) as u32),
                                slot: rng.below(3) as usize,
                            },
                            _ => Consumer::Output {
                                index: rng.below(8) as usize,
                            },
                        };
                        let req = if rng.below(2) == 0 {
                            Requirement::Window(rng.stage())
                        } else {
                            Requirement::Exact(rng.stage())
                        };
                        (consumer, req)
                    })
                    .collect(),
            }
        })
        .collect();
    let plan = DffPlan {
        drivers,
        total_dffs: rng.below(10_000),
        total_splitters: rng.below(1_000),
    };

    let pre_opt = with_pre_opt.then(|| OptReport {
        rounds: (0..1 + rng.below(3))
            .map(|_| {
                (0..rng.below(4))
                    .map(|_| PassStats {
                        pass: PassKind::KNOWN[rng.below(PassKind::KNOWN.len() as u64) as usize]
                            .name(),
                        nodes_before: rng.below(9999) as usize,
                        nodes_after: rng.below(9999) as usize,
                        depth_before: rng.below(99) as u32,
                        depth_after: rng.below(99) as u32,
                        applied: rng.below(999) as usize,
                        cache_hits: rng.below(999) as usize,
                        invalidations: rng.below(999) as usize,
                        sta_refreshed: rng.below(999) as usize,
                        sta_builds: rng.below(9) as usize,
                        micros: rng.next(),
                    })
                    .collect()
            })
            .collect(),
        converged: rng.below(2) == 0,
        nodes_before: rng.below(9999) as usize,
        nodes_after: rng.below(9999) as usize,
        depth_before: rng.below(99) as u32,
        depth_after: rng.below(99) as u32,
        analysis: CtxCounters {
            cache_hits: rng.below(999) as usize,
            recomputes: rng.below(999) as usize,
            invalidations: rng.below(999) as usize,
            sta_full_builds: rng.below(9) as usize,
            sta_rebinds: rng.below(99) as usize,
            sta_nodes_refreshed: rng.below(99_999) as usize,
        },
    });

    let timing = with_timing.then(|| TimingSummary {
        horizon: rng.stage(),
        phases: 1 + rng.below(8) as u32,
        scheduled_cells: rng.below(9999) as usize,
        zero_slack_cells: rng.below(9999) as usize,
        worst_slack: rng.stage(),
        total_slack: rng.stage(),
        edge_dffs: rng.below(99_999),
        chained_dffs: rng.below(99_999),
    });

    FlowResult {
        mapped: mc,
        schedule,
        plan,
        stats: FlowStats {
            t1_found: rng.below(999) as usize,
            t1_used: rng.below(999) as usize,
            dffs: rng.below(99_999),
            splitters: rng.below(9_999),
            cell_area: rng.below(999_999),
            area: rng.below(999_999),
            depth_cycles: rng.stage(),
            gates: rng.below(9999) as usize,
        },
        pre_opt,
        timing,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn codec_round_trips_synthetic_results(
        seed in any::<u64>(),
        with_pre_opt in any::<bool>(),
        with_timing in any::<bool>(),
    ) {
        let original = synthetic_result(seed, with_pre_opt, with_timing);
        let text = codec::encode(&original);
        let back = codec::decode(&text);
        prop_assert_eq!(Ok(&original), back.as_ref(), "seed {}", seed);
        // Encoding is deterministic, so the round trip is a fixpoint.
        prop_assert_eq!(text.clone(), codec::encode(&back.unwrap()));
    }
}

/// One small real job per flow flavor the front ends submit, including
/// pre-opt and timing (whose reports must survive the disk round trip —
/// the ablation binary reads `pre_opt` out of cached results).
fn flavored_jobs() -> Vec<Job> {
    let lib = CellLibrary::default();
    let aig = Arc::new(epfl::adder(6));
    vec![
        Job::new("adder6", "1φ", aig.clone(), lib, FlowConfig::single_phase()),
        Job::new("adder6", "4φ", aig.clone(), lib, FlowConfig::multiphase(4)),
        Job::new("adder6", "T1", aig.clone(), lib, FlowConfig::t1(4)),
        Job::new(
            "adder6",
            "T1+opt",
            aig.clone(),
            lib,
            FlowConfig::t1(4).to_builder().standard_opt().build(),
        ),
        Job::new(
            "adder6",
            "T1+sta",
            aig,
            lib,
            FlowConfig::t1(4)
                .to_builder()
                .slack_opt()
                .timing(true)
                .build(),
        ),
    ]
}

#[test]
fn disk_store_round_trips_across_instances() {
    let dir = tmp_dir("across");
    let result = Arc::new(synthetic_result(42, true, true));
    let key = sfq_engine::CacheKey { aig: 7, setup: 9 };
    {
        let store = DiskStore::open(&dir).unwrap();
        store.put(key, &result);
        assert!(store.contains(key));
        assert_eq!(store.stats().puts, 1);
    }
    // A fresh instance (≈ another process) sees the entry.
    let store = DiskStore::open(&dir).unwrap();
    let back = store.get(key).expect("persisted entry");
    assert_eq!(*back, *result);
    assert_eq!(store.stats().entries, 1);
    assert!(store
        .get(sfq_engine::CacheKey { aig: 0, setup: 0 })
        .is_none());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupt_and_truncated_files_are_misses_and_get_removed() {
    let dir = tmp_dir("corrupt");
    let store = DiskStore::open(&dir).unwrap();
    let result = Arc::new(synthetic_result(1, false, false));
    let key = sfq_engine::CacheKey { aig: 1, setup: 1 };
    store.put(key, &result);

    // Overwrite the entry with garbage: the lookup must miss, count an
    // error and clear the debris so the next put starts clean.
    let path = store.root().join(format!("{:016x}-{:016x}.sfqr", 1, 1));
    std::fs::write(&path, "not a flow result\n").unwrap();
    assert!(store.get(key).is_none(), "corrupt entry is a miss");
    let stats = store.stats();
    assert_eq!((stats.errors, stats.misses), (1, 1));
    assert!(!path.exists(), "corrupt entry removed");

    // Truncated entry (simulated torn write): same contract.
    let text = codec::encode(&result);
    std::fs::write(&path, &text[..text.len() / 2]).unwrap();
    assert!(store.get(key).is_none(), "truncated entry is a miss");
    assert!(!path.exists());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn stale_format_versions_are_invisible_and_swept_by_gc() {
    let dir = tmp_dir("stale");
    // Debris from a hypothetical older codec version.
    let stale = dir.join("v0");
    std::fs::create_dir_all(&stale).unwrap();
    std::fs::write(stale.join("00-00.sfqr"), "old format").unwrap();

    let store = DiskStore::open(&dir).unwrap();
    assert_eq!(store.stats().entries, 0, "stale entries are not visible");
    let result = Arc::new(synthetic_result(3, false, false));
    for aig in 0..4u64 {
        store.put(sfq_engine::CacheKey { aig, setup: 0 }, &result);
    }
    // gc removes the stale version dir and evicts down to the newest two.
    let removed = store.gc(2);
    assert_eq!(removed, 3, "one stale entry + two evictions");
    assert!(!stale.exists());
    assert_eq!(store.stats().entries, 2);
    assert_eq!(store.stats().evicted, 3);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn warm_start_over_a_populated_store_computes_nothing() {
    let dir = tmp_dir("warm");
    let jobs = flavored_jobs();

    let cold_report = {
        let disk = Arc::new(DiskStore::open(&dir).unwrap());
        let store = Arc::new(ResultCache::with_backing(disk));
        SuiteRunner::new(2).with_store(store).run(&jobs)
    };
    assert_eq!(cold_report.cache.misses, jobs.len() as u64);
    assert_eq!(cold_report.cache.disk.puts, jobs.len() as u64);

    // Fresh memory tier, same directory: every result comes off disk and
    // ZERO flows are computed — the warm-start guarantee.
    let disk = Arc::new(DiskStore::open(&dir).unwrap());
    let store = Arc::new(ResultCache::with_backing(disk));
    let warm_report = SuiteRunner::new(2).with_store(store).run(&jobs);
    assert_eq!(warm_report.cache.misses, 0, "zero flow computations");
    assert_eq!(warm_report.cache.disk_hits, jobs.len() as u64);
    for (cold, warm) in cold_report.results.iter().zip(&warm_report.results) {
        assert_eq!(**cold, **warm, "disk round trip preserves the result");
    }
    // The reports the ablation binary reads off cached results survived.
    assert!(warm_report.results[3].pre_opt.is_some());
    assert!(warm_report.results[4].timing.is_some());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn concurrent_runners_sharing_one_store_compute_each_key_once() {
    let dir = tmp_dir("concurrent");
    let disk = Arc::new(DiskStore::open(&dir).unwrap());
    let store = Arc::new(ResultCache::with_backing(disk));
    let jobs = flavored_jobs();
    let distinct = jobs.len() as u64;

    std::thread::scope(|scope| {
        for _ in 0..2 {
            let store = store.clone();
            let jobs = &jobs;
            scope.spawn(move || {
                SuiteRunner::new(2).with_store(store).run(jobs);
            });
        }
    });

    // Both runners submitted every key; the shared store's in-flight
    // deduplication makes one runner compute while the other hits.
    let stats = store.stats();
    assert_eq!(stats.misses, distinct, "each key computed exactly once");
    assert_eq!(stats.hits() + stats.misses, 2 * distinct);
    assert_eq!(stats.disk.puts, distinct, "write-through once per key");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn layered_cache_promotes_disk_hits_into_memory() {
    let dir = tmp_dir("promote");
    let key = sfq_engine::CacheKey { aig: 5, setup: 5 };
    {
        let disk = Arc::new(DiskStore::open(&dir).unwrap());
        let warmup = ResultCache::with_backing(disk);
        warmup.put(key, &Arc::new(synthetic_result(9, false, false)));
    }
    let disk = Arc::new(DiskStore::open(&dir).unwrap());
    let cache = ResultCache::with_backing(disk);
    assert!(cache.is_empty());
    assert!(cache.contains(key), "contains falls through to disk");
    assert!(
        ResultStore::get(&cache, key).is_some(),
        "first get hits disk"
    );
    assert_eq!(cache.len(), 1, "promoted into memory");
    assert!(ResultStore::get(&cache, key).is_some());
    let stats = cache.stats();
    assert_eq!((stats.disk_hits, stats.memory_hits), (1, 1));
    std::fs::remove_dir_all(&dir).unwrap();
}
