//! Request-conservation property of the layered result store: every job
//! submitted to a suite run is served by exactly one tier, so
//! `memory_hits + disk_hits + misses == jobs` for **any** job mix, worker
//! count, backing configuration and store prehistory.

use proptest::prelude::*;
use sfq_circuits::epfl::adder;
use sfq_engine::{DiskStore, Job, ResultCache, SuiteRunner};
use std::path::PathBuf;
use std::sync::Arc;
use t1map::cells::CellLibrary;
use t1map::flow::FlowConfig;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sfq-conserve-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Decodes one draw into a job: tiny adders (widths 2..=4) × three flow
/// flavors, so duplicates (→ memory hits) and distinct keys both occur.
fn job_from(choice: u8, lib: &CellLibrary, aigs: &[Arc<sfq_netlist::aig::Aig>; 3]) -> Job {
    let width = (choice % 3) as usize;
    let flow = (choice / 3) % 3;
    let aig = aigs[width].clone();
    let name = format!("adder{}", width + 2);
    match flow {
        0 => Job::new(name, "1φ", aig, *lib, FlowConfig::single_phase()),
        1 => Job::new(name, "4φ", aig, *lib, FlowConfig::multiphase(4)),
        _ => Job::new(name, "T1", aig, *lib, FlowConfig::t1(4)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn every_job_is_served_by_exactly_one_tier(
        choices in prop::collection::vec(any::<u8>(), 1..9),
        workers in any::<u8>(),
        with_disk in any::<bool>(),
        prewarm in prop::collection::vec(any::<u8>(), 0..4),
        case in any::<u64>(),
    ) {
        let lib = CellLibrary::default();
        let aigs = [
            Arc::new(adder(2)),
            Arc::new(adder(3)),
            Arc::new(adder(4)),
        ];
        let workers = (workers % 4) as usize + 1;
        let jobs: Vec<Job> = choices.iter().map(|&c| job_from(c, &lib, &aigs)).collect();

        let dir = with_disk.then(|| tmp_dir(&format!("case-{case}")));
        let store = match &dir {
            Some(dir) => {
                let disk = Arc::new(DiskStore::open(dir).expect("open scratch store"));
                // Give the disk tier arbitrary prehistory, then drop the
                // memory tier so those entries can only be *disk* hits.
                if !prewarm.is_empty() {
                    let warm: Vec<Job> =
                        prewarm.iter().map(|&c| job_from(c, &lib, &aigs)).collect();
                    let warmer = ResultCache::with_backing(disk.clone());
                    SuiteRunner::new(workers)
                        .with_store(Arc::new(warmer))
                        .run(&warm);
                }
                Arc::new(ResultCache::with_backing(disk))
            }
            None => Arc::new(ResultCache::new()),
        };

        let report = SuiteRunner::new(workers)
            .with_store(store)
            .run(&jobs);
        let c = &report.cache;
        prop_assert_eq!(
            c.memory_hits + c.disk_hits + c.misses,
            jobs.len() as u64,
            "workers={} disk={} prewarm={} mix={:?}: {:?}",
            workers,
            with_disk,
            prewarm.len(),
            choices,
            c
        );
        // And the tiers themselves are coherent: a request can only hit
        // disk when a backing store is attached.
        if !with_disk {
            prop_assert_eq!(c.disk_hits, 0);
        }
        if let Some(dir) = dir {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}
