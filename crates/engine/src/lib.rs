//! # sfq-engine
//!
//! Batch execution of mapping flows: one shared engine behind the Table-I
//! binaries, the ablation sweeps and the CLI `suite`/`serve` subcommands,
//! so every consumer gets parallelism and result reuse instead of
//! re-running [`run_flow`](t1map::flow::run_flow) serially and from
//! scratch.
//!
//! ## Architecture
//!
//! The engine is four small layers:
//!
//! - **[`Job`]** ([`job`]) — the unit of work: a named AIG × a
//!   [`CellLibrary`](t1map::cells::CellLibrary) × a
//!   [`FlowConfig`](t1map::flow::FlowConfig). Each job has a [`CacheKey`]
//!   content address combining the AIG's stable
//!   [`structural_hash`](sfq_netlist::aig::Aig::structural_hash) with
//!   canonical fingerprints of the library and configuration — equal inputs
//!   produce equal keys across threads, runs and platforms.
//!
//! - **[`ResultStore`]** ([`store`]) — the storage abstraction: a
//!   content-addressed map from [`CacheKey`] to shared results with uniform
//!   counters and a gc hook. [`DiskStore`] implements it on disk (one
//!   atomically written file per key under a format-versioned directory,
//!   encoded by the [`store::codec`] text codec), so results persist across
//!   processes.
//!
//! - **[`ResultCache`]** ([`cache`]) — the in-memory tier.
//!   [`ResultCache::get_or_compute`] deduplicates *concurrent* requests
//!   too: the first worker to claim a key computes it while later workers
//!   block on a condvar and share the finished `Arc`, so a suite that
//!   submits the same (AIG, library, config) several times — e.g. the
//!   shared 1φ baseline of an ablation phase sweep — computes it exactly
//!   once regardless of worker count. Layered over a backing
//!   [`ResultStore`] ([`ResultCache::with_backing`]) it probes disk on
//!   memory misses and writes computed results through, making a second run
//!   over a populated store compute nothing.
//!
//! - **[`SuiteRunner`]** ([`pool`]) — a fixed-size worker pool built on
//!   `std::thread::scope` and channels. Workers claim jobs from a shared
//!   atomic cursor, results stream back over an `mpsc` channel as
//!   [`JobOutcome`] progress events (delivered on the *calling* thread, so
//!   progress callbacks need no synchronisation), and the final
//!   [`SuiteReport`] lists results in deterministic input order regardless
//!   of completion order — `--jobs 1` and `--jobs 8` render byte-identical
//!   tables. [`SuiteRunner::with_store`] swaps the per-run cache for a
//!   shared, long-lived (and optionally disk-backed) store.
//!
//! ## Example
//!
//! ```
//! use sfq_engine::{Job, SuiteRunner};
//! use std::sync::Arc;
//! use t1map::cells::CellLibrary;
//! use t1map::flow::FlowConfig;
//!
//! let lib = CellLibrary::default();
//! let aig = Arc::new(sfq_circuits::epfl::adder(8));
//! let jobs = vec![
//!     Job::new("adder8", "1φ", aig.clone(), lib, FlowConfig::single_phase()),
//!     Job::new("adder8", "4φ", aig.clone(), lib, FlowConfig::multiphase(4)),
//!     // Same content as the first job → served from the cache.
//!     Job::new("adder8", "1φ-again", aig, lib, FlowConfig::single_phase()),
//! ];
//! let report = SuiteRunner::new(2).run(&jobs);
//! assert_eq!(report.results.len(), 3);
//! assert_eq!(report.cache.hits(), 1);
//! assert_eq!(report.results[0].stats, report.results[2].stats);
//! ```

pub mod cache;
pub mod job;
pub mod pool;
pub mod store;

pub use cache::{CacheStats, HitSource, ResultCache};
pub use job::{CacheKey, Job};
pub use pool::{default_workers, JobOutcome, SuiteReport, SuiteRunner};
pub use store::{DiskStore, GcSummary, ResultStore, StoreStats};
