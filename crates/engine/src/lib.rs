//! # sfq-engine
//!
//! Batch execution of mapping flows: one shared engine behind the Table-I
//! binaries, the ablation sweeps and the CLI `suite` subcommand, so every
//! consumer gets parallelism and result reuse instead of re-running
//! [`run_flow`](t1map::flow::run_flow) serially and from scratch.
//!
//! ## Architecture
//!
//! The engine is three small layers:
//!
//! - **[`Job`]** ([`job`]) — the unit of work: a named AIG × a
//!   [`CellLibrary`](t1map::cells::CellLibrary) × a
//!   [`FlowConfig`](t1map::flow::FlowConfig). Each job has a [`CacheKey`]
//!   content address combining the AIG's stable
//!   [`structural_hash`](sfq_netlist::aig::Aig::structural_hash) with
//!   canonical fingerprints of the library and configuration — equal inputs
//!   produce equal keys across threads, runs and platforms.
//!
//! - **[`ResultCache`]** ([`cache`]) — a content-addressed in-memory store
//!   of `Arc<FlowResult>`. [`ResultCache::get_or_compute`] deduplicates
//!   *concurrent* requests too: the first worker to claim a key computes it
//!   while later workers block on a condvar and share the finished `Arc`,
//!   so a suite that submits the same (AIG, library, config) several times
//!   — e.g. the shared 1φ baseline of an ablation phase sweep — computes it
//!   exactly once regardless of worker count.
//!
//! - **[`SuiteRunner`]** ([`pool`]) — a fixed-size worker pool built on
//!   `std::thread::scope` and channels. Workers claim jobs from a shared
//!   atomic cursor, results stream back over an `mpsc` channel as
//!   [`JobOutcome`] progress events (delivered on the *calling* thread, so
//!   progress callbacks need no synchronisation), and the final
//!   [`SuiteReport`] lists results in deterministic input order regardless
//!   of completion order — `--jobs 1` and `--jobs 8` render byte-identical
//!   tables.
//!
//! ## Example
//!
//! ```
//! use sfq_engine::{Job, SuiteRunner};
//! use std::sync::Arc;
//! use t1map::cells::CellLibrary;
//! use t1map::flow::FlowConfig;
//!
//! let lib = CellLibrary::default();
//! let aig = Arc::new(sfq_circuits::epfl::adder(8));
//! let jobs = vec![
//!     Job::new("adder8", "1φ", aig.clone(), lib, FlowConfig::single_phase()),
//!     Job::new("adder8", "4φ", aig.clone(), lib, FlowConfig::multiphase(4)),
//!     // Same content as the first job → served from the cache.
//!     Job::new("adder8", "1φ-again", aig, lib, FlowConfig::single_phase()),
//! ];
//! let report = SuiteRunner::new(2).run(&jobs);
//! assert_eq!(report.results.len(), 3);
//! assert_eq!(report.cache.hits, 1);
//! assert_eq!(report.results[0].stats, report.results[2].stats);
//! ```

pub mod cache;
pub mod job;
pub mod pool;

pub use cache::{CacheStats, ResultCache};
pub use job::{CacheKey, Job};
pub use pool::{default_workers, JobOutcome, SuiteReport, SuiteRunner};
