//! Persistent, multi-backend result storage.
//!
//! [`ResultStore`] is the storage abstraction of the engine's result layer:
//! a content-addressed map from [`CacheKey`] to shared
//! [`FlowResult`]s with uniform counters
//! ([`StoreStats`]) and a garbage-collection hook. Two backends implement
//! it:
//!
//! - [`ResultCache`](crate::cache::ResultCache) — the in-memory store with
//!   in-flight deduplication (the fast tier). With a backing store attached
//!   ([`ResultCache::with_backing`](crate::cache::ResultCache::with_backing))
//!   it becomes the *layered* view: memory in front, the backing store
//!   behind, write-through on compute.
//! - [`DiskStore`] ([`disk`]) — one file per key under a
//!   format-versioned directory, written atomically (temp file + rename),
//!   so results survive the process and are shared across runs, CLI
//!   invocations and CI steps.
//!
//! On-disk entries are encoded by the hand-rolled, self-describing codec of
//! [`codec`]; its [`FORMAT_VERSION`](codec::FORMAT_VERSION) participates in
//! the directory layout, so a codec bump invalidates old entries wholesale
//! instead of risking misdecodes. Corrupt or truncated files decode to an
//! error and are treated (and counted) as misses, never as panics.

pub mod codec;
pub mod disk;

pub use disk::{DiskStore, GcSummary};

use crate::job::CacheKey;
use std::sync::Arc;
use t1map::flow::FlowResult;

/// Uniform counters every [`ResultStore`] backend reports.
///
/// `entries` is a gauge (current occupancy); the rest are monotone
/// counters, so per-run figures are differences of two snapshots
/// ([`StoreStats::delta_since`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Entries currently stored.
    pub entries: usize,
    /// Lookups that found a decodable entry.
    pub hits: u64,
    /// Lookups that found nothing usable (including corrupt entries).
    pub misses: u64,
    /// Entries written.
    pub puts: u64,
    /// I/O or decode failures (each also counts as a miss or a failed put).
    pub errors: u64,
    /// Entries removed by [`ResultStore::gc`].
    pub evicted: u64,
}

impl StoreStats {
    /// Counter increments since `earlier` (a snapshot of the same store);
    /// `entries` stays the current gauge value.
    pub fn delta_since(&self, earlier: &StoreStats) -> StoreStats {
        StoreStats {
            entries: self.entries,
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            puts: self.puts.saturating_sub(earlier.puts),
            errors: self.errors.saturating_sub(earlier.errors),
            evicted: self.evicted.saturating_sub(earlier.evicted),
        }
    }
}

/// A content-addressed store of flow results.
///
/// Implementations must be safe to share across the engine's worker
/// threads (`Send + Sync`); all methods take `&self`. A `get` after a
/// successful `put` of the same key returns an equal result (module
/// crash-window caveats of the backend); a failed or corrupt entry is a
/// miss, never an error surfaced to the flow.
pub trait ResultStore: Send + Sync {
    /// Returns the stored result for `key`, if present and decodable.
    fn get(&self, key: CacheKey) -> Option<Arc<FlowResult>>;

    /// Stores `result` under `key` (best effort: backends count failures
    /// in [`StoreStats::errors`] rather than propagate them).
    fn put(&self, key: CacheKey, result: &Arc<FlowResult>);

    /// Whether an entry for `key` exists (without decoding it).
    fn contains(&self, key: CacheKey) -> bool;

    /// Snapshot of the store's counters.
    fn stats(&self) -> StoreStats;

    /// Evicts all but the `keep_newest` most recent entries (plus any
    /// stale-format debris), returning how many entries were removed.
    fn gc(&self, keep_newest: usize) -> usize;
}
