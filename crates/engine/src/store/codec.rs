//! Versioned, self-describing text codec for [`FlowResult`].
//!
//! The on-disk store needs a serialization that is (a) stable across
//! processes and platforms, (b) inspectable when something goes wrong, and
//! (c) dependency-free — so the format is hand-rolled line-oriented text:
//! a header naming the format and its version, one section per result
//! component with explicit element counts, and a trailing `end` marker
//! that catches truncated writes. Every count is written before the
//! elements it governs, so the decoder never guesses and never reads past
//! a section.
//!
//! [`decode`] is *total*: any input — corrupt, truncated, hostile — yields
//! either an equal [`FlowResult`] or a [`DecodeError`] with the offending
//! line, never a panic. In particular it pre-validates everything the
//! [`MappedCircuit`] builder asserts (topological order, port ranges, gate
//! arity, positive T1 operands), so rebuilding through the public builder
//! API cannot trip an assertion.
//!
//! [`FORMAT_VERSION`] participates in the [`DiskStore`](super::DiskStore)
//! directory layout (`<dir>/v<N>/`): bumping it on any format change
//! orphans old entries cleanly instead of misdecoding them.

use std::fmt;
use std::str::{FromStr, SplitWhitespace};
use t1map::dff::{Chain, Consumer, DffPlan, DriverPlan, Requirement};
use t1map::flow::{FlowResult, FlowStats};
use t1map::mapped::{CellId, Edge, MappedCell, MappedCircuit};
use t1map::phase::Schedule;
use t1map::timing::TimingSummary;

use sfq_netlist::truth_table::TruthTable;
use sfq_opt::{CtxCounters, OptReport, PassKind, PassStats};

/// Version of the serialization format. Participates in the on-disk
/// directory layout, so bumping it invalidates every persisted entry at
/// once. Bump on **any** change to [`encode`]'s output.
pub const FORMAT_VERSION: u32 = 1;

/// Header line opening every encoded result.
const HEADER: &str = "sfq-flow-result";

/// Why a byte stream failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// 1-based line number of the offending line (0 = unexpected EOF).
    pub line: usize,
    /// Human-readable reason.
    pub reason: String,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "unexpected end of input: {}", self.reason)
        } else {
            write!(f, "line {}: {}", self.line, self.reason)
        }
    }
}

impl std::error::Error for DecodeError {}

/// Serializes `result` into the versioned text format.
pub fn encode(result: &FlowResult) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let w = &mut s;
    writeln!(w, "{HEADER} v{FORMAT_VERSION}").unwrap();
    let st = &result.stats;
    writeln!(
        w,
        "stats {} {} {} {} {} {} {} {}",
        st.t1_found,
        st.t1_used,
        st.dffs,
        st.splitters,
        st.cell_area,
        st.area,
        st.depth_cycles,
        st.gates
    )
    .unwrap();

    let mc = &result.mapped;
    writeln!(w, "cells {}", mc.len()).unwrap();
    for (_, cell) in mc.cells() {
        match cell {
            MappedCell::Input { index } => writeln!(w, "i {index}").unwrap(),
            MappedCell::Const0 => writeln!(w, "k").unwrap(),
            MappedCell::Gate { tt, fanins } => {
                write!(w, "g {} {:x}", tt.num_vars(), tt.bits()).unwrap();
                for e in fanins {
                    write!(w, " {} {} {}", e.cell.0, e.port, e.invert as u8).unwrap();
                }
                writeln!(w).unwrap();
            }
            MappedCell::T1 { fanins } => {
                write!(w, "t").unwrap();
                for e in fanins {
                    write!(w, " {} {} {}", e.cell.0, e.port, e.invert as u8).unwrap();
                }
                writeln!(w).unwrap();
            }
        }
    }
    writeln!(w, "pos {}", mc.pos().len()).unwrap();
    for e in mc.pos() {
        writeln!(w, "p {} {} {}", e.cell.0, e.port, e.invert as u8).unwrap();
    }

    let sched = &result.schedule;
    writeln!(
        w,
        "sched {} {} {}",
        sched.n,
        sched.horizon,
        sched.stages.len()
    )
    .unwrap();
    write!(w, "stages").unwrap();
    for s in &sched.stages {
        write!(w, " {s}").unwrap();
    }
    writeln!(w).unwrap();
    let offsets: Vec<(usize, [i64; 3])> = sched
        .t1_offsets
        .iter()
        .enumerate()
        .filter_map(|(i, o)| o.map(|o| (i, o)))
        .collect();
    writeln!(w, "t1off {} {}", sched.t1_offsets.len(), offsets.len()).unwrap();
    for (i, o) in offsets {
        writeln!(w, "o {} {} {} {}", i, o[0], o[1], o[2]).unwrap();
    }

    let plan = &result.plan;
    writeln!(
        w,
        "plan {} {} {}",
        plan.drivers.len(),
        plan.total_dffs,
        plan.total_splitters
    )
    .unwrap();
    for d in &plan.drivers {
        writeln!(
            w,
            "d {} {} {} {} {}",
            d.source.0 .0,
            d.source.1,
            d.source_stage,
            d.chain.members.len(),
            d.consumers.len()
        )
        .unwrap();
        write!(w, "m").unwrap();
        for m in &d.chain.members {
            write!(w, " {m}").unwrap();
        }
        writeln!(w).unwrap();
        write!(w, "a").unwrap();
        for t in &d.chain.taps {
            write!(w, " {t}").unwrap();
        }
        writeln!(w).unwrap();
        for (consumer, req) in &d.consumers {
            match consumer {
                Consumer::GateInput { cell, slot } => write!(w, "c g {} {}", cell.0, slot),
                Consumer::T1Input { cell, slot } => write!(w, "c t {} {}", cell.0, slot),
                Consumer::Output { index } => write!(w, "c o {index} 0"),
            }
            .unwrap();
            match req {
                Requirement::Window(t) => writeln!(w, " w {t}"),
                Requirement::Exact(tau) => writeln!(w, " e {tau}"),
            }
            .unwrap();
        }
    }

    match &result.pre_opt {
        None => writeln!(w, "preopt 0").unwrap(),
        Some(report) => {
            writeln!(w, "preopt 1").unwrap();
            writeln!(
                w,
                "r {} {} {} {} {} {}",
                report.rounds.len(),
                report.converged as u8,
                report.nodes_before,
                report.nodes_after,
                report.depth_before,
                report.depth_after
            )
            .unwrap();
            let a = &report.analysis;
            writeln!(
                w,
                "x {} {} {} {} {} {}",
                a.cache_hits,
                a.recomputes,
                a.invalidations,
                a.sta_full_builds,
                a.sta_rebinds,
                a.sta_nodes_refreshed
            )
            .unwrap();
            for round in &report.rounds {
                writeln!(w, "q {}", round.len()).unwrap();
                for p in round {
                    writeln!(
                        w,
                        "s {} {} {} {} {} {} {} {} {} {} {}",
                        p.pass,
                        p.nodes_before,
                        p.nodes_after,
                        p.depth_before,
                        p.depth_after,
                        p.applied,
                        p.cache_hits,
                        p.invalidations,
                        p.sta_refreshed,
                        p.sta_builds,
                        p.micros
                    )
                    .unwrap();
                }
            }
        }
    }

    match &result.timing {
        None => writeln!(w, "timing 0").unwrap(),
        Some(t) => {
            writeln!(w, "timing 1").unwrap();
            writeln!(
                w,
                "y {} {} {} {} {} {} {} {}",
                t.horizon,
                t.phases,
                t.scheduled_cells,
                t.zero_slack_cells,
                t.worst_slack,
                t.total_slack,
                t.edge_dffs,
                t.chained_dffs
            )
            .unwrap();
        }
    }
    writeln!(w, "end").unwrap();
    s
}

/// Line cursor with 1-based positions for error reporting.
struct Lines<'a> {
    inner: std::str::Lines<'a>,
    pos: usize,
}

impl<'a> Lines<'a> {
    fn new(text: &'a str) -> Self {
        Lines {
            inner: text.lines(),
            pos: 0,
        }
    }

    /// Next line, as a tagged field cursor; EOF is a decode error.
    fn next(&mut self, expect: &str) -> Result<Fields<'a>, DecodeError> {
        match self.inner.next() {
            Some(line) => {
                self.pos += 1;
                Fields::new(self.pos, line, expect)
            }
            None => Err(DecodeError {
                line: 0,
                reason: format!("missing '{expect}' section"),
            }),
        }
    }
}

/// Whitespace-separated fields of one line, consumed left to right.
struct Fields<'a> {
    line: usize,
    it: SplitWhitespace<'a>,
}

impl<'a> Fields<'a> {
    /// Splits `line`, requiring its first token to equal `tag`.
    fn new(pos: usize, line: &'a str, tag: &str) -> Result<Self, DecodeError> {
        let mut it = line.split_whitespace();
        match it.next() {
            Some(t) if t == tag => Ok(Fields { line: pos, it }),
            other => Err(DecodeError {
                line: pos,
                reason: format!("expected '{tag}', found '{}'", other.unwrap_or("")),
            }),
        }
    }

    fn fail(&self, reason: impl Into<String>) -> DecodeError {
        DecodeError {
            line: self.line,
            reason: reason.into(),
        }
    }

    fn str(&mut self) -> Result<&'a str, DecodeError> {
        self.it
            .next()
            .ok_or_else(|| self.fail("missing field".to_string()))
    }

    fn num<T: FromStr>(&mut self) -> Result<T, DecodeError> {
        let tok = self.str()?;
        tok.parse()
            .map_err(|_| self.fail(format!("malformed number '{tok}'")))
    }

    fn hex_u64(&mut self) -> Result<u64, DecodeError> {
        let tok = self.str()?;
        u64::from_str_radix(tok, 16).map_err(|_| self.fail(format!("malformed hex '{tok}'")))
    }

    fn bool01(&mut self) -> Result<bool, DecodeError> {
        match self.str()? {
            "0" => Ok(false),
            "1" => Ok(true),
            other => Err(self.fail(format!("expected 0 or 1, found '{other}'"))),
        }
    }

    /// Parses a count field, bounded by [`MAX_COUNT`] so a corrupt count
    /// cannot make the decoder attempt a huge allocation before the
    /// (inevitable) parse error surfaces.
    fn count(&mut self, what: &str) -> Result<usize, DecodeError> {
        let n: usize = self.num()?;
        if n > MAX_COUNT {
            return Err(self.fail(format!("implausible {what} count {n}")));
        }
        Ok(n)
    }

    /// Requires the line to be fully consumed.
    fn done(mut self) -> Result<(), DecodeError> {
        match self.it.next() {
            None => Ok(()),
            Some(extra) => Err(self.fail(format!("trailing field '{extra}'"))),
        }
    }
}

/// Reads one `(cell, port, invert)` edge triple, validated against the
/// cells decoded so far (`ports[c]` = output-port count of cell `c`).
fn read_edge(f: &mut Fields<'_>, ports: &[u8]) -> Result<Edge, DecodeError> {
    let cell: u32 = f.num()?;
    let port: u8 = f.num()?;
    let invert = f.bool01()?;
    let nports = *ports
        .get(cell as usize)
        .ok_or_else(|| f.fail(format!("edge references cell {cell} before creation")))?;
    if port >= nports {
        return Err(f.fail(format!("port {port} out of range for cell {cell}")));
    }
    Ok(Edge {
        cell: CellId(cell),
        port,
        invert,
    })
}

/// Cap on declared element counts (see [`Fields::count`]).
const MAX_COUNT: usize = 1 << 28;

/// Deserializes a [`FlowResult`] previously produced by [`encode`].
///
/// # Errors
///
/// Any malformed, truncated or version-mismatched input yields a
/// [`DecodeError`] naming the offending line; the store layers treat every
/// such error as a cache miss.
pub fn decode(text: &str) -> Result<FlowResult, DecodeError> {
    let mut lines = Lines::new(text);

    let mut f = lines.next(HEADER)?;
    let version = f.str()?;
    if version != format!("v{FORMAT_VERSION}") {
        return Err(f.fail(format!(
            "format version mismatch: found '{version}', expected 'v{FORMAT_VERSION}'"
        )));
    }
    f.done()?;

    let mut f = lines.next("stats")?;
    let stats = FlowStats {
        t1_found: f.num()?,
        t1_used: f.num()?,
        dffs: f.num()?,
        splitters: f.num()?,
        cell_area: f.num()?,
        area: f.num()?,
        depth_cycles: f.num()?,
        gates: f.num()?,
    };
    f.done()?;

    // Mapped netlist: rebuild through the public builder, pre-validating
    // everything the builder asserts.
    let mut f = lines.next("cells")?;
    let ncells = f.count("cell")?;
    f.done()?;
    let mut mapped = MappedCircuit::new();
    let mut ports: Vec<u8> = Vec::with_capacity(ncells);
    for _ in 0..ncells {
        let raw = match lines.inner.next() {
            Some(l) => l,
            None => {
                return Err(DecodeError {
                    line: 0,
                    reason: "missing cell line".into(),
                })
            }
        };
        lines.pos += 1;
        let mut it = raw.split_whitespace();
        let tag = it.next().unwrap_or("");
        let mut f = Fields {
            line: lines.pos,
            it,
        };
        match tag {
            "i" => {
                let index: u32 = f.num()?;
                if index as usize != mapped.num_inputs() {
                    return Err(f.fail(format!(
                        "input index {index} out of sequence (expected {})",
                        mapped.num_inputs()
                    )));
                }
                mapped.add_input();
                ports.push(1);
            }
            "k" => {
                mapped.add_const0();
                ports.push(1);
            }
            "g" => {
                let nvars: usize = f.num()?;
                if nvars > TruthTable::MAX_VARS {
                    return Err(f.fail(format!("gate arity {nvars} exceeds 6")));
                }
                let bits = f.hex_u64()?;
                let tt = TruthTable::from_bits(nvars, bits);
                let mut fanins = Vec::with_capacity(nvars);
                for _ in 0..nvars {
                    fanins.push(read_edge(&mut f, &ports)?);
                }
                mapped.add_gate(tt, fanins);
                ports.push(1);
            }
            "t" => {
                let mut fanins = [Edge::plain(CellId(0)); 3];
                for slot in &mut fanins {
                    let e = read_edge(&mut f, &ports)?;
                    if e.invert {
                        return Err(f.fail("inverted T1 operand".to_string()));
                    }
                    *slot = e;
                }
                mapped.add_t1(fanins);
                ports.push(3);
            }
            other => return Err(f.fail(format!("unknown cell tag '{other}'"))),
        }
        f.done()?;
    }
    let mut f = lines.next("pos")?;
    let npos = f.count("output")?;
    f.done()?;
    for _ in 0..npos {
        let mut f = lines.next("p")?;
        let e = read_edge(&mut f, &ports)?;
        mapped.add_po(e);
        f.done()?;
    }

    // Schedule.
    let mut f = lines.next("sched")?;
    let n: u32 = f.num()?;
    let horizon: i64 = f.num()?;
    let nstages = f.count("stage")?;
    f.done()?;
    let mut f = lines.next("stages")?;
    let mut stages = Vec::with_capacity(nstages);
    for _ in 0..nstages {
        stages.push(f.num::<i64>()?);
    }
    f.done()?;
    let mut f = lines.next("t1off")?;
    let noff_slots = f.count("offset-slot")?;
    let noff = f.count("offset")?;
    f.done()?;
    let mut t1_offsets: Vec<Option<[i64; 3]>> = vec![None; noff_slots];
    for _ in 0..noff {
        let mut f = lines.next("o")?;
        let idx: usize = f.num()?;
        let o = [f.num()?, f.num()?, f.num()?];
        f.done()?;
        match t1_offsets.get_mut(idx) {
            Some(slot) => *slot = Some(o),
            None => {
                return Err(DecodeError {
                    line: lines.pos,
                    reason: format!("T1 offset index {idx} out of range"),
                })
            }
        }
    }
    let schedule = Schedule {
        n,
        stages,
        horizon,
        t1_offsets,
    };

    // DFF plan.
    let mut f = lines.next("plan")?;
    let ndrivers = f.count("driver")?;
    let total_dffs: u64 = f.num()?;
    let total_splitters: u64 = f.num()?;
    f.done()?;
    let mut drivers = Vec::with_capacity(ndrivers);
    for _ in 0..ndrivers {
        let mut f = lines.next("d")?;
        let cell: u32 = f.num()?;
        let port: u8 = f.num()?;
        let source_stage: i64 = f.num()?;
        let nmembers = f.count("chain-member")?;
        let ncons = f.count("consumer")?;
        f.done()?;
        let mut f = lines.next("m")?;
        let mut members = Vec::with_capacity(nmembers);
        for _ in 0..nmembers {
            members.push(f.num::<i64>()?);
        }
        f.done()?;
        let mut f = lines.next("a")?;
        let mut taps = Vec::with_capacity(ncons);
        for _ in 0..ncons {
            taps.push(f.num::<i64>()?);
        }
        f.done()?;
        let mut consumers = Vec::with_capacity(ncons);
        for _ in 0..ncons {
            let mut f = lines.next("c")?;
            let kind = f.str()?;
            let a: usize = f.num()?;
            let b: usize = f.num()?;
            let consumer = match kind {
                "g" => Consumer::GateInput {
                    cell: CellId(a as u32),
                    slot: b,
                },
                "t" => Consumer::T1Input {
                    cell: CellId(a as u32),
                    slot: b,
                },
                "o" => Consumer::Output { index: a },
                other => return Err(f.fail(format!("unknown consumer kind '{other}'"))),
            };
            let req = match f.str()? {
                "w" => Requirement::Window(f.num()?),
                "e" => Requirement::Exact(f.num()?),
                other => return Err(f.fail(format!("unknown requirement kind '{other}'"))),
            };
            f.done()?;
            consumers.push((consumer, req));
        }
        drivers.push(DriverPlan {
            source: (CellId(cell), port),
            source_stage,
            chain: Chain { members, taps },
            consumers,
        });
    }
    let plan = DffPlan {
        drivers,
        total_dffs,
        total_splitters,
    };

    // Optional pre-mapping optimization report.
    let mut f = lines.next("preopt")?;
    let has_preopt = f.bool01()?;
    f.done()?;
    let pre_opt = if has_preopt {
        let mut f = lines.next("r")?;
        let nrounds = f.count("round")?;
        let converged = f.bool01()?;
        let nodes_before: usize = f.num()?;
        let nodes_after: usize = f.num()?;
        let depth_before: u32 = f.num()?;
        let depth_after: u32 = f.num()?;
        f.done()?;
        let mut f = lines.next("x")?;
        let analysis = CtxCounters {
            cache_hits: f.num()?,
            recomputes: f.num()?,
            invalidations: f.num()?,
            sta_full_builds: f.num()?,
            sta_rebinds: f.num()?,
            sta_nodes_refreshed: f.num()?,
        };
        f.done()?;
        let mut rounds = Vec::with_capacity(nrounds);
        for _ in 0..nrounds {
            let mut f = lines.next("q")?;
            let npasses = f.count("pass")?;
            f.done()?;
            let mut round = Vec::with_capacity(npasses);
            for _ in 0..npasses {
                let mut f = lines.next("s")?;
                let name = f.str()?;
                // `PassStats::pass` is `&'static str`: re-intern the decoded
                // name against the known pass vocabulary. A name outside it
                // means the entry came from an incompatible build — a miss.
                let pass = PassKind::KNOWN
                    .iter()
                    .map(|p| p.name())
                    .find(|n| *n == name)
                    .ok_or_else(|| f.fail(format!("unknown pass name '{name}'")))?;
                round.push(PassStats {
                    pass,
                    nodes_before: f.num()?,
                    nodes_after: f.num()?,
                    depth_before: f.num()?,
                    depth_after: f.num()?,
                    applied: f.num()?,
                    cache_hits: f.num()?,
                    invalidations: f.num()?,
                    sta_refreshed: f.num()?,
                    sta_builds: f.num()?,
                    micros: f.num()?,
                });
                f.done()?;
            }
            rounds.push(round);
        }
        Some(OptReport {
            rounds,
            converged,
            nodes_before,
            nodes_after,
            depth_before,
            depth_after,
            analysis,
        })
    } else {
        None
    };

    // Optional timing summary.
    let mut f = lines.next("timing")?;
    let has_timing = f.bool01()?;
    f.done()?;
    let timing = if has_timing {
        let mut f = lines.next("y")?;
        let t = TimingSummary {
            horizon: f.num()?,
            phases: f.num()?,
            scheduled_cells: f.num()?,
            zero_slack_cells: f.num()?,
            worst_slack: f.num()?,
            total_slack: f.num()?,
            edge_dffs: f.num()?,
            chained_dffs: f.num()?,
        };
        f.done()?;
        Some(t)
    } else {
        None
    };

    // Truncation guard: a partially written file is missing this marker.
    lines.next("end")?.done()?;

    Ok(FlowResult {
        mapped,
        schedule,
        plan,
        stats,
        pre_opt,
        timing,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfq_circuits::epfl::adder;
    use t1map::cells::CellLibrary;
    use t1map::flow::{run_flow, FlowConfig};

    #[test]
    fn real_flow_results_round_trip() {
        let lib = CellLibrary::default();
        let aig = adder(6);
        for cfg in [
            FlowConfig::single_phase(),
            FlowConfig::multiphase(4),
            FlowConfig::t1(4),
            FlowConfig::t1(4).to_builder().standard_opt().build(),
            FlowConfig::t1(4).to_builder().timing(true).build(),
            FlowConfig::t1(4)
                .to_builder()
                .slack_opt()
                .timing(true)
                .build(),
        ] {
            let result = run_flow(&aig, &lib, &cfg);
            let text = encode(&result);
            let back = decode(&text).expect("decodes");
            assert_eq!(result, back, "round trip under {cfg:?}");
        }
    }

    #[test]
    fn version_mismatch_is_an_error() {
        let result = run_flow(
            &adder(2),
            &CellLibrary::default(),
            &FlowConfig::single_phase(),
        );
        let text = encode(&result).replace("v1", "v999");
        let err = decode(&text).expect_err("wrong version rejected");
        assert!(err.reason.contains("version"), "{err}");
    }

    #[test]
    fn truncated_input_is_an_error_not_a_panic() {
        let result = run_flow(&adder(3), &CellLibrary::default(), &FlowConfig::t1(4));
        let text = encode(&result);
        // Every prefix must fail cleanly (the full text must not).
        for cut in 0..text.len().saturating_sub(1) {
            if let Ok(val) = decode(&text[..cut]) {
                panic!("prefix of {cut} bytes decoded to {:?}", val.stats);
            }
        }
        assert!(decode(&text).is_ok());
    }

    #[test]
    fn hostile_edges_are_rejected_before_the_builder_panics() {
        // Forward reference.
        let bad = "sfq-flow-result v1\nstats 0 0 0 0 0 0 0 0\ncells 1\ng 1 2 5 0 0\n";
        assert!(decode(bad).is_err());
        // Port out of range on a non-T1 producer.
        let bad = "sfq-flow-result v1\nstats 0 0 0 0 0 0 0 0\ncells 2\ni 0\ng 1 2 0 2 0\n";
        assert!(decode(bad).is_err());
        // Inverted T1 operand.
        let bad =
            "sfq-flow-result v1\nstats 0 0 0 0 0 0 0 0\ncells 4\ni 0\ni 1\ni 2\nt 0 0 1 1 0 0 2 0 0\n";
        assert!(decode(bad).is_err());
        // Absurd count field must not allocate.
        let bad = "sfq-flow-result v1\nstats 0 0 0 0 0 0 0 0\ncells 99999999999\n";
        assert!(decode(bad).is_err());
    }
}
