//! On-disk [`ResultStore`] backend: one file per key, atomic writes.
//!
//! Layout: `<dir>/v<FORMAT_VERSION>/<aig>-<setup>.sfqr`, where the two key
//! halves are zero-padded hex. The version directory ties entries to the
//! codec that wrote them — after a format bump, old entries sit in a stale
//! `v<k>` directory that never matches lookups and is swept by
//! [`ResultStore::gc`].
//!
//! Writes go through a uniquely named temp file in the same directory
//! followed by a rename, so readers (including concurrent processes
//! sharing the directory) only ever observe absent or complete files.
//! Failures of any kind — I/O errors, decode errors, rename races — are
//! counted in [`StoreStats::errors`] and surface as misses or dropped
//! puts, never as panics or propagated errors.

use super::codec::{self, FORMAT_VERSION};
use super::{ResultStore, StoreStats};
use crate::job::CacheKey;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use t1map::flow::FlowResult;

/// Extension of entry files inside the version directory.
const ENTRY_EXT: &str = "sfqr";

/// What a [`DiskStore::gc_with_budget`] pass did and left behind — the
/// eviction summary the `sfq-t1 store gc` CLI verb prints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GcSummary {
    /// Entries removed (stale-format debris plus evictions).
    pub removed: usize,
    /// Bytes freed by removing current-format entries (stale-format
    /// debris is swept wholesale and not byte-counted).
    pub removed_bytes: u64,
    /// Current-format entries remaining after the pass.
    pub remaining: usize,
    /// Bytes of current-format entries remaining after the pass.
    pub remaining_bytes: u64,
}

/// Persistent result store rooted at a user-supplied cache directory.
#[derive(Debug)]
pub struct DiskStore {
    /// `<dir>/v<FORMAT_VERSION>` — entries of the current format only.
    root: PathBuf,
    /// Parent cache directory (holds stale version dirs for gc to sweep).
    dir: PathBuf,
    /// Distinguishes concurrent temp files from one process.
    tmp_seq: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    puts: AtomicU64,
    errors: AtomicU64,
    evicted: AtomicU64,
}

impl DiskStore {
    /// Opens (creating if necessary) a store under `dir`.
    ///
    /// # Errors
    ///
    /// Fails only if the version directory cannot be created — entries
    /// themselves are handled best-effort afterwards.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        let root = dir.join(format!("v{FORMAT_VERSION}"));
        fs::create_dir_all(&root)?;
        Ok(DiskStore {
            root,
            dir,
            tmp_seq: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            puts: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
        })
    }

    /// Directory holding current-format entries.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn entry_path(&self, key: CacheKey) -> PathBuf {
        self.root
            .join(format!("{:016x}-{:016x}.{ENTRY_EXT}", key.aig, key.setup))
    }

    /// [`ResultStore::gc`] with an additional size budget: after keeping
    /// at most `keep_newest` entries, keeps evicting oldest-first until
    /// the remaining entries total at most `max_bytes` (when given).
    /// Stale-format version directories are swept wholesale either way.
    ///
    /// Eviction order is oldest-modified-first in both phases, so a point
    /// that survives the count cap can still fall to the byte cap, never
    /// the other way around.
    pub fn gc_with_budget(&self, keep_newest: usize, max_bytes: Option<u64>) -> GcSummary {
        let mut summary = GcSummary::default();

        // Sweep stale-format version directories wholesale.
        if let Ok(rd) = fs::read_dir(&self.dir) {
            for entry in rd.flatten() {
                let path = entry.path();
                if !path.is_dir() || path == self.root {
                    continue;
                }
                let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                    continue;
                };
                let Some(version) = name.strip_prefix('v') else {
                    continue;
                };
                if version.parse::<u32>().is_err() {
                    continue;
                }
                if let Ok(stale) = fs::read_dir(&path) {
                    summary.removed += stale
                        .flatten()
                        .filter(|e| {
                            e.path().extension().and_then(|x| x.to_str()) == Some(ENTRY_EXT)
                        })
                        .count();
                }
                let _ = fs::remove_dir_all(&path);
            }
        }

        // Oldest-first queue of current-format entries with their sizes.
        let mut entries: Vec<(std::time::SystemTime, u64, PathBuf)> = self
            .entries()
            .into_iter()
            .map(|p| {
                let meta = fs::metadata(&p).ok();
                let mtime = meta
                    .as_ref()
                    .and_then(|m| m.modified().ok())
                    .unwrap_or(std::time::SystemTime::UNIX_EPOCH);
                let len = meta.map(|m| m.len()).unwrap_or(0);
                (mtime, len, p)
            })
            .collect();
        entries.sort_by(|a, b| (a.0, &a.2).cmp(&(b.0, &b.2)));
        let mut total_bytes: u64 = entries.iter().map(|(_, len, _)| *len).sum();

        let mut cursor = 0usize;
        let over_budget = |remaining: usize, bytes: u64| {
            remaining > keep_newest || max_bytes.is_some_and(|cap| bytes > cap)
        };
        while cursor < entries.len() && over_budget(entries.len() - cursor, total_bytes) {
            let (_, len, path) = &entries[cursor];
            if fs::remove_file(path).is_ok() {
                summary.removed += 1;
                summary.removed_bytes += len;
            }
            total_bytes -= len;
            cursor += 1;
        }
        summary.remaining = entries.len() - cursor;
        summary.remaining_bytes = total_bytes;

        self.evicted
            .fetch_add(summary.removed as u64, Ordering::Relaxed);
        sfq_obs::counter("store.disk.gc_evicted", summary.removed as u64);
        summary
    }

    /// Current-format entry files, ignoring temp files and debris.
    fn entries(&self) -> Vec<PathBuf> {
        let mut out = Vec::new();
        let Ok(rd) = fs::read_dir(&self.root) else {
            return out;
        };
        for entry in rd.flatten() {
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) == Some(ENTRY_EXT) {
                out.push(path);
            }
        }
        out
    }
}

impl ResultStore for DiskStore {
    fn get(&self, key: CacheKey) -> Option<Arc<FlowResult>> {
        let path = self.entry_path(key);
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => {
                if e.kind() != io::ErrorKind::NotFound {
                    self.errors.fetch_add(1, Ordering::Relaxed);
                }
                self.misses.fetch_add(1, Ordering::Relaxed);
                sfq_obs::counter("store.disk.misses", 1);
                return None;
            }
        };
        match codec::decode(&text) {
            Ok(result) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::new(result))
            }
            Err(_) => {
                // Corrupt or stale entry: count it, drop it, report a miss.
                self.errors.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                sfq_obs::counter("store.codec.decode_errors", 1);
                sfq_obs::counter("store.disk.misses", 1);
                let _ = fs::remove_file(&path);
                None
            }
        }
    }

    fn put(&self, key: CacheKey, result: &Arc<FlowResult>) {
        let text = codec::encode(result);
        let tmp = self.root.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        let written = fs::write(&tmp, &text).and_then(|()| fs::rename(&tmp, self.entry_path(key)));
        match written {
            Ok(()) => {
                self.puts.fetch_add(1, Ordering::Relaxed);
                sfq_obs::counter("store.disk.puts", 1);
            }
            Err(_) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                let _ = fs::remove_file(&tmp);
            }
        }
    }

    fn contains(&self, key: CacheKey) -> bool {
        self.entry_path(key).is_file()
    }

    fn stats(&self) -> StoreStats {
        StoreStats {
            entries: self.entries().len(),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            puts: self.puts.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
        }
    }

    fn gc(&self, keep_newest: usize) -> usize {
        self.gc_with_budget(keep_newest, None).removed
    }
}
