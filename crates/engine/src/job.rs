//! The unit of work and its content address.

use sfq_netlist::aig::Aig;
use sfq_netlist::fnv::Fnv1a;
use std::hash::Hasher;
use std::sync::Arc;
use t1map::cells::CellLibrary;
use t1map::flow::FlowConfig;

/// Content address of a job: the AIG's structural digest plus a canonical
/// fingerprint of the (library, configuration) pair.
///
/// Two jobs with equal keys describe the same computation and may share one
/// [`FlowResult`](t1map::flow::FlowResult); the two halves are kept separate
/// (rather than folded into one word) so a collision requires *both* 64-bit
/// digests to collide at once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// [`Aig::structural_hash`] of the subject network.
    pub aig: u64,
    /// FNV-1a over [`CellLibrary::fingerprint`] then
    /// [`FlowConfig::fingerprint`].
    pub setup: u64,
}

impl CacheKey {
    /// Computes the content address of running `config` on `aig` under
    /// `lib`.
    pub fn compute(aig: &Aig, lib: &CellLibrary, config: &FlowConfig) -> Self {
        let mut h = Fnv1a::new();
        lib.fingerprint(&mut h);
        config.fingerprint(&mut h);
        CacheKey {
            aig: aig.structural_hash(),
            setup: h.finish(),
        }
    }
}

/// One unit of batch work: run a mapping flow on a named AIG.
///
/// The AIG is shared via `Arc` so a suite that maps the same benchmark under
/// several configurations (the normal case) carries one copy of the network,
/// and cloning a `Job` into a worker thread is cheap.
#[derive(Debug, Clone)]
pub struct Job {
    /// Benchmark name (e.g. `"adder"`), used for progress and row labels.
    pub name: String,
    /// Flow label (e.g. `"1φ"`, `"T1"`), used for progress lines.
    pub flow: String,
    /// The subject network.
    pub aig: Arc<Aig>,
    /// The cell library to map against.
    pub lib: CellLibrary,
    /// The flow configuration to run.
    pub config: FlowConfig,
}

impl Job {
    /// Creates a job.
    pub fn new(
        name: impl Into<String>,
        flow: impl Into<String>,
        aig: Arc<Aig>,
        lib: CellLibrary,
        config: FlowConfig,
    ) -> Self {
        Job {
            name: name.into(),
            flow: flow.into(),
            aig,
            lib,
            config,
        }
    }

    /// The job's content address (see [`CacheKey`]).
    pub fn key(&self) -> CacheKey {
        CacheKey::compute(&self.aig, &self.lib, &self.config)
    }

    /// `name/flow`, the label shown in progress output.
    pub fn label(&self) -> String {
        format!("{}/{}", self.name, self.flow)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfq_circuits::epfl::adder;

    #[test]
    fn key_ignores_name_but_not_content() {
        let lib = CellLibrary::default();
        let aig = Arc::new(adder(4));
        let a = Job::new("a", "1φ", aig.clone(), lib, FlowConfig::single_phase());
        let b = Job::new("b", "x", aig.clone(), lib, FlowConfig::single_phase());
        assert_eq!(a.key(), b.key(), "labels are not part of the address");

        let c = Job::new("a", "1φ", aig.clone(), lib, FlowConfig::multiphase(4));
        assert_ne!(a.key(), c.key(), "config is part of the address");

        let mut lib2 = lib;
        lib2.dff += 1;
        let d = Job::new("a", "1φ", aig, lib2, FlowConfig::single_phase());
        assert_ne!(a.key(), d.key(), "library is part of the address");
    }
}
