//! Content-addressed in-memory result cache with in-flight deduplication.

use crate::job::CacheKey;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use t1map::flow::FlowResult;

/// Snapshot of the cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Requests served without running the flow (including requests that
    /// waited for another worker's in-flight computation of the same key).
    pub hits: u64,
    /// Requests that ran the flow.
    pub misses: u64,
}

enum Slot {
    /// A worker is computing this key; waiters block on the condvar.
    InFlight,
    /// Finished result, shared by reference count.
    Ready(Arc<FlowResult>),
}

/// A content-addressed store of flow results.
///
/// [`get_or_compute`](ResultCache::get_or_compute) guarantees each key is
/// computed at most once even under concurrent submission: the first caller
/// claims the key and computes *outside* the lock, later callers for the
/// same key sleep on a condvar and wake to share the finished `Arc`. If the
/// computing closure panics, the claim is released and a waiter takes over,
/// so one poisoned job cannot deadlock the pool.
#[derive(Default)]
pub struct ResultCache {
    slots: Mutex<HashMap<CacheKey, Slot>>,
    ready: Condvar,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Releases an in-flight claim if the computing closure unwinds.
struct ClaimGuard<'a> {
    cache: &'a ResultCache,
    key: CacheKey,
    armed: bool,
}

impl Drop for ClaimGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            let mut slots = self.cache.slots.lock().unwrap();
            slots.remove(&self.key);
            self.cache.ready.notify_all();
        }
    }
}

impl ResultCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the result for `key`, running `compute` only if no other
    /// request has produced (or is producing) it. The flag is `true` when
    /// the result came from the cache.
    pub fn get_or_compute<F>(&self, key: CacheKey, compute: F) -> (Arc<FlowResult>, bool)
    where
        F: FnOnce() -> FlowResult,
    {
        {
            let mut slots = self.slots.lock().unwrap();
            loop {
                match slots.get(&key) {
                    Some(Slot::Ready(result)) => {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return (result.clone(), true);
                    }
                    Some(Slot::InFlight) => {
                        slots = self.ready.wait(slots).unwrap();
                    }
                    None => {
                        slots.insert(key, Slot::InFlight);
                        break;
                    }
                }
            }
        }
        let mut guard = ClaimGuard {
            cache: self,
            key,
            armed: true,
        };
        let result = Arc::new(compute());
        guard.armed = false;
        let mut slots = self.slots.lock().unwrap();
        slots.insert(key, Slot::Ready(result.clone()));
        self.ready.notify_all();
        drop(slots);
        self.misses.fetch_add(1, Ordering::Relaxed);
        (result, false)
    }

    /// Returns the cached result for `key`, if present and finished.
    pub fn get(&self, key: CacheKey) -> Option<Arc<FlowResult>> {
        match self.slots.lock().unwrap().get(&key) {
            Some(Slot::Ready(result)) => Some(result.clone()),
            _ => None,
        }
    }

    /// Number of finished entries.
    pub fn len(&self) -> usize {
        self.slots
            .lock()
            .unwrap()
            .values()
            .filter(|s| matches!(s, Slot::Ready(_)))
            .count()
    }

    /// Returns `true` if no finished entry is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfq_circuits::epfl::adder;
    use t1map::cells::CellLibrary;
    use t1map::flow::{run_flow, FlowConfig};

    fn small_result() -> FlowResult {
        run_flow(
            &adder(2),
            &CellLibrary::default(),
            &FlowConfig::single_phase(),
        )
    }

    #[test]
    fn second_lookup_hits() {
        let cache = ResultCache::new();
        let key = CacheKey { aig: 1, setup: 2 };
        let mut runs = 0;
        let (_, hit) = cache.get_or_compute(key, || {
            runs += 1;
            small_result()
        });
        assert!(!hit);
        let (_, hit) = cache.get_or_compute(key, || {
            runs += 1;
            small_result()
        });
        assert!(hit);
        assert_eq!(runs, 1);
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(cache.len(), 1);
        assert!(cache.get(key).is_some());
        assert!(cache.get(CacheKey { aig: 9, setup: 9 }).is_none());
    }

    #[test]
    fn panicking_compute_releases_the_claim() {
        let cache = ResultCache::new();
        let key = CacheKey { aig: 3, setup: 4 };
        let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.get_or_compute(key, || panic!("boom"));
        }));
        assert!(panic.is_err());
        // The claim is gone: a retry computes instead of deadlocking.
        let (_, hit) = cache.get_or_compute(key, small_result);
        assert!(!hit);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn concurrent_requests_compute_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let cache = ResultCache::new();
        let key = CacheKey { aig: 5, setup: 6 };
        let runs = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    cache.get_or_compute(key, || {
                        runs.fetch_add(1, Ordering::SeqCst);
                        // Widen the race window so waiters actually block.
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        small_result()
                    });
                });
            }
        });
        assert_eq!(runs.load(Ordering::SeqCst), 1, "exactly one computation");
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 4);
        assert_eq!(stats.misses, 1);
    }
}
