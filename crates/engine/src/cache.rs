//! Content-addressed in-memory result cache with in-flight deduplication,
//! optionally layered over a persistent backing store.

use crate::job::CacheKey;
use crate::store::{ResultStore, StoreStats};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use t1map::flow::FlowResult;

/// Where a served result came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitSource {
    /// The in-memory tier, including requests that waited for another
    /// worker's in-flight computation of the same key.
    Memory,
    /// The backing store (decoded from disk and promoted into memory).
    Disk,
    /// Nowhere — the flow ran.
    Computed,
}

impl HitSource {
    /// `true` unless the flow had to run.
    pub fn is_hit(self) -> bool {
        !matches!(self, HitSource::Computed)
    }

    /// Short label used by progress lines.
    pub fn label(self) -> &'static str {
        match self {
            HitSource::Memory => "cached",
            HitSource::Disk => "disk",
            HitSource::Computed => "mapped",
        }
    }

    /// Label used by `serve` response lines.
    pub fn serve_label(self) -> &'static str {
        match self {
            HitSource::Memory => "memory",
            HitSource::Disk => "disk",
            HitSource::Computed => "computed",
        }
    }
}

/// Snapshot of the cache counters, broken down per backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Requests served from the in-memory tier (including requests that
    /// waited for another worker's in-flight computation of the same key).
    pub memory_hits: u64,
    /// Requests served from the backing store.
    pub disk_hits: u64,
    /// Requests that ran the flow.
    pub misses: u64,
    /// In-memory entries removed by [`ResultStore::gc`].
    pub evicted: u64,
    /// Counters of the backing store, if one is attached.
    pub disk: StoreStats,
}

impl CacheStats {
    /// Requests served without running the flow, from either tier.
    pub fn hits(&self) -> u64 {
        self.memory_hits + self.disk_hits
    }

    /// Total requests observed.
    pub fn requests(&self) -> u64 {
        self.hits() + self.misses
    }

    /// Counter increments since `earlier` (a snapshot of the same cache);
    /// gauges keep their current value.
    pub fn delta_since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            memory_hits: self.memory_hits.saturating_sub(earlier.memory_hits),
            disk_hits: self.disk_hits.saturating_sub(earlier.disk_hits),
            misses: self.misses.saturating_sub(earlier.misses),
            evicted: self.evicted.saturating_sub(earlier.evicted),
            disk: self.disk.delta_since(&earlier.disk),
        }
    }
}

enum Slot {
    /// A worker is computing this key; waiters block on the condvar.
    InFlight,
    /// Finished result plus its insertion sequence number (the eviction
    /// order used by [`ResultStore::gc`]).
    Ready(Arc<FlowResult>, u64),
}

/// A content-addressed store of flow results.
///
/// [`get_or_compute`](ResultCache::get_or_compute) guarantees each key is
/// computed at most once even under concurrent submission: the first caller
/// claims the key and computes *outside* the lock, later callers for the
/// same key sleep on a condvar and wake to share the finished `Arc`. If the
/// computing closure panics, the claim is released and a waiter takes over,
/// so one poisoned job cannot deadlock the pool.
///
/// With a backing [`ResultStore`] attached
/// ([`with_backing`](ResultCache::with_backing)), the cache becomes the
/// layered view of the result layer: lookups fall through to the backing
/// store (one probe per claimed key, so concurrent requests for one key
/// still trigger a single disk read), computed results are written through,
/// and disk hits are promoted into memory.
#[derive(Default)]
pub struct ResultCache {
    // NB: `Debug` is implemented by hand — `dyn ResultStore` has no `Debug`
    // bound, so the derive cannot apply.
    slots: Mutex<HashMap<CacheKey, Slot>>,
    ready: Condvar,
    backing: Option<Arc<dyn ResultStore>>,
    seq: AtomicU64,
    memory_hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    evicted: AtomicU64,
}

impl std::fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultCache")
            .field("entries", &self.len())
            .field("backed", &self.backing.is_some())
            .field("stats", &self.stats())
            .finish()
    }
}

/// Releases an in-flight claim if the computing closure unwinds.
struct ClaimGuard<'a> {
    cache: &'a ResultCache,
    key: CacheKey,
    armed: bool,
}

impl Drop for ClaimGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            let mut slots = self.cache.slots.lock().unwrap();
            slots.remove(&self.key);
            self.cache.ready.notify_all();
        }
    }
}

impl ResultCache {
    /// Creates an empty cache with no backing store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty cache layered over `backing`: lookups missing in
    /// memory probe `backing`, computed results are written through to it.
    pub fn with_backing(backing: Arc<dyn ResultStore>) -> Self {
        ResultCache {
            backing: Some(backing),
            ..Self::default()
        }
    }

    /// The backing store, if one is attached.
    pub fn backing(&self) -> Option<&Arc<dyn ResultStore>> {
        self.backing.as_ref()
    }

    /// Inserts `result` as a finished entry, waking any waiters.
    fn insert_ready(&self, key: CacheKey, result: Arc<FlowResult>) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut slots = self.slots.lock().unwrap();
        slots.insert(key, Slot::Ready(result, seq));
        self.ready.notify_all();
    }

    /// Returns the result for `key`, running `compute` only if neither tier
    /// has (or is producing) it. The [`HitSource`] says which tier served
    /// the request.
    pub fn get_or_compute<F>(&self, key: CacheKey, compute: F) -> (Arc<FlowResult>, HitSource)
    where
        F: FnOnce() -> FlowResult,
    {
        {
            let mut slots = self.slots.lock().unwrap();
            loop {
                match slots.get(&key) {
                    Some(Slot::Ready(result, _)) => {
                        self.memory_hits.fetch_add(1, Ordering::Relaxed);
                        sfq_obs::counter("store.memory.hits", 1);
                        return (result.clone(), HitSource::Memory);
                    }
                    Some(Slot::InFlight) => {
                        slots = self.ready.wait(slots).unwrap();
                    }
                    None => {
                        slots.insert(key, Slot::InFlight);
                        break;
                    }
                }
            }
        }
        let mut guard = ClaimGuard {
            cache: self,
            key,
            armed: true,
        };
        // Probe the backing store under the claim, so concurrent requests
        // for the same key cost one disk read, not one each.
        let probed = self.backing.as_ref().and_then(|b| {
            let _span = sfq_obs::span("store:probe");
            b.get(key)
        });
        if let Some(found) = probed {
            guard.armed = false;
            self.insert_ready(key, found.clone());
            self.disk_hits.fetch_add(1, Ordering::Relaxed);
            sfq_obs::counter("store.disk.hits", 1);
            return (found, HitSource::Disk);
        }
        let result = Arc::new(compute());
        guard.armed = false;
        self.insert_ready(key, result.clone());
        self.misses.fetch_add(1, Ordering::Relaxed);
        sfq_obs::counter("store.misses", 1);
        if let Some(backing) = &self.backing {
            backing.put(key, &result);
        }
        (result, HitSource::Computed)
    }

    /// Number of finished in-memory entries.
    pub fn len(&self) -> usize {
        self.slots
            .lock()
            .unwrap()
            .values()
            .filter(|s| matches!(s, Slot::Ready(..)))
            .count()
    }

    /// Returns `true` if no finished entry is stored in memory.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the per-backend counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            memory_hits: self.memory_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
            disk: self.backing.as_ref().map(|b| b.stats()).unwrap_or_default(),
        }
    }
}

/// The layered view of the cache: memory in front, the backing store (if
/// any) behind, with promotion on disk hits and write-through on puts.
impl ResultStore for ResultCache {
    fn get(&self, key: CacheKey) -> Option<Arc<FlowResult>> {
        if let Some(Slot::Ready(result, _)) = self.slots.lock().unwrap().get(&key) {
            self.memory_hits.fetch_add(1, Ordering::Relaxed);
            return Some(result.clone());
        }
        match self.backing.as_ref().and_then(|b| b.get(key)) {
            Some(found) => {
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                // Promote, but never displace an in-flight claim.
                let seq = self.seq.fetch_add(1, Ordering::Relaxed);
                let mut slots = self.slots.lock().unwrap();
                slots
                    .entry(key)
                    .or_insert_with(|| Slot::Ready(found.clone(), seq));
                Some(found)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn put(&self, key: CacheKey, result: &Arc<FlowResult>) {
        self.insert_ready(key, result.clone());
        if let Some(backing) = &self.backing {
            backing.put(key, result);
        }
    }

    fn contains(&self, key: CacheKey) -> bool {
        if matches!(self.slots.lock().unwrap().get(&key), Some(Slot::Ready(..))) {
            return true;
        }
        self.backing.as_ref().is_some_and(|b| b.contains(key))
    }

    fn stats(&self) -> StoreStats {
        let s = self.stats();
        StoreStats {
            entries: self.len(),
            hits: s.hits(),
            misses: s.misses,
            puts: s.disk.puts,
            errors: s.disk.errors,
            evicted: s.evicted + s.disk.evicted,
        }
    }

    fn gc(&self, keep_newest: usize) -> usize {
        let mut removed = 0usize;
        {
            let mut slots = self.slots.lock().unwrap();
            let mut ready: Vec<(u64, CacheKey)> = slots
                .iter()
                .filter_map(|(k, s)| match s {
                    Slot::Ready(_, seq) => Some((*seq, *k)),
                    Slot::InFlight => None,
                })
                .collect();
            if ready.len() > keep_newest {
                ready.sort_unstable_by_key(|(seq, _)| *seq);
                let excess = ready.len() - keep_newest;
                for (_, key) in ready.into_iter().take(excess) {
                    slots.remove(&key);
                    removed += 1;
                }
            }
        }
        self.evicted.fetch_add(removed as u64, Ordering::Relaxed);
        if let Some(backing) = &self.backing {
            removed += backing.gc(keep_newest);
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfq_circuits::epfl::adder;
    use t1map::cells::CellLibrary;
    use t1map::flow::{run_flow, FlowConfig};

    fn small_result() -> FlowResult {
        run_flow(
            &adder(2),
            &CellLibrary::default(),
            &FlowConfig::single_phase(),
        )
    }

    #[test]
    fn second_lookup_hits() {
        let cache = ResultCache::new();
        let key = CacheKey { aig: 1, setup: 2 };
        let mut runs = 0;
        let (_, source) = cache.get_or_compute(key, || {
            runs += 1;
            small_result()
        });
        assert_eq!(source, HitSource::Computed);
        assert!(!source.is_hit());
        let (_, source) = cache.get_or_compute(key, || {
            runs += 1;
            small_result()
        });
        assert_eq!(source, HitSource::Memory);
        assert!(source.is_hit());
        assert_eq!(runs, 1);
        let stats = cache.stats();
        assert_eq!(
            (stats.memory_hits, stats.disk_hits, stats.misses),
            (1, 0, 1)
        );
        assert_eq!(stats.hits(), 1);
        assert_eq!(stats.requests(), 2);
        assert_eq!(cache.len(), 1);
        assert!(ResultStore::get(&cache, key).is_some());
        assert!(ResultStore::get(&cache, CacheKey { aig: 9, setup: 9 }).is_none());
    }

    #[test]
    fn panicking_compute_releases_the_claim() {
        let cache = ResultCache::new();
        let key = CacheKey { aig: 3, setup: 4 };
        let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.get_or_compute(key, || panic!("boom"));
        }));
        assert!(panic.is_err());
        // The claim is gone: a retry computes instead of deadlocking.
        let (_, source) = cache.get_or_compute(key, small_result);
        assert_eq!(source, HitSource::Computed);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn concurrent_requests_compute_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let cache = ResultCache::new();
        let key = CacheKey { aig: 5, setup: 6 };
        let runs = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    cache.get_or_compute(key, || {
                        runs.fetch_add(1, Ordering::SeqCst);
                        // Widen the race window so waiters actually block.
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        small_result()
                    });
                });
            }
        });
        assert_eq!(runs.load(Ordering::SeqCst), 1, "exactly one computation");
        let stats = cache.stats();
        assert_eq!(stats.hits() + stats.misses, 4);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn gc_evicts_oldest_entries_first() {
        let cache = ResultCache::new();
        let result = Arc::new(small_result());
        for aig in 0..5u64 {
            ResultStore::put(&cache, CacheKey { aig, setup: 0 }, &result);
        }
        let removed = cache.gc(2);
        assert_eq!(removed, 3);
        assert_eq!(cache.len(), 2);
        // The newest two survive.
        assert!(ResultStore::get(&cache, CacheKey { aig: 3, setup: 0 }).is_some());
        assert!(ResultStore::get(&cache, CacheKey { aig: 4, setup: 0 }).is_some());
        assert!(ResultStore::get(&cache, CacheKey { aig: 0, setup: 0 }).is_none());
        assert_eq!(cache.stats().evicted, 3);
    }
}
