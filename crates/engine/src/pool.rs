//! Fixed-size worker pool and suite orchestration.

use crate::cache::{CacheStats, HitSource, ResultCache};
use crate::job::{CacheKey, Job};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};
use t1map::flow::{run_flow, FlowResult, FlowStats};

/// Worker count to use when the caller does not specify one: the machine's
/// [`available_parallelism`](std::thread::available_parallelism), or 1 if
/// that cannot be determined.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Progress event for one finished job, streamed to the caller as results
/// arrive (in *completion* order, which under parallelism differs from
/// submission order — `index` identifies the job, `completed` counts
/// progress).
#[derive(Debug, Clone, Copy)]
pub struct JobOutcome<'a> {
    /// The finished job.
    pub job: &'a Job,
    /// Index of the job in the submitted slice.
    pub index: usize,
    /// How many jobs have finished so far (including this one).
    pub completed: usize,
    /// Total number of submitted jobs.
    pub total: usize,
    /// The job's content address, as computed by the worker — streaming
    /// consumers (e.g. the `sfq-explore` sweep runner) group deduplicated
    /// submissions by this key without re-hashing the AIG.
    pub key: CacheKey,
    /// Which tier served the result (or [`HitSource::Computed`] if the
    /// flow ran).
    pub source: HitSource,
    /// Wall-clock time this job occupied a worker. Near zero for hits on an
    /// already-finished entry; a hit that piggybacked on another worker's
    /// in-flight computation of the same key reports the time spent waiting
    /// for that computation instead.
    pub duration: Duration,
    /// Monotonic wall-clock time from the start of the whole run to this
    /// job's completion — the timestamp progress reporters print.
    pub elapsed: Duration,
    /// Bytes the worker thread allocated while this job occupied it.
    /// Zero unless the [`sfq_obs::alloc`] wrapper is installed and the
    /// recorder is enabled.
    pub alloc_bytes: u64,
    /// Process-wide peak live bytes observed by this job's end — a
    /// high-water mark over all threads, not a per-job figure. Zero when
    /// allocation tracking is off.
    pub peak_bytes: u64,
    /// Aggregate metrics of the result.
    pub stats: FlowStats,
}

/// Everything a suite run produces.
#[derive(Debug)]
pub struct SuiteReport {
    /// One result per submitted job, in submission order — independent of
    /// completion order, so serial and parallel runs render identically.
    /// Jobs that shared a cache entry share the same `Arc`.
    pub results: Vec<Arc<FlowResult>>,
    /// Cache counter increments attributable to *this* run (a delta of two
    /// snapshots, so a shared long-lived store reports per-run figures).
    pub cache: CacheStats,
    /// Wall-clock time of the whole suite.
    pub elapsed: Duration,
    /// Number of worker threads actually used.
    pub workers: usize,
}

/// A fixed-size pool that executes a batch of [`Job`]s.
///
/// Workers are `std::thread`s claiming jobs from a shared atomic cursor;
/// results flow back over an `mpsc` channel to the calling thread, which
/// invokes the progress callback (no `Send`/`Sync` bound on the callback)
/// and slots each result into its submission-order position.
///
/// By default each run uses a private in-memory [`ResultCache`] that dies
/// with the run. [`with_store`](SuiteRunner::with_store) attaches a shared,
/// long-lived store instead — typically a [`ResultCache`] layered over a
/// [`DiskStore`](crate::store::DiskStore) — so results persist across runs
/// (and, through the disk tier, across processes).
#[derive(Debug, Clone)]
pub struct SuiteRunner {
    workers: usize,
    store: Option<Arc<ResultCache>>,
}

struct WorkerEvent {
    index: usize,
    result: Arc<FlowResult>,
    key: CacheKey,
    source: HitSource,
    duration: Duration,
    elapsed: Duration,
    alloc_bytes: u64,
    peak_bytes: u64,
}

impl SuiteRunner {
    /// Creates a runner with `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        SuiteRunner {
            workers: workers.max(1),
            store: None,
        }
    }

    /// Creates a runner sized by [`default_workers`].
    pub fn with_default_workers() -> Self {
        Self::new(default_workers())
    }

    /// Uses `store` for every run instead of a fresh per-run cache, so
    /// results are shared across runs (and across runners holding clones of
    /// the same `Arc`).
    pub fn with_store(mut self, store: Arc<ResultCache>) -> Self {
        self.store = Some(store);
        self
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The shared store, if one is attached.
    pub fn store(&self) -> Option<&Arc<ResultCache>> {
        self.store.as_ref()
    }

    /// Executes `jobs` and collects the report, without progress reporting.
    pub fn run(&self, jobs: &[Job]) -> SuiteReport {
        self.run_with_progress(jobs, |_| {})
    }

    /// Executes `jobs`, invoking `on_event` on the calling thread as each
    /// job finishes, and collects the report.
    pub fn run_with_progress<F>(&self, jobs: &[Job], mut on_event: F) -> SuiteReport
    where
        F: FnMut(JobOutcome<'_>),
    {
        let start = Instant::now();
        let total = jobs.len();
        let workers = self.workers.min(total.max(1));
        let local;
        let cache: &ResultCache = match &self.store {
            Some(shared) => shared.as_ref(),
            None => {
                local = ResultCache::new();
                &local
            }
        };
        let before = cache.stats();
        let cursor = AtomicUsize::new(0);
        let mut results: Vec<Option<Arc<FlowResult>>> = vec![None; total];
        // Queue-wait spans are measured from this common origin; `None`
        // while the recorder is disabled, making the whole path free.
        let run_start_us = sfq_obs::now_us();

        std::thread::scope(|scope| {
            let (tx, rx) = mpsc::channel::<WorkerEvent>();
            for _ in 0..workers {
                let tx = tx.clone();
                let cursor = &cursor;
                scope.spawn(move || loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    if index >= total {
                        break;
                    }
                    let job = &jobs[index];
                    if let (Some(submit), Some(picked)) = (run_start_us, sfq_obs::now_us()) {
                        sfq_obs::emit_span("engine:queue-wait", submit, picked, || job.label());
                    }
                    let t0 = Instant::now();
                    let alloc0 = sfq_obs::alloc::thread_allocated();
                    let key = job.key();
                    let (result, source) = {
                        let _span = sfq_obs::span_labeled("engine:job", || job.label());
                        cache.get_or_compute(key, || {
                            let _span = sfq_obs::span_labeled("engine:compute", || job.label());
                            run_flow(&job.aig, &job.lib, &job.config)
                        })
                    };
                    // The receiver only disappears if the collector loop
                    // ended early (callback panic); nothing left to report.
                    let _ = tx.send(WorkerEvent {
                        index,
                        result,
                        key,
                        source,
                        duration: t0.elapsed(),
                        elapsed: start.elapsed(),
                        alloc_bytes: sfq_obs::alloc::thread_allocated().saturating_sub(alloc0),
                        peak_bytes: sfq_obs::alloc::stats().peak,
                    });
                });
            }
            drop(tx);

            for (done, event) in rx.into_iter().enumerate() {
                on_event(JobOutcome {
                    job: &jobs[event.index],
                    index: event.index,
                    completed: done + 1,
                    total,
                    key: event.key,
                    source: event.source,
                    duration: event.duration,
                    elapsed: event.elapsed,
                    alloc_bytes: event.alloc_bytes,
                    peak_bytes: event.peak_bytes,
                    stats: event.result.stats,
                });
                results[event.index] = Some(event.result);
            }
        });

        SuiteReport {
            results: results
                .into_iter()
                .map(|r| r.expect("every submitted job reports a result"))
                .collect(),
            cache: cache.stats().delta_since(&before),
            elapsed: start.elapsed(),
            workers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::HitSource;
    use sfq_circuits::epfl::adder;
    use t1map::cells::CellLibrary;
    use t1map::flow::FlowConfig;

    fn three_flow_jobs() -> Vec<Job> {
        let lib = CellLibrary::default();
        let aig = Arc::new(adder(4));
        vec![
            Job::new("adder4", "1φ", aig.clone(), lib, FlowConfig::single_phase()),
            Job::new("adder4", "4φ", aig.clone(), lib, FlowConfig::multiphase(4)),
            Job::new("adder4", "T1", aig, lib, FlowConfig::t1(4)),
        ]
    }

    #[test]
    fn empty_suite() {
        let report = SuiteRunner::new(4).run(&[]);
        assert!(report.results.is_empty());
        assert_eq!(report.cache, CacheStats::default());
    }

    #[test]
    fn progress_streams_every_job_once() {
        let jobs = three_flow_jobs();
        let mut seen = Vec::new();
        let report = SuiteRunner::new(2).run_with_progress(&jobs, |o| {
            assert_eq!(o.total, 3);
            assert_eq!(o.completed, seen.len() + 1);
            assert_eq!(o.key, jobs[o.index].key(), "outcomes carry their address");
            seen.push(o.index);
        });
        seen.sort_unstable();
        assert_eq!(seen, [0, 1, 2]);
        assert_eq!(report.results.len(), 3);
        assert_eq!(report.workers, 2);
    }

    #[test]
    fn worker_count_is_clamped() {
        assert_eq!(SuiteRunner::new(0).workers(), 1);
        let jobs = three_flow_jobs();
        // More workers than jobs: the pool shrinks to the job count.
        let report = SuiteRunner::new(64).run(&jobs);
        assert_eq!(report.workers, 3);
    }

    #[test]
    fn shared_store_carries_results_across_runs() {
        let store = Arc::new(ResultCache::new());
        let runner = SuiteRunner::new(2).with_store(store.clone());
        let jobs = three_flow_jobs();

        let cold = runner.run(&jobs);
        assert_eq!(cold.cache.misses, 3);
        assert_eq!(cold.cache.hits(), 0);

        // Second run over the same store: everything is a memory hit, and
        // the per-run delta does not double-count the first run.
        let mut sources = Vec::new();
        let warm = runner.run_with_progress(&jobs, |o| sources.push(o.source));
        assert_eq!(warm.cache.misses, 0);
        assert_eq!(warm.cache.memory_hits, 3);
        assert!(sources.iter().all(|s| *s == HitSource::Memory));
        assert_eq!(store.stats().misses, 3, "lifetime counters accumulate");
    }
}
