//! Exact NPN canonization for small functions.
//!
//! Two functions are NPN-equivalent when one can be obtained from the other
//! by Negating inputs, Permuting inputs, and/or Negating the output. Boolean
//! matching against a cell library (here: the T1 cell's output functions)
//! reduces to comparing NPN canonical forms.
//!
//! For functions of up to four variables exhaustive enumeration of the
//! `2 · n! · 2^n` transforms is cheap and exact, which is all the T1 mapping
//! flow requires (cuts are at most four inputs wide).
//!
//! # Examples
//!
//! ```
//! use sfq_netlist::truth_table::TruthTable;
//! use sfq_netlist::npn::npn_canonical;
//!
//! // MAJ(a, b, c) and !MAJ(!a, !b, !c) are NPN-equivalent (self-dual).
//! let maj = TruthTable::maj3();
//! let dual = !maj.flip_var(0).flip_var(1).flip_var(2);
//! assert_eq!(npn_canonical(maj).canon, npn_canonical(dual).canon);
//! ```

use crate::truth_table::TruthTable;

/// The result of canonizing a function, together with the transform that
/// maps the *original* function to the canonical one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NpnCanon {
    /// The canonical (lexicographically smallest) representative.
    pub canon: TruthTable,
    /// Permutation applied: `perm[i]` is the canonical position of input `i`.
    pub perm: [u8; TruthTable::MAX_VARS],
    /// Input complementation mask (bit `i` set means input `i` was negated
    /// before permuting).
    pub input_neg: u8,
    /// Whether the output was complemented.
    pub output_neg: bool,
}

fn permutations(n: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut items: Vec<usize> = (0..n).collect();
    heap_permute(&mut items, n, &mut out);
    out
}

fn heap_permute(items: &mut Vec<usize>, k: usize, out: &mut Vec<Vec<usize>>) {
    if k <= 1 {
        out.push(items.clone());
        return;
    }
    for i in 0..k {
        heap_permute(items, k - 1, out);
        if k.is_multiple_of(2) {
            items.swap(i, k - 1);
        } else {
            items.swap(0, k - 1);
        }
    }
}

/// Computes the exact NPN canonical form of `f` by exhaustive enumeration.
///
/// # Panics
///
/// Panics if `f` has more than four variables (exhaustive canonization is
/// only intended for cut functions; wider tables are rejected rather than
/// silently slow).
pub fn npn_canonical(f: TruthTable) -> NpnCanon {
    let n = f.num_vars();
    assert!(
        n <= 4,
        "exact NPN canonization supports at most 4 variables"
    );
    let perms = permutations(n.max(1));
    let mut best: Option<NpnCanon> = None;
    for neg_mask in 0u8..(1 << n) {
        let mut g = f;
        for v in 0..n {
            if neg_mask >> v & 1 == 1 {
                g = g.flip_var(v);
            }
        }
        for perm in &perms {
            let h = if n == 0 { g } else { g.permute(perm) };
            for &out_neg in &[false, true] {
                let cand = if out_neg { !h } else { h };
                let mut perm_arr = [0u8; TruthTable::MAX_VARS];
                for (i, &p) in perm.iter().enumerate() {
                    perm_arr[i] = p as u8;
                }
                let entry = NpnCanon {
                    canon: cand,
                    perm: perm_arr,
                    input_neg: neg_mask,
                    output_neg: out_neg,
                };
                match &best {
                    None => best = Some(entry),
                    Some(b) if cand.bits() < b.canon.bits() => best = Some(entry),
                    _ => {}
                }
            }
        }
    }
    best.expect("at least one transform exists")
}

/// Returns `true` if `f` and `g` are NPN-equivalent.
pub fn npn_equivalent(f: TruthTable, g: TruthTable) -> bool {
    f.num_vars() == g.num_vars() && npn_canonical(f).canon == npn_canonical(g).canon
}

/// Classifies `f` against a slice of representative functions, returning the
/// index of the first NPN-equivalent representative.
pub fn npn_match(f: TruthTable, reps: &[TruthTable]) -> Option<usize> {
    let c = npn_canonical(f).canon;
    reps.iter().position(|&r| npn_canonical(r).canon == c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn and_or_same_class() {
        // AND and OR are NPN-equivalent (De Morgan).
        let a = TruthTable::var(2, 0) & TruthTable::var(2, 1);
        let o = TruthTable::var(2, 0) | TruthTable::var(2, 1);
        assert!(npn_equivalent(a, o));
    }

    #[test]
    fn xor_not_equivalent_to_and() {
        let a = TruthTable::var(2, 0) & TruthTable::var(2, 1);
        let x = TruthTable::var(2, 0) ^ TruthTable::var(2, 1);
        assert!(!npn_equivalent(a, x));
    }

    #[test]
    fn number_of_2var_npn_classes_is_4() {
        // Known result: 4 NPN classes of 2-variable functions
        // (constant, projection, and2, xor2).
        let mut canons = HashSet::new();
        for bits in 0u64..16 {
            canons.insert(npn_canonical(TruthTable::from_bits(2, bits)).canon);
        }
        assert_eq!(canons.len(), 4);
    }

    #[test]
    fn number_of_3var_npn_classes_is_14() {
        // Known result: 14 NPN classes of 3-variable functions.
        let mut canons = HashSet::new();
        for bits in 0u64..256 {
            canons.insert(npn_canonical(TruthTable::from_bits(3, bits)).canon);
        }
        assert_eq!(canons.len(), 14);
    }

    #[test]
    fn maj_is_self_dual() {
        let maj = TruthTable::maj3();
        let dual = !maj.flip_var(0).flip_var(1).flip_var(2);
        assert_eq!(maj, dual, "maj3 is self-dual outright");
        assert!(npn_equivalent(maj, !maj));
    }

    #[test]
    fn or3_and_nor3_equivalent() {
        assert!(npn_equivalent(TruthTable::or3(), !TruthTable::or3()));
        // OR3 and AND3 share a class as well.
        let and3 = TruthTable::var(3, 0) & TruthTable::var(3, 1) & TruthTable::var(3, 2);
        assert!(npn_equivalent(TruthTable::or3(), and3));
    }

    #[test]
    fn xor3_class_is_small() {
        // XOR3's NPN class contains only xor3 and xnor3 (16 transforms all
        // collapse onto two tables).
        let x = TruthTable::xor3();
        assert!(npn_equivalent(x, !x));
        assert!(!npn_equivalent(x, TruthTable::maj3()));
    }

    #[test]
    fn canonical_transform_roundtrip() {
        // Applying the reported transform to the original reproduces canon.
        for bits in [0x96u64, 0xe8, 0x3c, 0x01, 0x7f, 0xaa, 0x55, 0x1b] {
            let f = TruthTable::from_bits(3, bits);
            let c = npn_canonical(f);
            let mut g = f;
            for v in 0..3 {
                if c.input_neg >> v & 1 == 1 {
                    g = g.flip_var(v);
                }
            }
            let perm: Vec<usize> = (0..3).map(|i| c.perm[i] as usize).collect();
            g = g.permute(&perm);
            if c.output_neg {
                g = !g;
            }
            assert_eq!(g, c.canon, "transform roundtrip for {bits:#x}");
        }
    }

    #[test]
    fn match_against_t1_set() {
        let reps = [TruthTable::xor3(), TruthTable::maj3(), TruthTable::or3()];
        assert_eq!(npn_match(TruthTable::xor3(), &reps), Some(0));
        assert_eq!(npn_match(!TruthTable::maj3(), &reps), Some(1));
        let and3 = TruthTable::var(3, 0) & TruthTable::var(3, 1) & TruthTable::var(3, 2);
        assert_eq!(npn_match(and3, &reps), Some(2));
        let f = TruthTable::var(3, 0);
        assert_eq!(npn_match(f, &reps), None);
    }
}
