//! Network transformations and statistics.
//!
//! - [`sweep`] — rebuilds an AIG keeping only the logic reachable from the
//!   primary outputs (dead-node sweep, constant propagation through the
//!   builder's simplification rules, and re-strashing). This is the single
//!   implementation behind both [`cleanup`] and the `sweep` pass of the
//!   `sfq-opt` pass manager (the pass lives upstream and delegates here
//!   because the crate graph points `sfq-opt → sfq-netlist`);
//! - [`sweep_in_place`] — the ID-stable variant: kills unreachable nodes
//!   where they stand instead of rebuilding, so downstream incremental
//!   consumers (e.g. STA rebind) see a dirty set equal to the true edit
//!   footprint;
//! - [`cleanup`] — the historical name for the same operation, kept as a
//!   thin alias so existing callers don't break;
//! - [`ConeRewrite`] / [`apply_cone_rewrites_rebuild`] /
//!   [`apply_cone_rewrites_in_place`] — the batch cone-rewrite engine: a
//!   network-independent description of "replace this fanout-free cone with
//!   this AND program", applied either by full reconstruction (the
//!   reference path) or by editing slots in place (the allocation-lean
//!   path). The two are structurally identical by construction;
//! - [`NetworkStats`] — summary numbers for reports and regression tests.
//!
//! # Examples
//!
//! ```
//! use sfq_netlist::aig::Aig;
//! use sfq_netlist::transform::{cleanup, NetworkStats};
//!
//! let mut g = Aig::new();
//! let a = g.add_pi();
//! let b = g.add_pi();
//! let used = g.and(a, b);
//! let _dead = g.xor(a, b); // never drives an output
//! g.add_po(used);
//! let clean = cleanup(&g);
//! assert_eq!(clean.and_count(), 1);
//! let stats = NetworkStats::of(&clean);
//! assert_eq!(stats.ands, 1);
//! ```

use crate::aig::{fold_and, Aig, Lit, NodeId, NodeKind};
use crate::fnv::FnvHashMap;
use std::fmt;

/// Rebuilds `aig` keeping only logic in the transitive fanin of the primary
/// outputs. Input and output order is preserved; structural hashing may
/// merge nodes that became equivalent through the copy, and constants feed
/// through the builder's simplification rules (constant propagation).
pub fn sweep(aig: &Aig) -> Aig {
    let mut out = Aig::new();
    let mut map: FnvHashMap<NodeId, Lit> = FnvHashMap::default();
    map.insert(NodeId::CONST0, Lit::FALSE);
    for &pi in aig.pis() {
        let new_pi = out.add_pi();
        map.insert(pi, new_pi);
    }
    // Nodes are stored topologically; one forward pass with a reachability
    // mark from the POs would also work, but copying on demand is simpler:
    // walk the PO cones iteratively.
    let mut stack: Vec<NodeId> = aig.pos().iter().map(|l| l.node()).collect();
    let mut order: Vec<NodeId> = Vec::new();
    let mut seen = vec![false; aig.len()];
    while let Some(n) = stack.pop() {
        if seen[n.index()] {
            continue;
        }
        seen[n.index()] = true;
        order.push(n);
        if let Some((a, b)) = aig.fanins(n) {
            stack.push(a.node());
            stack.push(b.node());
        }
    }
    // Build in id order (topological) restricted to reachable nodes.
    order.sort();
    for n in order {
        if let NodeKind::And(a, b) = aig.kind(n) {
            let fa =
                map[&a.node()].with_complement(map[&a.node()].is_complement() ^ a.is_complement());
            let fb =
                map[&b.node()].with_complement(map[&b.node()].is_complement() ^ b.is_complement());
            let lit = out.and(fa, fb);
            map.insert(n, lit);
        }
    }
    for po in aig.pos() {
        let base = map[&po.node()];
        out.add_po(base.with_complement(base.is_complement() ^ po.is_complement()));
    }
    out
}

/// The historical name of [`sweep`], kept for source compatibility. The
/// `sfq-opt` optimization subsystem exposes the same operation as its
/// `sweep` pass; this function and that pass share the one implementation
/// above.
pub fn cleanup(aig: &Aig) -> Aig {
    sweep(aig)
}

/// [`sweep`] without the rebuild: kills every AND unreachable from the
/// primary outputs where it stands, leaving all surviving node ids (and the
/// strash entries and analyses keyed on them) untouched. Returns the number
/// of nodes removed.
///
/// Freed slots stay on the free list until [`Aig::compact`]; every analysis
/// in this crate tolerates the holes. On networks built through [`Aig::and`]
/// and the in-place primitives — which fold constants and merge duplicates
/// eagerly — the reachable logic is already simplified, so
/// `sweep_in_place(&mut g); g.compact();` produces the same network as the
/// rebuilding [`sweep`] whenever the PIs precede all ANDs (the order every
/// builder in this workspace uses).
pub fn sweep_in_place(aig: &mut Aig) -> usize {
    let mut seen = vec![false; aig.len()];
    seen[0] = true;
    let mut stack: Vec<NodeId> = aig.pos().iter().map(|l| l.node()).collect();
    while let Some(n) = stack.pop() {
        if seen[n.index()] {
            continue;
        }
        seen[n.index()] = true;
        if let Some((a, b)) = aig.fanins(n) {
            stack.push(a.node());
            stack.push(b.node());
        }
    }
    let mut removed = 0;
    for (idx, &reachable) in seen.iter().enumerate().skip(1) {
        let id = NodeId(idx as u32);
        if reachable || aig.is_dead(id) {
            continue;
        }
        if let NodeKind::And(a, b) = aig.kind(id) {
            aig.strash_remove_if((a, b), id);
            aig.kill_raw(id);
            removed += 1;
        }
    }
    if removed > 0 {
        aig.recompute_fanouts();
    }
    removed
}

/// One selected cone replacement for the batch rewrite engine: destroy the
/// fanout-free cone of `root` (the `freed` set) and recompute its output as
/// a straight-line AND program over `inputs`.
///
/// This is the network-independent form the `sfq-opt` rewriter lowers its
/// accepted sites into; the engine applies a batch of them either by full
/// reconstruction ([`apply_cone_rewrites_rebuild`]) or in place
/// ([`apply_cone_rewrites_in_place`]) with structurally identical results.
#[derive(Debug, Clone)]
pub struct ConeRewrite {
    /// The cone's root node — the highest-indexed member of `freed`.
    pub root: NodeId,
    /// The nodes this rewrite destroys: the root's maximum fanout-free cone
    /// within the cut, `root` included. Freed sets of distinct sites must be
    /// disjoint, and no site's `inputs` may reference another site's freed
    /// node (the selection loop in `sfq-opt` guarantees both).
    pub freed: Vec<NodeId>,
    /// Cut-leaf literals feeding the program, in program-input order, with
    /// any NPN input negations already folded into the complement bits.
    pub inputs: Vec<Lit>,
    /// AND steps over packed program literals `slot << 1 | negate`: slot 0
    /// is constant false, slots `1..=inputs.len()` are the inputs, and slot
    /// `inputs.len() + 1 + k` is the output of step `k`.
    pub steps: Vec<(u16, u16)>,
    /// Packed program literal selecting the replacement output (any NPN
    /// output negation already folded in).
    pub out: u16,
}

/// Resolves a packed program literal against materialized step values.
fn program_resolve(vals: &[Lit], l: u16) -> Lit {
    let lit = vals[(l >> 1) as usize];
    lit.with_complement(lit.is_complement() ^ (l & 1 == 1))
}

impl ConeRewrite {
    /// Instantiates the program into `aig` (a network under construction),
    /// feeding program input `i` with `inputs[i]`. Mirrors the upstream
    /// `Program::build` exactly: one [`Aig::and`] per step, so structural
    /// hashing reuses anything already present.
    fn build(&self, aig: &mut Aig, inputs: &[Lit]) -> Lit {
        let mut vals: Vec<Lit> = Vec::with_capacity(1 + inputs.len() + self.steps.len());
        vals.push(Lit::FALSE);
        vals.extend_from_slice(inputs);
        for &(a, b) in &self.steps {
            let (la, lb) = (program_resolve(&vals, a), program_resolve(&vals, b));
            let lit = aig.and(la, lb);
            vals.push(lit);
        }
        program_resolve(&vals, self.out)
    }
}

/// Indexes `sites` by root and marks every non-root freed node as doomed.
fn index_sites(sites: &[ConeRewrite], len: usize) -> (Vec<Option<usize>>, Vec<bool>) {
    let mut site_at: Vec<Option<usize>> = vec![None; len];
    let mut doomed = vec![false; len];
    for (i, s) in sites.iter().enumerate() {
        debug_assert!(
            s.freed.contains(&s.root),
            "a site's freed set includes its root"
        );
        site_at[s.root.index()] = Some(i);
        for &n in &s.freed {
            if n != s.root {
                doomed[n.index()] = true;
            }
        }
    }
    (site_at, doomed)
}

/// Applies a batch of cone rewrites by full reconstruction — the reference
/// path. One forward scan over `aig` copies PIs and surviving ANDs into a
/// fresh network, instantiates each site's program at its root's position,
/// and skips the doomed cone interiors; POs are remapped at the end.
pub fn apply_cone_rewrites_rebuild(aig: &Aig, sites: &[ConeRewrite]) -> Aig {
    let (site_at, doomed) = index_sites(sites, aig.len());
    let mut out = Aig::new();
    let mut map: Vec<Option<Lit>> = vec![None; aig.len()];
    map[0] = Some(Lit::FALSE);
    let mapped = |map: &[Option<Lit>], l: Lit| -> Lit {
        let base = map[l.node().index()].expect("reference into a destroyed cone");
        base.with_complement(base.is_complement() ^ l.is_complement())
    };
    for idx in 1..aig.len() {
        let id = NodeId(idx as u32);
        if aig.is_dead(id) {
            continue;
        }
        match aig.kind(id) {
            NodeKind::Const0 => unreachable!("constant appears only at slot 0"),
            NodeKind::Input(_) => {
                map[idx] = Some(out.add_pi());
            }
            NodeKind::And(a, b) => {
                if let Some(si) = site_at[idx] {
                    let site = &sites[si];
                    let ins: Vec<Lit> = site.inputs.iter().map(|&l| mapped(&map, l)).collect();
                    map[idx] = Some(site.build(&mut out, &ins));
                } else if doomed[idx] {
                    // Destroyed cone interior: nothing to emit.
                } else {
                    let (fa, fb) = (mapped(&map, a), mapped(&map, b));
                    map[idx] = Some(out.and(fa, fb));
                }
            }
        }
    }
    for po in aig.pos() {
        out.add_po(mapped(&map, *po));
    }
    out
}

/// Applies a batch of cone rewrites in place: the same forward scan as
/// [`apply_cone_rewrites_rebuild`], but instead of copying into a fresh
/// network it destroys each site's cone where it stands, re-emits program
/// steps into freed slots, folds survivors whose fanins changed, and ends
/// with [`Aig::compact_to`] in emission order plus one fanout recompute.
/// The result is structurally identical to the rebuild path — same node
/// kinds, ids, and interface — while allocating only the bookkeeping
/// vectors (no second network).
///
/// Returns the old→new id map from the final compaction (`None` for
/// destroyed or folded nodes), which is exactly the dirty-set information
/// an incremental consumer needs.
pub fn apply_cone_rewrites_in_place(aig: &mut Aig, sites: &[ConeRewrite]) -> Vec<Option<NodeId>> {
    let old_len = aig.len();
    let (site_at, doomed) = index_sites(sites, old_len);
    // repl[original id] = the literal it maps to in the edited network
    // (current slot ids, pre-compaction). emitted marks slots belonging to
    // the new network, in `order` (the rebuild path's emission order).
    let mut repl: Vec<Option<Lit>> = vec![None; old_len];
    repl[0] = Some(Lit::FALSE);
    let mut emitted: Vec<bool> = vec![false; old_len];
    emitted[0] = true;
    let mut order: Vec<NodeId> = Vec::with_capacity(old_len);
    let resolved = |repl: &[Option<Lit>], l: Lit| -> Lit {
        let base = repl[l.node().index()].expect("reference into a destroyed cone");
        base.with_complement(base.is_complement() ^ l.is_complement())
    };
    for idx in 1..old_len {
        let id = NodeId(idx as u32);
        if aig.is_dead(id) {
            continue;
        }
        match aig.kind(id) {
            NodeKind::Const0 => unreachable!("constant appears only at slot 0"),
            NodeKind::Input(_) => {
                repl[idx] = Some(Lit::new(id, false));
                emitted[idx] = true;
                order.push(id);
            }
            NodeKind::And(a, b) => {
                if let Some(si) = site_at[idx] {
                    let site = &sites[si];
                    // Destroy the whole cone first so its slots are free
                    // for the program steps. Interior members were skipped
                    // (doomed) when the scan passed them, so their kinds
                    // are still intact here.
                    for &n in &site.freed {
                        let NodeKind::And(fa, fb) = aig.kind(n) else {
                            unreachable!("freed cone members are ANDs");
                        };
                        aig.strash_remove_if((fa, fb), n);
                        aig.kill_raw(n);
                    }
                    let ins: Vec<Lit> = site.inputs.iter().map(|&l| resolved(&repl, l)).collect();
                    let lit = emit_program(aig, site, &ins, &mut emitted, &mut order);
                    repl[idx] = Some(lit);
                } else if doomed[idx] {
                    // Destroyed at its site root's position, later in the
                    // scan. Leave the slot alone until then.
                } else {
                    let (fa, fb) = (resolved(&repl, a), resolved(&repl, b));
                    repl[idx] = Some(emit_survivor(
                        aig,
                        id,
                        (a, b),
                        fa,
                        fb,
                        &mut emitted,
                        &mut order,
                    ));
                }
            }
        }
    }
    let pos: Vec<Lit> = aig.pos().to_vec();
    for (i, po) in pos.into_iter().enumerate() {
        aig.set_po_raw(i, resolved(&repl, po));
    }
    let map = aig.compact_to(&order);
    aig.recompute_fanouts();
    map
}

/// Emits one AND during the in-place scan with *restricted* structural
/// hashing: a strash probe only counts as a hit when its owner is already
/// part of the new network (`emitted`), exactly matching what the rebuild
/// path's fresh strash would contain at this point. A miss whose key is
/// owned by a not-yet-emitted original node claims the key; when that owner
/// is scanned later it folds into the claimant, keeping eager duplicate
/// merging intact.
fn emit_and(
    aig: &mut Aig,
    a: Lit,
    b: Lit,
    emitted: &mut Vec<bool>,
    order: &mut Vec<NodeId>,
) -> Lit {
    if let Some(f) = fold_and(a, b) {
        return f;
    }
    let (a, b) = if a <= b { (a, b) } else { (b, a) };
    match aig.strash_get((a, b)) {
        Some(w) if emitted[w.index()] => Lit::new(w, false),
        _ => {
            let id = aig.alloc_any_raw(a, b);
            if id.index() >= emitted.len() {
                emitted.resize(id.index() + 1, false);
            }
            aig.strash_insert((a, b), id);
            emitted[id.index()] = true;
            order.push(id);
            Lit::new(id, false)
        }
    }
}

/// Emits a surviving AND in place. The node keeps its own slot when it
/// stays live; it is killed when its resolved fanins fold or duplicate an
/// emitted node (mirroring what [`Aig::and`] would have returned in the
/// rebuild path).
fn emit_survivor(
    aig: &mut Aig,
    id: NodeId,
    old_key: (Lit, Lit),
    fa: Lit,
    fb: Lit,
    emitted: &mut [bool],
    order: &mut Vec<NodeId>,
) -> Lit {
    aig.strash_remove_if(old_key, id);
    if let Some(f) = fold_and(fa, fb) {
        aig.kill_raw(id);
        return f;
    }
    let (fa, fb) = if fa <= fb { (fa, fb) } else { (fb, fa) };
    match aig.strash_get((fa, fb)) {
        Some(w) if emitted[w.index()] => {
            aig.kill_raw(id);
            Lit::new(w, false)
        }
        _ => {
            // Fresh pair, or a key owned by a not-yet-emitted original
            // node: keep this slot and claim the key (the old owner folds
            // into us when the scan reaches it).
            aig.set_and_raw(id, fa, fb);
            aig.strash_insert((fa, fb), id);
            emitted[id.index()] = true;
            order.push(id);
            Lit::new(id, false)
        }
    }
}

/// Instantiates a site's program during the in-place scan via
/// [`emit_and`]; the emission sequence is literal-for-literal the one
/// [`ConeRewrite::build`] produces in the rebuild path.
fn emit_program(
    aig: &mut Aig,
    site: &ConeRewrite,
    ins: &[Lit],
    emitted: &mut Vec<bool>,
    order: &mut Vec<NodeId>,
) -> Lit {
    let mut vals: Vec<Lit> = Vec::with_capacity(1 + ins.len() + site.steps.len());
    vals.push(Lit::FALSE);
    vals.extend_from_slice(ins);
    for &(a, b) in &site.steps {
        let (la, lb) = (program_resolve(&vals, a), program_resolve(&vals, b));
        vals.push(emit_and(aig, la, lb, emitted, order));
    }
    program_resolve(&vals, site.out)
}

/// Summary statistics of an AIG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetworkStats {
    /// Primary inputs.
    pub pis: usize,
    /// Primary outputs.
    pub pos: usize,
    /// AND gates.
    pub ands: usize,
    /// Logic depth (levels).
    pub depth: u32,
    /// Nodes with more than one fanout.
    pub multi_fanout_nodes: usize,
    /// Maximum fanout of any node.
    pub max_fanout: u32,
}

impl NetworkStats {
    /// Computes the statistics of `aig`.
    pub fn of(aig: &Aig) -> Self {
        let mut multi = 0;
        let mut max_fanout = 0;
        for id in aig.node_ids() {
            let f = aig.fanout_count(id);
            if f > 1 {
                multi += 1;
            }
            max_fanout = max_fanout.max(f);
        }
        NetworkStats {
            pis: aig.pi_count(),
            pos: aig.po_count(),
            ands: aig.and_count(),
            depth: aig.depth(),
            multi_fanout_nodes: multi,
            max_fanout,
        }
    }
}

impl fmt::Display for NetworkStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} PIs, {} POs, {} ANDs, depth {}, {} multi-fanout nodes (max fanout {})",
            self.pis, self.pos, self.ands, self.depth, self.multi_fanout_nodes, self.max_fanout
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cleanup_removes_dead_logic() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let keep = g.and(a, b);
        let _dead1 = g.xor(a, b);
        let _dead2 = g.or(a, b);
        g.add_po(keep);
        let clean = cleanup(&g);
        assert_eq!(clean.and_count(), 1);
        assert_eq!(clean.pi_count(), 2);
        for x in 0..4u32 {
            let bits = [x & 1 == 1, x >> 1 & 1 == 1];
            assert_eq!(g.eval(&bits)[0], clean.eval(&bits)[0]);
        }
    }

    #[test]
    fn cleanup_preserves_functions_and_order() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let c = g.add_pi();
        let x = g.xor3(a, b, c);
        let m = g.maj3(a, b, c);
        g.add_po(!x);
        g.add_po(m);
        let clean = cleanup(&g);
        for i in 0..8u32 {
            let bits = [i & 1 == 1, i >> 1 & 1 == 1, i >> 2 & 1 == 1];
            assert_eq!(g.eval(&bits), clean.eval(&bits), "input {i}");
        }
    }

    #[test]
    fn cleanup_keeps_constant_outputs() {
        let mut g = Aig::new();
        let _a = g.add_pi();
        g.add_po(Lit::TRUE);
        g.add_po(Lit::FALSE);
        let clean = cleanup(&g);
        assert_eq!(clean.eval(&[false]), vec![true, false]);
    }

    fn assert_fanouts_consistent(g: &Aig) {
        let counts = g.fanout_counts();
        for id in g.node_ids() {
            assert_eq!(
                g.fanout_count(id),
                counts[id.index()],
                "stored fanout of n{} disagrees with a fresh count",
                id.index()
            );
        }
    }

    #[test]
    fn sweep_in_place_matches_rebuild_sweep() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let c = g.add_pi();
        let keep = g.xor3(a, b, c);
        let _dead1 = g.maj3(a, b, c);
        let _dead2 = g.or(a, !c);
        g.add_po(keep);
        let rebuilt = sweep(&g);
        let removed = sweep_in_place(&mut g);
        assert!(removed > 0, "unreachable logic should be removed");
        assert_eq!(g.dead_count(), removed, "holes stay until compact");
        assert_fanouts_consistent(&g);
        g.compact();
        assert_eq!(g.structural_hash(), rebuilt.structural_hash());
    }

    #[test]
    fn sweep_in_place_keeps_survivor_ids_stable() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let keep = g.and(a, b);
        let _dead = g.or(a, b);
        g.add_po(keep);
        let keep_id = keep.node();
        sweep_in_place(&mut g);
        assert!(!g.is_dead(keep_id));
        assert_eq!(g.kind(keep_id), NodeKind::And(a, b));
        assert_eq!(g.eval(&[true, true]), vec![true]);
    }

    /// f = (a·b)·c with a one-deep MFFC, rewritten to a·(b·c).
    fn reassociation_site(t1: Lit, t2: Lit, a: Lit, b: Lit, c: Lit) -> ConeRewrite {
        // Program slots: 0 = false, 1..=3 = inputs a, b, c,
        // 4 = step 0 = b·c, 5 = step 1 = a·(b·c).
        ConeRewrite {
            root: t2.node(),
            freed: vec![t1.node(), t2.node()],
            inputs: vec![a, b, c],
            steps: vec![(2 << 1, 3 << 1), (1 << 1, 4 << 1)],
            out: 5 << 1,
        }
    }

    #[test]
    fn cone_engine_in_place_matches_rebuild() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let c = g.add_pi();
        let t1 = g.and(a, b);
        let t2 = g.and(t1, c);
        let up = g.and(t2, a); // survivor above the rewritten cone
        g.add_po(up);
        g.add_po(t2);
        let site = reassociation_site(t1, t2, a, b, c);
        let rebuilt = apply_cone_rewrites_rebuild(&g, std::slice::from_ref(&site));
        let mut ip = g.clone();
        apply_cone_rewrites_in_place(&mut ip, std::slice::from_ref(&site));
        assert_eq!(ip.structural_hash(), rebuilt.structural_hash());
        assert_eq!(ip.dead_count(), 0, "in-place apply ends compacted");
        assert_fanouts_consistent(&ip);
        for x in 0..8u32 {
            let bits = [x & 1 == 1, x >> 1 & 1 == 1, x >> 2 & 1 == 1];
            assert_eq!(g.eval(&bits), ip.eval(&bits), "input {x}");
        }
    }

    #[test]
    fn cone_engine_handles_literal_program_outputs() {
        // Replace the cone with plain !b: no steps, out = slot 2 negated.
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let c = g.add_pi();
        let t1 = g.and(a, b);
        let t2 = g.and(t1, c);
        g.add_po(t2);
        let site = ConeRewrite {
            root: t2.node(),
            freed: vec![t1.node(), t2.node()],
            inputs: vec![a, b, c],
            steps: vec![],
            out: (2 << 1) | 1,
        };
        let rebuilt = apply_cone_rewrites_rebuild(&g, std::slice::from_ref(&site));
        let mut ip = g.clone();
        apply_cone_rewrites_in_place(&mut ip, std::slice::from_ref(&site));
        assert_eq!(ip.structural_hash(), rebuilt.structural_hash());
        assert_eq!(ip.and_count(), 0);
        assert_eq!(ip.eval(&[false, true, false]), vec![false], "po is !b");
        assert_eq!(ip.eval(&[false, false, false]), vec![true]);
    }

    #[test]
    fn cone_engine_dedups_against_emitted_survivors() {
        // The program re-creates a·b, which survives outside the cone as
        // t1 (kept alive by s): the step must reuse t1, not duplicate it.
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let c = g.add_pi();
        let d = g.add_pi();
        let t1 = g.and(a, b);
        let t2 = g.and(t1, c);
        let s = g.and(t1, d);
        g.add_po(t2);
        g.add_po(s);
        let site = ConeRewrite {
            root: t2.node(),
            freed: vec![t2.node()],
            inputs: vec![a, b, c],
            // step 0 = a·b (already present as t1), step 1 = (a·b)·c.
            steps: vec![(1 << 1, 2 << 1), (4 << 1, 3 << 1)],
            out: 5 << 1,
        };
        let rebuilt = apply_cone_rewrites_rebuild(&g, std::slice::from_ref(&site));
        let mut ip = g.clone();
        apply_cone_rewrites_in_place(&mut ip, std::slice::from_ref(&site));
        assert_eq!(ip.structural_hash(), rebuilt.structural_hash());
        assert_eq!(ip.and_count(), 3, "a·b reused, not duplicated");
        assert_fanouts_consistent(&ip);
    }

    #[test]
    fn cone_engine_folds_upper_duplicates_into_program_nodes() {
        // A site low in the network emits a·c; the pre-existing u = a·c
        // sits *above* the site root and must merge into the program node.
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let c = g.add_pi();
        let d = g.add_pi();
        let t1 = g.and(a, b);
        let u = g.and(a, c);
        let top = g.and(u, d);
        g.add_po(top);
        g.add_po(t1);
        let site = ConeRewrite {
            root: t1.node(),
            freed: vec![t1.node()],
            inputs: vec![a, c],
            steps: vec![(1 << 1, 2 << 1)],
            out: 3 << 1,
        };
        let rebuilt = apply_cone_rewrites_rebuild(&g, std::slice::from_ref(&site));
        let mut ip = g.clone();
        apply_cone_rewrites_in_place(&mut ip, std::slice::from_ref(&site));
        assert_eq!(ip.structural_hash(), rebuilt.structural_hash());
        assert_eq!(ip.and_count(), 2, "u merged with the program's a·c");
        assert_fanouts_consistent(&ip);
        for x in 0..16u32 {
            let bits = [
                x & 1 == 1,
                x >> 1 & 1 == 1,
                x >> 2 & 1 == 1,
                x >> 3 & 1 == 1,
            ];
            assert_eq!(ip.eval(&bits), rebuilt.eval(&bits), "input {x}");
        }
    }

    #[test]
    fn cone_engine_applies_disjoint_sites_in_one_batch() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let c = g.add_pi();
        let d = g.add_pi();
        let t1 = g.and(a, b);
        let t2 = g.and(t1, c);
        let r1 = g.and(c, d);
        let r2 = g.and(r1, a);
        g.add_po(t2);
        g.add_po(r2);
        let sites = vec![
            reassociation_site(t1, t2, a, b, c),
            ConeRewrite {
                root: r2.node(),
                freed: vec![r1.node(), r2.node()],
                inputs: vec![c, d, a],
                steps: vec![(2 << 1, 3 << 1), (1 << 1, 4 << 1)],
                out: 5 << 1,
            },
        ];
        let rebuilt = apply_cone_rewrites_rebuild(&g, &sites);
        let mut ip = g.clone();
        let map = apply_cone_rewrites_in_place(&mut ip, &sites);
        assert_eq!(ip.structural_hash(), rebuilt.structural_hash());
        assert_eq!(map.len(), 9, "old→new map covers every original slot");
        assert_fanouts_consistent(&ip);
        for x in 0..16u32 {
            let bits = [
                x & 1 == 1,
                x >> 1 & 1 == 1,
                x >> 2 & 1 == 1,
                x >> 3 & 1 == 1,
            ];
            assert_eq!(g.eval(&bits), ip.eval(&bits), "input {x}");
        }
    }

    #[test]
    fn stats_reports_fanout_structure() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let x = g.and(a, b);
        let y = g.and(x, a);
        let z = g.and(x, b);
        g.add_po(y);
        g.add_po(z);
        let s = NetworkStats::of(&g);
        assert_eq!(s.ands, 3);
        assert_eq!(s.depth, 2);
        assert!(s.multi_fanout_nodes >= 2, "a and x have fanout 2");
        assert!(s.max_fanout >= 2);
        assert!(s.to_string().contains("3 ANDs"));
    }
}
