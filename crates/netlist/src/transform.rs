//! Network transformations and statistics.
//!
//! - [`sweep`] — rebuilds an AIG keeping only the logic reachable from the
//!   primary outputs (dead-node sweep, constant propagation through the
//!   builder's simplification rules, and re-strashing). This is the single
//!   implementation behind both [`cleanup`] and the `sweep` pass of the
//!   `sfq-opt` pass manager (the pass lives upstream and delegates here
//!   because the crate graph points `sfq-opt → sfq-netlist`);
//! - [`cleanup`] — the historical name for the same operation, kept as a
//!   thin alias so existing callers don't break;
//! - [`NetworkStats`] — summary numbers for reports and regression tests.
//!
//! # Examples
//!
//! ```
//! use sfq_netlist::aig::Aig;
//! use sfq_netlist::transform::{cleanup, NetworkStats};
//!
//! let mut g = Aig::new();
//! let a = g.add_pi();
//! let b = g.add_pi();
//! let used = g.and(a, b);
//! let _dead = g.xor(a, b); // never drives an output
//! g.add_po(used);
//! let clean = cleanup(&g);
//! assert_eq!(clean.and_count(), 1);
//! let stats = NetworkStats::of(&clean);
//! assert_eq!(stats.ands, 1);
//! ```

use crate::aig::{Aig, Lit, NodeId, NodeKind};
use std::collections::HashMap;
use std::fmt;

/// Rebuilds `aig` keeping only logic in the transitive fanin of the primary
/// outputs. Input and output order is preserved; structural hashing may
/// merge nodes that became equivalent through the copy, and constants feed
/// through the builder's simplification rules (constant propagation).
pub fn sweep(aig: &Aig) -> Aig {
    let mut out = Aig::new();
    let mut map: HashMap<NodeId, Lit> = HashMap::new();
    map.insert(NodeId::CONST0, Lit::FALSE);
    for &pi in aig.pis() {
        let new_pi = out.add_pi();
        map.insert(pi, new_pi);
    }
    // Nodes are stored topologically; one forward pass with a reachability
    // mark from the POs would also work, but copying on demand is simpler:
    // walk the PO cones iteratively.
    let mut stack: Vec<NodeId> = aig.pos().iter().map(|l| l.node()).collect();
    let mut order: Vec<NodeId> = Vec::new();
    let mut seen = vec![false; aig.len()];
    while let Some(n) = stack.pop() {
        if seen[n.index()] {
            continue;
        }
        seen[n.index()] = true;
        order.push(n);
        if let Some((a, b)) = aig.fanins(n) {
            stack.push(a.node());
            stack.push(b.node());
        }
    }
    // Build in id order (topological) restricted to reachable nodes.
    order.sort();
    for n in order {
        if let NodeKind::And(a, b) = aig.kind(n) {
            let fa =
                map[&a.node()].with_complement(map[&a.node()].is_complement() ^ a.is_complement());
            let fb =
                map[&b.node()].with_complement(map[&b.node()].is_complement() ^ b.is_complement());
            let lit = out.and(fa, fb);
            map.insert(n, lit);
        }
    }
    for po in aig.pos() {
        let base = map[&po.node()];
        out.add_po(base.with_complement(base.is_complement() ^ po.is_complement()));
    }
    out
}

/// The historical name of [`sweep`], kept for source compatibility. The
/// `sfq-opt` optimization subsystem exposes the same operation as its
/// `sweep` pass; this function and that pass share the one implementation
/// above.
pub fn cleanup(aig: &Aig) -> Aig {
    sweep(aig)
}

/// Summary statistics of an AIG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetworkStats {
    /// Primary inputs.
    pub pis: usize,
    /// Primary outputs.
    pub pos: usize,
    /// AND gates.
    pub ands: usize,
    /// Logic depth (levels).
    pub depth: u32,
    /// Nodes with more than one fanout.
    pub multi_fanout_nodes: usize,
    /// Maximum fanout of any node.
    pub max_fanout: u32,
}

impl NetworkStats {
    /// Computes the statistics of `aig`.
    pub fn of(aig: &Aig) -> Self {
        let mut multi = 0;
        let mut max_fanout = 0;
        for id in aig.node_ids() {
            let f = aig.fanout_count(id);
            if f > 1 {
                multi += 1;
            }
            max_fanout = max_fanout.max(f);
        }
        NetworkStats {
            pis: aig.pi_count(),
            pos: aig.po_count(),
            ands: aig.and_count(),
            depth: aig.depth(),
            multi_fanout_nodes: multi,
            max_fanout,
        }
    }
}

impl fmt::Display for NetworkStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} PIs, {} POs, {} ANDs, depth {}, {} multi-fanout nodes (max fanout {})",
            self.pis, self.pos, self.ands, self.depth, self.multi_fanout_nodes, self.max_fanout
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cleanup_removes_dead_logic() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let keep = g.and(a, b);
        let _dead1 = g.xor(a, b);
        let _dead2 = g.or(a, b);
        g.add_po(keep);
        let clean = cleanup(&g);
        assert_eq!(clean.and_count(), 1);
        assert_eq!(clean.pi_count(), 2);
        for x in 0..4u32 {
            let bits = [x & 1 == 1, x >> 1 & 1 == 1];
            assert_eq!(g.eval(&bits)[0], clean.eval(&bits)[0]);
        }
    }

    #[test]
    fn cleanup_preserves_functions_and_order() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let c = g.add_pi();
        let x = g.xor3(a, b, c);
        let m = g.maj3(a, b, c);
        g.add_po(!x);
        g.add_po(m);
        let clean = cleanup(&g);
        for i in 0..8u32 {
            let bits = [i & 1 == 1, i >> 1 & 1 == 1, i >> 2 & 1 == 1];
            assert_eq!(g.eval(&bits), clean.eval(&bits), "input {i}");
        }
    }

    #[test]
    fn cleanup_keeps_constant_outputs() {
        let mut g = Aig::new();
        let _a = g.add_pi();
        g.add_po(Lit::TRUE);
        g.add_po(Lit::FALSE);
        let clean = cleanup(&g);
        assert_eq!(clean.eval(&[false]), vec![true, false]);
    }

    #[test]
    fn stats_reports_fanout_structure() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let x = g.and(a, b);
        let y = g.and(x, a);
        let z = g.and(x, b);
        g.add_po(y);
        g.add_po(z);
        let s = NetworkStats::of(&g);
        assert_eq!(s.ands, 3);
        assert_eq!(s.depth, 2);
        assert!(s.multi_fanout_nodes >= 2, "a and x have fanout 2");
        assert!(s.max_fanout >= 2);
        assert!(s.to_string().contains("3 ANDs"));
    }
}
