//! And-inverter graphs with structural hashing.
//!
//! The [`Aig`] is the subject network of the mapping flow — the Rust
//! equivalent of mockturtle's `aig_network`. Nodes are two-input ANDs;
//! inverters live on edges as complement bits of [`Lit`]s. Construction
//! performs constant folding, trivial simplification and structural hashing,
//! so equivalent two-level structures share nodes.
//!
//! # Examples
//!
//! ```
//! use sfq_netlist::aig::Aig;
//!
//! let mut aig = Aig::new();
//! let a = aig.add_pi();
//! let b = aig.add_pi();
//! let sum = aig.xor(a, b);
//! aig.add_po(sum);
//! assert_eq!(aig.and_count(), 3); // xor = 3 ANDs
//! ```

use crate::fnv::FnvHashMap;
use std::fmt;

/// Index of a node inside an [`Aig`]. Node 0 is the constant-zero node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The constant-zero node present in every AIG.
    pub const CONST0: NodeId = NodeId(0);

    /// Index as `usize` for direct slice access.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A literal: a node reference plus an optional complement.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// The constant-false literal.
    pub const FALSE: Lit = Lit(0);
    /// The constant-true literal.
    pub const TRUE: Lit = Lit(1);

    /// Builds a literal from a node and complement flag.
    pub fn new(node: NodeId, complement: bool) -> Self {
        Lit(node.0 << 1 | complement as u32)
    }

    /// The node this literal refers to.
    pub fn node(self) -> NodeId {
        NodeId(self.0 >> 1)
    }

    /// Whether the literal is complemented.
    pub fn is_complement(self) -> bool {
        self.0 & 1 == 1
    }

    /// The complemented literal.
    pub fn complement(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    /// This literal with complement flag set to `c`.
    pub fn with_complement(self, c: bool) -> Lit {
        Lit(self.0 & !1 | c as u32)
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    fn not(self) -> Lit {
        self.complement()
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_complement() {
            write!(f, "!n{}", self.node().0)
        } else {
            write!(f, "n{}", self.node().0)
        }
    }
}

/// Node payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// The constant-zero node (always node 0).
    Const0,
    /// Primary input; the payload is the PI ordinal.
    Input(u32),
    /// Two-input AND of the given literals.
    And(Lit, Lit),
}

#[derive(Debug, Clone)]
struct Node {
    kind: NodeKind,
    /// Number of AND nodes and primary outputs referencing this node.
    fanout: u32,
}

/// Kind marking a freed node slot. No *live* AND can ever carry this kind:
/// [`Aig::and`] folds any constant operand away before a node is created,
/// so `And(FALSE, FALSE)` is unambiguous as a tombstone.
const DEAD: NodeKind = NodeKind::And(Lit::FALSE, Lit::FALSE);

/// An and-inverter graph.
///
/// Nodes are stored in topological order by construction (an AND can only be
/// created after its fanins), so iteration over `0..len` is a valid forward
/// traversal. The in-place editing primitives ([`Aig::substitute`],
/// [`Aig::replace_fanin`], [`Aig::delete_mffc`]) preserve that invariant
/// while keeping every surviving node id stable; freed slots are kept on a
/// free list and reused by later [`Aig::and`] calls, and [`Aig::compact`]
/// squeezes them out again when a dense network is required.
#[derive(Debug, Clone, Default)]
pub struct Aig {
    nodes: Vec<Node>,
    pis: Vec<NodeId>,
    pos: Vec<Lit>,
    strash: FnvHashMap<(Lit, Lit), NodeId>,
    /// Freed (dead) node slots, ascending.
    free: Vec<u32>,
}

impl Aig {
    /// Creates an empty AIG containing only the constant node.
    pub fn new() -> Self {
        Aig {
            nodes: vec![Node {
                kind: NodeKind::Const0,
                fanout: 0,
            }],
            pis: Vec::new(),
            pos: Vec::new(),
            strash: FnvHashMap::default(),
            free: Vec::new(),
        }
    }

    /// Adds a primary input and returns its positive literal.
    pub fn add_pi(&mut self) -> Lit {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            kind: NodeKind::Input(self.pis.len() as u32),
            fanout: 0,
        });
        self.pis.push(id);
        Lit::new(id, false)
    }

    /// Registers `lit` as a primary output.
    pub fn add_po(&mut self, lit: Lit) {
        self.nodes[lit.node().index()].fanout += 1;
        self.pos.push(lit);
    }

    /// AND of two literals with simplification and structural hashing.
    pub fn and(&mut self, a: Lit, b: Lit) -> Lit {
        if let Some(f) = fold_and(a, b) {
            return f;
        }
        // Normalize operand order for hashing.
        let (a, b) = if a.0 <= b.0 { (a, b) } else { (b, a) };
        if let Some(&id) = self.strash.get(&(a, b)) {
            return Lit::new(id, false);
        }
        // Reuse the lowest freed slot that keeps ids topological (the slot
        // must sit above both fanins); append when none qualifies.
        let node = Node {
            kind: NodeKind::And(a, b),
            fanout: 0,
        };
        let min = a.node().0.max(b.node().0);
        let pos = self.free.partition_point(|&s| s <= min);
        let id = if pos < self.free.len() {
            let slot = self.free.remove(pos);
            self.nodes[slot as usize] = node;
            NodeId(slot)
        } else {
            let id = NodeId(self.nodes.len() as u32);
            self.nodes.push(node);
            id
        };
        self.nodes[a.node().index()].fanout += 1;
        self.nodes[b.node().index()].fanout += 1;
        self.strash.insert((a, b), id);
        Lit::new(id, false)
    }

    /// Looks up what [`Aig::and`] would return for `(a, b)` **without**
    /// creating a node: trivial simplifications are applied and the strash
    /// table is consulted, but the network is never modified.
    ///
    /// Returns `None` when the AND does not exist yet — the cost probe used
    /// by cut rewriting to price candidate subgraphs against logic that is
    /// already present.
    pub fn lookup_and(&self, a: Lit, b: Lit) -> Option<Lit> {
        if let Some(f) = fold_and(a, b) {
            return Some(f);
        }
        let (a, b) = if a.0 <= b.0 { (a, b) } else { (b, a) };
        self.strash.get(&(a, b)).map(|&id| Lit::new(id, false))
    }

    /// OR of two literals.
    pub fn or(&mut self, a: Lit, b: Lit) -> Lit {
        !self.and(!a, !b)
    }

    /// XOR of two literals (three AND nodes).
    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        let left = self.and(a, !b);
        let right = self.and(!a, b);
        self.or(left, right)
    }

    /// XNOR of two literals.
    pub fn xnor(&mut self, a: Lit, b: Lit) -> Lit {
        !self.xor(a, b)
    }

    /// Three-input majority.
    pub fn maj3(&mut self, a: Lit, b: Lit, c: Lit) -> Lit {
        let ab = self.and(a, b);
        let ac = self.and(a, c);
        let bc = self.and(b, c);
        let t = self.or(ab, ac);
        self.or(t, bc)
    }

    /// Three-input XOR.
    pub fn xor3(&mut self, a: Lit, b: Lit, c: Lit) -> Lit {
        let t = self.xor(a, b);
        self.xor(t, c)
    }

    /// If-then-else `sel ? t : e`.
    pub fn mux(&mut self, sel: Lit, t: Lit, e: Lit) -> Lit {
        let pt = self.and(sel, t);
        let pe = self.and(!sel, e);
        self.or(pt, pe)
    }

    /// Number of node *slots* including constant, PIs and any dead slots
    /// left behind by in-place edits (buffers indexed by [`NodeId`] must be
    /// sized by this).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the network has no gates and no inputs.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1 && self.pos.is_empty()
    }

    /// Number of live AND gates (dead slots excluded).
    pub fn and_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::And(..)) && n.kind != DEAD)
            .count()
    }

    /// Number of freed (dead) node slots awaiting reuse or [`Aig::compact`].
    pub fn dead_count(&self) -> usize {
        self.free.len()
    }

    /// Whether node `id` is a freed slot left behind by an in-place edit.
    pub fn is_dead(&self, id: NodeId) -> bool {
        self.nodes[id.index()].kind == DEAD
    }

    /// Number of primary inputs.
    pub fn pi_count(&self) -> usize {
        self.pis.len()
    }

    /// Number of primary outputs.
    pub fn po_count(&self) -> usize {
        self.pos.len()
    }

    /// The primary inputs in declaration order.
    pub fn pis(&self) -> &[NodeId] {
        &self.pis
    }

    /// The primary output literals in declaration order.
    pub fn pos(&self) -> &[Lit] {
        &self.pos
    }

    /// Kind of node `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn kind(&self, id: NodeId) -> NodeKind {
        self.nodes[id.index()].kind
    }

    /// Fanins of an AND node, or `None` for PIs/constant.
    pub fn fanins(&self, id: NodeId) -> Option<(Lit, Lit)> {
        match self.nodes[id.index()].kind {
            NodeKind::And(a, b) => Some((a, b)),
            _ => None,
        }
    }

    /// Combined fanout count (ANDs + POs referencing the node).
    pub fn fanout_count(&self, id: NodeId) -> u32 {
        self.nodes[id.index()].fanout
    }

    /// Iterator over all node ids in topological order (constant and PIs
    /// first). Dead slots are included; filter with [`Aig::is_dead`] when
    /// iterating an edited network.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterator over live AND-node ids in topological order.
    pub fn and_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_ids().filter(move |id| {
            let kind = self.nodes[id.index()].kind;
            matches!(kind, NodeKind::And(..)) && kind != DEAD
        })
    }

    /// Logic level of every node (PIs and constant at level 0).
    pub fn levels(&self) -> Vec<u32> {
        let mut lev = Vec::new();
        self.levels_into(&mut lev);
        lev
    }

    /// [`Aig::levels`] writing into a caller-owned buffer, so hot loops
    /// that re-level repeatedly (the `sfq-opt` fixpoint loop) reuse one
    /// allocation instead of paying a fresh vector per round.
    pub fn levels_into(&self, lev: &mut Vec<u32>) {
        lev.clear();
        lev.resize(self.nodes.len(), 0);
        for id in self.node_ids() {
            if let NodeKind::And(a, b) = self.nodes[id.index()].kind {
                lev[id.index()] = 1 + lev[a.node().index()].max(lev[b.node().index()]);
            }
        }
    }

    /// Depth of the network: maximum level over primary outputs.
    pub fn depth(&self) -> u32 {
        self.depth_from(&self.levels())
    }

    /// [`Aig::depth`] over a precomputed level vector (see
    /// [`Aig::levels`]), for call sites that already hold one.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is shorter than the network.
    pub fn depth_from(&self, levels: &[u32]) -> u32 {
        self.pos
            .iter()
            .map(|l| levels[l.node().index()])
            .max()
            .unwrap_or(0)
    }

    /// Evaluates all primary outputs on 64 input vectors at once.
    ///
    /// `inputs[i]` packs 64 Boolean values of PI `i`; the result packs the
    /// corresponding output values.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != pi_count()`.
    pub fn eval64(&self, inputs: &[u64]) -> Vec<u64> {
        let mut scratch = Vec::new();
        let mut out = Vec::new();
        self.eval64_into(inputs, &mut scratch, &mut out);
        out
    }

    /// [`Aig::eval64`] writing into caller-owned buffers, mirroring
    /// [`Aig::levels_into`]: `scratch` holds the per-node values and `out`
    /// receives the output words, so simulation-heavy loops (the CEC random
    /// prefilter, the optimizer's signature analysis) reuse two allocations
    /// across calls instead of paying two fresh vectors each.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != pi_count()`.
    pub fn eval64_into(&self, inputs: &[u64], scratch: &mut Vec<u64>, out: &mut Vec<u64>) {
        assert_eq!(
            inputs.len(),
            self.pis.len(),
            "one word per primary input required"
        );
        scratch.clear();
        scratch.resize(self.nodes.len(), 0);
        for id in self.node_ids() {
            scratch[id.index()] = match self.nodes[id.index()].kind {
                NodeKind::Const0 => 0,
                NodeKind::Input(i) => inputs[i as usize],
                NodeKind::And(a, b) => {
                    let va =
                        scratch[a.node().index()] ^ if a.is_complement() { u64::MAX } else { 0 };
                    let vb =
                        scratch[b.node().index()] ^ if b.is_complement() { u64::MAX } else { 0 };
                    va & vb
                }
            };
        }
        out.clear();
        out.extend(
            self.pos
                .iter()
                .map(|l| scratch[l.node().index()] ^ if l.is_complement() { u64::MAX } else { 0 }),
        );
    }

    /// Evaluates on a single Boolean assignment.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != pi_count()`.
    pub fn eval(&self, inputs: &[bool]) -> Vec<bool> {
        let words: Vec<u64> = inputs
            .iter()
            .map(|&b| if b { u64::MAX } else { 0 })
            .collect();
        self.eval64(&words)
            .into_iter()
            .map(|w| w & 1 == 1)
            .collect()
    }

    /// Reference counts equal to fanout, per node slot (dead slots report
    /// zero); the basis of MFFC computation.
    pub fn fanout_counts(&self) -> Vec<u32> {
        let mut counts = Vec::new();
        self.fanout_counts_into(&mut counts);
        counts
    }

    /// [`Aig::fanout_counts`] writing into a caller-owned buffer, mirroring
    /// [`Aig::levels_into`].
    pub fn fanout_counts_into(&self, counts: &mut Vec<u32>) {
        counts.clear();
        counts.extend(self.nodes.iter().map(|n| n.fanout));
    }

    /// Recomputes every fanout count from scratch (one forward pass).
    ///
    /// The batch editing engine in [`crate::transform`] defers fanout
    /// bookkeeping while it rewires many sites and calls this once at the
    /// end; the single-site primitives ([`Aig::substitute`] etc.) maintain
    /// counts incrementally and never need it.
    pub fn recompute_fanouts(&mut self) {
        for n in &mut self.nodes {
            n.fanout = 0;
        }
        for idx in 0..self.nodes.len() {
            let kind = self.nodes[idx].kind;
            if kind == DEAD {
                continue;
            }
            if let NodeKind::And(a, b) = kind {
                self.nodes[a.node().index()].fanout += 1;
                self.nodes[b.node().index()].fanout += 1;
            }
        }
        for i in 0..self.pos.len() {
            let n = self.pos[i].node();
            self.nodes[n.index()].fanout += 1;
        }
    }

    // ------------------------------------------------------------------
    // In-place editing.
    //
    // These primitives mutate the network without rebuilding it: surviving
    // node ids never move, so analyses keyed by id (levels, signatures, the
    // incremental STA) stay valid outside the true edit footprint. Freed
    // slots are tombstoned (`DEAD`) and tracked on `free`; `Aig::and`
    // reuses them when the index-topological invariant allows, and
    // `compact` squeezes them out when a dense network is required (AIGER
    // export, content addressing via `structural_hash`).
    // ------------------------------------------------------------------

    /// Replaces fanin `old_fanin` of `node` with `new_fanin`, maintaining
    /// the strash table. Returns the literal now carrying the node's
    /// function: `Lit::new(node, false)` when the node stays live in its
    /// slot, or the fold result when the new fanin pair simplifies (or
    /// duplicates existing structure below `node`) — in that case the
    /// node's users and the primary outputs are repointed as by
    /// [`Aig::substitute`] and the slot is freed.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a live AND with a fanin equal to
    /// `old_fanin`, or if `new_fanin` does not reference a live node with
    /// index strictly below `node` (the index-topological invariant).
    pub fn replace_fanin(&mut self, node: NodeId, old_fanin: Lit, new_fanin: Lit) -> Lit {
        assert!(!self.is_dead(node), "replace_fanin on a dead slot");
        let NodeKind::And(a, b) = self.nodes[node.index()].kind else {
            panic!("replace_fanin target must be an AND node");
        };
        assert!(
            a == old_fanin || b == old_fanin,
            "{old_fanin:?} is not a fanin of n{}",
            node.0
        );
        assert!(
            new_fanin.node().0 < node.0,
            "replacement fanin must sit below the node (got {new_fanin:?} for n{})",
            node.0
        );
        assert!(!self.is_dead(new_fanin.node()), "replacement fanin is dead");
        let na = if a == old_fanin { new_fanin } else { a };
        let nb = if b == old_fanin { new_fanin } else { b };
        match self.rewire(node, na, nb) {
            None => Lit::new(node, false),
            Some(fold) => {
                self.propagate(node, fold);
                debug_assert_eq!(self.nodes[node.index()].fanout, 0);
                self.free_insert(node);
                fold
            }
        }
    }

    /// Replaces every use of `old` — fanin references and primary outputs —
    /// with `new_lit`, composing complements. Users that simplify or become
    /// structural duplicates under the new fanin fold away transitively
    /// (always toward lower node ids, so ids stay topological); their slots
    /// are freed. `old` itself is left in place with its fanout at zero:
    /// reclaim it and its now-dangling cone with [`Aig::delete_mffc`], and
    /// restore the dense form with [`Aig::compact`].
    ///
    /// The cost is one forward scan from `old` to the end of the node
    /// array; batch editors (the `sfq-opt` in-place passes) amortize one
    /// scan over many sites via [`crate::transform`]'s cone-rewrite engine
    /// instead of calling this per site.
    ///
    /// # Panics
    ///
    /// Panics if `old` is the constant or dead, or if `new_lit` does not
    /// reference a live node with index strictly below `old`.
    pub fn substitute(&mut self, old: NodeId, new_lit: Lit) {
        assert!(old != NodeId::CONST0, "cannot substitute the constant node");
        assert!(!self.is_dead(old), "cannot substitute a dead slot");
        assert!(
            new_lit.node().0 < old.0,
            "substitute requires a replacement below the target (n{} -> {new_lit:?})",
            old.0
        );
        assert!(!self.is_dead(new_lit.node()), "replacement must be live");
        self.propagate(old, new_lit);
    }

    /// Deletes the maximum fanout-free cone of `root`: the node itself and,
    /// transitively, every fanin AND whose references all came from inside
    /// the cone. Slots are tombstoned and pushed on the free list; PIs and
    /// the constant are never deleted. Returns the number of ANDs removed.
    ///
    /// # Panics
    ///
    /// Panics if `root` is not a live AND or still has fanout (substitute
    /// its users away first).
    pub fn delete_mffc(&mut self, root: NodeId) -> usize {
        assert!(
            !self.is_dead(root) && matches!(self.nodes[root.index()].kind, NodeKind::And(..)),
            "delete_mffc requires a live AND node"
        );
        assert_eq!(
            self.nodes[root.index()].fanout,
            0,
            "delete_mffc target n{} still has fanout",
            root.0
        );
        let mut stack = vec![root];
        let mut removed = 0;
        while let Some(id) = stack.pop() {
            if self.is_dead(id) {
                continue;
            }
            let NodeKind::And(a, b) = self.nodes[id.index()].kind else {
                continue; // PIs / constant stay
            };
            if self.nodes[id.index()].fanout != 0 {
                continue;
            }
            self.strash_remove_if((a, b), id);
            self.nodes[id.index()].kind = DEAD;
            self.free_insert(id);
            removed += 1;
            for l in [a, b] {
                let n = l.node();
                self.nodes[n.index()].fanout -= 1;
                if self.nodes[n.index()].fanout == 0 {
                    stack.push(n);
                }
            }
        }
        removed
    }

    /// Squeezes dead slots out, renumbering live nodes densely while
    /// preserving their relative (topological) order. Returns the old→new
    /// id map (`None` for freed slots). The strash table is rebuilt in
    /// place (capacity retained); a no-op when the network has no dead
    /// slots.
    pub fn compact(&mut self) -> Vec<Option<NodeId>> {
        if self.free.is_empty() {
            return (0..self.nodes.len() as u32)
                .map(|i| Some(NodeId(i)))
                .collect();
        }
        let order: Vec<NodeId> = (1..self.nodes.len() as u32)
            .map(NodeId)
            .filter(|&id| !self.is_dead(id))
            .collect();
        self.compact_to(&order)
    }

    /// [`Aig::compact`] with an explicit new node order: `order` must list
    /// every live non-constant node exactly once, topologically (each AND
    /// after both fanins). The batch cone-rewrite engine uses this to land
    /// its edits in the exact emission order of the reference rebuild path,
    /// making the two byte-identical.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of the live non-constant
    /// nodes or is not topologically sorted.
    pub fn compact_to(&mut self, order: &[NodeId]) -> Vec<Option<NodeId>> {
        let old_len = self.nodes.len();
        assert_eq!(
            order.len() + self.free.len() + 1,
            old_len,
            "compact order must cover every live node exactly once"
        );
        let mut map: Vec<Option<NodeId>> = vec![None; old_len];
        map[0] = Some(NodeId::CONST0);
        for (i, &id) in order.iter().enumerate() {
            assert!(
                id != NodeId::CONST0 && !self.is_dead(id),
                "compact order names n{} which is not a live non-constant node",
                id.0
            );
            assert!(
                map[id.index()].is_none(),
                "compact order lists n{} twice",
                id.0
            );
            map[id.index()] = Some(NodeId(i as u32 + 1));
        }
        let remap = |map: &[Option<NodeId>], l: Lit| -> Lit {
            Lit::new(
                map[l.node().index()].expect("dangling reference into a dropped slot"),
                l.is_complement(),
            )
        };
        let mut new_nodes = Vec::with_capacity(order.len() + 1);
        new_nodes.push(self.nodes[0].clone());
        for &id in order {
            let n = &self.nodes[id.index()];
            let kind = match n.kind {
                NodeKind::Const0 => unreachable!("constant appears only at slot 0"),
                NodeKind::Input(i) => NodeKind::Input(i),
                NodeKind::And(a, b) => {
                    let (mut na, mut nb) = (remap(&map, a), remap(&map, b));
                    // A non-monotone `order` (the cone-rewrite engine's
                    // emission order reuses low slots) can flip which fanin
                    // carries the lower id; re-normalize for the canonical
                    // form `Aig::and` would have produced.
                    if na.0 > nb.0 {
                        std::mem::swap(&mut na, &mut nb);
                    }
                    let new_id = map[id.index()].unwrap();
                    assert!(
                        na.node().0 < new_id.0 && nb.node().0 < new_id.0,
                        "compact order is not topological at n{}",
                        id.0
                    );
                    NodeKind::And(na, nb)
                }
            };
            new_nodes.push(Node {
                kind,
                fanout: n.fanout,
            });
        }
        self.nodes = new_nodes;
        for pi in &mut self.pis {
            *pi = map[pi.index()].expect("primary input dropped by compact");
        }
        for po in &mut self.pos {
            *po = remap(&map, *po);
        }
        // Rebuild the strash in place: clear keeps the table's capacity, so
        // this allocates nothing. `or_insert` keeps the lowest id for any
        // (transient) duplicate pair, matching fresh-construction ownership.
        self.strash.clear();
        for idx in 1..self.nodes.len() {
            if let NodeKind::And(a, b) = self.nodes[idx].kind {
                self.strash.entry((a, b)).or_insert(NodeId(idx as u32));
            }
        }
        self.free.clear();
        map
    }

    /// Repoints users of the nodes in `repl` seeded with `from -> seed`,
    /// cascading folds, then repoints POs and frees fold victims. The seed
    /// node itself is *not* freed (its slot state is the caller's concern).
    fn propagate(&mut self, from: NodeId, seed: Lit) {
        let mut repl: FnvHashMap<NodeId, Lit> = FnvHashMap::default();
        repl.insert(from, seed);
        let mut folded: Vec<NodeId> = Vec::new();
        for idx in from.index() + 1..self.nodes.len() {
            let id = NodeId(idx as u32);
            let kind = self.nodes[idx].kind;
            if kind == DEAD {
                continue;
            }
            let NodeKind::And(a, b) = kind else { continue };
            let na = resolve(&repl, a);
            let nb = resolve(&repl, b);
            // Fast path: fanins unchanged and the node still owns its
            // strash key. (An earlier rewire may have claimed the key for
            // a lower-id duplicate; then the full path below folds this
            // node into the claimant, keeping the network duplicate-free.)
            if na == a && nb == b && self.strash.get(&(a, b)) == Some(&id) {
                continue;
            }
            if let Some(fold) = self.rewire(id, na, nb) {
                repl.insert(id, fold);
                folded.push(id);
            }
        }
        for i in 0..self.pos.len() {
            let po = self.pos[i];
            if let Some(&r) = repl.get(&po.node()) {
                let new_po = r.with_complement(r.is_complement() ^ po.is_complement());
                self.nodes[po.node().index()].fanout -= 1;
                self.nodes[new_po.node().index()].fanout += 1;
                self.pos[i] = new_po;
            }
        }
        for id in folded {
            debug_assert_eq!(self.nodes[id.index()].fanout, 0);
            self.free_insert(id);
        }
    }

    /// Rewires the AND at `id` to the fanin pair `(na, nb)` with strash
    /// maintenance and incremental fanout bookkeeping. Returns the fold
    /// literal when the new pair simplifies or duplicates a lower-index
    /// AND — the victim's kind is tombstoned but its fanout (references
    /// from yet-unvisited users) is left for the caller to drain — or
    /// `None` when the node stays live.
    fn rewire(&mut self, id: NodeId, na: Lit, nb: Lit) -> Option<Lit> {
        let NodeKind::And(oa, ob) = self.nodes[id.index()].kind else {
            unreachable!("rewire target must be an AND");
        };
        let (na, nb) = if na.0 <= nb.0 { (na, nb) } else { (nb, na) };
        self.strash_remove_if((oa, ob), id);
        self.nodes[oa.node().index()].fanout -= 1;
        self.nodes[ob.node().index()].fanout -= 1;
        let fold = if let Some(f) = fold_and(na, nb) {
            Some(f)
        } else {
            match self.strash.get(&(na, nb)) {
                Some(&d) if d.0 < id.0 => Some(Lit::new(d, false)),
                _ => {
                    // Either the pair is new, or its current owner sits
                    // *above* us: claim the key so lookups resolve to the
                    // lower index (the upper copy stays physically present
                    // until a strash/sweep pass merges it).
                    self.strash.insert((na, nb), id);
                    None
                }
            }
        };
        match fold {
            Some(f) => {
                self.nodes[id.index()].kind = DEAD;
                Some(f)
            }
            None => {
                self.nodes[id.index()].kind = NodeKind::And(na, nb);
                self.nodes[na.node().index()].fanout += 1;
                self.nodes[nb.node().index()].fanout += 1;
                None
            }
        }
    }

    /// Removes the strash entry for `key` only if it is owned by `id`.
    pub(crate) fn strash_remove_if(&mut self, key: (Lit, Lit), id: NodeId) {
        if self.strash.get(&key) == Some(&id) {
            self.strash.remove(&key);
        }
    }

    /// Pushes a tombstoned slot onto the (sorted) free list.
    fn free_insert(&mut self, id: NodeId) {
        debug_assert!(self.is_dead(id));
        let pos = self.free.partition_point(|&s| s < id.0);
        self.free.insert(pos, id.0);
    }

    // ------------------------------------------------------------------
    // Raw hooks for the batch cone-rewrite engine (crate::transform).
    //
    // The engine defers fanout bookkeeping to one recompute_fanouts call
    // and restores the index-topological invariant itself via compact_to,
    // so these deliberately skip both; they are not sound on their own and
    // stay crate-private.
    // ------------------------------------------------------------------

    /// Strash probe by exact (normalized) key.
    pub(crate) fn strash_get(&self, key: (Lit, Lit)) -> Option<NodeId> {
        self.strash.get(&key).copied()
    }

    /// Inserts/overwrites the strash entry for `key`.
    pub(crate) fn strash_insert(&mut self, key: (Lit, Lit), id: NodeId) {
        self.strash.insert(key, id);
    }

    /// Installs an AND kind without strash or fanout maintenance.
    pub(crate) fn set_and_raw(&mut self, id: NodeId, a: Lit, b: Lit) {
        debug_assert!(a.0 <= b.0, "fanins must be normalized");
        self.nodes[id.index()].kind = NodeKind::And(a, b);
    }

    /// Tombstones a slot and frees it, without fanout maintenance.
    pub(crate) fn kill_raw(&mut self, id: NodeId) {
        debug_assert!(!self.is_dead(id));
        self.nodes[id.index()].kind = DEAD;
        self.free_insert(id);
    }

    /// Allocates a slot for an AND with **no** positional constraint: the
    /// lowest free slot wins, else the array grows. Only valid inside a
    /// batch edit that ends with [`Aig::compact_to`] (which restores the
    /// index-topological invariant). No strash or fanout maintenance.
    pub(crate) fn alloc_any_raw(&mut self, a: Lit, b: Lit) -> NodeId {
        debug_assert!(a.0 <= b.0, "fanins must be normalized");
        let node = Node {
            kind: NodeKind::And(a, b),
            fanout: 0,
        };
        if let Some(&slot) = self.free.first() {
            self.free.remove(0);
            self.nodes[slot as usize] = node;
            NodeId(slot)
        } else {
            let id = NodeId(self.nodes.len() as u32);
            self.nodes.push(node);
            id
        }
    }

    /// Repoints primary output `i` without fanout maintenance.
    pub(crate) fn set_po_raw(&mut self, i: usize, lit: Lit) {
        self.pos[i] = lit;
    }

    /// Stable 64-bit structural digest of the network.
    ///
    /// Covers exactly the logical structure — node kinds with fanin literals
    /// in construction (topological) order, plus the PI/PO interface — and
    /// nothing else: the strash table and fanout counts do not participate.
    /// Two identically constructed AIGs therefore hash equal across
    /// processes and platforms, while editing a single gate changes the
    /// digest with overwhelming probability. This is the content address
    /// used by the `sfq-engine` result cache.
    ///
    /// Dead slots *do* participate (the digest is over the raw node array),
    /// so [`Aig::compact`] an edited network before using the digest as a
    /// content address.
    pub fn structural_hash(&self) -> u64 {
        use std::hash::Hasher;
        let mut h = crate::fnv::Fnv1a::new();
        h.write_usize(self.nodes.len());
        for node in &self.nodes {
            match node.kind {
                NodeKind::Const0 => h.write_u8(0),
                NodeKind::Input(i) => {
                    h.write_u8(1);
                    h.write_u32(i);
                }
                NodeKind::And(a, b) => {
                    h.write_u8(2);
                    h.write_u32(a.0);
                    h.write_u32(b.0);
                }
            }
        }
        h.write_usize(self.pis.len());
        h.write_usize(self.pos.len());
        for po in &self.pos {
            h.write_u32(po.0);
        }
        h.finish()
    }
}

/// The trivial AND simplifications, the single source of truth shared by
/// [`Aig::and`], [`Aig::lookup_and`], the in-place rewiring path, and the
/// batch cone-rewrite engine in [`crate::transform`]: `Some` when `a & b`
/// folds to an existing literal without creating a node.
pub(crate) fn fold_and(a: Lit, b: Lit) -> Option<Lit> {
    if a == Lit::FALSE || b == Lit::FALSE || a == !b {
        Some(Lit::FALSE)
    } else if a == Lit::TRUE {
        Some(b)
    } else if b == Lit::TRUE || a == b {
        Some(a)
    } else {
        None
    }
}

/// Applies a replacement map to a literal, composing complements.
fn resolve(repl: &FnvHashMap<NodeId, Lit>, l: Lit) -> Lit {
    match repl.get(&l.node()) {
        Some(&r) => r.with_complement(r.is_complement() ^ l.is_complement()),
        None => l,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_simplifications() {
        let mut g = Aig::new();
        let a = g.add_pi();
        assert_eq!(g.and(a, Lit::FALSE), Lit::FALSE);
        assert_eq!(g.and(Lit::TRUE, a), a);
        assert_eq!(g.and(a, a), a);
        assert_eq!(g.and(a, !a), Lit::FALSE);
        assert_eq!(g.and_count(), 0);
    }

    #[test]
    fn structural_hashing_shares_nodes() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let x = g.and(a, b);
        let y = g.and(b, a);
        assert_eq!(x, y);
        assert_eq!(g.and_count(), 1);
    }

    #[test]
    fn xor_truth() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let x = g.xor(a, b);
        g.add_po(x);
        for (va, vb) in [(false, false), (false, true), (true, false), (true, true)] {
            let out = g.eval(&[va, vb]);
            assert_eq!(out[0], va ^ vb, "xor({va},{vb})");
        }
    }

    #[test]
    fn maj3_truth() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let c = g.add_pi();
        let m = g.maj3(a, b, c);
        g.add_po(m);
        for idx in 0..8u32 {
            let bits = [idx & 1 == 1, idx >> 1 & 1 == 1, idx >> 2 & 1 == 1];
            let out = g.eval(&bits);
            let ones = bits.iter().filter(|&&b| b).count();
            assert_eq!(out[0], ones >= 2, "maj at {idx}");
        }
    }

    #[test]
    fn mux_truth() {
        let mut g = Aig::new();
        let s = g.add_pi();
        let t = g.add_pi();
        let e = g.add_pi();
        let m = g.mux(s, t, e);
        g.add_po(m);
        for idx in 0..8u32 {
            let bits = [idx & 1 == 1, idx >> 1 & 1 == 1, idx >> 2 & 1 == 1];
            let out = g.eval(&bits);
            let expect = if bits[0] { bits[1] } else { bits[2] };
            assert_eq!(out[0], expect, "mux at {idx}");
        }
    }

    #[test]
    fn levels_and_depth() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let c = g.add_pi();
        let ab = g.and(a, b);
        let abc = g.and(ab, c);
        g.add_po(abc);
        assert_eq!(g.depth(), 2);
        let lev = g.levels();
        assert_eq!(lev[ab.node().index()], 1);
        assert_eq!(lev[abc.node().index()], 2);
        assert_eq!(g.depth_from(&lev), 2);
        // The buffer-reusing variant agrees and recycles its allocation.
        let mut buf = vec![99u32; 1];
        g.levels_into(&mut buf);
        assert_eq!(buf, lev);
    }

    #[test]
    fn complemented_po() {
        let mut g = Aig::new();
        let a = g.add_pi();
        g.add_po(!a);
        assert_eq!(g.eval(&[true]), vec![false]);
        assert_eq!(g.eval(&[false]), vec![true]);
    }

    #[test]
    fn eval64_packs_vectors() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let x = g.xor(a, b);
        g.add_po(x);
        let va = 0b1010u64;
        let vb = 0b0110u64;
        let out = g.eval64(&[va, vb]);
        assert_eq!(out[0] & 0xF, (va ^ vb) & 0xF);
    }

    #[test]
    fn structural_hash_is_stable_and_sensitive() {
        let build = |extra_gate: bool| {
            let mut g = Aig::new();
            let a = g.add_pi();
            let b = g.add_pi();
            let x = g.xor(a, b);
            let y = if extra_gate { g.and(x, a) } else { x };
            g.add_po(y);
            g
        };
        // Same construction → same digest (the strash map does not leak in).
        assert_eq!(
            build(false).structural_hash(),
            build(false).structural_hash()
        );
        // A one-gate edit → different digest.
        assert_ne!(
            build(false).structural_hash(),
            build(true).structural_hash()
        );
        // PO polarity is part of the structure.
        let mut g = build(false);
        let h1 = g.structural_hash();
        let po = g.pos()[0];
        g.pos[0] = !po;
        assert_ne!(h1, g.structural_hash());
    }

    #[test]
    fn lookup_and_probes_without_mutation() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let x = g.and(a, b);
        let before = g.len();
        // Existing node found under both operand orders.
        assert_eq!(g.lookup_and(a, b), Some(x));
        assert_eq!(g.lookup_and(b, a), Some(x));
        // Trivial simplifications answered without a node.
        assert_eq!(g.lookup_and(a, Lit::FALSE), Some(Lit::FALSE));
        assert_eq!(g.lookup_and(a, !a), Some(Lit::FALSE));
        assert_eq!(g.lookup_and(Lit::TRUE, a), Some(a));
        assert_eq!(g.lookup_and(a, a), Some(a));
        // Absent structure reported as such, with no node created.
        assert_eq!(g.lookup_and(!a, b), None);
        assert_eq!(g.len(), before);
    }

    #[test]
    fn fanout_counting() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let x = g.and(a, b);
        let y = g.and(x, a);
        g.add_po(y);
        g.add_po(x);
        assert_eq!(g.fanout_count(x.node()), 2); // y + PO
        assert_eq!(g.fanout_count(a.node()), 2); // x + y
    }

    /// Every fanout count must equal the number of live AND + PO references.
    fn assert_fanouts_consistent(g: &Aig) {
        let mut expect = vec![0u32; g.len()];
        for id in g.and_ids() {
            let (a, b) = g.fanins(id).unwrap();
            expect[a.node().index()] += 1;
            expect[b.node().index()] += 1;
        }
        for po in g.pos() {
            expect[po.node().index()] += 1;
        }
        for id in g.node_ids() {
            assert_eq!(
                g.fanout_count(id),
                expect[id.index()],
                "fanout mismatch at n{}",
                id.0
            );
        }
    }

    #[test]
    fn substitute_repoints_users_and_pos() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let c = g.add_pi();
        let x = g.and(a, b); // will be replaced by c
        let y = g.and(x, c);
        g.add_po(y);
        g.add_po(!x);
        g.substitute(x.node(), c);
        // y = x & c becomes c & c = c, so the first PO folds to c and the
        // second to !c.
        assert_eq!(g.pos()[0], c);
        assert_eq!(g.pos()[1], !c);
        assert_eq!(g.fanout_count(x.node()), 0);
        let removed = g.delete_mffc(x.node());
        assert_eq!(removed, 1);
        // y folded during substitution, x was deleted: no live ANDs left.
        assert_eq!(g.and_count(), 0);
        assert_eq!(g.dead_count(), 2);
        assert_fanouts_consistent(&g);
    }

    #[test]
    fn substitute_folds_structural_duplicates() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let c = g.add_pi();
        let cb = g.and(c, b);
        let ab = g.and(a, b);
        let v = g.and(cb, c); // lower-id duplicate target
        let u = g.and(ab, c); // user of ab, duplicates v once ab -> cb
        g.add_po(v);
        g.add_po(u);
        g.substitute(ab.node(), cb);
        // u rewires to (cb, c) which duplicates v's structure; the winner
        // is the lower id, and both POs agree on it.
        assert_eq!(g.pos()[0], g.pos()[1]);
        g.delete_mffc(ab.node());
        assert_eq!(g.and_count(), 2); // cb + the merged user
        assert_fanouts_consistent(&g);
        for bits in 0..8u32 {
            let ins = [bits & 1 == 1, bits >> 1 & 1 == 1, bits >> 2 & 1 == 1];
            let want = ins[2] && ins[1];
            assert_eq!(g.eval(&ins), vec![want, want], "input {bits}");
        }
    }

    #[test]
    fn substitute_merges_upper_duplicates_too() {
        // The duplicate sits *above* the rewired user: the user claims the
        // strash key, and the upper copy folds into it when the scan gets
        // there — no stale duplicates survive a substitution.
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let c = g.add_pi();
        let y = g.and(b, c);
        let x = g.and(a, b);
        let u = g.and(x, c); // rewires to (y, c) on substitute
        let d = g.and(y, c); // pre-existing upper duplicate of that pair
        g.add_po(u);
        g.add_po(d);
        g.substitute(x.node(), y);
        assert_eq!(g.pos()[0], g.pos()[1]);
        g.delete_mffc(x.node());
        assert_eq!(g.and_count(), 2); // y + the merged (y & c)
        assert_fanouts_consistent(&g);
        for bits in 0..8u32 {
            let ins = [bits & 1 == 1, bits >> 1 & 1 == 1, bits >> 2 & 1 == 1];
            let want = ins[1] && ins[2];
            assert_eq!(g.eval(&ins), vec![want, want], "input {bits}");
        }
    }

    #[test]
    fn delete_mffc_reclaims_cone_and_slots_get_reused() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let c = g.add_pi();
        let x = g.xor(a, b); // 3 ANDs, exclusively feeding x
        let y = g.and(x, c);
        g.add_po(y);
        let before_len = g.len();
        g.substitute(y.node(), a);
        g.delete_mffc(y.node());
        assert_eq!(g.and_count(), 0);
        assert_eq!(g.dead_count(), 4);
        // New ANDs reuse freed slots instead of growing the array...
        let z = g.and(a, c);
        assert_eq!(g.len(), before_len);
        assert!(!g.is_dead(z.node()));
        // ...and only slots above both fanins qualify.
        assert!(z.node().0 > a.node().0.max(c.node().0));
        assert_fanouts_consistent(&g);
    }

    #[test]
    fn replace_fanin_updates_in_place_and_folds() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let c = g.add_pi();
        let x = g.and(a, b);
        g.add_po(x);
        // Plain in-place rewire: same node id, new function.
        let kept = g.replace_fanin(x.node(), b, c);
        assert_eq!(kept, x);
        assert_eq!(g.fanins(x.node()), Some((a, c)));
        assert_eq!(g.fanout_count(b.node()), 0);
        assert_eq!(g.fanout_count(c.node()), 1);
        // Folding rewire: a & !a = false; users and POs repoint, slot freed.
        let folded = g.replace_fanin(x.node(), c, !a);
        assert_eq!(folded, Lit::FALSE);
        assert_eq!(g.pos()[0], Lit::FALSE);
        assert!(g.is_dead(x.node()));
        assert_eq!(g.and_count(), 0);
        assert_fanouts_consistent(&g);
    }

    #[test]
    fn compact_restores_dense_form_and_matches_fresh_build() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let c = g.add_pi();
        let ab = g.and(a, b);
        let abc = g.and(ab, c);
        let bc = g.and(b, c);
        g.add_po(abc);
        g.add_po(bc);
        // Kill the middle of the id range: substitute ab away, delete it.
        g.substitute(ab.node(), a);
        g.delete_mffc(ab.node());
        assert!(g.dead_count() > 0);
        let map = g.compact();
        assert_eq!(g.dead_count(), 0);
        assert_eq!(map[ab.node().index()], None);
        // The compacted network hashes identically to building the final
        // structure from scratch.
        let mut fresh = Aig::new();
        let fa = fresh.add_pi();
        let fb = fresh.add_pi();
        let fc = fresh.add_pi();
        let fac = fresh.and(fa, fc);
        let fbc = fresh.and(fb, fc);
        fresh.add_po(fac);
        fresh.add_po(fbc);
        assert_eq!(g.structural_hash(), fresh.structural_hash());
        assert_fanouts_consistent(&g);
    }

    #[test]
    fn eval64_into_and_fanout_counts_into_reuse_buffers() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let x = g.xor(a, b);
        g.add_po(x);
        let (mut scratch, mut out) = (vec![7u64; 1], Vec::new());
        g.eval64_into(&[0b1010, 0b0110], &mut scratch, &mut out);
        assert_eq!(out, g.eval64(&[0b1010, 0b0110]));
        let mut counts = vec![9u32; 1];
        g.fanout_counts_into(&mut counts);
        assert_eq!(counts, g.fanout_counts());
    }

    #[test]
    fn edits_keep_ids_topological_and_eval_working() {
        // After arbitrary primitive edits, every live AND must still sit
        // above its fanins (the invariant all forward scans rely on).
        let mut g = Aig::new();
        let pis: Vec<Lit> = (0..4).map(|_| g.add_pi()).collect();
        let x = g.xor(pis[0], pis[1]);
        let y = g.maj3(x, pis[2], pis[3]);
        g.add_po(y);
        g.substitute(x.node(), pis[2]);
        g.delete_mffc(x.node());
        let z = g.and(pis[0], pis[3]); // reuses a freed slot
        g.add_po(z);
        for id in g.and_ids() {
            let (a, b) = g.fanins(id).unwrap();
            assert!(a.node().0 < id.0 && b.node().0 < id.0, "n{} fanins", id.0);
            assert!(!g.is_dead(a.node()) && !g.is_dead(b.node()));
        }
        // x is a complemented literal (xor ends in an OR), so substituting
        // its node by c turns x into !c: po0 = maj(!c, c, d) = d.
        for bits in 0..16u32 {
            let ins: Vec<bool> = (0..4).map(|k| bits >> k & 1 == 1).collect();
            let got = g.eval(&ins);
            assert_eq!(got[0], ins[3], "po0 = maj(!c, c, d) = d, at {bits}");
            assert_eq!(got[1], ins[0] && ins[3], "po1 at {bits}");
        }
    }
}
