//! And-inverter graphs with structural hashing.
//!
//! The [`Aig`] is the subject network of the mapping flow — the Rust
//! equivalent of mockturtle's `aig_network`. Nodes are two-input ANDs;
//! inverters live on edges as complement bits of [`Lit`]s. Construction
//! performs constant folding, trivial simplification and structural hashing,
//! so equivalent two-level structures share nodes.
//!
//! # Examples
//!
//! ```
//! use sfq_netlist::aig::Aig;
//!
//! let mut aig = Aig::new();
//! let a = aig.add_pi();
//! let b = aig.add_pi();
//! let sum = aig.xor(a, b);
//! aig.add_po(sum);
//! assert_eq!(aig.and_count(), 3); // xor = 3 ANDs
//! ```

use std::collections::HashMap;
use std::fmt;

/// Index of a node inside an [`Aig`]. Node 0 is the constant-zero node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The constant-zero node present in every AIG.
    pub const CONST0: NodeId = NodeId(0);

    /// Index as `usize` for direct slice access.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A literal: a node reference plus an optional complement.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// The constant-false literal.
    pub const FALSE: Lit = Lit(0);
    /// The constant-true literal.
    pub const TRUE: Lit = Lit(1);

    /// Builds a literal from a node and complement flag.
    pub fn new(node: NodeId, complement: bool) -> Self {
        Lit(node.0 << 1 | complement as u32)
    }

    /// The node this literal refers to.
    pub fn node(self) -> NodeId {
        NodeId(self.0 >> 1)
    }

    /// Whether the literal is complemented.
    pub fn is_complement(self) -> bool {
        self.0 & 1 == 1
    }

    /// The complemented literal.
    pub fn complement(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    /// This literal with complement flag set to `c`.
    pub fn with_complement(self, c: bool) -> Lit {
        Lit(self.0 & !1 | c as u32)
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    fn not(self) -> Lit {
        self.complement()
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_complement() {
            write!(f, "!n{}", self.node().0)
        } else {
            write!(f, "n{}", self.node().0)
        }
    }
}

/// Node payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// The constant-zero node (always node 0).
    Const0,
    /// Primary input; the payload is the PI ordinal.
    Input(u32),
    /// Two-input AND of the given literals.
    And(Lit, Lit),
}

#[derive(Debug, Clone)]
struct Node {
    kind: NodeKind,
    /// Number of AND nodes and primary outputs referencing this node.
    fanout: u32,
}

/// An and-inverter graph.
///
/// Nodes are stored in topological order by construction (an AND can only be
/// created after its fanins), so iteration over `0..len` is a valid forward
/// traversal.
#[derive(Debug, Clone, Default)]
pub struct Aig {
    nodes: Vec<Node>,
    pis: Vec<NodeId>,
    pos: Vec<Lit>,
    strash: HashMap<(Lit, Lit), NodeId>,
}

impl Aig {
    /// Creates an empty AIG containing only the constant node.
    pub fn new() -> Self {
        Aig {
            nodes: vec![Node {
                kind: NodeKind::Const0,
                fanout: 0,
            }],
            pis: Vec::new(),
            pos: Vec::new(),
            strash: HashMap::new(),
        }
    }

    /// Adds a primary input and returns its positive literal.
    pub fn add_pi(&mut self) -> Lit {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            kind: NodeKind::Input(self.pis.len() as u32),
            fanout: 0,
        });
        self.pis.push(id);
        Lit::new(id, false)
    }

    /// Registers `lit` as a primary output.
    pub fn add_po(&mut self, lit: Lit) {
        self.nodes[lit.node().index()].fanout += 1;
        self.pos.push(lit);
    }

    /// AND of two literals with simplification and structural hashing.
    pub fn and(&mut self, a: Lit, b: Lit) -> Lit {
        // Trivial cases.
        if a == Lit::FALSE || b == Lit::FALSE || a == !b {
            return Lit::FALSE;
        }
        if a == Lit::TRUE {
            return b;
        }
        if b == Lit::TRUE || a == b {
            return a;
        }
        // Normalize operand order for hashing.
        let (a, b) = if a.0 <= b.0 { (a, b) } else { (b, a) };
        if let Some(&id) = self.strash.get(&(a, b)) {
            return Lit::new(id, false);
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            kind: NodeKind::And(a, b),
            fanout: 0,
        });
        self.nodes[a.node().index()].fanout += 1;
        self.nodes[b.node().index()].fanout += 1;
        self.strash.insert((a, b), id);
        Lit::new(id, false)
    }

    /// Looks up what [`Aig::and`] would return for `(a, b)` **without**
    /// creating a node: trivial simplifications are applied and the strash
    /// table is consulted, but the network is never modified.
    ///
    /// Returns `None` when the AND does not exist yet — the cost probe used
    /// by cut rewriting to price candidate subgraphs against logic that is
    /// already present.
    pub fn lookup_and(&self, a: Lit, b: Lit) -> Option<Lit> {
        if a == Lit::FALSE || b == Lit::FALSE || a == !b {
            return Some(Lit::FALSE);
        }
        if a == Lit::TRUE {
            return Some(b);
        }
        if b == Lit::TRUE || a == b {
            return Some(a);
        }
        let (a, b) = if a.0 <= b.0 { (a, b) } else { (b, a) };
        self.strash.get(&(a, b)).map(|&id| Lit::new(id, false))
    }

    /// OR of two literals.
    pub fn or(&mut self, a: Lit, b: Lit) -> Lit {
        !self.and(!a, !b)
    }

    /// XOR of two literals (three AND nodes).
    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        let left = self.and(a, !b);
        let right = self.and(!a, b);
        self.or(left, right)
    }

    /// XNOR of two literals.
    pub fn xnor(&mut self, a: Lit, b: Lit) -> Lit {
        !self.xor(a, b)
    }

    /// Three-input majority.
    pub fn maj3(&mut self, a: Lit, b: Lit, c: Lit) -> Lit {
        let ab = self.and(a, b);
        let ac = self.and(a, c);
        let bc = self.and(b, c);
        let t = self.or(ab, ac);
        self.or(t, bc)
    }

    /// Three-input XOR.
    pub fn xor3(&mut self, a: Lit, b: Lit, c: Lit) -> Lit {
        let t = self.xor(a, b);
        self.xor(t, c)
    }

    /// If-then-else `sel ? t : e`.
    pub fn mux(&mut self, sel: Lit, t: Lit, e: Lit) -> Lit {
        let pt = self.and(sel, t);
        let pe = self.and(!sel, e);
        self.or(pt, pe)
    }

    /// Number of nodes including constant and PIs.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the network has no gates and no inputs.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1 && self.pos.is_empty()
    }

    /// Number of AND gates.
    pub fn and_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::And(..)))
            .count()
    }

    /// Number of primary inputs.
    pub fn pi_count(&self) -> usize {
        self.pis.len()
    }

    /// Number of primary outputs.
    pub fn po_count(&self) -> usize {
        self.pos.len()
    }

    /// The primary inputs in declaration order.
    pub fn pis(&self) -> &[NodeId] {
        &self.pis
    }

    /// The primary output literals in declaration order.
    pub fn pos(&self) -> &[Lit] {
        &self.pos
    }

    /// Kind of node `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn kind(&self, id: NodeId) -> NodeKind {
        self.nodes[id.index()].kind
    }

    /// Fanins of an AND node, or `None` for PIs/constant.
    pub fn fanins(&self, id: NodeId) -> Option<(Lit, Lit)> {
        match self.nodes[id.index()].kind {
            NodeKind::And(a, b) => Some((a, b)),
            _ => None,
        }
    }

    /// Combined fanout count (ANDs + POs referencing the node).
    pub fn fanout_count(&self, id: NodeId) -> u32 {
        self.nodes[id.index()].fanout
    }

    /// Iterator over all node ids in topological order (constant and PIs first).
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterator over AND-node ids in topological order.
    pub fn and_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_ids()
            .filter(move |id| matches!(self.nodes[id.index()].kind, NodeKind::And(..)))
    }

    /// Logic level of every node (PIs and constant at level 0).
    pub fn levels(&self) -> Vec<u32> {
        let mut lev = Vec::new();
        self.levels_into(&mut lev);
        lev
    }

    /// [`Aig::levels`] writing into a caller-owned buffer, so hot loops
    /// that re-level repeatedly (the `sfq-opt` fixpoint loop) reuse one
    /// allocation instead of paying a fresh vector per round.
    pub fn levels_into(&self, lev: &mut Vec<u32>) {
        lev.clear();
        lev.resize(self.nodes.len(), 0);
        for id in self.node_ids() {
            if let NodeKind::And(a, b) = self.nodes[id.index()].kind {
                lev[id.index()] = 1 + lev[a.node().index()].max(lev[b.node().index()]);
            }
        }
    }

    /// Depth of the network: maximum level over primary outputs.
    pub fn depth(&self) -> u32 {
        self.depth_from(&self.levels())
    }

    /// [`Aig::depth`] over a precomputed level vector (see
    /// [`Aig::levels`]), for call sites that already hold one.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is shorter than the network.
    pub fn depth_from(&self, levels: &[u32]) -> u32 {
        self.pos
            .iter()
            .map(|l| levels[l.node().index()])
            .max()
            .unwrap_or(0)
    }

    /// Evaluates all primary outputs on 64 input vectors at once.
    ///
    /// `inputs[i]` packs 64 Boolean values of PI `i`; the result packs the
    /// corresponding output values.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != pi_count()`.
    pub fn eval64(&self, inputs: &[u64]) -> Vec<u64> {
        assert_eq!(
            inputs.len(),
            self.pis.len(),
            "one word per primary input required"
        );
        let mut val = vec![0u64; self.nodes.len()];
        for id in self.node_ids() {
            val[id.index()] = match self.nodes[id.index()].kind {
                NodeKind::Const0 => 0,
                NodeKind::Input(i) => inputs[i as usize],
                NodeKind::And(a, b) => {
                    let va = val[a.node().index()] ^ if a.is_complement() { u64::MAX } else { 0 };
                    let vb = val[b.node().index()] ^ if b.is_complement() { u64::MAX } else { 0 };
                    va & vb
                }
            };
        }
        self.pos
            .iter()
            .map(|l| val[l.node().index()] ^ if l.is_complement() { u64::MAX } else { 0 })
            .collect()
    }

    /// Evaluates on a single Boolean assignment.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != pi_count()`.
    pub fn eval(&self, inputs: &[bool]) -> Vec<bool> {
        let words: Vec<u64> = inputs
            .iter()
            .map(|&b| if b { u64::MAX } else { 0 })
            .collect();
        self.eval64(&words)
            .into_iter()
            .map(|w| w & 1 == 1)
            .collect()
    }

    /// Reference counts equal to fanout; exposed for MFFC computation.
    pub(crate) fn fanout_counts(&self) -> Vec<u32> {
        self.nodes.iter().map(|n| n.fanout).collect()
    }

    /// Stable 64-bit structural digest of the network.
    ///
    /// Covers exactly the logical structure — node kinds with fanin literals
    /// in construction (topological) order, plus the PI/PO interface — and
    /// nothing else: the strash table and fanout counts do not participate.
    /// Two identically constructed AIGs therefore hash equal across
    /// processes and platforms, while editing a single gate changes the
    /// digest with overwhelming probability. This is the content address
    /// used by the `sfq-engine` result cache.
    pub fn structural_hash(&self) -> u64 {
        use std::hash::Hasher;
        let mut h = crate::fnv::Fnv1a::new();
        h.write_usize(self.nodes.len());
        for node in &self.nodes {
            match node.kind {
                NodeKind::Const0 => h.write_u8(0),
                NodeKind::Input(i) => {
                    h.write_u8(1);
                    h.write_u32(i);
                }
                NodeKind::And(a, b) => {
                    h.write_u8(2);
                    h.write_u32(a.0);
                    h.write_u32(b.0);
                }
            }
        }
        h.write_usize(self.pis.len());
        h.write_usize(self.pos.len());
        for po in &self.pos {
            h.write_u32(po.0);
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_simplifications() {
        let mut g = Aig::new();
        let a = g.add_pi();
        assert_eq!(g.and(a, Lit::FALSE), Lit::FALSE);
        assert_eq!(g.and(Lit::TRUE, a), a);
        assert_eq!(g.and(a, a), a);
        assert_eq!(g.and(a, !a), Lit::FALSE);
        assert_eq!(g.and_count(), 0);
    }

    #[test]
    fn structural_hashing_shares_nodes() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let x = g.and(a, b);
        let y = g.and(b, a);
        assert_eq!(x, y);
        assert_eq!(g.and_count(), 1);
    }

    #[test]
    fn xor_truth() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let x = g.xor(a, b);
        g.add_po(x);
        for (va, vb) in [(false, false), (false, true), (true, false), (true, true)] {
            let out = g.eval(&[va, vb]);
            assert_eq!(out[0], va ^ vb, "xor({va},{vb})");
        }
    }

    #[test]
    fn maj3_truth() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let c = g.add_pi();
        let m = g.maj3(a, b, c);
        g.add_po(m);
        for idx in 0..8u32 {
            let bits = [idx & 1 == 1, idx >> 1 & 1 == 1, idx >> 2 & 1 == 1];
            let out = g.eval(&bits);
            let ones = bits.iter().filter(|&&b| b).count();
            assert_eq!(out[0], ones >= 2, "maj at {idx}");
        }
    }

    #[test]
    fn mux_truth() {
        let mut g = Aig::new();
        let s = g.add_pi();
        let t = g.add_pi();
        let e = g.add_pi();
        let m = g.mux(s, t, e);
        g.add_po(m);
        for idx in 0..8u32 {
            let bits = [idx & 1 == 1, idx >> 1 & 1 == 1, idx >> 2 & 1 == 1];
            let out = g.eval(&bits);
            let expect = if bits[0] { bits[1] } else { bits[2] };
            assert_eq!(out[0], expect, "mux at {idx}");
        }
    }

    #[test]
    fn levels_and_depth() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let c = g.add_pi();
        let ab = g.and(a, b);
        let abc = g.and(ab, c);
        g.add_po(abc);
        assert_eq!(g.depth(), 2);
        let lev = g.levels();
        assert_eq!(lev[ab.node().index()], 1);
        assert_eq!(lev[abc.node().index()], 2);
        assert_eq!(g.depth_from(&lev), 2);
        // The buffer-reusing variant agrees and recycles its allocation.
        let mut buf = vec![99u32; 1];
        g.levels_into(&mut buf);
        assert_eq!(buf, lev);
    }

    #[test]
    fn complemented_po() {
        let mut g = Aig::new();
        let a = g.add_pi();
        g.add_po(!a);
        assert_eq!(g.eval(&[true]), vec![false]);
        assert_eq!(g.eval(&[false]), vec![true]);
    }

    #[test]
    fn eval64_packs_vectors() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let x = g.xor(a, b);
        g.add_po(x);
        let va = 0b1010u64;
        let vb = 0b0110u64;
        let out = g.eval64(&[va, vb]);
        assert_eq!(out[0] & 0xF, (va ^ vb) & 0xF);
    }

    #[test]
    fn structural_hash_is_stable_and_sensitive() {
        let build = |extra_gate: bool| {
            let mut g = Aig::new();
            let a = g.add_pi();
            let b = g.add_pi();
            let x = g.xor(a, b);
            let y = if extra_gate { g.and(x, a) } else { x };
            g.add_po(y);
            g
        };
        // Same construction → same digest (the strash map does not leak in).
        assert_eq!(
            build(false).structural_hash(),
            build(false).structural_hash()
        );
        // A one-gate edit → different digest.
        assert_ne!(
            build(false).structural_hash(),
            build(true).structural_hash()
        );
        // PO polarity is part of the structure.
        let mut g = build(false);
        let h1 = g.structural_hash();
        let po = g.pos()[0];
        g.pos[0] = !po;
        assert_ne!(h1, g.structural_hash());
    }

    #[test]
    fn lookup_and_probes_without_mutation() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let x = g.and(a, b);
        let before = g.len();
        // Existing node found under both operand orders.
        assert_eq!(g.lookup_and(a, b), Some(x));
        assert_eq!(g.lookup_and(b, a), Some(x));
        // Trivial simplifications answered without a node.
        assert_eq!(g.lookup_and(a, Lit::FALSE), Some(Lit::FALSE));
        assert_eq!(g.lookup_and(a, !a), Some(Lit::FALSE));
        assert_eq!(g.lookup_and(Lit::TRUE, a), Some(a));
        assert_eq!(g.lookup_and(a, a), Some(a));
        // Absent structure reported as such, with no node created.
        assert_eq!(g.lookup_and(!a, b), None);
        assert_eq!(g.len(), before);
    }

    #[test]
    fn fanout_counting() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let x = g.and(a, b);
        let y = g.and(x, a);
        g.add_po(y);
        g.add_po(x);
        assert_eq!(g.fanout_count(x.node()), 2); // y + PO
        assert_eq!(g.fanout_count(a.node()), 2); // x + y
    }
}
