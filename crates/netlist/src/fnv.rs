//! Stable FNV-1a hashing for content addressing.
//!
//! The standard-library [`std::collections::hash_map::DefaultHasher`] is
//! randomly seeded per process, so its digests cannot serve as *content
//! addresses* that stay valid across runs. [`Fnv1a`] is the classic
//! Fowler–Noll–Vo 1a function over 64 bits: fully deterministic, seedless,
//! and endian-stable (multi-byte integers are always fed little-endian).
//! It is the hash behind [`crate::aig::Aig::structural_hash`] and the
//! `sfq-engine` result-cache keys.
//!
//! This is *not* a collision-resistant cryptographic hash; it is used where
//! accidental collisions are the only threat model (cache keys over a few
//! dozen jobs), not where an adversary supplies inputs.
//!
//! # Examples
//!
//! ```
//! use sfq_netlist::fnv::Fnv1a;
//! use std::hash::Hasher;
//!
//! let mut a = Fnv1a::new();
//! a.write_u32(42);
//! let mut b = Fnv1a::new();
//! b.write_u32(42);
//! assert_eq!(a.finish(), b.finish()); // deterministic across instances
//! ```

use std::hash::{BuildHasher, Hasher};

const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a hasher with platform-independent integer encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// Creates a hasher at the standard FNV offset basis.
    pub fn new() -> Self {
        Fnv1a(OFFSET_BASIS)
    }

    /// Convenience: hashes a byte slice in one call.
    pub fn hash_bytes(bytes: &[u8]) -> u64 {
        let mut h = Fnv1a::new();
        h.write(bytes);
        h.finish()
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(PRIME);
        }
    }

    // The default integer methods hash native-endian bytes; pin every width
    // to little-endian so digests agree across platforms.
    fn write_u8(&mut self, i: u8) {
        self.write(&[i]);
    }

    fn write_u16(&mut self, i: u16) {
        self.write(&i.to_le_bytes());
    }

    fn write_u32(&mut self, i: u32) {
        self.write(&i.to_le_bytes());
    }

    fn write_u64(&mut self, i: u64) {
        self.write(&i.to_le_bytes());
    }

    fn write_usize(&mut self, i: usize) {
        // usize width differs by platform; always encode as 64 bits.
        self.write_u64(i as u64);
    }
}

/// [`BuildHasher`] producing [`Fnv1a`] hashers, for use as the `S`
/// parameter of `HashMap`/`HashSet` on hot paths.
///
/// The default SipHash hasher is DoS-resistant but costs ~2× per lookup on
/// the short fixed-width keys the netlist layer hashes (packed literal
/// pairs, truth tables, node ids). Those maps never hash attacker-chosen
/// data, so the strash table and the optimizer's memo tables trade the
/// resistance for speed. Determinism is a bonus: iteration-independent
/// algorithms stay byte-identical, and seeded-map behavior can never leak
/// into results.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FnvBuildHasher;

impl BuildHasher for FnvBuildHasher {
    type Hasher = Fnv1a;

    fn build_hasher(&self) -> Fnv1a {
        Fnv1a::new()
    }
}

/// A `HashMap` keyed with [`FnvBuildHasher`].
pub type FnvHashMap<K, V> = std::collections::HashMap<K, V, FnvBuildHasher>;

/// A `HashSet` keyed with [`FnvBuildHasher`].
pub type FnvHashSet<T> = std::collections::HashSet<T, FnvBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_hasher_matches_direct_use() {
        let mut direct = Fnv1a::new();
        direct.write_u64(0xDEAD_BEEF);
        let mut built = FnvBuildHasher.build_hasher();
        built.write_u64(0xDEAD_BEEF);
        assert_eq!(direct.finish(), built.finish());
    }

    #[test]
    fn fnv_map_works_as_a_map() {
        let mut m: FnvHashMap<u32, &str> = FnvHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn known_vectors() {
        // Reference FNV-1a digests (e.g. from the IETF draft test vectors).
        assert_eq!(Fnv1a::hash_bytes(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(Fnv1a::hash_bytes(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(Fnv1a::hash_bytes(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn integer_writes_are_width_tagged_le() {
        let mut a = Fnv1a::new();
        a.write_u32(0x0102_0304);
        let mut b = Fnv1a::new();
        b.write(&[0x04, 0x03, 0x02, 0x01]);
        assert_eq!(a.finish(), b.finish());
        // usize always hashes as 64 bits.
        let mut c = Fnv1a::new();
        c.write_usize(7);
        let mut d = Fnv1a::new();
        d.write_u64(7);
        assert_eq!(c.finish(), d.finish());
    }

    #[test]
    fn order_sensitivity() {
        let mut a = Fnv1a::new();
        a.write_u8(1);
        a.write_u8(2);
        let mut b = Fnv1a::new();
        b.write_u8(2);
        b.write_u8(1);
        assert_ne!(a.finish(), b.finish());
    }
}
