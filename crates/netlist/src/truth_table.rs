//! Small-function truth tables (up to 6 variables) packed into a single `u64`.
//!
//! Cut functions in SFQ technology mapping never exceed a handful of inputs
//! (the T1 cell consumes exactly three), so a fixed-width bitset
//! representation is both simpler and faster than a growable one. Bit `i` of
//! the word stores the function value on the input assignment whose binary
//! encoding is `i` (variable 0 is the least significant input).
//!
//! # Examples
//!
//! ```
//! use sfq_netlist::truth_table::TruthTable;
//!
//! let a = TruthTable::var(3, 0);
//! let b = TruthTable::var(3, 1);
//! let c = TruthTable::var(3, 2);
//! let maj = (a & b) | (a & c) | (b & c);
//! assert_eq!(maj, TruthTable::maj3());
//! assert!(maj.is_totally_symmetric());
//! ```

use std::fmt;
use std::ops::{BitAnd, BitOr, BitXor, Not};

/// Masks selecting the positive cofactor bits of variable `v` in a 6-var table.
const VAR_MASK: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

/// A completely specified Boolean function of at most six variables.
///
/// The table is always stored normalized: bits above `2^num_vars` replicate
/// the low block so that bitwise operators work without masking.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TruthTable {
    bits: u64,
    num_vars: u8,
}

impl TruthTable {
    /// Maximum number of variables representable.
    pub const MAX_VARS: usize = 6;

    /// Creates a table from raw bits over `num_vars` variables.
    ///
    /// Only the low `2^num_vars` bits of `bits` are significant; they are
    /// replicated to fill the word.
    ///
    /// # Panics
    ///
    /// Panics if `num_vars > 6`.
    pub fn from_bits(num_vars: usize, bits: u64) -> Self {
        assert!(num_vars <= Self::MAX_VARS, "at most 6 variables supported");
        let mut t = TruthTable {
            bits,
            num_vars: num_vars as u8,
        };
        t.normalize();
        t
    }

    /// The constant-zero function of `num_vars` variables.
    pub fn zero(num_vars: usize) -> Self {
        Self::from_bits(num_vars, 0)
    }

    /// The constant-one function of `num_vars` variables.
    pub fn one(num_vars: usize) -> Self {
        Self::from_bits(num_vars, u64::MAX)
    }

    /// The projection function returning variable `var` of `num_vars`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars` or `num_vars > 6`.
    pub fn var(num_vars: usize, var: usize) -> Self {
        assert!(var < num_vars, "variable index out of range");
        Self::from_bits(num_vars, VAR_MASK[var])
    }

    /// Three-input exclusive-or (the T1 cell's `S` output).
    pub fn xor3() -> Self {
        let (a, b, c) = Self::three_vars();
        a ^ b ^ c
    }

    /// Three-input majority (the T1 cell's `C` output).
    pub fn maj3() -> Self {
        let (a, b, c) = Self::three_vars();
        (a & b) | (a & c) | (b & c)
    }

    /// Three-input or (the T1 cell's `Q` output).
    pub fn or3() -> Self {
        let (a, b, c) = Self::three_vars();
        a | b | c
    }

    fn three_vars() -> (Self, Self, Self) {
        (Self::var(3, 0), Self::var(3, 1), Self::var(3, 2))
    }

    /// Number of variables of this function.
    pub fn num_vars(&self) -> usize {
        self.num_vars as usize
    }

    /// Raw bit representation (low `2^num_vars` bits are significant).
    pub fn bits(&self) -> u64 {
        self.bits & self.low_mask()
    }

    fn low_mask(&self) -> u64 {
        if self.num_vars as usize >= Self::MAX_VARS {
            u64::MAX
        } else {
            (1u64 << (1usize << self.num_vars)) - 1
        }
    }

    fn normalize(&mut self) {
        let mut width = 1usize << self.num_vars;
        self.bits &= self.low_mask();
        while width < 64 {
            self.bits |= self.bits << width;
            width <<= 1;
        }
    }

    /// Value of the function on input assignment `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 2^num_vars`.
    pub fn get(&self, index: usize) -> bool {
        assert!(index < (1usize << self.num_vars), "assignment out of range");
        (self.bits >> index) & 1 == 1
    }

    /// Number of input assignments on which the function is true.
    pub fn count_ones(&self) -> u32 {
        (self.bits & self.low_mask()).count_ones()
    }

    /// Returns `true` if the function is constant zero.
    pub fn is_zero(&self) -> bool {
        self.bits() == 0
    }

    /// Returns `true` if the function is constant one.
    pub fn is_one(&self) -> bool {
        self.bits() == self.low_mask()
    }

    /// Positive cofactor with respect to variable `var`.
    pub fn cofactor1(&self, var: usize) -> Self {
        assert!(var < self.num_vars as usize);
        let m = VAR_MASK[var];
        let hi = self.bits & m;
        let shifted = hi >> (1usize << var);
        TruthTable {
            bits: hi | shifted,
            num_vars: self.num_vars,
        }
    }

    /// Negative cofactor with respect to variable `var`.
    pub fn cofactor0(&self, var: usize) -> Self {
        assert!(var < self.num_vars as usize);
        let m = !VAR_MASK[var];
        let lo = self.bits & m;
        let shifted = lo << (1usize << var);
        TruthTable {
            bits: lo | shifted,
            num_vars: self.num_vars,
        }
    }

    /// Returns `true` if the function actually depends on variable `var`.
    pub fn depends_on(&self, var: usize) -> bool {
        self.cofactor0(var).bits() != self.cofactor1(var).bits()
    }

    /// The set of variables the function depends on, as a bitmask.
    pub fn support_mask(&self) -> u8 {
        let mut mask = 0u8;
        for v in 0..self.num_vars as usize {
            if self.depends_on(v) {
                mask |= 1 << v;
            }
        }
        mask
    }

    /// Number of variables in the functional support.
    pub fn support_size(&self) -> usize {
        self.support_mask().count_ones() as usize
    }

    /// Complements variable `var` in place, returning the new table.
    pub fn flip_var(&self, var: usize) -> Self {
        assert!(var < self.num_vars as usize);
        let shift = 1usize << var;
        let m = VAR_MASK[var];
        let bits = ((self.bits & m) >> shift) | ((self.bits & !m) << shift);
        TruthTable {
            bits,
            num_vars: self.num_vars,
        }
    }

    /// Swaps adjacent variables `var` and `var + 1`.
    pub fn swap_adjacent(&self, var: usize) -> Self {
        assert!(var + 1 < self.num_vars as usize);
        let shift = 1usize << var;
        // Partition minterms by the values of (v, v+1): keep 00 and 11 blocks,
        // exchange the 01 and 10 blocks.
        let m01 = VAR_MASK[var] & !VAR_MASK[var + 1];
        let m10 = !VAR_MASK[var] & VAR_MASK[var + 1];
        let keep = self.bits & !(m01 | m10);
        let bits = keep | ((self.bits & m01) << shift) | ((self.bits & m10) >> shift);
        TruthTable {
            bits,
            num_vars: self.num_vars,
        }
    }

    /// Applies an arbitrary variable permutation.
    ///
    /// `perm[i]` is the new position of old variable `i`.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..num_vars`.
    pub fn permute(&self, perm: &[usize]) -> Self {
        assert_eq!(
            perm.len(),
            self.num_vars as usize,
            "permutation length mismatch"
        );
        let mut seen = [false; Self::MAX_VARS];
        for &p in perm {
            assert!(p < perm.len() && !seen[p], "not a permutation");
            seen[p] = true;
        }
        // Apply as a sequence of adjacent transpositions (selection sort).
        let mut cur: Vec<usize> = (0..perm.len()).map(|i| perm[i]).collect();
        let mut t = *self;
        // Sort `cur` with adjacent swaps; each swap on positions (i, i+1)
        // corresponds to swapping variables i and i+1 of the table.
        let n = cur.len();
        loop {
            let mut swapped = false;
            for i in 0..n - 1 {
                if cur[i] > cur[i + 1] {
                    cur.swap(i, i + 1);
                    t = t.swap_adjacent(i);
                    swapped = true;
                }
            }
            if !swapped {
                break;
            }
        }
        t
    }

    /// Returns `true` if the function is invariant under every permutation of
    /// its variables (as XOR3, MAJ3 and OR3 are).
    pub fn is_totally_symmetric(&self) -> bool {
        for v in 0..(self.num_vars as usize).saturating_sub(1) {
            if self.swap_adjacent(v) != *self {
                return false;
            }
        }
        true
    }

    /// Expands the function to a larger variable count (new variables are
    /// don't-cares the function does not depend on).
    ///
    /// # Panics
    ///
    /// Panics if `num_vars` is smaller than the current count or exceeds 6.
    pub fn extend_to(&self, num_vars: usize) -> Self {
        assert!(num_vars >= self.num_vars as usize && num_vars <= Self::MAX_VARS);
        TruthTable {
            bits: self.bits,
            num_vars: num_vars as u8,
        }
    }

    /// Shrinks the function to its support, returning the compacted table and
    /// the list of original variable indices retained (in ascending order).
    pub fn shrink_to_support(&self) -> (Self, Vec<usize>) {
        let mut vars: Vec<usize> = (0..self.num_vars as usize)
            .filter(|&v| self.depends_on(v))
            .collect();
        let mut t = *self;
        // Compact support variables into the low positions while preserving order.
        for (target, _) in vars.clone().iter().enumerate() {
            let mut at = vars[target];
            while at > target {
                t = t.swap_adjacent(at - 1);
                at -= 1;
            }
        }
        let k = vars.len();
        let out = TruthTable::from_bits(k, t.bits);
        vars.truncate(k);
        (out, vars)
    }
}

impl Not for TruthTable {
    type Output = TruthTable;
    fn not(self) -> TruthTable {
        TruthTable {
            bits: !self.bits,
            num_vars: self.num_vars,
        }
    }
}

macro_rules! impl_bitop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait for TruthTable {
            type Output = TruthTable;
            fn $method(self, rhs: TruthTable) -> TruthTable {
                assert_eq!(
                    self.num_vars, rhs.num_vars,
                    "truth tables must have the same variable count"
                );
                TruthTable { bits: self.bits $op rhs.bits, num_vars: self.num_vars }
            }
        }
    };
}

impl_bitop!(BitAnd, bitand, &);
impl_bitop!(BitOr, bitor, |);
impl_bitop!(BitXor, bitxor, ^);

impl fmt::Debug for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TruthTable({}v, {:#x})", self.num_vars, self.bits())
    }
}

impl fmt::Display for TruthTable {
    /// Hexadecimal truth-table string, most significant assignment first.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let digits = (1usize << self.num_vars).div_ceil(4).max(1);
        write!(f, "{:0width$x}", self.bits(), width = digits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projections_match_masks() {
        for v in 0..6 {
            let t = TruthTable::var(6, v);
            for idx in 0..64usize {
                assert_eq!(t.get(idx), (idx >> v) & 1 == 1);
            }
        }
    }

    #[test]
    fn normalization_replicates_low_block() {
        let t = TruthTable::from_bits(2, 0b0110);
        // 2-var XOR replicated across the word means ops with masks work.
        assert_eq!(t.bits(), 0b0110);
        let t3 = t.extend_to(3);
        assert_eq!(t3.bits(), 0b0110_0110);
    }

    #[test]
    fn xor3_and_maj3_values() {
        let x = TruthTable::xor3();
        let m = TruthTable::maj3();
        let o = TruthTable::or3();
        for idx in 0..8usize {
            let ones = (idx as u32).count_ones();
            assert_eq!(x.get(idx), ones % 2 == 1, "xor3 at {idx}");
            assert_eq!(m.get(idx), ones >= 2, "maj3 at {idx}");
            assert_eq!(o.get(idx), ones >= 1, "or3 at {idx}");
        }
    }

    #[test]
    fn cofactors_reconstruct_function() {
        let f = TruthTable::from_bits(3, 0b1011_0010);
        for v in 0..3 {
            let c0 = f.cofactor0(v);
            let c1 = f.cofactor1(v);
            let xv = TruthTable::var(3, v);
            let rebuilt = (xv & c1) | (!xv & c0);
            assert_eq!(rebuilt.bits(), f.bits(), "Shannon expansion on var {v}");
        }
    }

    #[test]
    fn flip_var_is_involution() {
        let f = TruthTable::from_bits(4, 0xBEEF);
        for v in 0..4 {
            assert_eq!(f.flip_var(v).flip_var(v), f);
        }
    }

    #[test]
    fn swap_adjacent_is_involution() {
        let f = TruthTable::from_bits(4, 0x1234);
        for v in 0..3 {
            assert_eq!(f.swap_adjacent(v).swap_adjacent(v), f);
        }
    }

    #[test]
    fn permute_identity_and_rotation() {
        let f = TruthTable::from_bits(3, 0b1100_1010);
        assert_eq!(f.permute(&[0, 1, 2]), f);
        // Rotate variables: old var i goes to position (i+1) mod 3.
        let g = f.permute(&[1, 2, 0]);
        for idx in 0..8usize {
            let a = idx & 1;
            let b = (idx >> 1) & 1;
            let c = (idx >> 2) & 1;
            // In g, new position 1 holds old var 0, position 2 old var 1, position 0 old var 2.
            let orig_idx = (b << 2) | (a << 1) | c;
            let _ = orig_idx;
            // Verify via evaluation: g(x0,x1,x2) = f(x1, x2, x0) since old var0 is read
            // from new position 1, old var1 from position 2, old var2 from position 0.
            let expect = f.get((b) | ((c) << 1) | ((a) << 2));
            assert_eq!(g.get(idx), expect, "idx {idx}");
        }
    }

    #[test]
    fn symmetric_functions_detected() {
        assert!(TruthTable::xor3().is_totally_symmetric());
        assert!(TruthTable::maj3().is_totally_symmetric());
        assert!(TruthTable::or3().is_totally_symmetric());
        assert!(!TruthTable::var(3, 0).is_totally_symmetric());
        let f = TruthTable::var(3, 0) & TruthTable::var(3, 1);
        assert!(!f.is_totally_symmetric());
    }

    #[test]
    fn support_and_shrink() {
        // f = x0 XOR x2 over 4 vars.
        let f = TruthTable::var(4, 0) ^ TruthTable::var(4, 2);
        assert_eq!(f.support_mask(), 0b0101);
        assert_eq!(f.support_size(), 2);
        let (g, vars) = f.shrink_to_support();
        assert_eq!(vars, vec![0, 2]);
        assert_eq!(g, TruthTable::var(2, 0) ^ TruthTable::var(2, 1));
    }

    #[test]
    fn constants() {
        assert!(TruthTable::zero(3).is_zero());
        assert!(TruthTable::one(3).is_one());
        assert!(!TruthTable::zero(3).is_one());
        assert_eq!(TruthTable::zero(0).num_vars(), 0);
        assert!(TruthTable::one(0).get(0));
    }

    #[test]
    fn display_format() {
        assert_eq!(TruthTable::xor3().to_string(), "96");
        assert_eq!(TruthTable::maj3().to_string(), "e8");
    }

    #[test]
    #[should_panic(expected = "at most 6 variables")]
    fn too_many_vars_panics() {
        let _ = TruthTable::zero(7);
    }
}
