//! K-feasible cut enumeration with truth-table computation.
//!
//! Implements the classic bottom-up cut enumeration of Cong et al. (FPGA'99,
//! ref \[8\] of the paper) with per-node cut-count limits ("priority cuts") and
//! dominance filtering. Every cut carries the Boolean function it computes in
//! terms of its (sorted) leaves, which is what T1 Boolean matching consumes.
//!
//! # Examples
//!
//! ```
//! use sfq_netlist::aig::Aig;
//! use sfq_netlist::cut::{enumerate_cuts, CutConfig};
//! use sfq_netlist::truth_table::TruthTable;
//!
//! let mut aig = Aig::new();
//! let a = aig.add_pi();
//! let b = aig.add_pi();
//! let c = aig.add_pi();
//! let m = aig.maj3(a, b, c);
//! aig.add_po(m);
//!
//! let cuts = enumerate_cuts(&aig, &CutConfig::default());
//! // Cut functions describe the positive node; the builder may hand back a
//! // complemented literal, so compare modulo the root polarity.
//! let found = cuts.cuts(m.node()).iter().any(|cut| {
//!     cut.leaves().len() == 3 && {
//!         let tt = if m.is_complement() { !cut.truth_table() } else { cut.truth_table() };
//!         tt == TruthTable::maj3()
//!     }
//! });
//! assert!(found);
//! ```

use crate::aig::{Aig, NodeId, NodeKind};
use crate::truth_table::TruthTable;

/// A cut: a set of leaves plus the function of the root in terms of them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cut {
    leaves: Vec<NodeId>,
    tt: TruthTable,
}

impl Cut {
    /// The sorted leaf nodes of the cut.
    pub fn leaves(&self) -> &[NodeId] {
        &self.leaves
    }

    /// The function of the cut root over the leaves (variable `i` is
    /// `leaves()[i]`).
    pub fn truth_table(&self) -> TruthTable {
        self.tt
    }

    /// Returns `true` if every leaf of `self` is a leaf of `other`.
    fn dominates(&self, other: &Cut) -> bool {
        self.leaves.len() <= other.leaves.len()
            && self
                .leaves
                .iter()
                .all(|l| other.leaves.binary_search(l).is_ok())
    }
}

/// Parameters of the enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CutConfig {
    /// Maximum cut width (leaf count). At most 6.
    pub max_leaves: usize,
    /// Maximum number of cuts stored per node (priority-cut limit).
    pub max_cuts: usize,
}

impl Default for CutConfig {
    /// `max_leaves = 4`, `max_cuts = 25` — enough to discover all T1
    /// candidates in arithmetic networks while staying linear in practice.
    fn default() -> Self {
        CutConfig {
            max_leaves: 4,
            max_cuts: 25,
        }
    }
}

/// Per-node cut sets for a whole network.
#[derive(Debug, Clone)]
pub struct CutSet {
    cuts: Vec<Vec<Cut>>,
}

impl CutSet {
    /// The cuts enumerated for `node` (first cut is the trivial one for
    /// PIs, and cuts are ordered smaller-first for ANDs).
    pub fn cuts(&self, node: NodeId) -> &[Cut] {
        &self.cuts[node.index()]
    }

    /// Total number of stored cuts (diagnostic).
    pub fn total(&self) -> usize {
        self.cuts.iter().map(Vec::len).sum()
    }
}

/// Re-expresses `tt` (over `leaves`) on the superset `union` of leaves.
fn expand_tt(tt: TruthTable, leaves: &[NodeId], union: &[NodeId]) -> TruthTable {
    debug_assert!(union.len() <= TruthTable::MAX_VARS);
    let positions: Vec<usize> = leaves
        .iter()
        .map(|l| union.binary_search(l).expect("leaf must be in union"))
        .collect();
    let m = union.len();
    let mut bits = 0u64;
    for idx in 0..(1usize << m) {
        let mut sub = 0usize;
        for (i, &p) in positions.iter().enumerate() {
            sub |= ((idx >> p) & 1) << i;
        }
        if tt.get(sub) {
            bits |= 1 << idx;
        }
    }
    TruthTable::from_bits(m, bits)
}

fn merge_leaves(a: &[NodeId], b: &[NodeId], max: usize) -> Option<Vec<NodeId>> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        let next = if j >= b.len() || (i < a.len() && a[i] <= b[j]) {
            if j < b.len() && a[i] == b[j] {
                j += 1;
            }
            let v = a[i];
            i += 1;
            v
        } else {
            let v = b[j];
            j += 1;
            v
        };
        out.push(next);
        if out.len() > max {
            return None;
        }
    }
    Some(out)
}

/// Enumerates cuts for every node of `aig`.
///
/// # Panics
///
/// Panics if `config.max_leaves > 6` or `config.max_cuts == 0`.
pub fn enumerate_cuts(aig: &Aig, config: &CutConfig) -> CutSet {
    assert!(
        config.max_leaves <= TruthTable::MAX_VARS,
        "cut width limited to 6"
    );
    assert!(config.max_cuts > 0, "at least one cut per node required");
    let mut all: Vec<Vec<Cut>> = Vec::with_capacity(aig.len());
    for id in aig.node_ids() {
        let cuts = match aig.kind(id) {
            NodeKind::Const0 => {
                vec![Cut {
                    leaves: vec![],
                    tt: TruthTable::zero(0),
                }]
            }
            NodeKind::Input(_) => {
                vec![Cut {
                    leaves: vec![id],
                    tt: TruthTable::var(1, 0),
                }]
            }
            NodeKind::And(fa, fb) => {
                let mut merged: Vec<Cut> = Vec::new();
                {
                    let ca = &all[fa.node().index()];
                    let cb = &all[fb.node().index()];
                    for cut_a in ca {
                        for cut_b in cb {
                            let Some(leaves) =
                                merge_leaves(&cut_a.leaves, &cut_b.leaves, config.max_leaves)
                            else {
                                continue;
                            };
                            let mut ta = expand_tt(cut_a.tt, &cut_a.leaves, &leaves);
                            let mut tb = expand_tt(cut_b.tt, &cut_b.leaves, &leaves);
                            if fa.is_complement() {
                                ta = !ta;
                            }
                            if fb.is_complement() {
                                tb = !tb;
                            }
                            merged.push(Cut {
                                leaves,
                                tt: ta & tb,
                            });
                        }
                    }
                }
                // Dominance filter: drop any cut strictly dominated by another.
                let mut kept: Vec<Cut> = Vec::new();
                merged.sort_by_key(|c| c.leaves.len());
                for cut in merged {
                    if kept
                        .iter()
                        .any(|k| k.dominates(&cut) && k.leaves != cut.leaves)
                    {
                        continue;
                    }
                    if kept.iter().any(|k| k.leaves == cut.leaves) {
                        continue;
                    }
                    kept.push(cut);
                    if kept.len() >= config.max_cuts {
                        break;
                    }
                }
                // The trivial cut is always present (consumers build their
                // direct fanin cuts from it); it rides on top of the limit
                // so it can never be crowded out.
                kept.push(Cut {
                    leaves: vec![id],
                    tt: TruthTable::var(1, 0),
                });
                kept
            }
        };
        all.push(cuts);
    }
    CutSet { cuts: all }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aig::Lit;

    fn tiny_and() -> (Aig, Lit) {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let x = g.and(a, b);
        g.add_po(x);
        (g, x)
    }

    #[test]
    fn and_node_has_pi_cut() {
        let (g, x) = tiny_and();
        let cuts = enumerate_cuts(&g, &CutConfig::default());
        let set = cuts.cuts(x.node());
        let two_leaf = set
            .iter()
            .find(|c| c.leaves().len() == 2)
            .expect("2-leaf cut");
        let expect = TruthTable::var(2, 0) & TruthTable::var(2, 1);
        assert_eq!(two_leaf.truth_table(), expect);
    }

    #[test]
    fn trivial_cut_present() {
        let (g, x) = tiny_and();
        let cuts = enumerate_cuts(&g, &CutConfig::default());
        assert!(cuts.cuts(x.node()).iter().any(|c| c.leaves() == [x.node()]));
    }

    #[test]
    fn xor3_found_as_3cut() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let c = g.add_pi();
        let x = g.xor3(a, b, c);
        g.add_po(x);
        let cuts = enumerate_cuts(&g, &CutConfig::default());
        // The root literal may be complemented (xor is built via or); the cut
        // function describes the positive node, so compare modulo polarity.
        let found = cuts.cuts(x.node()).iter().any(|cut| {
            cut.leaves().len() == 3 && {
                let tt = if x.is_complement() {
                    !cut.truth_table()
                } else {
                    cut.truth_table()
                };
                tt == TruthTable::xor3()
            }
        });
        assert!(found, "xor3 cut must be enumerated");
    }

    #[test]
    fn maj3_found_as_3cut() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let c = g.add_pi();
        let m = g.maj3(a, b, c);
        g.add_po(m);
        let cuts = enumerate_cuts(&g, &CutConfig::default());
        let found = cuts.cuts(m.node()).iter().any(|cut| {
            cut.leaves().len() == 3 && {
                let tt = if m.is_complement() {
                    !cut.truth_table()
                } else {
                    cut.truth_table()
                };
                tt == TruthTable::maj3()
            }
        });
        assert!(found, "maj3 cut must be enumerated");
    }

    #[test]
    fn or3_found_with_complements() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let c = g.add_pi();
        let o1 = g.or(a, b);
        let o = g.or(o1, c);
        g.add_po(o);
        let cuts = enumerate_cuts(&g, &CutConfig::default());
        // The root node computes !(or3) structurally (AND of complements);
        // its positive-literal function is the AND; with the PO complement it
        // is or3. Check that the 3-cut function matches !or3 on the node.
        let found = cuts.cuts(o.node()).iter().any(|cut| {
            cut.leaves().len() == 3 && {
                let tt = if o.is_complement() {
                    !cut.truth_table()
                } else {
                    cut.truth_table()
                };
                tt == TruthTable::or3()
            }
        });
        assert!(found, "or3 cut must be enumerated (modulo root polarity)");
    }

    #[test]
    fn cut_functions_match_network_eval() {
        // Property: for every cut of every node, evaluating the cut TT on the
        // leaf values equals the node value.
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let c = g.add_pi();
        let d = g.add_pi();
        let s1 = g.xor(a, b);
        let s2 = g.maj3(s1, c, d);
        let s3 = g.and(s2, a);
        g.add_po(s3);
        let cuts = enumerate_cuts(
            &g,
            &CutConfig {
                max_leaves: 4,
                max_cuts: 50,
            },
        );

        for idx in 0..16u32 {
            let bits: Vec<bool> = (0..4).map(|i| idx >> i & 1 == 1).collect();
            let words: Vec<u64> = bits.iter().map(|&x| if x { u64::MAX } else { 0 }).collect();
            // Node values:
            let mut vals = vec![false; g.len()];
            for id in g.node_ids() {
                vals[id.index()] = match g.kind(id) {
                    NodeKind::Const0 => false,
                    NodeKind::Input(i) => bits[i as usize],
                    NodeKind::And(fa, fb) => {
                        (vals[fa.node().index()] ^ fa.is_complement())
                            & (vals[fb.node().index()] ^ fb.is_complement())
                    }
                };
            }
            let _ = words;
            for id in g.node_ids() {
                for cut in cuts.cuts(id) {
                    let mut leaf_idx = 0usize;
                    for (i, l) in cut.leaves().iter().enumerate() {
                        if vals[l.index()] {
                            leaf_idx |= 1 << i;
                        }
                    }
                    assert_eq!(
                        cut.truth_table().get(leaf_idx),
                        vals[id.index()],
                        "cut of node {id:?} disagrees at input {idx}"
                    );
                }
            }
        }
    }

    #[test]
    fn max_cuts_respected() {
        let mut g = Aig::new();
        let pis: Vec<_> = (0..8).map(|_| g.add_pi()).collect();
        let mut acc = pis[0];
        for &p in &pis[1..] {
            acc = g.xor(acc, p);
        }
        g.add_po(acc);
        let cfg = CutConfig {
            max_leaves: 4,
            max_cuts: 5,
        };
        let cuts = enumerate_cuts(&g, &cfg);
        for id in g.node_ids() {
            assert!(cuts.cuts(id).len() <= cfg.max_cuts + 1);
        }
    }

    #[test]
    fn dominated_cuts_removed() {
        let (g, x) = tiny_and();
        let cuts = enumerate_cuts(&g, &CutConfig::default());
        // The {a, b} cut must not coexist with a dominated {a, b, anything}.
        for c in cuts.cuts(x.node()) {
            assert!(c.leaves().len() <= 2);
        }
    }
}
