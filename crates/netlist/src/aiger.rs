//! AIGER file I/O (ASCII `aag` and binary `aig` formats).
//!
//! The AIGER format (Biere, FMV Reports 07/1 and 11/2) is the interchange
//! format of the EPFL/ISCAS benchmark suites the paper evaluates on. This
//! module reads and writes combinational AIGER files, so the flow can be run
//! on the original benchmark files when they are available (our generators
//! in `sfq-circuits` stand in when they are not).
//!
//! Parsing is *streaming*: [`read_ascii_from`]/[`read_binary_from`] consume
//! any [`std::io::BufRead`] with two reusable line buffers and no
//! per-node allocations beyond the network itself, so million-node files
//! parse directly off a buffered file handle without first slurping them
//! into a string. The slice-based [`read_ascii`]/[`read_binary`] are thin
//! wrappers over the streaming path.
//!
//! Latches are not supported (the paper's flow is combinational); files
//! containing latches are rejected.
//!
//! # Examples
//!
//! ```
//! use sfq_netlist::aig::Aig;
//! use sfq_netlist::aiger::{read_ascii, write_ascii};
//!
//! let mut g = Aig::new();
//! let a = g.add_pi();
//! let b = g.add_pi();
//! let c = g.and(a, b);
//! g.add_po(c);
//!
//! let text = write_ascii(&g);
//! let back = read_ascii(&text)?;
//! assert_eq!(back.pi_count(), 2);
//! assert_eq!(back.and_count(), 1);
//! # Ok::<(), sfq_netlist::aiger::ParseAigerError>(())
//! ```

use crate::aig::{Aig, Lit, NodeId};
use std::fmt;
use std::io::BufRead;

/// Errors produced while parsing an AIGER file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseAigerError {
    /// The header line is missing or malformed.
    BadHeader(String),
    /// A body line is malformed.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        reason: String,
    },
    /// The file contains latches (sequential AIGER), which are unsupported.
    LatchesUnsupported,
    /// A literal exceeds the declared maximum variable index.
    LiteralOutOfRange(u64),
    /// An AND gate's fanin is not defined before use.
    UndefinedFanin(u64),
    /// Binary payload truncated or malformed.
    BadBinary(String),
    /// The underlying reader failed (streaming entry points only).
    Io(String),
}

impl fmt::Display for ParseAigerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseAigerError::BadHeader(s) => write!(f, "bad AIGER header: {s}"),
            ParseAigerError::BadLine { line, reason } => {
                write!(f, "bad AIGER line {line}: {reason}")
            }
            ParseAigerError::LatchesUnsupported => {
                f.write_str("sequential AIGER (latches) unsupported")
            }
            ParseAigerError::LiteralOutOfRange(l) => write!(f, "literal {l} out of range"),
            ParseAigerError::UndefinedFanin(l) => write!(f, "fanin literal {l} undefined"),
            ParseAigerError::BadBinary(s) => write!(f, "bad binary AIGER: {s}"),
            ParseAigerError::Io(s) => write!(f, "AIGER read failed: {s}"),
        }
    }
}

impl std::error::Error for ParseAigerError {}

struct Header {
    max_var: u64,
    inputs: u64,
    latches: u64,
    outputs: u64,
    ands: u64,
}

fn parse_header(line: &str, magic: &str) -> Result<Header, ParseAigerError> {
    let mut parts = line.split_whitespace();
    let tag = parts.next().unwrap_or("");
    if tag != magic {
        return Err(ParseAigerError::BadHeader(format!(
            "expected '{magic}', got '{tag}'"
        )));
    }
    let nums: Vec<u64> = parts
        .map(|p| p.parse::<u64>())
        .collect::<Result<_, _>>()
        .map_err(|e| ParseAigerError::BadHeader(e.to_string()))?;
    if nums.len() != 5 {
        return Err(ParseAigerError::BadHeader(format!(
            "expected 5 counts, got {}",
            nums.len()
        )));
    }
    Ok(Header {
        max_var: nums[0],
        inputs: nums[1],
        latches: nums[2],
        outputs: nums[3],
        ands: nums[4],
    })
}

/// Parser state: external AIGER variable → our literal.
struct VarMap {
    map: Vec<Option<Lit>>,
}

impl VarMap {
    fn new(max_var: u64) -> Self {
        let mut map = vec![None; (max_var + 1) as usize];
        map[0] = Some(Lit::FALSE);
        VarMap { map }
    }

    fn define(&mut self, ext_lit: u64, lit: Lit) -> Result<(), ParseAigerError> {
        let var = (ext_lit >> 1) as usize;
        if var >= self.map.len() {
            return Err(ParseAigerError::LiteralOutOfRange(ext_lit));
        }
        // A defining literal is always even; fold any complement here.
        self.map[var] = Some(lit.with_complement(lit.is_complement() ^ (ext_lit & 1 == 1)));
        Ok(())
    }

    fn resolve(&self, ext_lit: u64) -> Result<Lit, ParseAigerError> {
        let var = (ext_lit >> 1) as usize;
        if var >= self.map.len() {
            return Err(ParseAigerError::LiteralOutOfRange(ext_lit));
        }
        let base = self.map[var].ok_or(ParseAigerError::UndefinedFanin(ext_lit))?;
        Ok(if ext_lit & 1 == 1 { !base } else { base })
    }
}

/// Fills `buf` with the next non-empty line of `r` (trailing newline and
/// surrounding whitespace trimmed in place). Returns `false` at EOF.
fn next_line(r: &mut impl BufRead, buf: &mut String) -> Result<bool, ParseAigerError> {
    loop {
        buf.clear();
        let n = r
            .read_line(buf)
            .map_err(|e| ParseAigerError::Io(e.to_string()))?;
        if n == 0 {
            return Ok(false);
        }
        buf.truncate(buf.trim_end().len());
        let lead = buf.len() - buf.trim_start().len();
        buf.drain(..lead);
        if !buf.is_empty() {
            return Ok(true);
        }
    }
}

/// Parses an ASCII AIGER (`aag`) file from a string slice.
///
/// # Errors
///
/// Any structural problem yields a [`ParseAigerError`]; see the variants.
pub fn read_ascii(text: &str) -> Result<Aig, ParseAigerError> {
    read_ascii_from(text.as_bytes())
}

/// Streaming ASCII AIGER (`aag`) parser: consumes any buffered reader line
/// by line through one reusable buffer — no per-node allocations, no
/// up-front slurp. The entry point for paper-scale files
/// (`BufReader::new(File::open(..)?)`).
///
/// # Errors
///
/// As [`read_ascii`], plus [`ParseAigerError::Io`] when the reader fails.
pub fn read_ascii_from(mut r: impl BufRead) -> Result<Aig, ParseAigerError> {
    let mut line = String::new();
    if !next_line(&mut r, &mut line)? {
        return Err(ParseAigerError::BadHeader("empty file".into()));
    }
    let h = parse_header(&line, "aag")?;
    if h.latches != 0 {
        return Err(ParseAigerError::LatchesUnsupported);
    }

    let mut g = Aig::new();
    let mut vars = VarMap::new(h.max_var);
    let mut take = |line: &mut String, what: &str| -> Result<(), ParseAigerError> {
        if next_line(&mut r, line)? {
            Ok(())
        } else {
            Err(ParseAigerError::BadHeader(format!("missing {what} line")))
        }
    };

    for _ in 0..h.inputs {
        take(&mut line, "input")?;
        let lit: u64 = line
            .parse()
            .map_err(|_| ParseAigerError::BadHeader(format!("bad input literal '{line}'")))?;
        if lit & 1 == 1 || lit == 0 {
            return Err(ParseAigerError::BadHeader(format!(
                "input literal {lit} must be positive and even"
            )));
        }
        let pi = g.add_pi();
        vars.define(lit, pi)?;
    }

    let mut outputs = Vec::with_capacity(h.outputs as usize);
    for _ in 0..h.outputs {
        take(&mut line, "output")?;
        let lit: u64 = line
            .parse()
            .map_err(|_| ParseAigerError::BadHeader(format!("bad output literal '{line}'")))?;
        outputs.push(lit);
    }

    for _ in 0..h.ands {
        take(&mut line, "and gate")?;
        let mut fields = line.split_ascii_whitespace().map(str::parse::<u64>);
        let mut field = || -> Result<u64, ParseAigerError> {
            fields
                .next()
                .and_then(Result::ok)
                .ok_or_else(|| ParseAigerError::BadHeader(format!("bad and line '{line}'")))
        };
        let (lhs, r0, r1) = (field()?, field()?, field()?);
        if fields.next().is_some() {
            return Err(ParseAigerError::BadHeader(format!(
                "and line '{line}' needs 3 literals"
            )));
        }
        if lhs & 1 == 1 {
            return Err(ParseAigerError::BadHeader(format!(
                "and lhs {lhs} must be even"
            )));
        }
        let a = vars.resolve(r0)?;
        let b = vars.resolve(r1)?;
        // Structural hashing/simplification may fold the node; record
        // whatever literal now carries the function.
        let out = g.and(a, b);
        vars.define(lhs, out)?;
    }

    for ext in outputs {
        let lit = vars.resolve(ext)?;
        g.add_po(lit);
    }
    Ok(g)
}

/// Serializes an AIG as an ASCII AIGER (`aag`) string.
///
/// The output is canonical: variables are numbered constant-first, then
/// inputs, then AND gates in topological order.
pub fn write_ascii(aig: &Aig) -> String {
    use std::fmt::Write;
    let (order, ext_of) = externalize(aig);
    let num_ands = order.len();
    let mut out = format!(
        "aag {} {} 0 {} {}\n",
        aig.pi_count() + num_ands,
        aig.pi_count(),
        aig.po_count(),
        num_ands
    );
    for i in 0..aig.pi_count() {
        let _ = writeln!(out, "{}", (i as u64 + 1) * 2);
    }
    for po in aig.pos() {
        let _ = writeln!(out, "{}", ext_lit(*po, &ext_of));
    }
    for &node in &order {
        let (a, b) = aig.fanins(node).expect("order contains only AND nodes");
        let _ = writeln!(
            out,
            "{} {} {}",
            ext_of[node.index()] * 2,
            ext_lit(a, &ext_of),
            ext_lit(b, &ext_of)
        );
    }
    out
}

/// Parses a binary AIGER (`aig`) file from a byte slice.
///
/// # Errors
///
/// See [`ParseAigerError`]; truncated delta codes yield
/// [`ParseAigerError::BadBinary`].
pub fn read_binary(bytes: &[u8]) -> Result<Aig, ParseAigerError> {
    read_binary_from(bytes)
}

/// Streaming binary AIGER (`aig`) parser over any buffered reader: the
/// header and output lines go through one reusable buffer and the
/// delta-coded AND section is decoded byte by byte straight off the
/// reader's buffer — no per-node allocations, no up-front slurp.
///
/// # Errors
///
/// As [`read_binary`], plus [`ParseAigerError::Io`] when the reader fails.
pub fn read_binary_from(mut r: impl BufRead) -> Result<Aig, ParseAigerError> {
    // Header is the ASCII first line; output literals follow, one ASCII
    // line each. A reusable byte buffer serves both.
    let mut line: Vec<u8> = Vec::new();
    let mut read_text_line = |line: &mut Vec<u8>| -> Result<(), ParseAigerError> {
        line.clear();
        let n = r
            .read_until(b'\n', line)
            .map_err(|e| ParseAigerError::Io(e.to_string()))?;
        if n == 0 || line.last() != Some(&b'\n') {
            return Err(ParseAigerError::BadBinary("truncated text section".into()));
        }
        line.pop();
        Ok(())
    };
    read_text_line(&mut line)
        .map_err(|_| ParseAigerError::BadHeader("no newline after header".into()))?;
    let header_line = std::str::from_utf8(&line)
        .map_err(|_| ParseAigerError::BadHeader("non-UTF8 header".into()))?;
    let h = parse_header(header_line, "aig")?;
    if h.latches != 0 {
        return Err(ParseAigerError::LatchesUnsupported);
    }
    if h.max_var != h.inputs + h.ands {
        return Err(ParseAigerError::BadHeader(format!(
            "binary AIGER requires M = I + A (got {} vs {} + {})",
            h.max_var, h.inputs, h.ands
        )));
    }

    let mut outputs = Vec::with_capacity(h.outputs as usize);
    for _ in 0..h.outputs {
        read_text_line(&mut line).map_err(|e| match e {
            ParseAigerError::BadBinary(_) => ParseAigerError::BadBinary("truncated outputs".into()),
            other => other,
        })?;
        let text = std::str::from_utf8(&line)
            .map_err(|_| ParseAigerError::BadBinary("non-UTF8 output line".into()))?;
        let lit: u64 = text
            .trim()
            .parse()
            .map_err(|_| ParseAigerError::BadBinary(format!("bad output '{text}'")))?;
        outputs.push(lit);
    }

    // AND gates: delta-encoded pairs.
    let mut g = Aig::new();
    let mut vars = VarMap::new(h.max_var);
    for i in 0..h.inputs {
        let pi = g.add_pi();
        vars.define((i + 1) * 2, pi)?;
    }
    let mut read_delta = || -> Result<u64, ParseAigerError> {
        let mut x = 0u64;
        let mut shift = 0u32;
        loop {
            let buf = r
                .fill_buf()
                .map_err(|e| ParseAigerError::Io(e.to_string()))?;
            let Some(&byte) = buf.first() else {
                return Err(ParseAigerError::BadBinary("truncated delta".into()));
            };
            r.consume(1);
            x |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(x);
            }
            shift += 7;
            if shift > 63 {
                return Err(ParseAigerError::BadBinary("delta overflow".into()));
            }
        }
    };
    for i in 0..h.ands {
        let lhs = (h.inputs + i + 1) * 2;
        let d0 = read_delta()?;
        let d1 = read_delta()?;
        let r0 = lhs
            .checked_sub(d0)
            .ok_or_else(|| ParseAigerError::BadBinary("delta0 exceeds lhs".into()))?;
        let r1 = r0
            .checked_sub(d1)
            .ok_or_else(|| ParseAigerError::BadBinary("delta1 exceeds rhs0".into()))?;
        let a = vars.resolve(r0)?;
        let b = vars.resolve(r1)?;
        let out = g.and(a, b);
        vars.define(lhs, out)?;
    }
    for ext in outputs {
        g.add_po(vars.resolve(ext)?);
    }
    Ok(g)
}

/// Serializes an AIG as a binary AIGER (`aig`) byte vector.
pub fn write_binary(aig: &Aig) -> Vec<u8> {
    use std::io::Write;
    let (order, ext_of) = externalize(aig);
    let num_ands = order.len();
    let mut out = format!(
        "aig {} {} 0 {} {}\n",
        aig.pi_count() + num_ands,
        aig.pi_count(),
        aig.po_count(),
        num_ands
    )
    .into_bytes();
    for po in aig.pos() {
        let _ = writeln!(out, "{}", ext_lit(*po, &ext_of));
    }
    let push_delta = |out: &mut Vec<u8>, mut x: u64| loop {
        let mut byte = (x & 0x7F) as u8;
        x >>= 7;
        if x != 0 {
            byte |= 0x80;
        }
        out.push(byte);
        if x == 0 {
            break;
        }
    };
    for &node in &order {
        let (a, b) = aig.fanins(node).expect("AND node");
        let lhs = ext_of[node.index()] * 2;
        let mut l0 = ext_lit(a, &ext_of);
        let mut l1 = ext_lit(b, &ext_of);
        if l0 < l1 {
            std::mem::swap(&mut l0, &mut l1);
        }
        debug_assert!(lhs > l0 && l0 >= l1);
        push_delta(&mut out, lhs - l0);
        push_delta(&mut out, l0 - l1);
    }
    out
}

/// Assigns external variable numbers: inputs 1..=I, live ANDs I+1.. in
/// topological order. Returns (AND order, node index → external var). The
/// map is a dense vector — node ids index it directly, so million-node
/// writes skip hashing entirely. Freed slots of an in-place-edited
/// network are excluded (their entry stays 0, never referenced by a live
/// fanin).
fn externalize(aig: &Aig) -> (Vec<NodeId>, Vec<u64>) {
    let mut ext_of: Vec<u64> = vec![0; aig.len()];
    for (i, &pi) in aig.pis().iter().enumerate() {
        ext_of[pi.index()] = i as u64 + 1;
    }
    let mut order = Vec::new();
    for (next, id) in (aig.pi_count() as u64 + 1..).zip(aig.and_ids()) {
        ext_of[id.index()] = next;
        order.push(id);
    }
    (order, ext_of)
}

fn ext_lit(l: Lit, ext_of: &[u64]) -> u64 {
    ext_of[l.node().index()] * 2 + l.is_complement() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn equivalent(a: &Aig, b: &Aig, samples: usize) -> bool {
        if a.pi_count() != b.pi_count() || a.po_count() != b.po_count() {
            return false;
        }
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        for _ in 0..samples {
            let inputs: Vec<u64> = (0..a.pi_count())
                .map(|_| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state
                })
                .collect();
            if a.eval64(&inputs) != b.eval64(&inputs) {
                return false;
            }
        }
        true
    }

    fn sample_aig() -> Aig {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let c = g.add_pi();
        let x = g.xor(a, b);
        let m = g.maj3(a, b, c);
        g.add_po(x);
        g.add_po(!m);
        g.add_po(Lit::TRUE);
        g
    }

    #[test]
    fn ascii_roundtrip() {
        let g = sample_aig();
        let text = write_ascii(&g);
        let back = read_ascii(&text).unwrap();
        assert!(equivalent(&g, &back, 8));
    }

    #[test]
    fn binary_roundtrip() {
        let g = sample_aig();
        let bytes = write_binary(&g);
        let back = read_binary(&bytes).unwrap();
        assert!(equivalent(&g, &back, 8));
    }

    #[test]
    fn ascii_binary_agree() {
        let g = sample_aig();
        let from_ascii = read_ascii(&write_ascii(&g)).unwrap();
        let from_binary = read_binary(&write_binary(&g)).unwrap();
        assert!(equivalent(&from_ascii, &from_binary, 8));
    }

    #[test]
    fn parses_reference_example() {
        // The and-gate example from the AIGER report.
        let text = "aag 3 2 0 1 1\n2\n4\n6\n6 2 4\n";
        let g = read_ascii(text).unwrap();
        assert_eq!(g.pi_count(), 2);
        assert_eq!(g.po_count(), 1);
        assert_eq!(g.eval(&[true, true]), vec![true]);
        assert_eq!(g.eval(&[true, false]), vec![false]);
    }

    #[test]
    fn parses_constant_outputs() {
        // Output literal 0 (false) and 1 (true).
        let text = "aag 1 1 0 2 0\n2\n0\n1\n";
        let g = read_ascii(text).unwrap();
        assert_eq!(g.eval(&[false]), vec![false, true]);
    }

    #[test]
    fn rejects_latches() {
        let text = "aag 3 1 1 1 1\n2\n4 2\n6\n6 2 4\n";
        assert_eq!(
            read_ascii(text).unwrap_err(),
            ParseAigerError::LatchesUnsupported
        );
    }

    #[test]
    fn rejects_bad_header() {
        assert!(matches!(
            read_ascii("not aiger"),
            Err(ParseAigerError::BadHeader(_))
        ));
        assert!(matches!(
            read_ascii("aag 1 2 3"),
            Err(ParseAigerError::BadHeader(_))
        ));
        assert!(matches!(read_ascii(""), Err(ParseAigerError::BadHeader(_))));
    }

    #[test]
    fn rejects_out_of_range_literal() {
        let text = "aag 1 1 0 1 0\n2\n99\n";
        assert_eq!(
            read_ascii(text).unwrap_err(),
            ParseAigerError::LiteralOutOfRange(99)
        );
    }

    #[test]
    fn roundtrip_larger_network() {
        let mut g = Aig::new();
        let pis: Vec<Lit> = (0..8).map(|_| g.add_pi()).collect();
        let mut acc = pis[0];
        for &p in &pis[1..] {
            let x = g.xor(acc, p);
            acc = g.and(x, p);
        }
        g.add_po(acc);
        let back = read_binary(&write_binary(&g)).unwrap();
        assert!(equivalent(&g, &back, 8));
    }

    #[test]
    fn folded_and_gates_roundtrip() {
        // x & !x folds to constant false at parse time; the file is still
        // valid and the function preserved.
        let text = "aag 2 1 0 1 1\n2\n4\n4 2 3\n";
        let g = read_ascii(text).unwrap();
        assert_eq!(g.eval(&[true]), vec![false]);
        assert_eq!(g.eval(&[false]), vec![false]);
    }
}
