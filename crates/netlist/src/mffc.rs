//! Maximum fanout-free cone (MFFC) computation.
//!
//! The MFFC of a node `r` is the largest cone rooted at `r` such that every
//! path from any cone node to a primary output passes through `r`. When `r`
//! is replaced (e.g. by a T1 cell output), exactly the MFFC nodes become
//! dead, so the area gain of eq. (2) of the paper is the summed area of the
//! MFFC members.
//!
//! The implementation is the standard reference-counting dereference walk:
//! virtually remove `r`, decrement fanin references, and recurse into fanins
//! whose count reaches zero.
//!
//! # Examples
//!
//! ```
//! use sfq_netlist::aig::Aig;
//! use sfq_netlist::mffc::Mffc;
//!
//! let mut aig = Aig::new();
//! let a = aig.add_pi();
//! let b = aig.add_pi();
//! let c = aig.add_pi();
//! let m = aig.maj3(a, b, c);
//! aig.add_po(m);
//! let mut mffc = Mffc::new(&aig);
//! // All five AND nodes of the majority belong to the root's MFFC.
//! assert_eq!(mffc.size(m.node()), 5);
//! ```

use crate::aig::{Aig, NodeId, NodeKind};

/// Reusable MFFC calculator over a fixed network.
#[derive(Debug)]
pub struct Mffc<'a> {
    aig: &'a Aig,
    base_refs: Vec<u32>,
}

impl<'a> Mffc<'a> {
    /// Creates a calculator for `aig`.
    pub fn new(aig: &'a Aig) -> Self {
        Mffc {
            aig,
            base_refs: aig.fanout_counts(),
        }
    }

    /// Number of AND nodes in the MFFC of `root`.
    pub fn size(&mut self, root: NodeId) -> usize {
        self.members(root).len()
    }

    /// The AND nodes forming the MFFC of `root` (including `root` itself if
    /// it is an AND node). PIs and the constant node are never members.
    pub fn members(&mut self, root: NodeId) -> Vec<NodeId> {
        self.members_bounded(root, &[])
    }

    /// MFFC of `root` bounded by `boundary` nodes: the dereference walk does
    /// not descend past (or include) boundary nodes. Used with cut leaves to
    /// measure exactly the cone a cut replacement removes.
    pub fn members_bounded(&mut self, root: NodeId, boundary: &[NodeId]) -> Vec<NodeId> {
        self.union_members_bounded(&[root], boundary)
    }

    /// Union of MFFCs of several roots: the set of AND nodes that die when
    /// *all* roots are removed together.
    ///
    /// This is at least as large as any single MFFC and at most the sum of
    /// the individual ones; the sequential dereference makes overlap exact.
    pub fn union_members(&mut self, roots: &[NodeId]) -> Vec<NodeId> {
        self.union_members_bounded(roots, &[])
    }

    /// Bounded variant of [`Mffc::union_members`]; see
    /// [`Mffc::members_bounded`].
    pub fn union_members_bounded(&mut self, roots: &[NodeId], boundary: &[NodeId]) -> Vec<NodeId> {
        let mut refs = self.base_refs.clone();
        let mut visited = vec![false; self.aig.len()];
        let mut out = Vec::new();
        for &r in roots {
            if boundary.contains(&r) {
                continue;
            }
            Self::deref_rec(self.aig, r, &mut refs, &mut visited, &mut out, boundary);
        }
        out.sort();
        out
    }

    fn deref_rec(
        aig: &Aig,
        node: NodeId,
        refs: &mut [u32],
        visited: &mut [bool],
        out: &mut Vec<NodeId>,
        boundary: &[NodeId],
    ) {
        // A node may be reached both as an explicit root and as a fanin
        // whose reference count dropped to zero; its own fanin edges must
        // only be released once.
        if visited[node.index()] {
            return;
        }
        if let NodeKind::And(a, b) = aig.kind(node) {
            visited[node.index()] = true;
            out.push(node);
            for f in [a.node(), b.node()] {
                if boundary.contains(&f) {
                    continue;
                }
                refs[f.index()] = refs[f.index()].saturating_sub(1);
                if refs[f.index()] == 0 {
                    Self::deref_rec(aig, f, refs, visited, out, boundary);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_chain_mffc_is_whole_cone() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let c = g.add_pi();
        let ab = g.and(a, b);
        let abc = g.and(ab, c);
        g.add_po(abc);
        let mut m = Mffc::new(&g);
        assert_eq!(m.size(abc.node()), 2);
        assert_eq!(m.size(ab.node()), 1);
    }

    #[test]
    fn shared_node_excluded() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let c = g.add_pi();
        let ab = g.and(a, b);
        let x = g.and(ab, c);
        let y = g.and(ab, a);
        g.add_po(x);
        g.add_po(y);
        let mut m = Mffc::new(&g);
        // ab has two fanouts, so it is not in x's MFFC.
        assert_eq!(m.members(x.node()), vec![x.node()]);
        assert_eq!(m.members(y.node()), vec![y.node()]);
    }

    #[test]
    fn union_captures_shared_interior() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let c = g.add_pi();
        let ab = g.and(a, b);
        let x = g.and(ab, c);
        let y = g.and(ab, a);
        g.add_po(x);
        g.add_po(y);
        let mut m = Mffc::new(&g);
        // Removing both x and y kills ab as well.
        let u = m.union_members(&[x.node(), y.node()]);
        assert_eq!(u.len(), 3);
        assert!(u.contains(&ab.node()));
    }

    #[test]
    fn pi_has_empty_mffc() {
        let mut g = Aig::new();
        let a = g.add_pi();
        g.add_po(a);
        let mut m = Mffc::new(&g);
        assert_eq!(m.size(a.node()), 0);
    }

    #[test]
    fn mffc_of_maj_root_counts_all_ands() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let c = g.add_pi();
        let mj = g.maj3(a, b, c);
        g.add_po(mj);
        let mut m = Mffc::new(&g);
        assert_eq!(m.size(mj.node()), g.and_count());
    }

    #[test]
    fn mffc_stops_at_po_referenced_interior() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let ab = g.and(a, b);
        let top = g.and(ab, a);
        g.add_po(top);
        g.add_po(ab); // interior node is also a PO
        let mut m = Mffc::new(&g);
        assert_eq!(m.members(top.node()), vec![top.node()]);
    }
}
