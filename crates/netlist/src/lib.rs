//! # sfq-netlist
//!
//! Logic-network substrate for SFQ technology mapping — the Rust counterpart
//! of the mockturtle facilities the paper builds on:
//!
//! - [`aig`] — and-inverter graphs with structural hashing, levels/depth and
//!   64-way bit-parallel evaluation,
//! - [`truth_table`] — small-function truth tables (≤ 6 variables),
//! - [`cut`] — k-feasible cut enumeration with cut functions (Cong et al.,
//!   ref \[8\] of the paper),
//! - [`npn`] — exact NPN canonization for Boolean matching (ref \[9\]),
//! - [`mffc`] — maximum fanout-free cones for the area-gain test of eq. (2),
//! - [`fnv`] — stable FNV-1a hashing behind structural digests and the
//!   `sfq-engine` content-addressed result cache.
//!
//! # Example
//!
//! ```
//! use sfq_netlist::aig::Aig;
//! use sfq_netlist::cut::{enumerate_cuts, CutConfig};
//! use sfq_netlist::truth_table::TruthTable;
//!
//! // A one-bit full adder: the structure the T1 cell replaces.
//! let mut aig = Aig::new();
//! let a = aig.add_pi();
//! let b = aig.add_pi();
//! let cin = aig.add_pi();
//! let sum = aig.xor3(a, b, cin);
//! let carry = aig.maj3(a, b, cin);
//! aig.add_po(sum);
//! aig.add_po(carry);
//!
//! let cuts = enumerate_cuts(&aig, &CutConfig::default());
//! // Cut functions describe the positive node; `sum` may be a complemented
//! // literal, so compare modulo polarity.
//! let sum_is_xor3 = cuts.cuts(sum.node()).iter().any(|c| {
//!     let tt = if sum.is_complement() { !c.truth_table() } else { c.truth_table() };
//!     tt == TruthTable::xor3()
//! });
//! assert!(sum_is_xor3);
//! ```

pub mod aig;
pub mod aiger;
pub mod cut;
pub mod fnv;
pub mod mffc;
pub mod npn;
pub mod transform;
pub mod truth_table;

pub use aig::{Aig, Lit, NodeId, NodeKind};
pub use aiger::ParseAigerError;
pub use cut::{enumerate_cuts, Cut, CutConfig, CutSet};
pub use mffc::Mffc;
pub use npn::{npn_canonical, npn_equivalent, npn_match, NpnCanon};
pub use transform::{cleanup, sweep, NetworkStats};
pub use truth_table::TruthTable;
