//! Property-based tests for the netlist substrate: truth-table algebra, NPN
//! canonization, cut enumeration, MFFC, AIGER round-trips, and the ID-stable
//! in-place editing primitives (random edit sequences followed by
//! [`Aig::compact`] must match a from-scratch builder rebuild exactly).

use proptest::prelude::*;
use sfq_netlist::aig::{Aig, Lit, NodeId, NodeKind};
use sfq_netlist::aiger::{read_ascii, read_binary, write_ascii, write_binary};
use sfq_netlist::cut::{enumerate_cuts, CutConfig};
use sfq_netlist::mffc::Mffc;
use sfq_netlist::npn::npn_canonical;
use sfq_netlist::truth_table::TruthTable;

/// A deterministic small random AIG built from a byte script.
fn build_aig(script: &[u8], num_pis: usize) -> Aig {
    let mut g = Aig::new();
    let mut pool: Vec<Lit> = (0..num_pis).map(|_| g.add_pi()).collect();
    for chunk in script.chunks(3) {
        if chunk.len() < 3 {
            break;
        }
        let a = pool[chunk[0] as usize % pool.len()];
        let b = pool[chunk[1] as usize % pool.len()];
        let (a, b) = match chunk[2] % 4 {
            0 => (a, b),
            1 => (!a, b),
            2 => (a, !b),
            _ => (!a, !b),
        };
        let out = if chunk[2] & 0x10 != 0 {
            g.xor(a, b)
        } else {
            g.and(a, b)
        };
        pool.push(out);
    }
    let out = *pool.last().expect("nonempty pool");
    g.add_po(out);
    g.add_po(!pool[pool.len() / 2]);
    g
}

/// Replays the live nodes of `g` (which may contain freed slots) through
/// the public builder API — the from-scratch rebuild the in-place editing
/// primitives are pinned against. Because `Aig::and` eagerly folds and
/// deduplicates, hash equality with [`Aig::compact`]'s output proves the
/// edited network stayed *canonical*: no live AND is trivial or a
/// structural duplicate.
fn rebuild_via_builder(g: &Aig) -> Aig {
    let mut out = Aig::new();
    let mut map: Vec<Option<Lit>> = vec![None; g.len()];
    map[NodeId::CONST0.index()] = Some(Lit::FALSE);
    let mapped = |map: &[Option<Lit>], l: Lit| -> Lit {
        let base = map[l.node().index()].expect("live fanins precede their node");
        base.with_complement(base.is_complement() ^ l.is_complement())
    };
    for id in g.node_ids() {
        if g.is_dead(id) {
            continue;
        }
        match g.kind(id) {
            NodeKind::Const0 => {}
            NodeKind::Input(_) => map[id.index()] = Some(out.add_pi()),
            NodeKind::And(a, b) => {
                let (fa, fb) = (mapped(&map, a), mapped(&map, b));
                map[id.index()] = Some(out.and(fa, fb));
            }
        }
    }
    for &po in g.pos() {
        out.add_po(mapped(&map, po));
    }
    out
}

/// Applies one random substitute(+delete) edit decoded from `(pick, alt,
/// reclaim)`; a no-op when the network has no editable AND left.
fn apply_random_edit(g: &mut Aig, pick: u32, alt: u32, reclaim: bool) {
    let ands: Vec<NodeId> = g.and_ids().collect();
    if ands.is_empty() {
        return;
    }
    let old = ands[pick as usize % ands.len()];
    // Any live node strictly below the target is a valid replacement;
    // the constant (node 0) is always live, so the pool is never empty.
    let pool: Vec<NodeId> = g
        .node_ids()
        .filter(|&n| n.0 < old.0 && !g.is_dead(n))
        .collect();
    let target = pool[alt as usize % pool.len()];
    let neg = (alt >> 16) & 1 == 1;
    g.substitute(old, Lit::new(target, neg));
    if reclaim {
        g.delete_mffc(old);
    }
}

/// The `index`-th (0..24) permutation of `[0, 1, 2, 3]`, via Lehmer-code
/// decoding, so a proptest integer maps uniformly onto all permutations.
fn nth_permutation4(index: usize) -> Vec<usize> {
    let mut pool: Vec<usize> = (0..4).collect();
    let mut idx = index % 24;
    let mut out = Vec::with_capacity(4);
    for radix in (1..=4).rev() {
        let fact: usize = (1..radix).product();
        out.push(pool.remove(idx / fact));
        idx %= fact;
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn tt_de_morgan(bits_a in any::<u64>(), bits_b in any::<u64>(), n in 1usize..=6) {
        let a = TruthTable::from_bits(n, bits_a);
        let b = TruthTable::from_bits(n, bits_b);
        prop_assert_eq!(!(a & b), !a | !b);
        prop_assert_eq!(!(a | b), !a & !b);
    }

    #[test]
    fn tt_shannon_expansion(bits in any::<u64>(), n in 1usize..=6, v in 0usize..6) {
        prop_assume!(v < n);
        let f = TruthTable::from_bits(n, bits);
        let x = TruthTable::var(n, v);
        let rebuilt = (x & f.cofactor1(v)) | (!x & f.cofactor0(v));
        prop_assert_eq!(rebuilt.bits(), f.bits());
    }

    #[test]
    fn tt_permutation_preserves_weight(bits in any::<u64>(), p0 in 0usize..3, p1 in 0usize..3) {
        prop_assume!(p0 != p1);
        let f = TruthTable::from_bits(3, bits);
        let mut perm = [0usize, 1, 2];
        perm.swap(p0, p1);
        prop_assert_eq!(f.permute(&perm).count_ones(), f.count_ones());
    }

    #[test]
    fn npn_canonical_is_transform_invariant(bits in 0u64..256, mask in 0u8..8, out_neg in any::<bool>()) {
        let f = TruthTable::from_bits(3, bits);
        let mut g = f;
        for v in 0..3 {
            if mask >> v & 1 == 1 {
                g = g.flip_var(v);
            }
        }
        if out_neg {
            g = !g;
        }
        prop_assert_eq!(npn_canonical(f).canon, npn_canonical(g).canon);
    }

    #[test]
    fn npn_canonical_4var_invariant_under_perm_and_neg(
        bits in any::<u64>(),
        mask in 0u8..16,
        perm_index in 0usize..24,
        out_neg in any::<bool>(),
    ) {
        // Round-trip: any NPN transform of a random 4-input function (input
        // negations, an arbitrary input permutation, optional output
        // negation) lands in the same canonical class as the original.
        let f = TruthTable::from_bits(4, bits);
        let perm = nth_permutation4(perm_index);
        let mut g = f;
        for v in 0..4 {
            if mask >> v & 1 == 1 {
                g = g.flip_var(v);
            }
        }
        g = g.permute(&perm);
        if out_neg {
            g = !g;
        }
        prop_assert_eq!(npn_canonical(f).canon, npn_canonical(g).canon);
    }

    #[test]
    fn cut_functions_agree_with_eval(script in prop::collection::vec(any::<u8>(), 6..60)) {
        let g = build_aig(&script, 4);
        let cuts = enumerate_cuts(&g, &CutConfig { max_leaves: 3, max_cuts: 12 });
        // Evaluate all nodes on random vectors and check each cut function.
        let inputs: Vec<u64> = (0..4).map(|i| 0x9E3779B97F4A7C15u64.rotate_left(i * 17)).collect();
        let mut values = vec![0u64; g.len()];
        for id in g.node_ids() {
            values[id.index()] = match g.kind(id) {
                sfq_netlist::aig::NodeKind::Const0 => 0,
                sfq_netlist::aig::NodeKind::Input(i) => inputs[i as usize],
                sfq_netlist::aig::NodeKind::And(a, b) => {
                    let va = values[a.node().index()] ^ if a.is_complement() { u64::MAX } else { 0 };
                    let vb = values[b.node().index()] ^ if b.is_complement() { u64::MAX } else { 0 };
                    va & vb
                }
            };
        }
        for id in g.node_ids() {
            for cut in cuts.cuts(id) {
                for bit in [0u32, 17, 63] {
                    let mut idx = 0usize;
                    for (i, l) in cut.leaves().iter().enumerate() {
                        if values[l.index()] >> bit & 1 == 1 {
                            idx |= 1 << i;
                        }
                    }
                    prop_assert_eq!(
                        cut.truth_table().get(idx),
                        values[id.index()] >> bit & 1 == 1
                    );
                }
            }
        }
    }

    #[test]
    fn mffc_members_have_no_outside_fanout_path(script in prop::collection::vec(any::<u8>(), 9..45)) {
        let g = build_aig(&script, 3);
        let mut mffc = Mffc::new(&g);
        for id in g.node_ids() {
            if !matches!(g.kind(id), sfq_netlist::aig::NodeKind::And(..)) {
                continue;
            }
            let members = mffc.members(id);
            if members.is_empty() {
                continue;
            }
            prop_assert!(members.contains(&id), "root belongs to its own MFFC");
            // Every member except the root has all its AIG fanout inside the
            // member set (checked via fanout counting on edges).
            let mut internal_refs = std::collections::HashMap::new();
            for &m in &members {
                if let Some((a, b)) = g.fanins(m) {
                    *internal_refs.entry(a.node()).or_insert(0u32) += 1;
                    *internal_refs.entry(b.node()).or_insert(0u32) += 1;
                }
            }
            for &m in &members {
                if m == id {
                    continue;
                }
                prop_assert_eq!(
                    g.fanout_count(m),
                    internal_refs.get(&m).copied().unwrap_or(0),
                    "member {:?} referenced outside the cone", m
                );
            }
        }
    }

    #[test]
    fn aiger_ascii_roundtrip(script in prop::collection::vec(any::<u8>(), 6..90)) {
        let g = build_aig(&script, 5);
        let back = read_ascii(&write_ascii(&g)).expect("own output parses");
        prop_assert_eq!(g.pi_count(), back.pi_count());
        prop_assert_eq!(g.po_count(), back.po_count());
        let inputs: Vec<u64> = (0..5u64).map(|i| i.wrapping_mul(0xA5A5_5A5A_1234_5678)).collect();
        prop_assert_eq!(g.eval64(&inputs), back.eval64(&inputs));
    }

    #[test]
    fn aiger_binary_roundtrip(script in prop::collection::vec(any::<u8>(), 6..90)) {
        let g = build_aig(&script, 5);
        let back = read_binary(&write_binary(&g)).expect("own output parses");
        let inputs: Vec<u64> = (0..5u64).map(|i| i.wrapping_mul(0x0123_4567_89AB_CDEF)).collect();
        prop_assert_eq!(g.eval64(&inputs), back.eval64(&inputs));
    }

    #[test]
    fn random_edits_then_compact_match_a_builder_rebuild(
        script in prop::collection::vec(any::<u8>(), 12..90),
        edits in prop::collection::vec((any::<u32>(), any::<u32>(), any::<bool>()), 1..10),
    ) {
        // Any sequence of in-place substitute/delete edits must leave a
        // canonical network: squeezing its free slots out (`compact`) and
        // replaying it through the eagerly-hashing builder must agree node
        // for node — the rebuild-path identity the in-place optimizer
        // passes inherit.
        let mut g = build_aig(&script, 4);
        for (pick, alt, reclaim) in edits {
            apply_random_edit(&mut g, pick, alt, reclaim);
        }
        let rebuilt = rebuild_via_builder(&g);
        let edited_function: Vec<u64> = {
            let inputs: Vec<u64> =
                (0..4u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15)).collect();
            g.eval64(&inputs)
        };
        let mut compacted = g;
        compacted.compact();
        prop_assert_eq!(compacted.dead_count(), 0);
        prop_assert_eq!(
            compacted.structural_hash(),
            rebuilt.structural_hash(),
            "compact() of the edited network must equal the builder rebuild"
        );
        // Compaction renumbers but must not change the function.
        let inputs: Vec<u64> =
            (0..4u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15)).collect();
        prop_assert_eq!(compacted.eval64(&inputs), edited_function);
        // Fanout bookkeeping survives the whole edit+compact sequence.
        let recounted = {
            let mut c = compacted.clone();
            c.recompute_fanouts();
            c.fanout_counts()
        };
        prop_assert_eq!(compacted.fanout_counts(), recounted);
    }

    #[test]
    fn strash_keeps_function(script in prop::collection::vec(any::<u8>(), 6..60)) {
        // Building the same script twice yields identical networks.
        let g1 = build_aig(&script, 4);
        let g2 = build_aig(&script, 4);
        prop_assert_eq!(g1.and_count(), g2.and_count());
        let inputs: Vec<u64> = (0..4u64).map(|i| i.wrapping_mul(0xDEAD_BEEF_CAFE)).collect();
        prop_assert_eq!(g1.eval64(&inputs), g2.eval64(&inputs));
    }
}
