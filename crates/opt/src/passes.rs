//! The concrete network transformations behind the pass manager:
//! structural hashing, sweeping, and AND-tree balancing (rewriting lives in
//! [`crate::rewrite`]).

use crate::analysis::OptContext;
use crate::util::mapped;
use sfq_netlist::aig::{Aig, Lit, NodeId, NodeKind};
use sfq_netlist::transform;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Rebuilds every node of `aig` through the structural-hashing builder,
/// merging duplicate two-level structures. Unlike [`sweep_network`],
/// dangling logic is preserved (merged, but not removed), so the pass is a
/// pure deduplication. Returns the network and the number of AND nodes
/// merged away.
pub fn strash_network(aig: &Aig) -> (Aig, usize) {
    let mut out = Aig::new();
    let mut map: Vec<Option<Lit>> = vec![None; aig.len()];
    map[NodeId::CONST0.index()] = Some(Lit::FALSE);
    for id in aig.node_ids() {
        match aig.kind(id) {
            NodeKind::Const0 => {}
            NodeKind::Input(_) => map[id.index()] = Some(out.add_pi()),
            NodeKind::And(a, b) => {
                let (fa, fb) = (mapped(&map, a), mapped(&map, b));
                map[id.index()] = Some(out.and(fa, fb));
            }
        }
    }
    for &po in aig.pos() {
        out.add_po(mapped(&map, po));
    }
    let merged = aig.and_count().saturating_sub(out.and_count());
    (out, merged)
}

/// Dead-node sweep with constant propagation: delegates to the single
/// implementation in [`sfq_netlist::transform::sweep`] (which
/// `transform::cleanup` also aliases — the crate graph points this way, so
/// the netlist crate hosts the body and this pass re-exports it). Returns
/// the network and the number of AND nodes removed.
pub fn sweep_network(aig: &Aig) -> (Aig, usize) {
    let out = transform::sweep(aig);
    let removed = aig.and_count().saturating_sub(out.and_count());
    (out, removed)
}

/// Per-node "internal to an AND tree" classification: an AND with exactly
/// one fanout, that fanout being a non-complemented fanin edge of another
/// AND. Such nodes dissolve into their parent's multi-input conjunction.
fn internal_flags(aig: &Aig) -> Vec<bool> {
    let mut and_parent_refs = vec![0u32; aig.len()];
    let mut complemented_ref = vec![false; aig.len()];
    for id in aig.and_ids() {
        let (a, b) = aig.fanins(id).expect("AND node has fanins");
        for l in [a, b] {
            and_parent_refs[l.node().index()] += 1;
            if l.is_complement() {
                complemented_ref[l.node().index()] = true;
            }
        }
    }
    aig.node_ids()
        .map(|id| {
            matches!(aig.kind(id), NodeKind::And(..))
                && aig.fanout_count(id) == 1
                && and_parent_refs[id.index()] == 1
                && !complemented_ref[id.index()]
        })
        .collect()
}

/// Collects the leaf literals of the maximal AND tree rooted at `root`.
fn collect_tree(aig: &Aig, internal: &[bool], root: NodeId, leaves: &mut Vec<Lit>) {
    let (a, b) = aig.fanins(root).expect("tree root is an AND");
    for l in [a, b] {
        if !l.is_complement() && internal[l.node().index()] {
            collect_tree(aig, internal, l.node(), leaves);
        } else {
            leaves.push(l);
        }
    }
}

/// Extends `levels` to cover nodes appended to `aig` since the last call.
fn sync_levels(aig: &Aig, levels: &mut Vec<u32>) {
    for idx in levels.len()..aig.len() {
        let id = NodeId(idx as u32);
        let l = match aig.fanins(id) {
            Some((a, b)) => 1 + levels[a.node().index()].max(levels[b.node().index()]),
            None => 0,
        };
        levels.push(l);
    }
}

/// Rebalances maximal AND trees to minimize depth: leaves are combined
/// two-lowest-levels-first (the optimal-merge strategy), so every tree ends
/// at the minimum possible level given its leaf levels — never deeper than
/// before. Duplicate leaves are deduplicated and complementary leaf pairs
/// collapse the tree to constant false. Returns the network and the number
/// of trees (≥ 3 leaves) rebuilt.
pub fn balance_network(aig: &Aig) -> (Aig, usize) {
    balance_trees(aig, &internal_flags(aig))
}

/// Slack-prioritized balancing: only trees whose root sits on a tight
/// PI→PO path (zero slack under `sfq-sta`'s unit-delay analysis) are
/// rebuilt; everything off the critical paths is copied verbatim. Depth
/// never increases and the zero-slack trees shrink as far as full
/// balancing would shrink them; the network depth matches full balancing
/// whenever the rebuilt critical trees remain the deepest (a near-critical
/// tree left alone can otherwise become the new depth limit — the fixpoint
/// loop re-levels and picks it up next round). Non-critical structure (and
/// any sharing rewriting set up there) is left untouched. Returns the
/// network and the number of trees rebuilt.
pub fn balance_critical_network(aig: &Aig) -> (Aig, usize) {
    balance_critical_network_ctx(aig, &mut OptContext::scratch())
}

/// [`balance_critical_network`] consuming the caller's analysis context:
/// the slack classification reads the context's cached timing analysis (a
/// cache hit or an incremental rebind when a slack-aware rewrite ran
/// earlier in the pipeline) instead of building a throwaway one.
pub fn balance_critical_network_ctx(aig: &Aig, ctx: &mut OptContext) -> (Aig, usize) {
    let sta = ctx.sta(aig);
    let mut internal = internal_flags(aig);
    // Restrict the dissolve set to trees rooted at zero-slack nodes: an
    // internal node keeps its flag only if its (unique) maximal tree root
    // is critical. Roots are the non-internal ANDs; walk each critical
    // root's tree and collect the members, then clear everyone else.
    let mut keep = vec![false; aig.len()];
    for id in aig.and_ids() {
        if internal[id.index()] {
            continue; // not a root
        }
        if sta.slack(id) != 0 {
            continue; // off the critical paths: leave the tree alone
        }
        // Mark this tree's internal members.
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            let (a, b) = aig.fanins(n).expect("AND tree member");
            for l in [a, b] {
                if !l.is_complement() && internal[l.node().index()] {
                    keep[l.node().index()] = true;
                    stack.push(l.node());
                }
            }
        }
    }
    for (i, flag) in internal.iter_mut().enumerate() {
        *flag &= keep[i];
    }
    balance_trees(aig, &internal)
}

/// Shared rebuild behind [`balance_network`] and
/// [`balance_critical_network`]: dissolves exactly the trees described by
/// `internal` and rebuilds each with the optimal-merge heap.
fn balance_trees(aig: &Aig, internal: &[bool]) -> (Aig, usize) {
    let mut out = Aig::new();
    let mut levels: Vec<u32> = Vec::new();
    let mut map: Vec<Option<Lit>> = vec![None; aig.len()];
    map[NodeId::CONST0.index()] = Some(Lit::FALSE);
    let mut rebuilt = 0usize;
    for id in aig.node_ids() {
        match aig.kind(id) {
            NodeKind::Const0 => {}
            NodeKind::Input(_) => map[id.index()] = Some(out.add_pi()),
            NodeKind::And(..) => {
                if internal[id.index()] {
                    continue; // dissolved into its tree root
                }
                let mut leaves = Vec::new();
                collect_tree(aig, internal, id, &mut leaves);
                let mut lits: Vec<Lit> = leaves.iter().map(|&l| mapped(&map, l)).collect();
                lits.sort();
                lits.dedup();
                let contradiction = lits.windows(2).any(|w| w[0] == !w[1]);
                let result = if contradiction || lits.contains(&Lit::FALSE) {
                    Lit::FALSE
                } else {
                    lits.retain(|&l| l != Lit::TRUE);
                    if lits.len() >= 3 {
                        rebuilt += 1;
                    }
                    sync_levels(&out, &mut levels);
                    let mut heap: BinaryHeap<Reverse<(u32, Lit)>> = lits
                        .iter()
                        .map(|&l| Reverse((levels[l.node().index()], l)))
                        .collect();
                    while heap.len() >= 2 {
                        let Reverse((_, x)) = heap.pop().expect("two entries");
                        let Reverse((_, y)) = heap.pop().expect("two entries");
                        let t = out.and(x, y);
                        sync_levels(&out, &mut levels);
                        heap.push(Reverse((levels[t.node().index()], t)));
                    }
                    match heap.pop() {
                        Some(Reverse((_, l))) => l,
                        None => Lit::TRUE, // every leaf was constant true
                    }
                };
                map[id.index()] = Some(result);
            }
        }
    }
    for &po in aig.pos() {
        out.add_po(mapped(&map, po));
    }
    (out, rebuilt)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval_equal(a: &Aig, b: &Aig) {
        assert_eq!(a.pi_count(), b.pi_count());
        assert_eq!(a.po_count(), b.po_count());
        let mut state = 0x5EED_5EED_5EED_5EEDu64;
        for _ in 0..8 {
            let inputs: Vec<u64> = (0..a.pi_count())
                .map(|_| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state
                })
                .collect();
            assert_eq!(a.eval64(&inputs), b.eval64(&inputs));
        }
    }

    #[test]
    fn balance_flattens_a_chain() {
        let mut g = Aig::new();
        let pis: Vec<Lit> = (0..8).map(|_| g.add_pi()).collect();
        let mut acc = pis[0];
        for &p in &pis[1..] {
            acc = g.and(acc, p);
        }
        g.add_po(acc);
        assert_eq!(g.depth(), 7);
        let (b, rebuilt) = balance_network(&g);
        assert_eq!(rebuilt, 1);
        assert_eq!(b.depth(), 3, "8-leaf tree balances to depth 3");
        assert_eq!(b.and_count(), 7);
        eval_equal(&g, &b);
    }

    #[test]
    fn balance_respects_leaf_levels() {
        // A chain hanging off a deep leaf: the deep leaf must join last.
        let mut g = Aig::new();
        let pis: Vec<Lit> = (0..6).map(|_| g.add_pi()).collect();
        let deep = g.xor3(pis[0], pis[1], pis[2]); // level 4 cone
        let mut acc = deep;
        for &p in &pis[3..] {
            acc = g.and(acc, p);
        }
        g.add_po(acc);
        let (b, _) = balance_network(&g);
        assert!(b.depth() <= g.depth());
        eval_equal(&g, &b);
    }

    #[test]
    fn balance_handles_duplicates_and_contradictions() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let c = g.add_pi();
        // a & b & a — duplicate leaf.
        let t1 = g.and(a, b);
        let dup = g.and(t1, a);
        // (a & c) & !a — hidden contradiction.
        let t2 = g.and(a, c);
        let zero = g.and(t2, !a);
        g.add_po(dup);
        g.add_po(zero);
        let (bal, _) = balance_network(&g);
        eval_equal(&g, &bal);
        assert!(bal.and_count() <= g.and_count());
        // The contradictory tree must fold to constant false.
        assert!(!bal.eval(&[true, true, true])[1]);
    }

    #[test]
    fn balance_keeps_shared_nodes_as_leaves() {
        let mut g = Aig::new();
        let pis: Vec<Lit> = (0..4).map(|_| g.add_pi()).collect();
        let shared = g.and(pis[0], pis[1]);
        let x = g.and(shared, pis[2]);
        let y = g.and(shared, pis[3]);
        g.add_po(x);
        g.add_po(y);
        let (b, _) = balance_network(&g);
        assert_eq!(b.and_count(), 3, "shared node must not be duplicated");
        eval_equal(&g, &b);
    }

    #[test]
    fn critical_balance_rebuilds_only_zero_slack_trees() {
        // A deep AND chain (critical) next to a shallow chain that ends in
        // a gate with plenty of slack: full balancing rebuilds both, the
        // slack-prioritized variant touches only the critical tree — and
        // both land on the same depth, because depth is decided by the
        // zero-slack tree.
        let mut g = Aig::new();
        let pis: Vec<Lit> = (0..8).map(|_| g.add_pi()).collect();
        let mut deep = pis[0];
        for &p in &pis[1..8] {
            deep = g.and(deep, p);
        }
        // Over complemented literals so the side tree neither shares
        // structure with the deep chain nor is implied by it.
        let mut side = !pis[3];
        for &p in pis[..3].iter().rev() {
            side = g.and(side, !p);
        }
        let top = g.and(deep, !side);
        g.add_po(top);
        let (full, full_rebuilt) = balance_network(&g);
        let (crit, crit_rebuilt) = balance_critical_network(&g);
        assert_eq!(full_rebuilt, 2, "full balancing rebuilds both trees");
        assert_eq!(crit_rebuilt, 1, "only the critical tree is rebuilt");
        assert_eq!(full.depth(), crit.depth(), "same depth either way");
        assert!(crit.depth() < g.depth());
        eval_equal(&g, &crit);
        eval_equal(&g, &full);
    }

    #[test]
    fn strash_preserves_dangling_sweep_removes() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let keep = g.and(a, b);
        let _dead = g.xor(a, b);
        g.add_po(keep);
        let (s, merged) = strash_network(&g);
        assert_eq!(merged, 0);
        assert_eq!(s.and_count(), g.and_count(), "strash keeps dangling logic");
        let (w, removed) = sweep_network(&g);
        assert_eq!(removed, 3);
        assert_eq!(w.and_count(), 1);
        eval_equal(&g, &w);
    }
}
