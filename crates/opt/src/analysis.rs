//! The analysis manager: a typed cache of lazily-computed, incrementally
//! refreshed network analyses threaded through the whole pass pipeline.
//!
//! Every pass used to recompute its analyses from scratch — a fresh level
//! vector per [`crate::pass::PassStats`] measurement, a throwaway
//! [`AigSta`] per `balance-slack` invocation, a full timing build per
//! `rewrite-slack` round. [`OptContext`] centralizes them LLVM-style: a
//! pass *asks* for an analysis ([`OptContext::levels`],
//! [`OptContext::sta`], [`OptContext::fanouts`],
//! [`OptContext::signatures`]) and *reports* what it kept valid (a
//! [`Preserved`] set applied via [`OptContext::retain`]). Consumers get
//!
//! - **cache hits** when the previous pass preserved the analysis,
//! - **incremental refreshes** when it went stale: a stale [`AigSta`] is
//!   never dropped — it is *rebound* to the current network
//!   ([`AigSta::rebind`]: structural diff + dirty-cone
//!   [`sfq_sta::TimingAnalysis::refresh`]), so the pipeline builds the
//!   timing analysis from scratch at most once per run,
//! - **from-scratch recomputes** only on first use.
//!
//! [`CtxCounters`] records which of the three paths served each request;
//! the per-pass deltas surface in [`crate::pass::PassStats`] and the CLI
//! `opt --stats` table. [`OptContext::scratch`] disables all caching —
//! every request recomputes, reproducing the pre-context pipeline exactly —
//! which is what the `abl-ctx` ablation and the byte-identity tests run
//! against.

use sfq_netlist::aig::{Aig, NodeKind};
use sfq_sta::AigSta;

/// Which cached analyses a pass left valid for its *output* network.
///
/// Returned by every [`crate::pass::OptPass::run`]: the whole-network
/// rebuilders (`strash`, `sweep`, `balance`) preserve nothing, while
/// `rewrite-slack`/`rewrite-dff` hand their already-rebound timing
/// analysis (and the levels implied by its arrivals) back to the context,
/// so only the reconstructed cones were refreshed and nothing is rebuilt.
/// The pass runner upgrades any report to [`Preserved::all`] when the pass
/// verifiably reproduced the network unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Preserved {
    /// Node levels (and the depth derived from them) are still exact.
    pub levels: bool,
    /// The unit-delay timing analysis is still exact.
    pub sta: bool,
    /// Fanout/reference counts are still exact.
    pub fanouts: bool,
    /// Simulation signatures are still exact.
    pub signatures: bool,
}

impl Preserved {
    /// Nothing survives — the pass restructured the network arbitrarily.
    pub fn none() -> Self {
        Preserved {
            levels: false,
            sta: false,
            fanouts: false,
            signatures: false,
        }
    }

    /// Everything survives — the pass left the network untouched.
    pub fn all() -> Self {
        Preserved {
            levels: true,
            sta: true,
            fanouts: true,
            signatures: true,
        }
    }

    /// This set with the timing analysis marked preserved.
    pub fn with_sta(mut self) -> Self {
        self.sta = true;
        self
    }

    /// This set with the level analysis marked preserved.
    pub fn with_levels(mut self) -> Self {
        self.levels = true;
        self
    }
}

/// Monotonic counters over an [`OptContext`]'s lifetime. Per-pass numbers
/// are deltas between two snapshots ([`CtxCounters::delta_since`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CtxCounters {
    /// Requests served straight from a fresh cache entry.
    pub cache_hits: usize,
    /// Analyses recomputed from the network (levels, fanouts, signatures —
    /// and, in scratch mode, everything).
    pub recomputes: usize,
    /// Cached analyses marked stale by [`OptContext::retain`].
    pub invalidations: usize,
    /// Timing analyses built from scratch (graph construction plus full
    /// forward/backward sweeps). At most 1 per pipeline run once a context
    /// is threaded through it.
    pub sta_full_builds: usize,
    /// Stale timing analyses rebound incrementally ([`AigSta::rebind`]).
    pub sta_rebinds: usize,
    /// Node recomputations performed by those rebinds — the incremental
    /// cost actually paid, to compare against `sta_full_builds × network`.
    pub sta_nodes_refreshed: usize,
}

impl CtxCounters {
    /// Counter increments since `earlier` (a snapshot of the same context).
    pub fn delta_since(&self, earlier: &CtxCounters) -> CtxCounters {
        CtxCounters {
            cache_hits: self.cache_hits - earlier.cache_hits,
            recomputes: self.recomputes - earlier.recomputes,
            invalidations: self.invalidations - earlier.invalidations,
            sta_full_builds: self.sta_full_builds - earlier.sta_full_builds,
            sta_rebinds: self.sta_rebinds - earlier.sta_rebinds,
            sta_nodes_refreshed: self.sta_nodes_refreshed - earlier.sta_nodes_refreshed,
        }
    }

    /// Merges another context's counters into this one (used when a run
    /// aggregates across helper contexts).
    pub fn absorb(&mut self, other: &CtxCounters) {
        self.cache_hits += other.cache_hits;
        self.recomputes += other.recomputes;
        self.invalidations += other.invalidations;
        self.sta_full_builds += other.sta_full_builds;
        self.sta_rebinds += other.sta_rebinds;
        self.sta_nodes_refreshed += other.sta_nodes_refreshed;
    }
}

/// The seed of the deterministic signature patterns (see
/// [`signatures_of`]).
pub const SIGNATURE_SEED: u64 = 0x51F0_57A7_1C51_6EED;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// 64-bit simulation signature of every node under the fixed deterministic
/// input patterns (`splitmix64(SIGNATURE_SEED ^ pi_ordinal)` per input):
/// the cheap semantic fingerprint resubstitution-style passes filter
/// candidates with before paying for SAT. Exposed as a free function so
/// tests can cross-check the cached copy in [`OptContext::signatures`].
pub fn signatures_of(aig: &Aig) -> Vec<u64> {
    let mut sig = Vec::new();
    signatures_of_into(aig, &mut sig);
    sig
}

/// [`signatures_of`] writing into a caller-owned buffer, mirroring
/// [`Aig::levels_into`]: the fixpoint loop re-signs the network every
/// round, and the context reuses one allocation across all of them.
pub fn signatures_of_into(aig: &Aig, sig: &mut Vec<u64>) {
    sig.clear();
    sig.resize(aig.len(), 0);
    for id in aig.node_ids() {
        sig[id.index()] = match aig.kind(id) {
            NodeKind::Const0 => 0,
            NodeKind::Input(i) => splitmix64(SIGNATURE_SEED ^ u64::from(i)),
            NodeKind::And(a, b) => {
                let va = sig[a.node().index()] ^ if a.is_complement() { u64::MAX } else { 0 };
                let vb = sig[b.node().index()] ^ if b.is_complement() { u64::MAX } else { 0 };
                va & vb
            }
        };
    }
}

/// Structural equality of two networks: same node array (kinds and fanin
/// literals) and the same output list. The pass runner uses this to detect
/// a verbatim rebuild — the common case on converged fixpoint rounds — and
/// upgrade the pass's [`Preserved`] report to [`Preserved::all`].
pub fn same_structure(a: &Aig, b: &Aig) -> bool {
    a.len() == b.len() && a.pos() == b.pos() && a.node_ids().all(|id| a.kind(id) == b.kind(id))
}

/// The typed analysis cache threaded through a pass pipeline.
///
/// One context serves one network *lineage*: the pipeline hands it the
/// evolving network, passes consume analyses through the accessors and
/// report [`Preserved`] sets, and the context keeps every analysis as warm
/// as the reports allow. Staleness is a contract, not a detection: a pass
/// that restructures the network and claims preservation corrupts the
/// cache (the property tests pin every pass's honesty).
#[derive(Debug, Default)]
pub struct OptContext {
    scratch: bool,
    levels: Vec<u32>,
    levels_fresh: bool,
    sta: Option<AigSta>,
    sta_fresh: bool,
    fanouts: Vec<u32>,
    fanouts_fresh: bool,
    signatures: Vec<u64>,
    signatures_fresh: bool,
    counters: CtxCounters,
}

impl OptContext {
    /// A caching context — the normal mode.
    pub fn new() -> Self {
        Self::default()
    }

    /// A non-caching context: every request recomputes from scratch and
    /// nothing is retained across passes. This reproduces the pre-context
    /// pipeline exactly — the baseline of the `abl-ctx` ablation, the
    /// `sta_incremental` Criterion bench and the byte-identity tests.
    pub fn scratch() -> Self {
        OptContext {
            scratch: true,
            ..Self::default()
        }
    }

    /// Whether this is a non-caching ([`OptContext::scratch`]) context.
    pub fn is_scratch(&self) -> bool {
        self.scratch
    }

    /// Lifetime counters (snapshot; see [`CtxCounters::delta_since`]).
    pub fn counters(&self) -> CtxCounters {
        self.counters
    }

    /// Node levels of `aig` (indexed by `NodeId::index`), recomputed into
    /// the context's reusable buffer only when stale.
    pub fn levels(&mut self, aig: &Aig) -> &[u32] {
        self.refresh_levels(aig);
        &self.levels
    }

    /// Network depth of `aig` (max level over POs) from the cached levels.
    pub fn depth(&mut self, aig: &Aig) -> u32 {
        self.refresh_levels(aig);
        aig.depth_from(&self.levels)
    }

    fn refresh_levels(&mut self, aig: &Aig) {
        if !self.scratch && self.levels_fresh && self.levels.len() == aig.len() {
            self.counters.cache_hits += 1;
            return;
        }
        aig.levels_into(&mut self.levels);
        self.levels_fresh = true;
        self.counters.recomputes += 1;
    }

    /// Fanout/reference counts of `aig` (ANDs plus POs referencing each
    /// node, indexed by `NodeId::index`).
    pub fn fanouts(&mut self, aig: &Aig) -> &[u32] {
        if self.scratch || !self.fanouts_fresh || self.fanouts.len() != aig.len() {
            self.fanouts.clear();
            self.fanouts
                .extend(aig.node_ids().map(|id| aig.fanout_count(id)));
            self.fanouts_fresh = true;
            self.counters.recomputes += 1;
        } else {
            self.counters.cache_hits += 1;
        }
        &self.fanouts
    }

    /// Per-node 64-bit simulation signatures of `aig` (see
    /// [`signatures_of`]).
    pub fn signatures(&mut self, aig: &Aig) -> &[u64] {
        if self.scratch || !self.signatures_fresh || self.signatures.len() != aig.len() {
            signatures_of_into(aig, &mut self.signatures);
            self.signatures_fresh = true;
            self.counters.recomputes += 1;
        } else {
            self.counters.cache_hits += 1;
        }
        &self.signatures
    }

    /// The unit-delay timing analysis of `aig`: a cache hit when fresh, an
    /// incremental rebind when stale, a from-scratch build only when the
    /// context has never held one.
    pub fn sta(&mut self, aig: &Aig) -> &AigSta {
        self.ensure_sta(aig);
        self.sta.as_ref().expect("ensure_sta populates the cache")
    }

    /// Removes the timing analysis from the cache for exclusive mutable
    /// use (the slack-aware rewrite pattern: consult required times while
    /// feeding accepted growth back through `raise_arrival`). The taken
    /// analysis is exact for `aig`; hand it back with
    /// [`OptContext::finish_sta`] once the pass has produced its output
    /// network.
    pub fn take_sta(&mut self, aig: &Aig) -> AigSta {
        self.ensure_sta(aig);
        self.sta_fresh = false;
        self.sta.take().expect("ensure_sta populates the cache")
    }

    /// Returns a taken timing analysis after the pass rebuilt the network
    /// into `out`: the analysis is rebound to `out` (clearing any arrival
    /// floors the pass raised, refreshing only the reconstructed cones)
    /// and re-cached as fresh, together with the levels its arrivals now
    /// equal. In scratch mode the analysis is simply dropped.
    pub fn finish_sta(&mut self, mut sta: AigSta, out: &Aig) {
        if self.scratch {
            return;
        }
        let stats = sta.rebind(out);
        self.counters.sta_rebinds += 1;
        self.counters.sta_nodes_refreshed += stats.refreshed;
        self.levels.clear();
        self.levels.extend(sta.arrivals().iter().map(|&a| a as u32));
        self.levels_fresh = true;
        self.sta = Some(sta);
        self.sta_fresh = true;
    }

    fn ensure_sta(&mut self, aig: &Aig) {
        if self.scratch {
            self.refresh_levels(aig);
            self.sta = Some(AigSta::with_levels(aig, &self.levels));
            self.sta_fresh = true;
            self.counters.sta_full_builds += 1;
            return;
        }
        match (self.sta.is_some(), self.sta_fresh) {
            (true, true) => self.counters.cache_hits += 1,
            (true, false) => {
                let sta = self.sta.as_mut().expect("checked above");
                let stats = sta.rebind(aig);
                self.counters.sta_rebinds += 1;
                self.counters.sta_nodes_refreshed += stats.refreshed;
                self.sta_fresh = true;
            }
            (false, _) => {
                self.refresh_levels(aig);
                self.sta = Some(AigSta::with_levels(aig, &self.levels));
                self.sta_fresh = true;
                self.counters.sta_full_builds += 1;
            }
        }
    }

    /// Applies a pass's [`Preserved`] report: everything not preserved is
    /// marked stale (the cached object survives as the warm start of the
    /// next incremental refresh — nothing is dropped).
    pub fn retain(&mut self, preserved: &Preserved) {
        if self.scratch {
            return;
        }
        if !preserved.levels && self.levels_fresh {
            self.levels_fresh = false;
            self.counters.invalidations += 1;
        }
        if !preserved.sta && self.sta_fresh {
            self.sta_fresh = false;
            self.counters.invalidations += 1;
        }
        if !preserved.fanouts && self.fanouts_fresh {
            self.fanouts_fresh = false;
            self.counters.invalidations += 1;
        }
        if !preserved.signatures && self.signatures_fresh {
            self.signatures_fresh = false;
            self.counters.invalidations += 1;
        }
    }

    /// Marks every cached analysis stale — the fixpoint loop's rollback
    /// hook (the network was replaced wholesale by a snapshot).
    pub fn invalidate_all(&mut self) {
        self.retain(&Preserved::none());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn subject() -> Aig {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let c = g.add_pi();
        let x = g.xor(a, b);
        let m = g.maj3(x, b, c);
        g.add_po(m);
        g
    }

    #[test]
    fn accessors_match_fresh_computation() {
        let g = subject();
        let mut ctx = OptContext::new();
        assert_eq!(ctx.levels(&g), g.levels().as_slice());
        assert_eq!(ctx.depth(&g), g.depth());
        let fanouts: Vec<u32> = g.node_ids().map(|id| g.fanout_count(id)).collect();
        assert_eq!(ctx.fanouts(&g), fanouts.as_slice());
        assert_eq!(ctx.signatures(&g), signatures_of(&g).as_slice());
        let fresh = AigSta::new(&g);
        assert_eq!(ctx.sta(&g).analysis(), fresh.analysis());
    }

    #[test]
    fn second_request_is_a_cache_hit() {
        let g = subject();
        let mut ctx = OptContext::new();
        ctx.levels(&g);
        let before = ctx.counters();
        ctx.levels(&g);
        ctx.depth(&g);
        let d = ctx.counters().delta_since(&before);
        assert_eq!(d.cache_hits, 2);
        assert_eq!(d.recomputes, 0);
    }

    #[test]
    fn stale_sta_rebinds_instead_of_rebuilding() {
        let g = subject();
        let mut ctx = OptContext::new();
        ctx.sta(&g);
        ctx.invalidate_all();
        ctx.sta(&g);
        let c = ctx.counters();
        assert_eq!(c.sta_full_builds, 1, "one from-scratch build ever");
        assert_eq!(c.sta_rebinds, 1, "the stale copy was rebound");
    }

    #[test]
    fn scratch_context_never_caches() {
        let g = subject();
        let mut ctx = OptContext::scratch();
        ctx.sta(&g);
        ctx.sta(&g);
        let c = ctx.counters();
        assert_eq!(c.sta_full_builds, 2);
        assert_eq!(c.cache_hits, 0);
        assert_eq!(c.sta_rebinds, 0);
    }

    #[test]
    fn signatures_separate_distinct_functions() {
        let g = subject();
        let sig = signatures_of(&g);
        let pis: Vec<u64> = g.pis().iter().map(|&id| sig[id.index()]).collect();
        assert_eq!(pis.len(), 3);
        assert!(pis[0] != pis[1] && pis[1] != pis[2], "distinct PI patterns");
        // The PO cone's signature is the simulated function of the PI
        // patterns — spot-check against eval64.
        let po = g.pos()[0];
        let expect = g.eval64(&pis)[0];
        let got = sig[po.node().index()] ^ if po.is_complement() { u64::MAX } else { 0 };
        assert_eq!(got, expect);
    }

    #[test]
    fn same_structure_detects_identity_and_change() {
        let g = subject();
        assert!(same_structure(&g, &g.clone()));
        let mut h = g.clone();
        let extra = h.pis()[0];
        h.add_po(sfq_netlist::aig::Lit::new(extra, true));
        assert!(!same_structure(&g, &h));
    }
}
