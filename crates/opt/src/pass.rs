//! The pass manager: the [`OptPass`] trait, per-pass statistics, the
//! [`Pipeline`] runner with its guarded convergence loop, and the
//! fingerprinted [`OptConfig`] that flows and caches key on.
//!
//! Every pass runs against an [`OptContext`] — the typed analysis cache of
//! [`crate::analysis`] — and reports a [`Preserved`] set describing which
//! cached analyses its output network kept valid. The pipeline threads
//! **one** context through all passes and all fixpoint rounds, so analyses
//! survive pass boundaries: levels are recomputed only when a pass
//! restructured the network, and the unit-delay timing analysis is built
//! from scratch at most once per run (stale copies are incrementally
//! rebound — see [`sfq_sta::AigSta::rebind`]).

use crate::analysis::{same_structure, CtxCounters, OptContext, Preserved};
use crate::cec::{check_equivalence, CecConfig, CecStats, CecVerdict};
use crate::passes::{balance_critical_network_ctx, balance_network, strash_network, sweep_network};
use crate::rewrite::{
    rewrite_network_ctx, rewrite_network_in_place_ctx, RewriteConfig, RewriteMode,
    DEFAULT_DFF_PHASES,
};
use sfq_netlist::aig::Aig;
use sfq_netlist::transform::sweep_in_place;
use std::fmt;
use std::hash::Hasher;
use std::time::Instant;

/// Node/level deltas and analysis-cache accounting of one pass execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassStats {
    /// Pass name (as shown in stats tables).
    pub pass: &'static str,
    /// AND count before the pass.
    pub nodes_before: usize,
    /// AND count after the pass.
    pub nodes_after: usize,
    /// Depth before the pass.
    pub depth_before: u32,
    /// Depth after the pass.
    pub depth_after: u32,
    /// Pass-specific application count (nodes merged/removed, trees
    /// rebuilt, rewrite sites committed).
    pub applied: usize,
    /// Analysis requests served from the context cache during this pass.
    pub cache_hits: usize,
    /// Cached analyses this pass invalidated (marked stale).
    pub invalidations: usize,
    /// STA nodes incrementally refreshed (rebind dirty cones) during this
    /// pass — compare against `sta_builds` × network size.
    pub sta_refreshed: usize,
    /// From-scratch STA builds during this pass.
    pub sta_builds: usize,
    /// Wall-clock time of the pass in microseconds.
    pub micros: u64,
}

impl PassStats {
    /// Signed node delta (negative = reduction).
    pub fn node_delta(&self) -> i64 {
        self.nodes_after as i64 - self.nodes_before as i64
    }
}

impl fmt::Display for PassStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<8} {:>6} -> {:<6} nodes  {:>3} -> {:<3} depth  ({} applied)",
            self.pass,
            self.nodes_before,
            self.nodes_after,
            self.depth_before,
            self.depth_after,
            self.applied
        )
    }
}

/// A network optimization pass.
///
/// Passes transform the network in place and keep the analysis context
/// honest: the returned [`Preserved`] set (already applied to `ctx` by the
/// time `run` returns) names exactly the cached analyses that are still
/// valid for the output network. The shared runner upgrades the report to
/// [`Preserved::all`] when the pass verifiably reproduced the network
/// unchanged, so converged fixpoint rounds cost no analysis work.
pub trait OptPass {
    /// Short stable name (also the `--passes` spelling).
    fn name(&self) -> &'static str;
    /// Transforms `aig` in place, returning the run's statistics and the
    /// preservation report applied to `ctx`.
    fn run(&self, aig: &mut Aig, ctx: &mut OptContext) -> (PassStats, Preserved);
}

fn stats_around(
    pass: &'static str,
    aig: &mut Aig,
    ctx: &mut OptContext,
    f: impl FnOnce(&Aig, &mut OptContext) -> (Aig, usize, Preserved),
) -> (PassStats, Preserved) {
    let _span = sfq_obs::span_owned(|| format!("opt:{pass}"));
    let start = Instant::now();
    let snap = ctx.counters();
    let nodes_before = aig.and_count();
    let depth_before = ctx.depth(aig);
    let (next, applied, mut preserved) = f(aig, ctx);
    // A verbatim rebuild (the converged-round common case) preserves every
    // analysis regardless of what the pass claims.
    if same_structure(aig, &next) {
        preserved = Preserved::all();
    }
    *aig = next;
    ctx.retain(&preserved);
    let nodes_after = aig.and_count();
    let depth_after = ctx.depth(aig);
    let delta = ctx.counters().delta_since(&snap);
    (
        PassStats {
            pass,
            nodes_before,
            nodes_after,
            depth_before,
            depth_after,
            applied,
            cache_hits: delta.cache_hits,
            invalidations: delta.invalidations,
            sta_refreshed: delta.sta_nodes_refreshed,
            sta_builds: delta.sta_full_builds,
            micros: start.elapsed().as_micros() as u64,
        },
        preserved,
    )
}

/// The [`stats_around`] counterpart for ID-stable passes that edit the
/// network in place instead of returning a rebuilt one. With zero
/// applications an in-place pass has verifiably not touched the network at
/// all, so the report is upgraded to [`Preserved::all`] — the converged
/// fixpoint rounds that dominate paper-scale runs then cost no
/// reconstruction and no analysis invalidation.
fn stats_around_in_place(
    pass: &'static str,
    aig: &mut Aig,
    ctx: &mut OptContext,
    f: impl FnOnce(&mut Aig, &mut OptContext) -> (usize, Preserved),
) -> (PassStats, Preserved) {
    let _span = sfq_obs::span_owned(|| format!("opt:{pass}"));
    let start = Instant::now();
    let snap = ctx.counters();
    let nodes_before = aig.and_count();
    let depth_before = ctx.depth(aig);
    let (applied, mut preserved) = f(aig, ctx);
    if applied == 0 {
        preserved = Preserved::all();
    }
    ctx.retain(&preserved);
    let nodes_after = aig.and_count();
    let depth_after = ctx.depth(aig);
    let delta = ctx.counters().delta_since(&snap);
    (
        PassStats {
            pass,
            nodes_before,
            nodes_after,
            depth_before,
            depth_after,
            applied,
            cache_hits: delta.cache_hits,
            invalidations: delta.invalidations,
            sta_refreshed: delta.sta_nodes_refreshed,
            sta_builds: delta.sta_full_builds,
            micros: start.elapsed().as_micros() as u64,
        },
        preserved,
    )
}

/// Structural hashing / deduplication pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct Strash;

impl OptPass for Strash {
    fn name(&self) -> &'static str {
        "strash"
    }
    fn run(&self, aig: &mut Aig, ctx: &mut OptContext) -> (PassStats, Preserved) {
        stats_around("strash", aig, ctx, |g, _| {
            let (out, applied) = strash_network(g);
            (out, applied, Preserved::none())
        })
    }
}

/// Dangling-node sweep with constant propagation.
///
/// The default (ID-stable) variant kills unreachable nodes in place,
/// leaving free slots behind instead of rebuilding — survivors keep their
/// ids, so the next timing rebind's dirty set is exactly the killed nodes.
/// The cached analyses are invalidated even though live nodes are
/// untouched: freed slots change the *indexed* views (levels, signatures)
/// at their positions, and dead nodes in a stale timing graph would
/// phantom-constrain live required times.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sweep {
    /// Rebuild the network from scratch (the pre-in-place behavior)
    /// instead of editing it; results are structurally identical after
    /// [`Aig::compact`].
    pub rebuild: bool,
}

impl OptPass for Sweep {
    fn name(&self) -> &'static str {
        "sweep"
    }
    fn run(&self, aig: &mut Aig, ctx: &mut OptContext) -> (PassStats, Preserved) {
        if self.rebuild {
            stats_around("sweep", aig, ctx, |g, _| {
                let (out, applied) = sweep_network(g);
                (out, applied, Preserved::none())
            })
        } else {
            stats_around_in_place("sweep", aig, ctx, |g, _| {
                let applied = sweep_in_place(g);
                // Occupancy guard: when sweeping killed most of the array
                // (a huge dead cone, e.g. random scale-class networks),
                // leaving the holes would make every later len()-sized
                // analysis pay for slots that no longer exist. Compacting
                // here matches what the rebuild path produces anyway
                // (compact preserves live-node order), so structural
                // identity is unaffected; on paper-scale incremental
                // rounds the dead fraction stays tiny and this is skipped.
                if g.dead_count() * 2 > g.len() {
                    g.compact();
                }
                (applied, Preserved::none())
            })
        }
    }
}

/// Depth-oriented AND-tree rebalancing.
#[derive(Debug, Clone, Copy, Default)]
pub struct Balance;

impl OptPass for Balance {
    fn name(&self) -> &'static str {
        "balance"
    }
    fn run(&self, aig: &mut Aig, ctx: &mut OptContext) -> (PassStats, Preserved) {
        stats_around("balance", aig, ctx, |g, _| {
            let (out, applied) = balance_network(g);
            (out, applied, Preserved::none())
        })
    }
}

/// Slack-prioritized rebalancing: only zero-slack trees are rebuilt (see
/// [`crate::passes::balance_critical_network`]). Consumes the context's
/// cached timing analysis instead of building a throwaway one.
#[derive(Debug, Clone, Copy, Default)]
pub struct BalanceCritical;

impl OptPass for BalanceCritical {
    fn name(&self) -> &'static str {
        "balance-slack"
    }
    fn run(&self, aig: &mut Aig, ctx: &mut OptContext) -> (PassStats, Preserved) {
        stats_around("balance-slack", aig, ctx, |g, ctx| {
            let (out, applied) = balance_critical_network_ctx(g, ctx);
            (out, applied, Preserved::none())
        })
    }
}

/// Cut-based NPN rewriting; the config's [`RewriteMode`] selects the
/// depth/pricing policy (and the pass name shown in stats tables).
///
/// The default (ID-stable) variant commits accepted sites by editing slots
/// in place ([`rewrite_network_in_place_ctx`]); a round with zero accepted
/// sites then leaves the network completely untouched.
#[derive(Debug, Clone, Copy, Default)]
pub struct Rewrite {
    /// Enumeration parameters and depth policy.
    pub config: RewriteConfig,
    /// Rebuild the network from scratch instead of editing it in place;
    /// site selection is shared, so results are structurally identical.
    pub rebuild: bool,
}

impl Rewrite {
    /// The slack-aware variant (depth budget = required time).
    pub fn slack_aware() -> Self {
        Rewrite {
            config: RewriteConfig::slack_aware(),
            ..Self::default()
        }
    }

    /// The DFF-objective variant (slack-aware budget, sites priced by the
    /// per-edge DFF cost under `n`-phase clocking).
    pub fn dff_aware(n: u32) -> Self {
        Rewrite {
            config: RewriteConfig::dff_aware(n),
            ..Self::default()
        }
    }
}

impl OptPass for Rewrite {
    fn name(&self) -> &'static str {
        match self.config.mode {
            RewriteMode::Conservative => "rewrite",
            RewriteMode::SlackAware => "rewrite-slack",
            RewriteMode::DffAware => "rewrite-dff",
        }
    }
    fn run(&self, aig: &mut Aig, ctx: &mut OptContext) -> (PassStats, Preserved) {
        // The timing modes rebound the context's STA to the output network
        // themselves (invalidating only the reconstructed cones through the
        // incremental refresh), and the rebound arrivals are the output's
        // levels.
        let preserved = if self.config.mode != RewriteMode::Conservative {
            Preserved::none().with_sta().with_levels()
        } else {
            Preserved::none()
        };
        if self.rebuild {
            stats_around(self.name(), aig, ctx, |g, ctx| {
                let (out, applied) = rewrite_network_ctx(g, &self.config, ctx);
                (out, applied, preserved)
            })
        } else {
            stats_around_in_place(self.name(), aig, ctx, |g, ctx| {
                (
                    rewrite_network_in_place_ctx(g, &self.config, ctx),
                    preserved,
                )
            })
        }
    }
}

/// Name of a concrete pass — the configuration-level (and CLI-level)
/// currency, kept separate from the trait objects so [`OptConfig`] stays
/// plain cloneable data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PassKind {
    /// [`Strash`].
    Strash,
    /// [`Sweep`].
    Sweep,
    /// [`Rewrite`] in the depth-conservative mode.
    Rewrite,
    /// [`Rewrite`] in the slack-aware mode (sites may grow up to their
    /// required-time slack; network depth still never increases).
    RewriteSlack,
    /// [`Rewrite`] in the DFF-objective mode under the given phase count:
    /// the slack-aware depth budget plus site pricing by the per-edge DFF
    /// cost (§II-B accounting at unit delay).
    RewriteDff(u32),
    /// [`Balance`].
    Balance,
    /// [`BalanceCritical`] — only zero-slack trees are rebuilt.
    BalanceSlack,
}

impl PassKind {
    /// The default conservative pipeline, in order.
    pub const ALL: [PassKind; 4] = [
        PassKind::Strash,
        PassKind::Sweep,
        PassKind::Rewrite,
        PassKind::Balance,
    ];

    /// Every parseable pass (the `--passes` vocabulary and the error-
    /// message listing). `rewrite-dff` parses at the default phase count
    /// ([`DEFAULT_DFF_PHASES`]); programmatic configs pick their own via
    /// [`PassKind::RewriteDff`].
    pub const KNOWN: [PassKind; 7] = [
        PassKind::Strash,
        PassKind::Sweep,
        PassKind::Rewrite,
        PassKind::RewriteSlack,
        PassKind::RewriteDff(DEFAULT_DFF_PHASES),
        PassKind::Balance,
        PassKind::BalanceSlack,
    ];

    /// The pass's `--passes` spelling.
    pub fn name(self) -> &'static str {
        match self {
            PassKind::Strash => "strash",
            PassKind::Sweep => "sweep",
            PassKind::Rewrite => "rewrite",
            PassKind::RewriteSlack => "rewrite-slack",
            PassKind::RewriteDff(_) => "rewrite-dff",
            PassKind::Balance => "balance",
            PassKind::BalanceSlack => "balance-slack",
        }
    }

    /// Parses a single pass name.
    ///
    /// # Errors
    ///
    /// Returns the list of known passes on an unknown name.
    pub fn parse(s: &str) -> Result<PassKind, String> {
        PassKind::KNOWN
            .into_iter()
            .find(|p| p.name() == s)
            .ok_or_else(|| {
                let known: Vec<&str> = PassKind::KNOWN.iter().map(|p| p.name()).collect();
                format!("unknown pass '{s}' (known passes: {})", known.join(", "))
            })
    }

    /// Stable fingerprint tag.
    fn tag(self) -> u8 {
        match self {
            PassKind::Strash => 0,
            PassKind::Sweep => 1,
            PassKind::Rewrite => 2,
            PassKind::Balance => 3,
            PassKind::RewriteSlack => 4,
            PassKind::BalanceSlack => 5,
            PassKind::RewriteDff(_) => 6,
        }
    }

    fn instantiate(self, rebuild: bool) -> Box<dyn OptPass + Send + Sync> {
        match self {
            PassKind::Strash => Box::new(Strash),
            PassKind::Sweep => Box::new(Sweep { rebuild }),
            PassKind::Rewrite => Box::new(Rewrite {
                rebuild,
                ..Rewrite::default()
            }),
            PassKind::RewriteSlack => Box::new(Rewrite {
                rebuild,
                ..Rewrite::slack_aware()
            }),
            PassKind::RewriteDff(n) => Box::new(Rewrite {
                rebuild,
                ..Rewrite::dff_aware(n)
            }),
            PassKind::Balance => Box::new(Balance),
            PassKind::BalanceSlack => Box::new(BalanceCritical),
        }
    }
}

/// Parses a comma-separated pass list (the CLI `--passes` syntax).
///
/// # Errors
///
/// Propagates [`PassKind::parse`] errors and rejects an empty list.
pub fn parse_passes(s: &str) -> Result<Vec<PassKind>, String> {
    let passes: Result<Vec<PassKind>, String> = s
        .split(',')
        .map(str::trim)
        .filter(|p| !p.is_empty())
        .map(PassKind::parse)
        .collect();
    let passes = passes?;
    if passes.is_empty() {
        return Err("--passes requires at least one pass name".into());
    }
    Ok(passes)
}

/// Configuration of the pre-mapping optimization stage.
///
/// Plain data (no trait objects), so it can ride inside
/// `t1map::flow::FlowConfig` and fingerprint into `sfq-engine` cache keys:
/// two jobs that differ only in their optimization stage hash to different
/// content addresses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptConfig {
    /// Master switch; a disabled stage leaves the network untouched.
    pub enabled: bool,
    /// Pass sequence of one round.
    pub passes: Vec<PassKind>,
    /// Iterate the sequence to convergence (guarded; see
    /// [`Pipeline::run_until_fixpoint`]).
    pub fixpoint: bool,
    /// Round limit for the convergence loop.
    pub max_rounds: usize,
    /// Run `sweep`/`rewrite` as from-scratch rebuilds (the pre-in-place
    /// behavior) instead of the default ID-stable in-place edits.
    ///
    /// Deliberately **excluded** from [`OptConfig::fingerprint`]: the two
    /// modes produce byte-identical networks (the in-place engine compacts
    /// its result in the same emission order the rebuild path allocates
    /// in, an identity the equivalence tests pin), so they must share a
    /// cache key — the switch selects an execution strategy, not a result.
    pub rebuild_passes: bool,
}

impl OptConfig {
    /// The disabled stage (flow default: map the network exactly as given).
    pub fn disabled() -> Self {
        OptConfig {
            enabled: false,
            passes: PassKind::ALL.to_vec(),
            fixpoint: true,
            max_rounds: 8,
            rebuild_passes: false,
        }
    }

    /// The standard enabled stage: every pass, run to fixpoint.
    pub fn standard() -> Self {
        OptConfig {
            enabled: true,
            ..Self::disabled()
        }
    }

    /// The slack-aware stage: like [`OptConfig::standard`] but with
    /// rewriting allowed to consume per-site slack
    /// ([`PassKind::RewriteSlack`]). Depth is still never increased; the
    /// extra freedom buys strictly more area on depth-dominated networks.
    pub fn slack_aware() -> Self {
        OptConfig {
            enabled: true,
            passes: vec![
                PassKind::Strash,
                PassKind::Sweep,
                PassKind::RewriteSlack,
                PassKind::Balance,
            ],
            ..Self::disabled()
        }
    }

    /// The DFF-objective stage: like [`OptConfig::slack_aware`] but with
    /// rewrite sites priced by their projected per-edge DFF cost under
    /// `n`-phase clocking ([`PassKind::RewriteDff`]) — the mapping-aware
    /// pre-optimization that weights MFFC gains by how much path-balancing
    /// cost the freed cone induces at its schedule slack.
    pub fn dff_aware(n: u32) -> Self {
        OptConfig {
            enabled: true,
            passes: vec![
                PassKind::Strash,
                PassKind::Sweep,
                PassKind::RewriteDff(n),
                PassKind::Balance,
            ],
            ..Self::disabled()
        }
    }

    /// Canonical encoding of the configuration into `h` (versioned, fixed
    /// field order) — the `sfq-engine` cache-key contribution.
    pub fn fingerprint(&self, h: &mut impl Hasher) {
        h.write_u8(2); // encoding version (2: parameterized pass tags)
        h.write_u8(self.enabled as u8);
        h.write_usize(self.passes.len());
        for p in &self.passes {
            h.write_u8(p.tag());
            if let PassKind::RewriteDff(n) = p {
                h.write_u32(*n);
            }
        }
        h.write_u8(self.fixpoint as u8);
        h.write_usize(self.max_rounds);
    }
}

impl Default for OptConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// Outcome of a pipeline run: per-round, per-pass statistics plus the
/// end-to-end deltas and the analysis-cache accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptReport {
    /// Statistics of every executed pass, grouped by round.
    pub rounds: Vec<Vec<PassStats>>,
    /// Whether the convergence loop stopped by itself (rather than hitting
    /// the round limit). Single-shot runs report `true`.
    pub converged: bool,
    /// AND count before optimization.
    pub nodes_before: usize,
    /// AND count after optimization.
    pub nodes_after: usize,
    /// Depth before optimization.
    pub depth_before: u32,
    /// Depth after optimization.
    pub depth_after: u32,
    /// Aggregate analysis-context counters over the whole run (cache hits,
    /// invalidations, STA builds vs. incremental refreshes).
    pub analysis: CtxCounters,
}

impl OptReport {
    /// Signed node delta (negative = reduction).
    pub fn node_delta(&self) -> i64 {
        self.nodes_after as i64 - self.nodes_before as i64
    }
}

/// A configured sequence of passes.
pub struct Pipeline {
    passes: Vec<Box<dyn OptPass + Send + Sync>>,
}

impl Pipeline {
    /// Builds a pipeline from explicit pass objects.
    pub fn new(passes: Vec<Box<dyn OptPass + Send + Sync>>) -> Self {
        Pipeline { passes }
    }

    /// Builds a pipeline from pass names, with the default ID-stable
    /// in-place `sweep`/`rewrite` variants.
    pub fn from_kinds(kinds: &[PassKind]) -> Self {
        Pipeline::from_kinds_with(kinds, false)
    }

    /// [`Pipeline::from_kinds`] with an explicit execution strategy:
    /// `rebuild` selects the from-scratch rebuild variants of the passes
    /// that support in-place editing. Results are structurally identical
    /// either way.
    pub fn from_kinds_with(kinds: &[PassKind], rebuild: bool) -> Self {
        Pipeline::new(kinds.iter().map(|k| k.instantiate(rebuild)).collect())
    }

    /// Builds the pipeline described by `config` (ignoring its `enabled`
    /// and `fixpoint` switches — those select *whether/how* callers run it).
    pub fn from_config(config: &OptConfig) -> Self {
        Pipeline::from_kinds_with(&config.passes, config.rebuild_passes)
    }

    /// Runs every pass once, in order, against a fresh analysis context.
    pub fn run(&self, aig: &mut Aig) -> Vec<PassStats> {
        self.run_with(aig, &mut OptContext::new())
    }

    /// Runs every pass once, in order, threading the caller's context.
    pub fn run_with(&self, aig: &mut Aig, ctx: &mut OptContext) -> Vec<PassStats> {
        self.passes.iter().map(|p| p.run(aig, ctx).0).collect()
    }

    /// Runs the pass sequence repeatedly until no round improves the
    /// network, up to `max_rounds` rounds, against a fresh analysis
    /// context.
    ///
    /// The loop is *guarded*: a round whose result has more nodes or more
    /// depth than it started with is rolled back and the loop stops, so the
    /// final network never has more nodes or depth than the input — the
    /// invariant `opt --fixpoint` and the flow's pre-mapping stage rely on.
    pub fn run_until_fixpoint(&self, aig: &mut Aig, max_rounds: usize) -> OptReport {
        self.run_until_fixpoint_with(aig, max_rounds, &mut OptContext::new())
    }

    /// [`Pipeline::run_until_fixpoint`] threading the caller's analysis
    /// context through **all** rounds: analyses survive both pass and
    /// round boundaries, so e.g. `rewrite-slack` builds its timing
    /// analysis from scratch at most once per run and converged rounds
    /// cost no analysis work at all.
    pub fn run_until_fixpoint_with(
        &self,
        aig: &mut Aig,
        max_rounds: usize,
        ctx: &mut OptContext,
    ) -> OptReport {
        let entry = ctx.counters();
        let nodes_before = aig.and_count();
        let depth_before = ctx.depth(aig);
        let mut rounds = Vec::new();
        let mut converged = false;
        for _ in 0..max_rounds {
            let prev_nodes = aig.and_count();
            let prev_depth = ctx.depth(aig);
            let snapshot = aig.clone();
            let stats = self.run_with(aig, ctx);
            let nodes = aig.and_count();
            let depth = ctx.depth(aig);
            if nodes > prev_nodes || depth > prev_depth {
                *aig = snapshot; // guard: roll the regression back
                ctx.invalidate_all();
                converged = true;
                break;
            }
            rounds.push(stats);
            if nodes == prev_nodes && depth == prev_depth {
                converged = true;
                break;
            }
        }
        OptReport {
            rounds,
            converged,
            nodes_before,
            nodes_after: aig.and_count(),
            depth_before,
            depth_after: ctx.depth(aig),
            analysis: ctx.counters().delta_since(&entry),
        }
    }
}

/// Runs the optimization stage described by `config` on a copy of `aig`.
///
/// The convenience entry point used by `t1map::flow::run_flow` and the CLI:
/// a disabled config returns an untouched copy with an empty report.
pub fn optimize(aig: &Aig, config: &OptConfig) -> (Aig, OptReport) {
    let mut g = aig.clone();
    if !config.enabled {
        let report = OptReport {
            rounds: Vec::new(),
            converged: true,
            nodes_before: g.and_count(),
            nodes_after: g.and_count(),
            depth_before: g.depth(),
            depth_after: g.depth(),
            analysis: CtxCounters::default(),
        };
        return (g, report);
    }
    let pipeline = Pipeline::from_config(config);
    let mut ctx = OptContext::new();
    let report = if config.fixpoint {
        pipeline.run_until_fixpoint_with(&mut g, config.max_rounds, &mut ctx)
    } else {
        let nodes_before = g.and_count();
        let depth_before = ctx.depth(&g);
        let stats = pipeline.run_with(&mut g, &mut ctx);
        let depth_after = ctx.depth(&g);
        OptReport {
            rounds: vec![stats],
            converged: true,
            nodes_before,
            nodes_after: g.and_count(),
            depth_before,
            depth_after,
            analysis: ctx.counters(),
        }
    };
    // In-place passes may leave freed slots behind; hand callers the dense
    // form they always got (an identity when no pass left holes).
    g.compact();
    mirror_counters(&report.analysis);
    (g, report)
}

/// Mirrors a run's analysis-context counters into the `sfq-obs` recorder,
/// so `--stats`/`--trace` see the same numbers the [`OptReport`] carries.
fn mirror_counters(c: &CtxCounters) {
    sfq_obs::counter("opt.cache_hits", c.cache_hits as u64);
    sfq_obs::counter("opt.recomputes", c.recomputes as u64);
    sfq_obs::counter("opt.invalidations", c.invalidations as u64);
    sfq_obs::counter("opt.sta_builds", c.sta_full_builds as u64);
    sfq_obs::counter("opt.sta_rebinds", c.sta_rebinds as u64);
    sfq_obs::counter("opt.sta_nodes_refreshed", c.sta_nodes_refreshed as u64);
}

/// Outcome of [`optimize_verified`]: the optimized network plus the
/// verification verdict of the whole run.
#[derive(Debug, Clone)]
pub struct VerifiedRun {
    /// The optimized network (the last *verified* state on a mismatch).
    pub aig: Aig,
    /// Per-round, per-pass statistics, as in [`optimize`].
    pub report: OptReport,
    /// [`CecVerdict::Equivalent`] only if **every** executed pass was
    /// proven equivalent to its input; a counterexample identifies the
    /// first pass that broke the function.
    pub verdict: CecVerdict,
    /// Name of the pass that failed verification, if any.
    pub failed_pass: Option<&'static str>,
    /// Aggregated CEC counters over all stage checks.
    pub cec: CecStats,
    /// Number of pass executions that were equivalence-checked.
    pub checked_stages: usize,
}

/// [`optimize`] with the verification guard engaged: every executed pass is
/// equivalence-checked against its input network, and the results chain by
/// transitivity into an end-to-end proof that the final network computes
/// the subject functions.
///
/// Checking adjacent stages (rather than original vs. final once) is what
/// keeps the SAT work tractable at paper scale: consecutive networks differ
/// only in local cones, which the CEC sweep discharges with small
/// window-bounded queries instead of one monolithic miter across several
/// optimization rounds of structural drift.
///
/// On a mismatch the run stops at the failing pass and returns the last
/// verified network together with the counterexample.
pub fn optimize_verified(subject: &Aig, config: &OptConfig, cec: &CecConfig) -> VerifiedRun {
    let mut g = subject.clone();
    let nodes_before = g.and_count();
    let depth_before = g.depth();
    let mut rounds = Vec::new();
    let mut agg = CecStats::default();
    let mut checked_stages = 0usize;
    let mut verdict = CecVerdict::Equivalent;
    let mut failed_pass = None;
    let mut converged = true;
    let mut ctx = OptContext::new();

    let pipeline = Pipeline::from_config(config);
    let max_rounds = match (config.enabled, config.fixpoint) {
        (false, _) => 0,
        (true, false) => 1,
        (true, true) => config.max_rounds,
    };
    'rounds: for round in 0..max_rounds {
        let prev_nodes = g.and_count();
        let prev_depth = g.depth();
        let snapshot = g.clone();
        let mut stats = Vec::new();
        for pass in &pipeline.passes {
            let before = g.clone();
            let (s, _) = pass.run(&mut g, &mut ctx);
            checked_stages += 1;
            match check_equivalence(&before, &g, cec) {
                Ok(out) => {
                    agg.absorb(&out.stats);
                    match out.verdict {
                        CecVerdict::Equivalent => {}
                        CecVerdict::NotEquivalent(cex) => {
                            // A pass broke the function: stop on the last
                            // verified network and report the witness.
                            verdict = CecVerdict::NotEquivalent(cex);
                            failed_pass = Some(s.pass);
                            g = before;
                            ctx.invalidate_all();
                            stats.push(s);
                            rounds.push(stats);
                            break 'rounds;
                        }
                        CecVerdict::Unknown => {
                            // Budget ran out: keep optimizing, but the run
                            // as a whole is no longer fully proven.
                            if verdict == CecVerdict::Equivalent {
                                verdict = CecVerdict::Unknown;
                                failed_pass = Some(s.pass);
                            }
                        }
                    }
                }
                Err(_) => {
                    // A pass changed the PI/PO interface — a contract
                    // violation no counterexample can express.
                    verdict = CecVerdict::Unknown;
                    failed_pass = Some(s.pass);
                    g = before;
                    ctx.invalidate_all();
                    stats.push(s);
                    rounds.push(stats);
                    break 'rounds;
                }
            }
            stats.push(s);
        }
        if !config.fixpoint {
            rounds.push(stats);
            break;
        }
        let (nodes, depth) = (g.and_count(), g.depth());
        if nodes > prev_nodes || depth > prev_depth {
            g = snapshot; // same guard as Pipeline::run_until_fixpoint
            ctx.invalidate_all();
            break;
        }
        rounds.push(stats);
        if nodes == prev_nodes && depth == prev_depth {
            break;
        }
        converged = round + 1 < max_rounds;
    }

    // As in [`optimize`]: hand back the dense form.
    g.compact();
    mirror_counters(&ctx.counters());
    VerifiedRun {
        report: OptReport {
            rounds,
            converged,
            nodes_before,
            nodes_after: g.and_count(),
            depth_before,
            depth_after: g.depth(),
            analysis: ctx.counters(),
        },
        aig: g,
        verdict,
        failed_pass,
        cec: agg,
        checked_stages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfq_netlist::fnv::Fnv1a;
    use std::hash::Hasher;

    fn fp(cfg: &OptConfig) -> u64 {
        let mut h = Fnv1a::new();
        cfg.fingerprint(&mut h);
        h.finish()
    }

    #[test]
    fn parse_pass_lists() {
        assert_eq!(
            parse_passes("strash,sweep,rewrite,balance").unwrap(),
            PassKind::ALL.to_vec()
        );
        assert_eq!(
            parse_passes(" balance , sweep ").unwrap(),
            vec![PassKind::Balance, PassKind::Sweep]
        );
        assert_eq!(
            parse_passes("rewrite-slack,balance-slack").unwrap(),
            vec![PassKind::RewriteSlack, PassKind::BalanceSlack]
        );
        assert_eq!(
            parse_passes("rewrite-dff").unwrap(),
            vec![PassKind::RewriteDff(DEFAULT_DFF_PHASES)]
        );
        let err = parse_passes("strash,frobnicate").unwrap_err();
        assert!(
            err.contains("frobnicate") && err.contains("balance"),
            "{err}"
        );
        for kind in PassKind::KNOWN {
            assert!(err.contains(kind.name()), "error must list {}", kind.name());
        }
        assert!(parse_passes(" , ").is_err());
    }

    #[test]
    fn fingerprint_distinguishes_configs() {
        let off = OptConfig::disabled();
        let on = OptConfig::standard();
        assert_ne!(fp(&off), fp(&on), "enabled bit must key");
        let mut reordered = OptConfig::standard();
        reordered.passes = vec![PassKind::Balance, PassKind::Rewrite];
        assert_ne!(fp(&on), fp(&reordered), "pass list must key");
        let mut single = OptConfig::standard();
        single.fixpoint = false;
        assert_ne!(fp(&on), fp(&single), "fixpoint flag must key");
        assert_eq!(fp(&OptConfig::standard()), fp(&OptConfig::standard()));
        assert_ne!(
            fp(&OptConfig::standard()),
            fp(&OptConfig::slack_aware()),
            "the slack-aware pipeline must key differently"
        );
        assert_ne!(
            fp(&OptConfig::slack_aware()),
            fp(&OptConfig::dff_aware(4)),
            "the DFF-objective pipeline must key differently"
        );
        assert_ne!(
            fp(&OptConfig::dff_aware(4)),
            fp(&OptConfig::dff_aware(8)),
            "the DFF phase count must key"
        );
        // The execution strategy produces byte-identical results, so it
        // must share a cache key (see the `rebuild_passes` field docs).
        let mut rebuild = OptConfig::standard();
        rebuild.rebuild_passes = true;
        assert_eq!(
            fp(&OptConfig::standard()),
            fp(&rebuild),
            "rebuild_passes selects a strategy, not a result — same key"
        );
    }

    #[test]
    fn slack_aware_pipeline_never_regresses() {
        let mut g = Aig::new();
        let pis: Vec<_> = (0..6).map(|_| g.add_pi()).collect();
        let m = g.maj3(pis[0], pis[1], pis[2]);
        let x = g.xor3(pis[3], pis[4], pis[5]);
        let top = g.and(m, x);
        g.add_po(top);
        let (nodes0, depth0) = (g.and_count(), g.depth());
        let (opt, report) = optimize(&g, &OptConfig::slack_aware());
        assert!(report.nodes_after <= nodes0);
        assert!(report.depth_after <= depth0, "depth guard holds");
        for i in 0..64u32 {
            let bits: Vec<bool> = (0..6).map(|k| i >> k & 1 == 1).collect();
            assert_eq!(g.eval(&bits), opt.eval(&bits), "input {i}");
        }
    }

    #[test]
    fn dff_aware_pipeline_never_regresses() {
        let mut g = Aig::new();
        let pis: Vec<_> = (0..6).map(|_| g.add_pi()).collect();
        let m = g.maj3(pis[0], pis[1], pis[2]);
        let x = g.xor3(pis[3], pis[4], pis[5]);
        let deep = {
            let mut acc = g.and(m, x);
            for &p in &pis[..4] {
                acc = g.and(acc, p);
            }
            acc
        };
        g.add_po(deep);
        let (nodes0, depth0) = (g.and_count(), g.depth());
        let (opt, report) = optimize(&g, &OptConfig::dff_aware(4));
        assert!(report.nodes_after <= nodes0);
        assert!(report.depth_after <= depth0, "depth guard holds");
        for i in 0..64u32 {
            let bits: Vec<bool> = (0..6).map(|k| i >> k & 1 == 1).collect();
            assert_eq!(g.eval(&bits), opt.eval(&bits), "input {i}");
        }
    }

    #[test]
    fn fixpoint_never_regresses() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let c = g.add_pi();
        let m = g.maj3(a, b, c);
        let x = g.xor3(a, b, c);
        g.add_po(m);
        g.add_po(x);
        let (nodes0, depth0) = (g.and_count(), g.depth());
        let pipeline = Pipeline::from_config(&OptConfig::standard());
        let mut opt = g.clone();
        let report = pipeline.run_until_fixpoint(&mut opt, 8);
        assert!(report.nodes_after <= nodes0);
        assert!(report.depth_after <= depth0);
        assert!(report.converged);
        assert!(report.nodes_after < nodes0, "maj3 must shrink");
        for i in 0..8u32 {
            let bits = [i & 1 == 1, i >> 1 & 1 == 1, i >> 2 & 1 == 1];
            assert_eq!(g.eval(&bits), opt.eval(&bits), "input {i}");
        }
    }

    #[test]
    fn disabled_stage_is_identity() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let x = g.xor(a, b);
        g.add_po(x);
        let (out, report) = optimize(&g, &OptConfig::disabled());
        assert_eq!(out.and_count(), g.and_count());
        assert!(report.rounds.is_empty());
        assert_eq!(report.node_delta(), 0);
    }
}
