//! # sfq-opt
//!
//! Pass-manager-driven AIG optimization with SAT-checked equivalence — the
//! pre-mapping synthesis layer of the T1 flow, in the spirit of ABC-style
//! `rewrite; balance; dc2` scripts.
//!
//! Three cooperating pieces:
//!
//! - **Pass manager** ([`pass`]) — the [`OptPass`] trait, a [`Pipeline`]
//!   that runs a configurable pass sequence with per-pass node/level deltas
//!   and a guarded convergence loop
//!   ([`Pipeline::run_until_fixpoint`]: the result never has more nodes or
//!   depth than the input), and the fingerprinted [`OptConfig`] that rides
//!   inside `t1map::flow::FlowConfig` so `sfq-engine` cache keys
//!   distinguish optimized jobs. Concrete passes: `strash` (structural
//!   deduplication), `sweep` (dangling-node removal + constant
//!   propagation, the single implementation shared with
//!   [`sfq_netlist::transform::cleanup`]), `balance` (depth-optimal
//!   AND-tree rebalancing) and `rewrite` (4-input cut enumeration →
//!   NPN-canonical class lookup against the precomputed subgraph table of
//!   [`table`] → MFFC-gain-based replacement, with slack-aware and
//!   DFF-objective pricing modes).
//!
//! - **Analysis manager** ([`analysis`]) — the [`OptContext`] threaded
//!   through every pass: a typed cache of lazily-computed,
//!   incrementally-refreshed analyses (levels/depth, unit-delay STA,
//!   fanout counts, simulation signatures). Passes report [`Preserved`]
//!   sets; stale timing analyses are rebound incrementally rather than
//!   rebuilt, so a fixpoint run constructs the STA from scratch at most
//!   once.
//!
//! - **Verification guard** ([`cec`]) — combinational equivalence checking
//!   of original vs. optimized networks: random-simulation prefilter,
//!   SAT sweeping over a shared reduced network, and a final SAT miter
//!   discharged by `sfq_solver::sat`, so every pipeline run can be checked
//!   end to end.
//!
//! # Example
//!
//! ```
//! use sfq_netlist::aig::Aig;
//! use sfq_opt::{check_equivalence, optimize, CecConfig, CecVerdict, OptConfig};
//!
//! // A textbook 5-AND majority: rewriting finds the 4-AND form.
//! let mut aig = Aig::new();
//! let a = aig.add_pi();
//! let b = aig.add_pi();
//! let c = aig.add_pi();
//! let m = aig.maj3(a, b, c);
//! aig.add_po(m);
//!
//! let (optimized, report) = optimize(&aig, &OptConfig::standard());
//! assert!(report.nodes_after < report.nodes_before);
//! assert!(report.depth_after <= report.depth_before);
//!
//! let cec = check_equivalence(&aig, &optimized, &CecConfig::default()).unwrap();
//! assert_eq!(cec.verdict, CecVerdict::Equivalent);
//! ```

pub mod analysis;
pub mod cec;
pub mod pass;
pub mod passes;
pub mod rewrite;
pub mod table;
mod util;

pub use analysis::{signatures_of, signatures_of_into, CtxCounters, OptContext, Preserved};
pub use cec::{check_equivalence, CecConfig, CecError, CecOutcome, CecStats, CecVerdict};
pub use pass::{
    optimize, optimize_verified, parse_passes, Balance, BalanceCritical, OptConfig, OptPass,
    OptReport, PassKind, PassStats, Pipeline, Rewrite, Strash, Sweep, VerifiedRun,
};
pub use passes::{
    balance_critical_network, balance_critical_network_ctx, balance_network, strash_network,
    sweep_network,
};
pub use rewrite::{
    rewrite_network, rewrite_network_ctx, RewriteConfig, RewriteMode, DEFAULT_DFF_PHASES,
};
pub use table::{Program, ProgramBuilder, RewriteTable};
