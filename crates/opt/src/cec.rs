//! Combinational equivalence checking (CEC): the verification guard of the
//! optimization subsystem.
//!
//! [`check_equivalence`] decides whether two AIGs with matching interfaces
//! compute the same functions, in three escalating stages:
//!
//! 1. **Random-simulation prefilter** — both networks are evaluated on
//!    packed 64-bit pattern words ([`Aig::eval64`]); any mismatch yields a
//!    concrete counterexample without touching the solver.
//! 2. **SAT sweeping** — both networks are rebuilt into one shared,
//!    structurally hashed network; internal nodes whose simulation
//!    signatures collide (modulo complement) are proven equivalent with
//!    small window-bounded SAT queries against `sfq_solver::sat` and merged,
//!    so locally rewritten regions collapse back onto the original
//!    structure. Output pairs that merge to the same literal are proven
//!    structurally. Refuted queries are not wasted: their distinguishing
//!    patterns are simulated back into the signatures (counterexample-
//!    guided refinement, the classic fraiging loop), so an alias class —
//!    nodes that 256 random patterns cannot tell apart — splits after one
//!    refutation instead of being refuted pairwise.
//! 3. **Miter SAT** — any still-unresolved output pair goes into a final
//!    miter (XOR per pair, OR over pairs, assert true); UNSAT proves
//!    equivalence, a model is a counterexample.
//!
//! The sweep makes the check scale to the paper's benchmarks: after cut
//! rewriting the two networks differ only in small local cones, each
//! discharged by a SAT query over a few dozen clauses.

use crate::util::mapped;
use sfq_netlist::aig::{Aig, Lit, NodeId, NodeKind};
use sfq_solver::sat::{SatLit, SatSolver, SatVar, SolveOutcome};
use std::collections::HashMap;
use std::fmt;

/// Words per simulation signature (4 × 64 = 256 patterns per node).
const SIG_WORDS: usize = 4;

/// Parameters of the equivalence check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CecConfig {
    /// 64-pattern words used by the simulation prefilter.
    pub sim_words: usize,
    /// Enable SAT sweeping (stage 2). Without it, unresolved outputs go
    /// straight to the monolithic miter.
    pub sweep: bool,
    /// Maximum AND nodes encoded per sweep query; logic beyond the window
    /// is abstracted to free variables (sound: abstraction can only lose
    /// merges, never create false ones).
    pub sweep_window: usize,
    /// Conflict budget per sweep query; a blown budget just skips the merge.
    pub sweep_conflicts: u64,
    /// Counterexample-guided signature refinement (classic fraiging): the
    /// distinguishing pattern of every SAT-refuted sweep query is simulated
    /// back into the signatures, so a signature-alias class splits once
    /// instead of being refuted pairwise, query by query.
    pub refine: bool,
    /// Optional conflict budget of the final miter; `None` runs to an
    /// answer.
    pub final_conflicts: Option<u64>,
    /// Seed of the deterministic pattern generator.
    pub seed: u64,
}

impl Default for CecConfig {
    fn default() -> Self {
        CecConfig {
            sim_words: 16,
            sweep: true,
            sweep_window: 200,
            sweep_conflicts: 500,
            refine: true,
            final_conflicts: None,
            seed: 0x5FC5_EC0D_E5EE_D001,
        }
    }
}

/// Why the two networks cannot be compared at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CecError {
    /// Different primary-input counts.
    PiMismatch(usize, usize),
    /// Different primary-output counts.
    PoMismatch(usize, usize),
}

impl fmt::Display for CecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CecError::PiMismatch(a, b) => write!(f, "input count mismatch: {a} vs {b} PIs"),
            CecError::PoMismatch(a, b) => write!(f, "output count mismatch: {a} vs {b} POs"),
        }
    }
}

impl std::error::Error for CecError {}

/// The check's answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CecVerdict {
    /// The networks compute identical functions.
    Equivalent,
    /// They differ on the contained input assignment (one `bool` per PI).
    NotEquivalent(Vec<bool>),
    /// A conflict budget expired before an answer was reached.
    Unknown,
}

/// Work counters of one check.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CecStats {
    /// Simulation words evaluated by the prefilter.
    pub sim_words: usize,
    /// Output pairs proven by hashing/sweeping alone.
    pub structural_matches: usize,
    /// Internal equivalences proven and merged during sweeping.
    pub sweep_merges: usize,
    /// SAT queries issued (sweep and miter).
    pub sat_queries: usize,
    /// Counterexample patterns fed back into the signatures.
    pub refinements: usize,
    /// Sweep candidates dismissed by a refined-signature mismatch —
    /// each one is a SAT query the refinement saved.
    pub alias_skips: usize,
    /// Whether the final miter was needed.
    pub used_final_sat: bool,
}

impl CecStats {
    /// Accumulates another check's counters (used by the pass-by-pass
    /// verification of `optimize_verified`).
    pub fn absorb(&mut self, other: &CecStats) {
        self.sim_words += other.sim_words;
        self.structural_matches += other.structural_matches;
        self.sweep_merges += other.sweep_merges;
        self.sat_queries += other.sat_queries;
        self.refinements += other.refinements;
        self.alias_skips += other.alias_skips;
        self.used_final_sat |= other.used_final_sat;
    }
}

/// Verdict plus counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CecOutcome {
    /// The answer.
    pub verdict: CecVerdict,
    /// Work counters.
    pub stats: CecStats,
}

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// Tseitin encoder over one AIG, with window-bounded cone collection.
struct Encoder<'a> {
    aig: &'a Aig,
    solver: SatSolver,
    vars: Vec<Option<SatVar>>,
}

impl<'a> Encoder<'a> {
    fn new(aig: &'a Aig) -> Self {
        Encoder {
            aig,
            solver: SatSolver::new(),
            vars: vec![None; aig.len()],
        }
    }

    fn var(&mut self, n: NodeId) -> SatVar {
        if let Some(v) = self.vars[n.index()] {
            return v;
        }
        let v = self.solver.new_var();
        self.vars[n.index()] = Some(v);
        if n == NodeId::CONST0 {
            self.solver.add_clause([SatLit::neg(v)]);
        }
        v
    }

    fn lit(&mut self, l: Lit) -> SatLit {
        let v = self.var(l.node());
        if l.is_complement() {
            SatLit::neg(v)
        } else {
            SatLit::pos(v)
        }
    }

    /// Emits AND constraints for up to `window` AND nodes of the transitive
    /// fanin of `roots`; everything beyond stays a free variable.
    ///
    /// The cone is collected breadth-first, so a bounded window covers the
    /// neighborhoods of *all* roots evenly — with depth-first collection a
    /// deep chain under the first root would eat the whole budget and leave
    /// the second root's cone fully abstracted (making every bounded query
    /// spuriously satisfiable).
    fn encode_cones(&mut self, roots: &[NodeId], window: usize) {
        let mut queue: std::collections::VecDeque<NodeId> = roots.iter().copied().collect();
        let mut queued = vec![false; self.aig.len()];
        for n in roots {
            queued[n.index()] = true;
        }
        let mut constrained = 0usize;
        while let Some(n) = queue.pop_front() {
            if let NodeKind::And(a, b) = self.aig.kind(n) {
                if constrained >= window {
                    continue; // abstracted frontier: free variable
                }
                constrained += 1;
                let o = self.var(n);
                let la = self.lit(a);
                let lb = self.lit(b);
                self.solver.add_clause([SatLit::neg(o), la]);
                self.solver.add_clause([SatLit::neg(o), lb]);
                self.solver.add_clause([SatLit::pos(o), !la, !lb]);
                for f in [a.node(), b.node()] {
                    if !queued[f.index()] {
                        queued[f.index()] = true;
                        queue.push_back(f);
                    }
                }
            }
        }
    }
}

/// Outcome of one window-bounded equivalence query.
enum Proof {
    /// `x ≡ y` proven (UNSAT).
    Proved,
    /// A model was found; the payload is its primary-input assignment.
    /// Under window abstraction the model may involve free frontier
    /// variables, so the pattern is not guaranteed to distinguish the pair
    /// on the real network — it is only a *candidate* distinguisher, which
    /// is all signature refinement needs (simulation recomputes the true
    /// node values on it).
    Refuted(Vec<bool>),
    /// Budget expired.
    Unknown,
}

/// Window-bounded equivalence query for `x ≡ y`.
fn prove_equal(aig: &Aig, x: Lit, y: Lit, window: usize, budget: u64) -> Proof {
    let mut enc = Encoder::new(aig);
    enc.encode_cones(&[x.node(), y.node()], window);
    let lx = enc.lit(x);
    let ly = enc.lit(y);
    // SAT iff x ≠ y somewhere: exactly one of the two is true.
    enc.solver.add_clause([lx, ly]);
    enc.solver.add_clause([!lx, !ly]);
    match enc.solver.solve_limited(Some(budget)) {
        SolveOutcome::Unsat => Proof::Proved,
        SolveOutcome::Unknown => Proof::Unknown,
        SolveOutcome::Sat(model) => Proof::Refuted(
            aig.pis()
                .iter()
                .map(|&pi| enc.vars[pi.index()].is_some_and(|v| model[v.index()]))
                .collect(),
        ),
    }
}

fn flip(l: Lit, c: bool) -> Lit {
    l.with_complement(l.is_complement() ^ c)
}

/// Shared reduced network the sweep builds both subjects into.
struct SweepSpace {
    joint: Aig,
    pis: Vec<Lit>,
    /// Per-joint-node canonical substitution (proven-equivalent literal).
    subst: Vec<Option<Lit>>,
    /// Per-joint-node simulation signature.
    sigs: Vec<[u64; SIG_WORDS]>,
    pi_sigs: Vec<[u64; SIG_WORDS]>,
    /// Per-joint-node refinement signature: bit `k` is the node's value on
    /// the `k`-th counterexample pattern fed back by a refuted query.
    extra: Vec<u64>,
    pi_extra: Vec<u64>,
    /// Valid refinement patterns (bits `0..patterns` of `extra`).
    patterns: u32,
    /// Normalized signature → class members (joint AND nodes).
    classes: HashMap<[u64; SIG_WORDS], Vec<NodeId>>,
    classified: Vec<bool>,
    stats_merges: usize,
    stats_queries: usize,
    stats_refinements: usize,
    stats_alias_skips: usize,
}

impl SweepSpace {
    fn new(pi_count: usize, rng: &mut Rng) -> Self {
        let mut joint = Aig::new();
        let pis: Vec<Lit> = (0..pi_count).map(|_| joint.add_pi()).collect();
        let pi_sigs: Vec<[u64; SIG_WORDS]> = (0..pi_count)
            .map(|_| std::array::from_fn(|_| rng.next()))
            .collect();
        SweepSpace {
            joint,
            pis,
            subst: Vec::new(),
            sigs: Vec::new(),
            pi_sigs,
            extra: Vec::new(),
            pi_extra: vec![0; pi_count],
            patterns: 0,
            classes: HashMap::new(),
            classified: Vec::new(),
            stats_merges: 0,
            stats_queries: 0,
            stats_refinements: 0,
            stats_alias_skips: 0,
        }
    }

    fn sync(&mut self) {
        for idx in self.sigs.len()..self.joint.len() {
            let id = NodeId(idx as u32);
            let (sig, ext) = match self.joint.kind(id) {
                NodeKind::Const0 => ([0; SIG_WORDS], 0),
                NodeKind::Input(i) => (self.pi_sigs[i as usize], self.pi_extra[i as usize]),
                NodeKind::And(a, b) => {
                    let sa = self.sigs[a.node().index()];
                    let sb = self.sigs[b.node().index()];
                    let (ma, mb) = (
                        if a.is_complement() { u64::MAX } else { 0 },
                        if b.is_complement() { u64::MAX } else { 0 },
                    );
                    let ext =
                        (self.extra[a.node().index()] ^ ma) & (self.extra[b.node().index()] ^ mb);
                    (std::array::from_fn(|w| (sa[w] ^ ma) & (sb[w] ^ mb)), ext)
                }
            };
            self.sigs.push(sig);
            self.extra.push(ext);
            self.subst.push(None);
            self.classified.push(false);
        }
    }

    /// Mask selecting the valid refinement bits.
    fn pattern_mask(&self) -> u64 {
        if self.patterns >= 64 {
            u64::MAX
        } else {
            (1u64 << self.patterns) - 1
        }
    }

    /// The node's refinement signature, normalized by its phase bit.
    fn norm_extra(&self, node: NodeId, phase: bool) -> u64 {
        let e = self.extra[node.index()];
        (if phase { !e } else { e }) & self.pattern_mask()
    }

    /// Simulates one counterexample pattern into every node's refinement
    /// signature. The pattern need not actually distinguish the refuted
    /// pair on the real network (window abstraction can produce spurious
    /// models); simulation assigns the true values either way, so the
    /// signatures only ever get more precise.
    fn refine(&mut self, cex: &[bool]) {
        if self.patterns >= 64 {
            return; // refinement word exhausted; later queries go to SAT
        }
        let bit = self.patterns;
        self.patterns += 1;
        self.stats_refinements += 1;
        for (i, &v) in cex.iter().enumerate() {
            if v {
                self.pi_extra[i] |= 1u64 << bit;
            }
        }
        for idx in 0..self.joint.len() {
            let id = NodeId(idx as u32);
            self.extra[idx] = match self.joint.kind(id) {
                NodeKind::Const0 => 0,
                NodeKind::Input(i) => self.pi_extra[i as usize],
                NodeKind::And(a, b) => {
                    let (ma, mb) = (
                        if a.is_complement() { u64::MAX } else { 0 },
                        if b.is_complement() { u64::MAX } else { 0 },
                    );
                    (self.extra[a.node().index()] ^ ma) & (self.extra[b.node().index()] ^ mb)
                }
            };
        }
    }

    fn resolve(&self, l: Lit) -> Lit {
        match self.subst[l.node().index()] {
            Some(s) => flip(s, l.is_complement()),
            None => l,
        }
    }

    /// ANDs two canonical literals in the joint network and sweeps the
    /// result: a fresh node whose signature matches an existing class
    /// member is SAT-checked and, if proven, merged onto it. Candidates
    /// whose *refined* signature disagrees are dismissed without a query —
    /// their inequivalence was already witnessed by a simulated pattern —
    /// and every refuted query feeds its distinguishing pattern back into
    /// the signatures, splitting the rest of the alias class for free.
    fn and(&mut self, a: Lit, b: Lit, cfg: &CecConfig) -> Lit {
        let lit = self.joint.and(a, b);
        self.sync();
        let lit = self.resolve(lit);
        let node = lit.node();
        if !matches!(self.joint.kind(node), NodeKind::And(..)) || self.classified[node.index()] {
            return lit;
        }
        self.classified[node.index()] = true;
        let sig = self.sigs[node.index()];
        let phase = sig[0] & 1 == 1;
        let norm: [u64; SIG_WORDS] = std::array::from_fn(|w| if phase { !sig[w] } else { sig[w] });
        // Take the class out of the map for the duration of the scan (and
        // re-insert it below): alias classes grow to thousands of members
        // on the workloads refinement targets, so a per-node clone here
        // would be a hot-path O(class size) copy.
        let mut members: Vec<NodeId> = self.classes.remove(&norm).unwrap_or_default();
        let mut merged = None;
        let max_queries = if cfg.sweep { 8 } else { 0 };
        let mut queries = 0usize;
        for &cand in &members {
            if queries >= max_queries {
                break;
            }
            let cand_sig = self.sigs[cand.index()];
            let cand_phase = cand_sig[0] & 1 == 1;
            // Refinement filter: the refined signatures are true simulated
            // values, so a mismatch is a definitive inequivalence witness.
            if cfg.refine && self.norm_extra(node, phase) != self.norm_extra(cand, cand_phase) {
                self.stats_alias_skips += 1;
                continue;
            }
            let target = Lit::new(cand, phase ^ cand_phase);
            queries += 1;
            self.stats_queries += 1;
            match prove_equal(
                &self.joint,
                Lit::new(node, false),
                target,
                cfg.sweep_window,
                cfg.sweep_conflicts,
            ) {
                Proof::Proved => {
                    merged = Some(target);
                    break;
                }
                Proof::Refuted(cex) => {
                    if cfg.refine {
                        self.refine(&cex);
                    }
                }
                Proof::Unknown => {}
            }
        }
        let result = match merged {
            Some(target) => {
                self.subst[node.index()] = Some(target);
                self.stats_merges += 1;
                flip(target, lit.is_complement())
            }
            None => {
                members.push(node);
                lit
            }
        };
        if !members.is_empty() {
            self.classes.insert(norm, members);
        }
        result
    }

    /// Copies `aig` into the joint network, returning the canonical literal
    /// of every original node.
    fn absorb(&mut self, aig: &Aig, cfg: &CecConfig) -> Vec<Option<Lit>> {
        let mut map: Vec<Option<Lit>> = vec![None; aig.len()];
        map[NodeId::CONST0.index()] = Some(Lit::FALSE);
        self.sync();
        for id in aig.node_ids() {
            match aig.kind(id) {
                NodeKind::Const0 => {}
                NodeKind::Input(i) => map[id.index()] = Some(self.pis[i as usize]),
                NodeKind::And(a, b) => {
                    let fa = self.resolve(mapped(&map, a));
                    let fb = self.resolve(mapped(&map, b));
                    map[id.index()] = Some(self.and(fa, fb, cfg));
                }
            }
        }
        map
    }
}

/// Checks whether `a` and `b` compute the same functions.
///
/// # Errors
///
/// Returns [`CecError`] when the PI or PO counts differ (nothing to
/// compare).
pub fn check_equivalence(a: &Aig, b: &Aig, cfg: &CecConfig) -> Result<CecOutcome, CecError> {
    if a.pi_count() != b.pi_count() {
        return Err(CecError::PiMismatch(a.pi_count(), b.pi_count()));
    }
    if a.po_count() != b.po_count() {
        return Err(CecError::PoMismatch(a.po_count(), b.po_count()));
    }
    let mut stats = CecStats::default();
    let mut rng = Rng::new(cfg.seed);

    // Stage 1: random-simulation prefilter. One set of buffers serves every
    // pattern word ([`Aig::eval64_into`]) — at `sim_words = 8` on a
    // million-node network the naive form would allocate sixteen fresh
    // node-sized vectors before the solver even starts.
    let mut inputs = Vec::with_capacity(a.pi_count());
    let (mut scratch, mut oa, mut ob) = (Vec::new(), Vec::new(), Vec::new());
    for _ in 0..cfg.sim_words {
        inputs.clear();
        inputs.extend((0..a.pi_count()).map(|_| rng.next()));
        a.eval64_into(&inputs, &mut scratch, &mut oa);
        b.eval64_into(&inputs, &mut scratch, &mut ob);
        stats.sim_words += 1;
        if let Some(bit) = oa
            .iter()
            .zip(&ob)
            .find_map(|(x, y)| (x != y).then(|| (x ^ y).trailing_zeros()))
        {
            let cex: Vec<bool> = inputs.iter().map(|w| w >> bit & 1 == 1).collect();
            debug_assert_ne!(a.eval(&cex), b.eval(&cex));
            return Ok(CecOutcome {
                verdict: CecVerdict::NotEquivalent(cex),
                stats,
            });
        }
    }

    // Stage 2: shared reconstruction, with SAT sweeping when enabled.
    let mut space = SweepSpace::new(a.pi_count(), &mut rng);
    let map_a = space.absorb(a, cfg);
    let map_b = space.absorb(b, cfg);
    stats.sweep_merges = space.stats_merges;
    stats.sat_queries = space.stats_queries;
    stats.refinements = space.stats_refinements;
    stats.alias_skips = space.stats_alias_skips;

    let mut unresolved: Vec<(Lit, Lit)> = Vec::new();
    for (pa, pb) in a.pos().iter().zip(b.pos()) {
        let la = space.resolve(mapped(&map_a, *pa));
        let lb = space.resolve(mapped(&map_b, *pb));
        if la == lb {
            stats.structural_matches += 1;
        } else {
            unresolved.push((la, lb));
        }
    }
    if unresolved.is_empty() {
        return Ok(CecOutcome {
            verdict: CecVerdict::Equivalent,
            stats,
        });
    }

    // Stage 3: miter over the unresolved pairs.
    stats.used_final_sat = true;
    stats.sat_queries += 1;
    let mut enc = Encoder::new(&space.joint);
    let roots: Vec<NodeId> = unresolved
        .iter()
        .flat_map(|&(x, y)| [x.node(), y.node()])
        .collect();
    enc.encode_cones(&roots, usize::MAX);
    let mut selectors = Vec::with_capacity(unresolved.len());
    for &(x, y) in &unresolved {
        let lx = enc.lit(x);
        let ly = enc.lit(y);
        let s = SatLit::pos(enc.solver.new_var());
        // s ↔ (x ⊕ y)
        enc.solver.add_clause([!s, lx, ly]);
        enc.solver.add_clause([!s, !lx, !ly]);
        enc.solver.add_clause([s, lx, !ly]);
        enc.solver.add_clause([s, !lx, ly]);
        selectors.push(s);
    }
    enc.solver.add_clause(selectors);
    match enc.solver.solve_limited(cfg.final_conflicts) {
        SolveOutcome::Unsat => Ok(CecOutcome {
            verdict: CecVerdict::Equivalent,
            stats,
        }),
        SolveOutcome::Unknown => Ok(CecOutcome {
            verdict: CecVerdict::Unknown,
            stats,
        }),
        SolveOutcome::Sat(model) => {
            let cex: Vec<bool> = space
                .joint
                .pis()
                .iter()
                .map(|&pi| enc.vars[pi.index()].is_some_and(|v| model[v.index()]))
                .collect();
            if a.eval(&cex) != b.eval(&cex) {
                Ok(CecOutcome {
                    verdict: CecVerdict::NotEquivalent(cex),
                    stats,
                })
            } else {
                // A model that does not replay means an internal merge was
                // unsound — impossible by construction, but never report
                // "not equivalent" on a non-replaying witness.
                debug_assert!(false, "miter model must replay on the originals");
                Ok(CecOutcome {
                    verdict: CecVerdict::Unknown,
                    stats,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_chain(n: usize, twist: bool) -> Aig {
        let mut g = Aig::new();
        let pis: Vec<Lit> = (0..n).map(|_| g.add_pi()).collect();
        let mut acc = pis[0];
        for &p in &pis[1..] {
            acc = g.xor(acc, p);
        }
        g.add_po(if twist { !acc } else { acc });
        g
    }

    #[test]
    fn identical_networks_are_equivalent() {
        let a = xor_chain(5, false);
        let b = xor_chain(5, false);
        let out = check_equivalence(&a, &b, &CecConfig::default()).unwrap();
        assert_eq!(out.verdict, CecVerdict::Equivalent);
        assert!(!out.stats.used_final_sat, "pure strash match");
    }

    #[test]
    fn complemented_output_is_caught_by_simulation() {
        let a = xor_chain(5, false);
        let b = xor_chain(5, true);
        let out = check_equivalence(&a, &b, &CecConfig::default()).unwrap();
        match out.verdict {
            CecVerdict::NotEquivalent(cex) => {
                assert_eq!(cex.len(), 5);
                assert_ne!(a.eval(&cex), b.eval(&cex));
            }
            other => panic!("expected NotEquivalent, got {other:?}"),
        }
    }

    #[test]
    fn restructured_majority_needs_the_solver() {
        // maj(a,b,c) two ways: textbook 5-AND vs the 4-AND factored form.
        // Simulation cannot tell them apart; sweeping/SAT must prove it.
        let mut a = Aig::new();
        let (x, y, z) = (a.add_pi(), a.add_pi(), a.add_pi());
        let m = a.maj3(x, y, z);
        a.add_po(m);
        let mut b = Aig::new();
        let (x, y, z) = (b.add_pi(), b.add_pi(), b.add_pi());
        let xy = b.and(x, y);
        let xoy = b.or(x, y);
        let t = b.and(z, xoy);
        let m = b.or(xy, t);
        b.add_po(m);
        let out = check_equivalence(&a, &b, &CecConfig::default()).unwrap();
        assert_eq!(out.verdict, CecVerdict::Equivalent);
        assert!(out.stats.sat_queries > 0, "solver had to be consulted");
    }

    /// `x == k` detectors: each is 1 on exactly one of 2^12 patterns, so
    /// 256 random patterns see every detector as constant-0 — a worst-case
    /// signature-alias class (the `voter` pathology in miniature).
    fn detectors(keys: &[u16], balanced: bool) -> Aig {
        let mut g = Aig::new();
        let pis: Vec<Lit> = (0..12).map(|_| g.add_pi()).collect();
        for &k in keys {
            let lits: Vec<Lit> = (0..12)
                .map(|i| {
                    let bit = k >> i & 1 == 1;
                    if bit {
                        pis[i]
                    } else {
                        !pis[i]
                    }
                })
                .collect();
            let out = if balanced {
                // Balanced tree association.
                let mut layer = lits;
                while layer.len() > 1 {
                    layer = layer
                        .chunks(2)
                        .map(|c| {
                            if c.len() == 2 {
                                g.and(c[0], c[1])
                            } else {
                                c[0]
                            }
                        })
                        .collect();
                }
                layer[0]
            } else {
                // Left-leaning chain association.
                let mut acc = lits[0];
                for &l in &lits[1..] {
                    acc = g.and(acc, l);
                }
                acc
            };
            g.add_po(out);
        }
        g
    }

    /// Satellite: counterexample-guided refinement must slash the number
    /// of SAT queries spent refuting signature aliases.
    #[test]
    fn refinement_cuts_alias_queries() {
        let keys: Vec<u16> = (0..24).map(|i| (i * 157 + 3) % 4096).collect();
        let a = detectors(&keys, false);
        let b = detectors(&keys, true);
        // All detectors alias to the all-zero signature class; without
        // refinement the sweep grinds through pairwise refutations.
        let unrefined = CecConfig {
            refine: false,
            ..CecConfig::default()
        };
        let base = check_equivalence(&a, &b, &unrefined).unwrap();
        assert_eq!(base.verdict, CecVerdict::Equivalent);
        let refined = check_equivalence(&a, &b, &CecConfig::default()).unwrap();
        assert_eq!(refined.verdict, CecVerdict::Equivalent);
        assert!(refined.stats.refinements > 0, "patterns must be fed back");
        assert!(refined.stats.alias_skips > 0, "aliases must be dismissed");
        assert!(
            refined.stats.sat_queries < base.stats.sat_queries,
            "refinement must cut queries: {} (refined) vs {} (unrefined)",
            refined.stats.sat_queries,
            base.stats.sat_queries
        );
        // With the class split by real witnesses, each balanced detector
        // finds its chain twin and merges; without, the 8-candidate cap
        // often buries the right candidate. More merges for fewer queries.
        assert!(refined.stats.sweep_merges >= base.stats.sweep_merges);
    }

    #[test]
    fn interface_mismatch_is_an_error() {
        let a = xor_chain(4, false);
        let b = xor_chain(5, false);
        assert_eq!(
            check_equivalence(&a, &b, &CecConfig::default()),
            Err(CecError::PiMismatch(4, 5))
        );
    }

    #[test]
    fn subtle_internal_difference_found_by_miter() {
        // Two almost-identical networks differing only on one input pattern:
        // force the prefilter off (zero words) so the solver must find it.
        let mut a = Aig::new();
        let pis: Vec<Lit> = (0..4).map(|_| a.add_pi()).collect();
        let c1 = a.and(pis[0], pis[1]);
        let c2 = a.and(pis[2], pis[3]);
        let top = a.and(c1, c2);
        a.add_po(top);
        let mut b = Aig::new();
        let pis: Vec<Lit> = (0..4).map(|_| b.add_pi()).collect();
        let c1 = b.and(pis[0], pis[1]);
        let c2 = b.and(pis[2], !pis[3]);
        let top = b.and(c1, c2);
        b.add_po(top);
        let cfg = CecConfig {
            sim_words: 0,
            ..CecConfig::default()
        };
        let out = check_equivalence(&a, &b, &cfg).unwrap();
        match out.verdict {
            CecVerdict::NotEquivalent(cex) => assert_ne!(a.eval(&cex), b.eval(&cex)),
            other => panic!("expected NotEquivalent, got {other:?}"),
        }
        assert!(out.stats.used_final_sat);
    }
}
