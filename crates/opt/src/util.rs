//! Crate-internal helpers shared by the reconstruction passes and the CEC
//! sweep.

use sfq_netlist::aig::Lit;

/// Follows an old-network literal through a node-indexed translation map,
/// composing the edge complement with the mapped literal's complement.
///
/// # Panics
///
/// Panics if the literal's node has no mapping yet — reconstruction always
/// processes nodes in topological order, so a miss is a traversal bug.
pub(crate) fn mapped(map: &[Option<Lit>], l: Lit) -> Lit {
    let base = map[l.node().index()].expect("fanin mapped before use");
    base.with_complement(base.is_complement() ^ l.is_complement())
}
