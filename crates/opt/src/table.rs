//! The precomputed optimal-subgraph table behind the `rewrite` pass.
//!
//! Cut rewriting replaces the logic cone of a 4-feasible cut with a known
//! small implementation of the cut function. Implementations are stored per
//! *NPN class* (see [`sfq_netlist::npn`]) as straight-line AND/INV
//! [`Program`]s over the canonical inputs, so one entry serves every
//! function in the class — the NPN transform reported by
//! [`npn_canonical`] translates between the cut's leaves and the canonical
//! input order at instantiation time.
//!
//! The table is seeded with hand-minimized subgraphs for structures the
//! generic synthesizer does not find (e.g. the 4-AND majority, one node
//! smaller than the textbook 5-AND form — the workhorse gain on full-adder
//! carry chains), and lazily fills the remaining classes with the best
//! network found by a Shannon-style decomposition search. There are only
//! 222 NPN classes of ≤ 4-input functions, so the table stays tiny and each
//! class is synthesized at most once per process.

use sfq_netlist::aig::{Aig, Lit};
use sfq_netlist::npn::npn_canonical;
use sfq_netlist::truth_table::TruthTable;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// A literal inside a [`Program`]: slot index × 2 + complement bit.
///
/// Slot 0 is constant false, slots `1..=num_vars` are the program inputs,
/// and slot `num_vars + 1 + k` is the result of step `k`.
pub type ProgramLit = u16;

/// The constant-false program literal.
pub const P_FALSE: ProgramLit = 0;
/// The constant-true program literal.
pub const P_TRUE: ProgramLit = 1;

fn p_lit(slot: usize, neg: bool) -> ProgramLit {
    ((slot as u16) << 1) | neg as u16
}

fn p_slot(l: ProgramLit) -> usize {
    (l >> 1) as usize
}

fn p_neg(l: ProgramLit) -> bool {
    l & 1 == 1
}

/// A straight-line AND/INV program: the portable representation of one
/// small subgraph, independent of any concrete [`Aig`].
///
/// Each step ANDs two earlier literals; inverters ride on the literals. The
/// program's function is fully determined, so it can be evaluated over
/// truth tables ([`Program::eval`]) or instantiated into a network
/// ([`Program::build`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    num_vars: usize,
    steps: Vec<(ProgramLit, ProgramLit)>,
    out: ProgramLit,
}

impl Program {
    /// Number of input variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of AND steps (the cost of a fresh instantiation).
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Returns `true` if the program has no AND steps (constant or
    /// single-literal output).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The AND steps in execution order.
    pub fn steps(&self) -> &[(ProgramLit, ProgramLit)] {
        &self.steps
    }

    /// The output literal.
    pub fn out(&self) -> ProgramLit {
        self.out
    }

    /// Evaluates the program symbolically, returning its function as a
    /// truth table over `num_vars` variables.
    pub fn eval(&self) -> TruthTable {
        let n = self.num_vars;
        let mut vals: Vec<TruthTable> = Vec::with_capacity(1 + n + self.steps.len());
        vals.push(TruthTable::zero(n));
        for v in 0..n {
            vals.push(TruthTable::var(n, v));
        }
        let resolve = |vals: &[TruthTable], l: ProgramLit| {
            let t = vals[p_slot(l)];
            if p_neg(l) {
                !t
            } else {
                t
            }
        };
        for &(a, b) in &self.steps {
            let t = resolve(&vals, a) & resolve(&vals, b);
            vals.push(t);
        }
        resolve(&vals, self.out)
    }

    /// Instantiates the program in `aig`, feeding canonical input `i` with
    /// `inputs[i]`, and returns the output literal. Structural hashing in
    /// [`Aig::and`] reuses any step that already exists.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != num_vars()`.
    pub fn build(&self, aig: &mut Aig, inputs: &[Lit]) -> Lit {
        assert_eq!(inputs.len(), self.num_vars, "one literal per program input");
        let mut vals: Vec<Lit> = Vec::with_capacity(1 + self.num_vars + self.steps.len());
        vals.push(Lit::FALSE);
        vals.extend_from_slice(inputs);
        let resolve = |vals: &[Lit], l: ProgramLit| {
            let lit = vals[p_slot(l)];
            lit.with_complement(lit.is_complement() ^ p_neg(l))
        };
        for &(a, b) in &self.steps {
            let (la, lb) = (resolve(&vals, a), resolve(&vals, b));
            let lit = aig.and(la, lb);
            vals.push(lit);
        }
        resolve(&vals, self.out)
    }

    /// Rewrites the program to compute `T(f)` when it computes `f`, where
    /// `T` is the NPN transform `(perm, input_neg, output_neg)` as reported
    /// by [`npn_canonical`]: input `i` of `f` becomes canonical input
    /// `perm[i]` (pre-complemented when bit `i` of `input_neg` is set), and
    /// the output is complemented when `output_neg` holds.
    fn apply_transform(&self, perm: &[u8], input_neg: u8, output_neg: bool) -> Program {
        let remap = |l: ProgramLit| -> ProgramLit {
            let slot = p_slot(l);
            if slot >= 1 && slot <= self.num_vars {
                let i = slot - 1;
                let neg = p_neg(l) ^ (input_neg >> i & 1 == 1);
                p_lit(1 + perm[i] as usize, neg)
            } else {
                l
            }
        };
        let steps = self
            .steps
            .iter()
            .map(|&(a, b)| (remap(a), remap(b)))
            .collect();
        let mut out = remap(self.out);
        if output_neg {
            out ^= 1;
        }
        Program {
            num_vars: self.num_vars,
            steps,
            out,
        }
    }
}

/// Builds [`Program`]s with the same trivial simplifications and structural
/// hashing as [`Aig::and`], so synthesized subgraphs never carry redundant
/// steps.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    num_vars: usize,
    steps: Vec<(ProgramLit, ProgramLit)>,
    strash: HashMap<(ProgramLit, ProgramLit), ProgramLit>,
}

impl ProgramBuilder {
    /// Creates a builder over `num_vars` inputs.
    pub fn new(num_vars: usize) -> Self {
        ProgramBuilder {
            num_vars,
            ..Default::default()
        }
    }

    /// The literal of input `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn input(&self, v: usize) -> ProgramLit {
        assert!(v < self.num_vars, "program input out of range");
        p_lit(1 + v, false)
    }

    /// AND of two program literals, with simplification and hashing.
    pub fn and(&mut self, a: ProgramLit, b: ProgramLit) -> ProgramLit {
        if a == P_FALSE || b == P_FALSE || a == b ^ 1 {
            return P_FALSE;
        }
        if a == P_TRUE {
            return b;
        }
        if b == P_TRUE || a == b {
            return a;
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        if let Some(&l) = self.strash.get(&(a, b)) {
            return l;
        }
        let l = p_lit(1 + self.num_vars + self.steps.len(), false);
        self.steps.push((a, b));
        self.strash.insert((a, b), l);
        l
    }

    /// OR of two program literals.
    pub fn or(&mut self, a: ProgramLit, b: ProgramLit) -> ProgramLit {
        self.and(a ^ 1, b ^ 1) ^ 1
    }

    /// XOR of two program literals (three AND steps).
    pub fn xor(&mut self, a: ProgramLit, b: ProgramLit) -> ProgramLit {
        let l = self.and(a, b ^ 1);
        let r = self.and(a ^ 1, b);
        self.or(l, r)
    }

    /// Finishes the program with output literal `out`.
    pub fn finish(self, out: ProgramLit) -> Program {
        Program {
            num_vars: self.num_vars,
            steps: self.steps,
            out,
        }
    }
}

/// Synthesizes a program for `f` by Shannon-style decomposition: constant
/// and complementary cofactors become OR/AND/XOR factorings, everything
/// else a multiplexer, with memoized sub-functions shared through the
/// builder's strash. The search tries each support variable as the first
/// split and keeps the smallest result.
fn synthesize(f: TruthTable) -> Program {
    let n = f.num_vars();
    let mut best: Option<Program> = None;
    let tops: Vec<usize> = if n == 0 {
        vec![0]
    } else {
        (0..n).filter(|&v| f.depends_on(v)).collect()
    };
    let tops = if tops.is_empty() { vec![0] } else { tops };
    for &top in &tops {
        let mut b = ProgramBuilder::new(n);
        let mut memo: HashMap<TruthTable, ProgramLit> = HashMap::new();
        let out = decompose(f, Some(top), &mut b, &mut memo);
        let prog = b.finish(out);
        debug_assert_eq!(prog.eval(), f, "synthesized program must compute f");
        if best.as_ref().is_none_or(|p| prog.len() < p.len()) {
            best = Some(prog);
        }
    }
    best.expect("at least one decomposition exists")
}

fn decompose(
    f: TruthTable,
    prefer: Option<usize>,
    b: &mut ProgramBuilder,
    memo: &mut HashMap<TruthTable, ProgramLit>,
) -> ProgramLit {
    if f.is_zero() {
        return P_FALSE;
    }
    if f.is_one() {
        return P_TRUE;
    }
    if let Some(&l) = memo.get(&f) {
        return l;
    }
    if let Some(&l) = memo.get(&!f) {
        return l ^ 1;
    }
    let n = f.num_vars();
    for v in 0..n {
        if f == TruthTable::var(n, v) {
            return b.input(v);
        }
        if f == !TruthTable::var(n, v) {
            return b.input(v) ^ 1;
        }
    }
    // Pick the split variable: the preferred one if given, else the support
    // variable with the cheapest local factoring (constant cofactor beats
    // complementary cofactor beats multiplexer).
    let split = prefer.filter(|&v| f.depends_on(v)).unwrap_or_else(|| {
        let mut choice = (usize::MAX, 3u8);
        for v in 0..n {
            if !f.depends_on(v) {
                continue;
            }
            let (c0, c1) = (f.cofactor0(v), f.cofactor1(v));
            let rank = if c0.is_zero() || c0.is_one() || c1.is_zero() || c1.is_one() {
                0
            } else if c0 == !c1 {
                1
            } else {
                2
            };
            if rank < choice.1 {
                choice = (v, rank);
            }
        }
        choice.0
    });
    let x = b.input(split);
    let (c0, c1) = (f.cofactor0(split), f.cofactor1(split));
    let lit = if c1.is_one() {
        let g = decompose(c0, None, b, memo);
        b.or(x, g)
    } else if c1.is_zero() {
        let g = decompose(c0, None, b, memo);
        b.and(x ^ 1, g)
    } else if c0.is_zero() {
        let g = decompose(c1, None, b, memo);
        b.and(x, g)
    } else if c0.is_one() {
        let g = decompose(c1, None, b, memo);
        b.or(x ^ 1, g)
    } else if c0 == !c1 {
        let g = decompose(c0, None, b, memo);
        b.xor(x, g)
    } else {
        let g1 = decompose(c1, None, b, memo);
        let g0 = decompose(c0, None, b, memo);
        let t = b.and(x, g1);
        let e = b.and(x ^ 1, g0);
        b.or(t, e)
    };
    memo.insert(f, lit);
    lit
}

/// The NPN-class → subgraph table. Thread-safe; obtain the process-wide
/// instance with [`RewriteTable::global`].
#[derive(Debug, Default)]
pub struct RewriteTable {
    classes: Mutex<HashMap<TruthTable, Arc<Program>>>,
}

impl RewriteTable {
    /// The process-wide table, seeded on first use.
    pub fn global() -> &'static RewriteTable {
        static TABLE: OnceLock<RewriteTable> = OnceLock::new();
        TABLE.get_or_init(RewriteTable::seeded)
    }

    /// A fresh table containing only the hand-minimized seed entries.
    pub fn seeded() -> Self {
        let table = RewriteTable::default();
        // MAJ3 in four ANDs: maj(a,b,c) = (a&b) | (c & (a|b)). The generic
        // Shannon decomposition finds the five-AND form; this one is the
        // optimum and what makes full-adder carry chains shrink.
        let mut b = ProgramBuilder::new(3);
        let (a, bb, c) = (b.input(0), b.input(1), b.input(2));
        let ab = b.and(a, bb);
        let aob = b.or(a, bb);
        let t = b.and(c, aob);
        let out = b.or(ab, t);
        table.insert(TruthTable::maj3(), b.finish(out));
        table
    }

    /// Registers `prog` (which must compute `f`) under `f`'s NPN class,
    /// keeping it only if it beats the current entry.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `prog` does not compute `f`.
    pub fn insert(&self, f: TruthTable, prog: Program) {
        debug_assert_eq!(prog.eval(), f, "table entry must compute its function");
        let c = npn_canonical(f);
        let canon_prog = prog.apply_transform(&c.perm, c.input_neg, c.output_neg);
        debug_assert_eq!(
            canon_prog.eval(),
            c.canon,
            "transformed entry must compute the canonical function"
        );
        let mut classes = self.classes.lock().expect("table lock");
        match classes.get(&c.canon) {
            Some(existing) if existing.len() <= canon_prog.len() => {}
            _ => {
                classes.insert(c.canon, Arc::new(canon_prog));
            }
        }
    }

    /// The implementation of the NPN class of `canon` (which must already
    /// be a canonical representative, as produced by [`npn_canonical`]).
    /// Synthesizes and caches the class on first request.
    pub fn lookup(&self, canon: TruthTable) -> Arc<Program> {
        if let Some(p) = self.classes.lock().expect("table lock").get(&canon) {
            return p.clone();
        }
        let prog = Arc::new(synthesize(canon));
        let mut classes = self.classes.lock().expect("table lock");
        classes.entry(canon).or_insert_with(|| prog.clone()).clone()
    }

    /// Number of classes currently materialized (diagnostic).
    pub fn len(&self) -> usize {
        self.classes.lock().expect("table lock").len()
    }

    /// Returns `true` if no class has been materialized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_simplifies_like_aig() {
        let mut b = ProgramBuilder::new(2);
        let x = b.input(0);
        assert_eq!(b.and(x, P_FALSE), P_FALSE);
        assert_eq!(b.and(P_TRUE, x), x);
        assert_eq!(b.and(x, x), x);
        assert_eq!(b.and(x, x ^ 1), P_FALSE);
        let y = b.input(1);
        let a1 = b.and(x, y);
        let a2 = b.and(y, x);
        assert_eq!(a1, a2, "strash shares steps");
        assert_eq!(b.finish(a1).len(), 1);
    }

    #[test]
    fn program_eval_and_build_agree() {
        let f = TruthTable::from_bits(3, 0b1101_1000);
        let prog = synthesize(f);
        assert_eq!(prog.eval(), f);
        let mut g = Aig::new();
        let ins: Vec<Lit> = (0..3).map(|_| g.add_pi()).collect();
        let out = prog.build(&mut g, &ins);
        g.add_po(out);
        for idx in 0..8usize {
            let bits: Vec<bool> = (0..3).map(|i| idx >> i & 1 == 1).collect();
            assert_eq!(g.eval(&bits)[0], f.get(idx), "assignment {idx}");
        }
    }

    #[test]
    fn seeded_maj_is_four_ands() {
        let table = RewriteTable::seeded();
        let canon = npn_canonical(TruthTable::maj3());
        assert_eq!(table.lookup(canon.canon).len(), 4);
        // The complemented majority lives in the same class.
        let canon_neg = npn_canonical(!TruthTable::maj3());
        assert_eq!(canon.canon, canon_neg.canon);
    }

    #[test]
    fn every_3var_class_synthesizes_correctly() {
        let table = RewriteTable::seeded();
        for bits in 0u64..256 {
            let f = TruthTable::from_bits(3, bits);
            let c = npn_canonical(f);
            let prog = table.lookup(c.canon);
            assert_eq!(prog.eval(), c.canon, "class of {bits:#04x}");
        }
        // 14 NPN classes of 3-variable functions.
        assert_eq!(table.len(), 14);
    }

    #[test]
    fn random_4var_classes_synthesize_correctly() {
        let table = RewriteTable::seeded();
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        for _ in 0..200 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let f = TruthTable::from_bits(4, state);
            let c = npn_canonical(f);
            assert_eq!(table.lookup(c.canon).eval(), c.canon);
        }
    }

    #[test]
    fn insert_keeps_the_smaller_program() {
        let table = RewriteTable::default();
        // Generic synthesis of maj3 (5 ANDs) first…
        let canon = npn_canonical(TruthTable::maj3());
        let generic = table.lookup(canon.canon);
        assert!(generic.len() >= 4);
        // …then the hand entry wins only if smaller.
        let mut b = ProgramBuilder::new(3);
        let (a, bb, c) = (b.input(0), b.input(1), b.input(2));
        let ab = b.and(a, bb);
        let aob = b.or(a, bb);
        let t = b.and(c, aob);
        let out = b.or(ab, t);
        table.insert(TruthTable::maj3(), b.finish(out));
        assert_eq!(table.lookup(canon.canon).len(), 4.min(generic.len()));
    }
}
