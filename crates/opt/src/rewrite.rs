//! Cut-based rewriting: 4-input cut enumeration → NPN class lookup against
//! the precomputed subgraph table → MFFC-gain-based replacement.
//!
//! For every AND node (in topological order) the pass enumerates its
//! 4-feasible cuts, shrinks each cut function to its support, canonizes it,
//! and prices the class implementation from [`RewriteTable`] against the
//! logic the replacement would free — the cut-bounded MFFC of the root.
//! Existing nodes are discovered through [`Aig::lookup_and`] and cost
//! nothing (unless they are about to be freed themselves), mirroring
//! ABC-style rewriting where sharing with the surrounding network is what
//! makes local replacements profitable. A replacement is accepted only if
//! its estimated gain is strictly positive **and** its estimated output
//! level does not exceed the root's current level, so rewriting never
//! increases network depth.
//!
//! Accepted sites are committed in one reconstruction sweep: freed interior
//! nodes are skipped, roots are instantiated from their class programs, and
//! everything else is copied through structural hashing.

use crate::table::{Program, RewriteTable};
use crate::util::mapped;
use sfq_netlist::aig::{Aig, Lit, NodeId, NodeKind};
use sfq_netlist::cut::{enumerate_cuts, CutConfig};
use sfq_netlist::mffc::Mffc;
use sfq_netlist::npn::{npn_canonical, NpnCanon};
use sfq_netlist::truth_table::TruthTable;
use std::collections::HashMap;
use std::sync::Arc;

/// Parameters of the rewrite pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RewriteConfig {
    /// Priority-cut limit per node during enumeration.
    pub max_cuts: usize,
}

impl Default for RewriteConfig {
    /// Twelve cuts per node — enough to expose the profitable 3- and
    /// 4-input cones without paying full mapping-grade enumeration.
    fn default() -> Self {
        RewriteConfig { max_cuts: 12 }
    }
}

/// One committed replacement: the class program plus the network literals
/// feeding its canonical inputs.
struct Site {
    program: Arc<Program>,
    /// `inputs[j]` drives canonical input `j`; complements encode the NPN
    /// input negations.
    inputs: Vec<Lit>,
    /// Complement the program output (NPN output negation).
    output_neg: bool,
}

/// Cost/level probe of instantiating `prog` with `inputs` against the
/// existing network: returns `(new_nodes, output_level)` estimates, where
/// strash hits on live nodes are free and everything else costs one node.
/// Level estimates use current levels for hits, so they upper-bound the
/// levels realized after reconstruction.
fn estimate(
    aig: &Aig,
    levels: &[u32],
    freed: &[NodeId],
    dead: &[bool],
    prog: &Program,
    inputs: &[Lit],
) -> (usize, u32) {
    #[derive(Clone, Copy)]
    enum Slot {
        /// Exists in the network today (literal, level).
        Known(Lit, u32),
        /// Would be created (level estimate).
        New(u32),
    }
    let level_of = |s: Slot| match s {
        Slot::Known(_, l) | Slot::New(l) => l,
    };
    let mut slots: Vec<Slot> = Vec::with_capacity(1 + prog.num_vars() + prog.len());
    slots.push(Slot::Known(Lit::FALSE, 0));
    for &l in inputs {
        slots.push(Slot::Known(l, levels[l.node().index()]));
    }
    let resolve = |slots: &[Slot], pl: u16| -> Slot {
        match slots[(pl >> 1) as usize] {
            Slot::Known(l, lv) => {
                Slot::Known(l.with_complement(l.is_complement() ^ (pl & 1 == 1)), lv)
            }
            s => s,
        }
    };
    let mut cost = 0usize;
    for &(a, b) in prog.steps() {
        let (ra, rb) = (resolve(&slots, a), resolve(&slots, b));
        let slot = if let (Slot::Known(la, lva), Slot::Known(lb, lvb)) = (ra, rb) {
            match aig.lookup_and(la, lb) {
                Some(hit) => {
                    let hn = hit.node();
                    if freed.binary_search(&hn).is_ok() || dead[hn.index()] {
                        // The hit is being freed — it will not survive the
                        // reconstruction, so the step must be rebuilt.
                        cost += 1;
                        Slot::New(1 + lva.max(lvb))
                    } else {
                        Slot::Known(hit, levels[hn.index()])
                    }
                }
                None => {
                    cost += 1;
                    Slot::New(1 + lva.max(lvb))
                }
            }
        } else {
            cost += 1;
            Slot::New(1 + level_of(ra).max(level_of(rb)))
        };
        slots.push(slot);
    }
    (cost, level_of(resolve(&slots, prog.out())))
}

/// Rewrites `aig` once; returns the new network and the number of
/// replacement sites committed.
pub fn rewrite_network(aig: &Aig, config: &RewriteConfig) -> (Aig, usize) {
    let cuts = enumerate_cuts(
        aig,
        &CutConfig {
            max_leaves: 4,
            max_cuts: config.max_cuts,
        },
    );
    let levels = aig.levels();
    let mut mffc = Mffc::new(aig);
    let table = RewriteTable::global();
    // Cut functions repeat heavily (every full adder contributes the same
    // XOR3/MAJ3 tables), so canonization is memoized per run.
    let mut canon_memo: HashMap<TruthTable, NpnCanon> = HashMap::new();

    let mut sites: HashMap<NodeId, Site> = HashMap::new();
    let mut dead = vec![false; aig.len()];
    let mut is_root = vec![false; aig.len()];

    for root in aig.and_ids() {
        if dead[root.index()] {
            continue;
        }
        let root_level = levels[root.index()];
        let mut best: Option<(i64, Site, Vec<NodeId>)> = None;
        for cut in cuts.cuts(root) {
            let leaves = cut.leaves();
            if leaves.len() == 1 && leaves[0] == root {
                continue; // trivial cut
            }
            if leaves.iter().any(|l| dead[l.index()]) {
                continue;
            }
            let freed = mffc.members_bounded(root, leaves);
            debug_assert!(freed.contains(&root));
            if freed
                .iter()
                .any(|n| dead[n.index()] || (is_root[n.index()] && *n != root))
            {
                continue; // overlaps an earlier site
            }
            let (func, kept) = cut.truth_table().shrink_to_support();
            let canon = *canon_memo
                .entry(func)
                .or_insert_with(|| npn_canonical(func));
            let program = table.lookup(canon.canon);
            let mut inputs = vec![Lit::FALSE; func.num_vars()];
            for (i, &orig_var) in kept.iter().enumerate() {
                let neg = canon.input_neg >> i & 1 == 1;
                inputs[canon.perm[i] as usize] = Lit::new(leaves[orig_var], neg);
            }
            let (cost, out_level) = estimate(aig, &levels, &freed, &dead, &program, &inputs);
            if out_level > root_level {
                continue; // would deepen the network
            }
            let gain = freed.len() as i64 - cost as i64;
            if gain <= 0 {
                continue;
            }
            if best.as_ref().is_none_or(|(g, ..)| gain > *g) {
                best = Some((
                    gain,
                    Site {
                        program,
                        inputs,
                        output_neg: canon.output_neg,
                    },
                    freed,
                ));
            }
        }
        if let Some((_, site, freed)) = best {
            for &n in &freed {
                if n != root {
                    dead[n.index()] = true;
                }
            }
            is_root[root.index()] = true;
            sites.insert(root, site);
        }
    }

    // Reconstruction: freed interiors are skipped, roots instantiate their
    // programs, everything else copies through the strash.
    let applied = sites.len();
    let mut out = Aig::new();
    let mut map: Vec<Option<Lit>> = vec![None; aig.len()];
    map[NodeId::CONST0.index()] = Some(Lit::FALSE);
    for id in aig.node_ids() {
        match aig.kind(id) {
            NodeKind::Const0 => {}
            NodeKind::Input(_) => map[id.index()] = Some(out.add_pi()),
            NodeKind::And(a, b) => {
                if let Some(site) = sites.get(&id) {
                    let ins: Vec<Lit> = site.inputs.iter().map(|&l| mapped(&map, l)).collect();
                    let lit = site.program.build(&mut out, &ins);
                    map[id.index()] =
                        Some(lit.with_complement(lit.is_complement() ^ site.output_neg));
                } else if dead[id.index()] {
                    // Freed interior: nothing outside its site references it.
                } else {
                    let (fa, fb) = (mapped(&map, a), mapped(&map, b));
                    map[id.index()] = Some(out.and(fa, fb));
                }
            }
        }
    }
    for &po in aig.pos() {
        out.add_po(mapped(&map, po));
    }
    (out, applied)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval_equal(a: &Aig, b: &Aig) {
        assert_eq!(a.pi_count(), b.pi_count());
        let mut state = 0xC0FF_EE00_DEAD_BEEFu64;
        for _ in 0..8 {
            let inputs: Vec<u64> = (0..a.pi_count())
                .map(|_| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state
                })
                .collect();
            assert_eq!(a.eval64(&inputs), b.eval64(&inputs));
        }
    }

    #[test]
    fn maj3_shrinks_to_four_ands() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let c = g.add_pi();
        let m = g.maj3(a, b, c);
        g.add_po(m);
        assert_eq!(g.and_count(), 5);
        let (rw, applied) = rewrite_network(&g, &RewriteConfig::default());
        // One round may leave an interior site; iterate to the fixpoint.
        let (rw2, _) = rewrite_network(&rw, &RewriteConfig::default());
        let final_net = sfq_netlist::transform::sweep(&rw2);
        assert!(applied >= 1, "at least one site rewritten");
        assert!(
            final_net.and_count() <= 4,
            "maj3 must reach the 4-AND form, got {}",
            final_net.and_count()
        );
        assert!(final_net.depth() <= g.depth());
        eval_equal(&g, &final_net);
    }

    #[test]
    fn rewrite_preserves_function_on_redundant_logic() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let c = g.add_pi();
        let d = g.add_pi();
        // Redundant structure: (a&b) | (a&b&c) == a&b; plus an xor cone.
        let ab = g.and(a, b);
        let abc = g.and(ab, c);
        let red = g.or(ab, abc);
        let x = g.xor3(b, c, d);
        let m = g.maj3(red, x, d);
        g.add_po(m);
        g.add_po(red);
        let before = g.and_count();
        let (rw, _) = rewrite_network(&g, &RewriteConfig::default());
        let rw = sfq_netlist::transform::sweep(&rw);
        assert!(rw.and_count() <= before);
        assert!(rw.depth() <= g.depth());
        eval_equal(&g, &rw);
    }

    #[test]
    fn constant_cone_collapses() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        // (a & b) & (!a & b) == 0, hidden from the builder's local folds.
        let l = g.and(a, b);
        let r = g.and(!a, b);
        let z = g.and(l, r);
        g.add_po(z);
        let (rw, applied) = rewrite_network(&g, &RewriteConfig::default());
        let rw = sfq_netlist::transform::sweep(&rw);
        assert!(applied >= 1);
        assert_eq!(rw.and_count(), 0, "constant-zero cone must vanish");
        assert_eq!(rw.eval(&[true, true]), vec![false]);
        eval_equal(&g, &rw);
    }
}
