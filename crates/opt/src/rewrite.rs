//! Cut-based rewriting: 4-input cut enumeration → NPN class lookup against
//! the precomputed subgraph table → MFFC-gain-based replacement.
//!
//! For every AND node (in topological order) the pass enumerates its
//! 4-feasible cuts, shrinks each cut function to its support, canonizes it,
//! and prices the class implementation from [`RewriteTable`] against the
//! logic the replacement would free — the cut-bounded MFFC of the root.
//! Existing nodes are discovered through [`Aig::lookup_and`] and cost
//! nothing (unless they are about to be freed themselves), mirroring
//! ABC-style rewriting where sharing with the surrounding network is what
//! makes local replacements profitable. A replacement is accepted only if
//! its estimated gain is strictly positive **and** its estimated output
//! level does not exceed the site's depth budget:
//!
//! - [`RewriteMode::Conservative`] — the budget is the root's current
//!   level, so a site never deepens locally (the historical behavior);
//! - [`RewriteMode::SlackAware`] — the budget is the root's *required
//!   time* from `sfq-sta`'s unit-delay analysis, so a site may grow up to
//!   its slack. Accepted growth is immediately fed back into the arrival
//!   analysis ([`sfq_sta::AigSta::raise_arrival`], an incremental
//!   dirty-cone refresh), so every later estimate prices candidate logic
//!   against the levels the network will actually have. Network depth
//!   still never increases: every node's realized level stays bounded by
//!   its required time (roots by the acceptance test, everything else by
//!   the required-time recurrence `required(fanin) ≤ required(node) − 1`);
//! - [`RewriteMode::DffAware`] — the slack-aware budget plus DFF-objective
//!   site pricing: in an SFQ mapping every fanin edge spanning `g` logic
//!   levels needs `⌈g/n⌉` path-balancing DFFs under `n`-phase clocking
//!   (the per-edge accounting of the paper's §II-B, applied at unit
//!   delay), so a cone's slack converts directly into balancing cost.
//!   Candidate sites are scored `node_gain · n + (freed_edge_DFFs −
//!   added_edge_DFFs)`: MFFC gains are weighted by how much DFF cost the
//!   freed cone's slack spans induce, and a site that frees no nodes is
//!   still accepted when it tightens edges enough to save DFFs — though
//!   such a node-neutral site may not deepen the root: the per-edge
//!   score is local, and consumed slack shifts gaps onto the consumers'
//!   other fanin edges, a cost the score cannot see (node-saving sites
//!   keep the full slack budget, node count being the primary objective
//!   there). Node count never increases at a site and the depth budget
//!   is unchanged, so the fixpoint guard invariants hold as in the other
//!   modes.
//!
//! Accepted sites are lowered to [`sfq_netlist::transform::ConeRewrite`]
//! plans and committed by the netlist crate's batch engine — the rebuild
//! path ([`rewrite_network_ctx`]) reconstructs the network in one sweep,
//! while the default ID-stable path ([`rewrite_network_in_place_ctx`])
//! edits slots in place; the two produce structurally identical networks
//! by construction, and a round with zero accepted sites leaves the
//! in-place network completely untouched.
//!
//! Analyses are consumed through the [`OptContext`] threaded down from the
//! pass manager: levels are a cache hit when the previous pass preserved
//! them, and the timing modes *take* the context's incrementally-maintained
//! [`sfq_sta::AigSta`] (built from scratch at most once per pipeline run),
//! feed accepted growth back through `raise_arrival`, and hand it back
//! rebound to the reconstructed network — only the rebuilt cones are
//! refreshed.

use crate::analysis::OptContext;
use crate::table::{Program, RewriteTable};
use sfq_netlist::aig::{Aig, Lit, NodeId};
use sfq_netlist::cut::{enumerate_cuts, CutConfig};
use sfq_netlist::fnv::FnvHashMap;
use sfq_netlist::mffc::Mffc;
use sfq_netlist::npn::{npn_canonical, NpnCanon};
use sfq_netlist::transform::{
    apply_cone_rewrites_in_place, apply_cone_rewrites_rebuild, ConeRewrite,
};
use sfq_netlist::truth_table::TruthTable;
use sfq_sta::AigSta;
use std::sync::Arc;

/// The phase count `rewrite-dff` assumes when none is configured (the
/// paper's Table-I evaluation point, n = 4).
pub const DEFAULT_DFF_PHASES: u32 = 4;

/// Depth/pricing policy of the rewrite pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RewriteMode {
    /// Reject any site whose estimated output level exceeds the root's
    /// current level.
    #[default]
    Conservative,
    /// Allow a site to grow up to the root's slack (required-time
    /// analysis); network depth is still never increased.
    SlackAware,
    /// The slack-aware budget plus per-edge DFF-objective pricing (see the
    /// module docs): gains are weighted by the balancing cost the freed
    /// cone induces at its schedule slack.
    DffAware,
}

/// Parameters of the rewrite pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RewriteConfig {
    /// Priority-cut limit per node during enumeration.
    pub max_cuts: usize,
    /// Depth/pricing policy.
    pub mode: RewriteMode,
    /// Clock-phase count `n` of the DFF-objective pricing (used by
    /// [`RewriteMode::DffAware`] only): an edge spanning `g` levels costs
    /// `⌈g/n⌉` DFFs.
    pub dff_phases: u32,
}

impl Default for RewriteConfig {
    fn default() -> Self {
        Self::conservative()
    }
}

impl RewriteConfig {
    /// Twelve cuts per node — enough to expose the profitable 3- and
    /// 4-input cones without paying full mapping-grade enumeration.
    pub const DEFAULT_MAX_CUTS: usize = 12;

    /// The historical depth-conservative configuration.
    pub fn conservative() -> Self {
        RewriteConfig {
            max_cuts: Self::DEFAULT_MAX_CUTS,
            mode: RewriteMode::Conservative,
            dff_phases: DEFAULT_DFF_PHASES,
        }
    }

    /// The slack-aware configuration.
    pub fn slack_aware() -> Self {
        RewriteConfig {
            mode: RewriteMode::SlackAware,
            ..Self::conservative()
        }
    }

    /// The DFF-objective configuration under `n`-phase clocking.
    pub fn dff_aware(n: u32) -> Self {
        RewriteConfig {
            mode: RewriteMode::DffAware,
            dff_phases: n.max(1),
            ..Self::conservative()
        }
    }
}

/// One committed replacement: the class program plus the network literals
/// feeding its canonical inputs.
struct Site {
    program: Arc<Program>,
    /// `inputs[j]` drives canonical input `j`; complements encode the NPN
    /// input negations.
    inputs: Vec<Lit>,
    /// Complement the program output (NPN output negation).
    output_neg: bool,
}

impl Site {
    /// Lowers the site into the netlist crate's network-independent
    /// [`ConeRewrite`] form: the program steps ride along verbatim (the
    /// packed-literal encodings match by construction) and the NPN output
    /// negation folds into the output literal's complement bit.
    fn lower(self, root: NodeId, freed: Vec<NodeId>) -> ConeRewrite {
        ConeRewrite {
            root,
            freed,
            inputs: self.inputs,
            steps: self.program.steps().to_vec(),
            out: self.program.out() ^ u16::from(self.output_neg),
        }
    }
}

/// Cost/level probe of instantiating `prog` with `inputs` against the
/// existing network: returns `(new_nodes, output_level, new_edge_dffs)`
/// estimates, where strash hits on live nodes are free and everything else
/// costs one node. Level estimates use current levels for hits, so they
/// upper-bound the levels realized after reconstruction. `new_edge_dffs`
/// is the per-edge DFF cost of the *created* steps under `dff_phases`-phase
/// clocking (0 when `dff_phases` is 0 — the non-DFF modes skip the
/// accounting; strash hits contribute nothing since their edges already
/// exist).
fn estimate(
    aig: &Aig,
    levels: &[i64],
    freed: &[NodeId],
    dead: &[bool],
    prog: &Program,
    inputs: &[Lit],
    dff_phases: u32,
) -> (usize, i64, i64) {
    #[derive(Clone, Copy)]
    enum Slot {
        /// Exists in the network today (literal, level).
        Known(Lit, i64),
        /// Would be created (level estimate).
        New(i64),
    }
    let level_of = |s: Slot| match s {
        Slot::Known(_, l) | Slot::New(l) => l,
    };
    let mut slots: Vec<Slot> = Vec::with_capacity(1 + prog.num_vars() + prog.len());
    slots.push(Slot::Known(Lit::FALSE, 0));
    for &l in inputs {
        slots.push(Slot::Known(l, levels[l.node().index()]));
    }
    let resolve = |slots: &[Slot], pl: u16| -> Slot {
        match slots[(pl >> 1) as usize] {
            Slot::Known(l, lv) => {
                Slot::Known(l.with_complement(l.is_complement() ^ (pl & 1 == 1)), lv)
            }
            s => s,
        }
    };
    let mut cost = 0usize;
    let mut new_dffs = 0i64;
    // A created step at level `l = 1 + max(la, lb)` adds two fanin edges
    // spanning `l − la − 1` and `l − lb − 1` levels; each spanned level
    // block of `n` costs one path-balancing DFF.
    let mut price_step = |la: i64, lb: i64| -> i64 {
        let l = 1 + la.max(lb);
        if dff_phases > 0 {
            new_dffs += dffs_for_gap(l - la - 1, dff_phases);
            new_dffs += dffs_for_gap(l - lb - 1, dff_phases);
        }
        l
    };
    for &(a, b) in prog.steps() {
        let (ra, rb) = (resolve(&slots, a), resolve(&slots, b));
        let slot = if let (Slot::Known(la, lva), Slot::Known(lb, lvb)) = (ra, rb) {
            match aig.lookup_and(la, lb) {
                Some(hit) => {
                    let hn = hit.node();
                    if freed.binary_search(&hn).is_ok() || dead[hn.index()] {
                        // The hit is being freed — it will not survive the
                        // reconstruction, so the step must be rebuilt.
                        cost += 1;
                        Slot::New(price_step(lva, lvb))
                    } else {
                        Slot::Known(hit, levels[hn.index()])
                    }
                }
                None => {
                    cost += 1;
                    Slot::New(price_step(lva, lvb))
                }
            }
        } else {
            cost += 1;
            Slot::New(price_step(level_of(ra), level_of(rb)))
        };
        slots.push(slot);
    }
    (cost, level_of(resolve(&slots, prog.out())), new_dffs)
}

/// Path-balancing DFFs of one fanin edge spanning `gap` logic levels under
/// `n`-phase clocking: `⌈gap/n⌉`, 0 for non-positive gaps. The unit-delay
/// counterpart of `t1map::phase::edge_dff_objective`'s per-edge accounting
/// (which floors adjacent-stage gate edges but ceils T1/PO spans; at the
/// pre-mapping level the ceiling is the conservative upper bound).
fn dffs_for_gap(gap: i64, n: u32) -> i64 {
    if gap <= 0 {
        return 0;
    }
    let n = i64::from(n);
    gap.div_euclid(n) + i64::from(gap % n != 0)
}

/// Per-edge DFF cost of the fanin edges of `freed` at the current
/// `arrivals` under `n`-phase clocking — the balancing cost the site's
/// removal reclaims (the counterpart of `estimate`'s `new_edge_dffs`).
fn freed_edge_dffs(aig: &Aig, arrivals: &[i64], freed: &[NodeId], n: u32) -> i64 {
    let mut dffs = 0i64;
    for &f in freed {
        let (a, b) = aig.fanins(f).expect("freed nodes are ANDs");
        for l in [a, b] {
            dffs += dffs_for_gap(arrivals[f.index()] - arrivals[l.node().index()] - 1, n);
        }
    }
    dffs
}

/// Rewrites `aig` once; returns the new network and the number of
/// replacement sites committed. One-shot convenience over
/// [`rewrite_network_ctx`] (every analysis is computed from scratch and
/// dropped).
pub fn rewrite_network(aig: &Aig, config: &RewriteConfig) -> (Aig, usize) {
    rewrite_network_ctx(aig, config, &mut OptContext::scratch())
}

/// [`rewrite_network`] against the caller's analysis context: levels and
/// the timing analysis are consumed from (and, for the timing modes,
/// returned to) `ctx` instead of being rebuilt per invocation.
pub fn rewrite_network_ctx(
    aig: &Aig,
    config: &RewriteConfig,
    ctx: &mut OptContext,
) -> (Aig, usize) {
    let (sites, sta) = select_sites(aig, config, ctx);
    let applied = sites.len();
    let out = apply_cone_rewrites_rebuild(aig, &sites);
    if let Some(sta) = sta {
        // Hand the analysis back rebound to the reconstructed network:
        // floors are cleared and only the changed cones are refreshed, so
        // the next timing consumer (this pass's next round, or a later
        // balance-slack) gets an exact analysis without a rebuild.
        ctx.finish_sta(sta, &out);
    }
    (out, applied)
}

/// The ID-stable variant of [`rewrite_network_ctx`]: the same site
/// selection, applied by editing `aig` in place
/// ([`apply_cone_rewrites_in_place`]) instead of rebuilding it. The result
/// is structurally identical to the rebuild path's; with zero accepted
/// sites the network is left completely untouched — the converged fixpoint
/// rounds that dominate paper-scale `opt --fixpoint` runs then cost no
/// reconstruction, no compaction and no analysis invalidation at all.
/// Returns the number of sites committed.
pub fn rewrite_network_in_place_ctx(
    aig: &mut Aig,
    config: &RewriteConfig,
    ctx: &mut OptContext,
) -> usize {
    let (sites, sta) = select_sites(aig, config, ctx);
    let applied = sites.len();
    if applied > 0 {
        apply_cone_rewrites_in_place(aig, &sites);
    }
    if let Some(sta) = sta {
        ctx.finish_sta(sta, aig);
    }
    applied
}

/// The shared selection phase: enumerates cuts, prices candidate
/// replacements and greedily commits non-overlapping sites, returning them
/// lowered to [`ConeRewrite`]s in root-scan (topological) order together
/// with the timing analysis taken from the context (timing modes only —
/// hand it back through [`OptContext::finish_sta`] after applying).
fn select_sites(
    aig: &Aig,
    config: &RewriteConfig,
    ctx: &mut OptContext,
) -> (Vec<ConeRewrite>, Option<AigSta>) {
    let cuts = enumerate_cuts(
        aig,
        &CutConfig {
            max_leaves: 4,
            max_cuts: config.max_cuts,
        },
    );
    // The timing modes run on the unit-delay required-time analysis; its
    // arrival view starts at the static levels and is floored upward as
    // growing sites are accepted, so later estimates price against the
    // post-rewrite cone depths. The analysis is *taken* from the context —
    // a cache hit or an incremental rebind, a from-scratch build only on
    // the context's very first timing request.
    let mut sta = match config.mode {
        RewriteMode::Conservative => None,
        RewriteMode::SlackAware | RewriteMode::DffAware => Some(ctx.take_sta(aig)),
    };
    let static_levels: Vec<i64> = match &sta {
        // The taken analysis carries the levels as arrivals already.
        Some(_) => Vec::new(),
        None => ctx.levels(aig).iter().map(|&l| i64::from(l)).collect(),
    };
    let dff_phases = match config.mode {
        RewriteMode::DffAware => config.dff_phases.max(1),
        _ => 0,
    };
    let mut mffc = Mffc::new(aig);
    let table = RewriteTable::global();
    // Cut functions repeat heavily (every full adder contributes the same
    // XOR3/MAJ3 tables), so canonization is memoized per run. FNV keying:
    // truth tables are short fixed-width non-adversarial keys, the case
    // `sfq_netlist::fnv` exists for.
    let mut canon_memo: FnvHashMap<TruthTable, NpnCanon> = FnvHashMap::default();

    let mut sites: Vec<ConeRewrite> = Vec::new();
    let mut dead = vec![false; aig.len()];
    let mut is_root = vec![false; aig.len()];

    for root in aig.and_ids() {
        if dead[root.index()] {
            continue;
        }
        // The depth budget of this site: its current level in conservative
        // mode, its required time (current level + slack) in slack-aware
        // mode. Either way the realized network depth cannot grow.
        let arrivals: &[i64] = match &sta {
            Some(s) => s.arrivals(),
            None => &static_levels,
        };
        let level_limit = match &sta {
            Some(s) => s.required(root),
            None => static_levels[root.index()],
        };
        let mut best: Option<(i64, i64, Site, Vec<NodeId>)> = None;
        for cut in cuts.cuts(root) {
            let leaves = cut.leaves();
            if leaves.len() == 1 && leaves[0] == root {
                continue; // trivial cut
            }
            if leaves.iter().any(|l| dead[l.index()]) {
                continue;
            }
            let freed = mffc.members_bounded(root, leaves);
            debug_assert!(freed.contains(&root));
            if freed
                .iter()
                .any(|n| dead[n.index()] || (is_root[n.index()] && *n != root))
            {
                continue; // overlaps an earlier site
            }
            let (func, kept) = cut.truth_table().shrink_to_support();
            let canon = *canon_memo
                .entry(func)
                .or_insert_with(|| npn_canonical(func));
            let program = table.lookup(canon.canon);
            let mut inputs = vec![Lit::FALSE; func.num_vars()];
            for (i, &orig_var) in kept.iter().enumerate() {
                let neg = canon.input_neg >> i & 1 == 1;
                inputs[canon.perm[i] as usize] = Lit::new(leaves[orig_var], neg);
            }
            let (cost, out_level, new_dffs) =
                estimate(aig, arrivals, &freed, &dead, &program, &inputs, dff_phases);
            if out_level > level_limit {
                continue; // would exceed the site's depth budget
            }
            let node_gain = freed.len() as i64 - cost as i64;
            // DFF mode, node-neutral site: the per-edge score only sees the
            // site's own edges, and deepening the root shifts level gaps
            // onto its consumers' *other* fanin edges — an unmodeled cost
            // that can turn a local "DFF win" into a global loss. A pure
            // DFF play therefore may not consume slack: it must hold the
            // root's current level, so the surrounding gaps are unchanged
            // and the scored delta is the real one.
            if dff_phases > 0 && node_gain == 0 && out_level > arrivals[root.index()] {
                continue;
            }
            // The score the site is selected by: plain node gain in the
            // conservative/slack modes; in DFF mode, node gain weighted by
            // the phase count plus the per-edge DFF delta, so freeing a
            // slack-heavy cone (whose long edges cost balancing DFFs)
            // outranks freeing a tight one, and a node-neutral rewiring is
            // still profitable when it saves DFFs. Node count never
            // increases at a site in any mode.
            let score = if dff_phases > 0 {
                node_gain * i64::from(dff_phases)
                    + freed_edge_dffs(aig, arrivals, &freed, dff_phases)
                    - new_dffs
            } else {
                node_gain
            };
            if node_gain < 0 || score <= 0 {
                continue;
            }
            // Tiebreak equal scores toward the shallower implementation so
            // slack is only consumed when it buys something.
            if best
                .as_ref()
                .is_none_or(|&(s, lv, ..)| (score, -out_level) > (s, -lv))
            {
                best = Some((
                    score,
                    out_level,
                    Site {
                        program,
                        inputs,
                        output_neg: canon.output_neg,
                    },
                    freed,
                ));
            }
        }
        if let Some((_, out_level, site, freed)) = best {
            for &n in &freed {
                if n != root {
                    dead[n.index()] = true;
                }
            }
            is_root[root.index()] = true;
            if let Some(s) = sta.as_mut() {
                if out_level > s.arrival(root) {
                    // Feed the accepted growth back into the analysis so
                    // downstream estimates see the deepened cone.
                    s.raise_arrival(root, out_level);
                }
            }
            sites.push(site.lower(root, freed));
        }
    }
    (sites, sta)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval_equal(a: &Aig, b: &Aig) {
        assert_eq!(a.pi_count(), b.pi_count());
        let mut state = 0xC0FF_EE00_DEAD_BEEFu64;
        for _ in 0..8 {
            let inputs: Vec<u64> = (0..a.pi_count())
                .map(|_| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state
                })
                .collect();
            assert_eq!(a.eval64(&inputs), b.eval64(&inputs));
        }
    }

    #[test]
    fn maj3_shrinks_to_four_ands() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let c = g.add_pi();
        let m = g.maj3(a, b, c);
        g.add_po(m);
        assert_eq!(g.and_count(), 5);
        let (rw, applied) = rewrite_network(&g, &RewriteConfig::default());
        // One round may leave an interior site; iterate to the fixpoint.
        let (rw2, _) = rewrite_network(&rw, &RewriteConfig::default());
        let final_net = sfq_netlist::transform::sweep(&rw2);
        assert!(applied >= 1, "at least one site rewritten");
        assert!(
            final_net.and_count() <= 4,
            "maj3 must reach the 4-AND form, got {}",
            final_net.and_count()
        );
        assert!(final_net.depth() <= g.depth());
        eval_equal(&g, &final_net);
    }

    #[test]
    fn rewrite_preserves_function_on_redundant_logic() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let c = g.add_pi();
        let d = g.add_pi();
        // Redundant structure: (a&b) | (a&b&c) == a&b; plus an xor cone.
        let ab = g.and(a, b);
        let abc = g.and(ab, c);
        let red = g.or(ab, abc);
        let x = g.xor3(b, c, d);
        let m = g.maj3(red, x, d);
        g.add_po(m);
        g.add_po(red);
        let before = g.and_count();
        let (rw, _) = rewrite_network(&g, &RewriteConfig::default());
        let rw = sfq_netlist::transform::sweep(&rw);
        assert!(rw.and_count() <= before);
        assert!(rw.depth() <= g.depth());
        eval_equal(&g, &rw);
    }

    #[test]
    fn slack_aware_never_deepens_the_network() {
        // Random-ish structured cones; whatever sites the slack-aware mode
        // accepts, the PO depth must never exceed the subject's.
        let mut g = Aig::new();
        let pis: Vec<Lit> = (0..8).map(|_| g.add_pi()).collect();
        let m1 = g.maj3(pis[0], pis[1], pis[2]);
        let x1 = g.xor3(pis[2], pis[3], pis[4]);
        let m2 = g.maj3(m1, x1, pis[5]);
        let x2 = g.xor3(m2, pis[6], pis[7]);
        let deep = {
            let mut acc = x2;
            for &p in &pis[..6] {
                acc = g.and(acc, p);
            }
            acc
        };
        g.add_po(deep);
        g.add_po(m2);
        let depth0 = g.depth();
        let mut cur = g.clone();
        for _ in 0..3 {
            let (next, _) = rewrite_network(&cur, &RewriteConfig::slack_aware());
            assert!(next.depth() <= depth0, "depth grew past the subject's");
            cur = sfq_netlist::transform::sweep(&next);
        }
        eval_equal(&g, &cur);
    }

    #[test]
    fn slack_aware_matches_conservative_gains_at_worst() {
        // On a pure majority cone (root is the PO, zero slack), the two
        // modes must agree exactly.
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let c = g.add_pi();
        let m = g.maj3(a, b, c);
        g.add_po(m);
        let (cons, n_cons) = rewrite_network(&g, &RewriteConfig::conservative());
        let (slack, n_slack) = rewrite_network(&g, &RewriteConfig::slack_aware());
        assert_eq!(n_cons, n_slack);
        assert_eq!(cons.and_count(), slack.and_count());
        eval_equal(&cons, &slack);
    }

    #[test]
    fn constant_cone_collapses() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        // (a & b) & (!a & b) == 0, hidden from the builder's local folds.
        let l = g.and(a, b);
        let r = g.and(!a, b);
        let z = g.and(l, r);
        g.add_po(z);
        let (rw, applied) = rewrite_network(&g, &RewriteConfig::default());
        let rw = sfq_netlist::transform::sweep(&rw);
        assert!(applied >= 1);
        assert_eq!(rw.and_count(), 0, "constant-zero cone must vanish");
        assert_eq!(rw.eval(&[true, true]), vec![false]);
        eval_equal(&g, &rw);
    }
}
