//! Analysis-manager integration tests:
//!
//! - after **any** random sequence of passes on random AIGs, every
//!   context-cached analysis (levels, arrivals, required times, slack,
//!   fanout counts, signatures) is identical to a freshly computed one —
//!   the honesty contract behind every `Preserved` report;
//! - a slack-aware fixpoint run builds the STA from scratch **at most
//!   once** (counter-asserted) while producing byte-identical results
//!   (same structural hash, so same nodes and depth) to the scratch-mode
//!   pipeline — which reproduces the pre-context behavior exactly — on
//!   the Table-I small suite, CEC-verified against the subject;
//! - the DFF-objective mode is live (its decisions differ from the
//!   slack-aware mode somewhere on the suite) and guarded.

use proptest::prelude::*;
use sfq_circuits::epfl;
use sfq_circuits::random::{random_aig, RandomAigConfig};
use sfq_netlist::aig::Aig;
use sfq_opt::analysis::signatures_of;
use sfq_opt::{
    check_equivalence, CecConfig, CecVerdict, OptConfig, OptContext, PassKind, Pipeline,
};
use sfq_sta::AigSta;

fn table1_small() -> Vec<(&'static str, Aig)> {
    vec![
        ("adder16", epfl::adder(16)),
        ("multiplier8", epfl::multiplier(8)),
        ("sin8", epfl::sin(8)),
        ("voter31", epfl::voter(31)),
    ]
}

/// Asserts every cached analysis of `ctx` equals a fresh computation on
/// `aig`. Calling the accessors is itself the test: stale entries must
/// refresh (incrementally, for the STA) to exactly the scratch values.
fn assert_ctx_matches_fresh(ctx: &mut OptContext, aig: &Aig) {
    assert_eq!(ctx.levels(aig), aig.levels().as_slice(), "levels");
    assert_eq!(ctx.depth(aig), aig.depth(), "depth");
    let fanouts: Vec<u32> = aig.node_ids().map(|id| aig.fanout_count(id)).collect();
    assert_eq!(ctx.fanouts(aig), fanouts.as_slice(), "fanout counts");
    assert_eq!(
        ctx.signatures(aig),
        signatures_of(aig).as_slice(),
        "signatures"
    );
    let fresh = AigSta::new(aig);
    let cached = ctx.sta(aig);
    assert_eq!(cached.horizon(), fresh.horizon(), "horizon");
    for id in aig.node_ids() {
        assert_eq!(
            cached.arrival(id),
            fresh.arrival(id),
            "arrival of n{}",
            id.0
        );
        assert_eq!(
            cached.required(id),
            fresh.required(id),
            "required of n{}",
            id.0
        );
        assert_eq!(cached.slack(id), fresh.slack(id), "slack of n{}", id.0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn cached_analyses_match_fresh_after_any_pass_sequence(
        seed in any::<u64>(),
        gates in 16usize..96,
        sequence in proptest::collection::vec(0usize..PassKind::KNOWN.len(), 1..8),
    ) {
        let mut aig = random_aig(
            seed,
            &RandomAigConfig {
                num_pis: 6,
                num_gates: gates,
                num_pos: 3,
                xor_percent: 30,
            },
        );
        let mut ctx = OptContext::new();
        for &pick in &sequence {
            let kind = PassKind::KNOWN[pick];
            let pipeline = Pipeline::from_kinds(&[kind]);
            pipeline.run_with(&mut aig, &mut ctx);
            assert_ctx_matches_fresh(&mut ctx, &aig);
        }
    }
}

/// Acceptance: `run_until_fixpoint` with `rewrite-slack` builds the STA
/// from scratch at most once per run while producing byte-identical
/// results to the scratch pipeline (== the pre-refactor behavior), CEC-
/// verified against the subject on the Table-I small suite.
#[test]
fn slack_fixpoint_builds_sta_at_most_once_and_matches_scratch() {
    for (name, aig) in table1_small() {
        let pipeline = Pipeline::from_config(&OptConfig::slack_aware());

        let mut shared = aig.clone();
        let mut shared_ctx = OptContext::new();
        let shared_report = pipeline.run_until_fixpoint_with(&mut shared, 8, &mut shared_ctx);

        // The instrumentation counter: one from-scratch STA build for the
        // whole run, every later round served incrementally.
        assert!(
            shared_report.analysis.sta_full_builds <= 1,
            "{name}: expected <= 1 STA build, got {}",
            shared_report.analysis.sta_full_builds
        );
        assert!(
            shared_report.analysis.cache_hits > 0,
            "{name}: the shared context must serve cache hits"
        );

        // Scratch mode recomputes every analysis per consumer — exactly
        // the pre-context pipeline. Results must be byte-identical.
        let mut scratch = aig.clone();
        let mut scratch_ctx = OptContext::scratch();
        let scratch_report = pipeline.run_until_fixpoint_with(&mut scratch, 8, &mut scratch_ctx);
        assert!(
            scratch_report.analysis.sta_full_builds > 1,
            "{name}: scratch mode rebuilds the STA per consumer"
        );
        assert_eq!(
            shared.structural_hash(),
            scratch.structural_hash(),
            "{name}: shared-context results must be byte-identical to scratch"
        );
        assert_eq!(shared_report.nodes_after, scratch_report.nodes_after);
        assert_eq!(shared_report.depth_after, scratch_report.depth_after);

        // And the run is functionally correct end to end.
        let cec = check_equivalence(&aig, &shared, &CecConfig::default()).unwrap();
        assert_eq!(
            cec.verdict,
            CecVerdict::Equivalent,
            "{name}: CEC must prove the shared-context run"
        );
    }
}

/// The DFF-objective mode must be guarded like every other mode (never
/// more nodes or depth than the subject, CEC-equivalent) and *live*: on at
/// least one suite benchmark its pricing makes a different decision than
/// plain slack-aware rewriting.
#[test]
fn dff_aware_mode_is_guarded_and_live() {
    let mut diverged = 0usize;
    for (name, aig) in table1_small() {
        let (dff, report) = sfq_opt::optimize(&aig, &OptConfig::dff_aware(4));
        assert!(
            report.nodes_after <= report.nodes_before,
            "{name}: node guard"
        );
        assert!(
            report.depth_after <= report.depth_before,
            "{name}: depth guard"
        );
        let cec = check_equivalence(&aig, &dff, &CecConfig::default()).unwrap();
        assert_eq!(cec.verdict, CecVerdict::Equivalent, "{name}: CEC");
        let (slack, _) = sfq_opt::optimize(&aig, &OptConfig::slack_aware());
        if dff.structural_hash() != slack.structural_hash() {
            diverged += 1;
        }
    }
    assert!(
        diverged >= 1,
        "DFF pricing never changed a decision — the mode is dead"
    );
}

/// One shared context across *different* pipeline invocations (the
/// `balance-slack` satellite): after a slack-aware rewrite leaves a fresh
/// STA in the context, a following `balance-slack` consumes it as a cache
/// hit instead of building its own.
#[test]
fn balance_slack_reuses_the_rewrite_sta() {
    let aig = epfl::adder(16);
    let mut g = aig.clone();
    let mut ctx = OptContext::new();
    let pipeline = Pipeline::from_kinds(&[PassKind::RewriteSlack, PassKind::BalanceSlack]);
    let stats = pipeline.run_with(&mut g, &mut ctx);
    assert_eq!(stats.len(), 2);
    let c = ctx.counters();
    assert_eq!(
        c.sta_full_builds, 1,
        "one build serves both timing consumers"
    );
    // balance-slack's STA request after the rewrite must not be a build:
    // either a pure hit (identical rebuild) or an incremental rebind.
    assert!(
        stats[1].sta_builds == 0,
        "balance-slack must not build its own STA"
    );
    let cec = check_equivalence(&aig, &g, &CecConfig::default()).unwrap();
    assert_eq!(cec.verdict, CecVerdict::Equivalent);
}
