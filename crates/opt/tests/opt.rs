//! Integration tests of the optimization subsystem on real benchmark
//! circuits: the fixpoint pipeline must shrink EPFL-class networks without
//! deepening them, and the CEC guard must prove every run equivalent — and
//! catch a deliberately injected bug.

use sfq_circuits::epfl;
use sfq_netlist::aig::{Aig, Lit, NodeId, NodeKind};
use sfq_opt::{check_equivalence, optimize, CecConfig, CecVerdict, OptConfig, PassKind};

fn assert_optimizes(name: &str, aig: &Aig) {
    let (opt, report) = optimize(aig, &OptConfig::standard());
    assert!(
        report.nodes_after < report.nodes_before,
        "{name}: expected a node reduction, got {} -> {}",
        report.nodes_before,
        report.nodes_after
    );
    assert!(
        report.depth_after <= report.depth_before,
        "{name}: depth must never increase, got {} -> {}",
        report.depth_before,
        report.depth_after
    );
    let cec = check_equivalence(aig, &opt, &CecConfig::default())
        .unwrap_or_else(|e| panic!("{name}: interface changed: {e}"));
    assert_eq!(
        cec.verdict,
        CecVerdict::Equivalent,
        "{name}: optimized network must stay equivalent"
    );
}

#[test]
fn adder_shrinks_and_verifies() {
    assert_optimizes("adder16", &epfl::adder(16));
}

#[test]
fn multiplier_shrinks_and_verifies() {
    assert_optimizes("multiplier8", &epfl::multiplier(8));
}

#[test]
fn sin_shrinks_and_verifies() {
    assert_optimizes("sin8", &epfl::sin(8));
}

#[test]
fn voter_shrinks_and_verifies() {
    assert_optimizes("voter31", &epfl::voter(31));
}

/// Satellite: CEC negative test. Flip one fanin polarity somewhere in an
/// optimized AIG and the miter must become SAT (a concrete counterexample).
#[test]
fn mutated_fanin_polarity_makes_the_miter_sat() {
    let aig = epfl::adder(8);
    let (opt, _) = optimize(&aig, &OptConfig::standard());

    // Rebuild `opt` with exactly one fanin complement flipped. Scan for a
    // mutation that actually changes the function (a flip can be masked,
    // e.g. under a dominating constant), so the assertion below is about
    // CEC finding the bug, not about luck in picking the node.
    let mutated = (0..opt.len())
        .filter_map(|victim| {
            let g = flip_fanin(&opt, NodeId(victim as u32))?;
            let probe: Vec<u64> = (0..g.pi_count())
                .map(|i| 0x9E37_79B9_7F4A_7C15u64.rotate_left(i as u32 * 7))
                .collect();
            (g.eval64(&probe) != opt.eval64(&probe)).then_some(g)
        })
        .next()
        .expect("some single-polarity flip changes the function");

    let out = check_equivalence(&opt, &mutated, &CecConfig::default()).unwrap();
    match out.verdict {
        CecVerdict::NotEquivalent(cex) => {
            assert_eq!(cex.len(), opt.pi_count());
            assert_ne!(
                opt.eval(&cex),
                mutated.eval(&cex),
                "counterexample must replay"
            );
        }
        other => panic!("expected NotEquivalent, got {other:?}"),
    }

    // The same bug must also be caught with the simulation prefilter off —
    // i.e. by the SAT miter itself.
    let sat_only = CecConfig {
        sim_words: 0,
        ..CecConfig::default()
    };
    let out = check_equivalence(&opt, &mutated, &sat_only).unwrap();
    assert!(
        matches!(out.verdict, CecVerdict::NotEquivalent(_)),
        "miter must be SAT on the mutated network, got {:?}",
        out.verdict
    );
}

/// Copies `aig`, complementing the first fanin of AND node `victim`.
/// Returns `None` when `victim` is not an AND node.
fn flip_fanin(aig: &Aig, victim: NodeId) -> Option<Aig> {
    matches!(aig.kind(victim), NodeKind::And(..)).then_some(())?;
    let mut out = Aig::new();
    let mut map: Vec<Option<Lit>> = vec![None; aig.len()];
    map[NodeId::CONST0.index()] = Some(Lit::FALSE);
    let mapped = |map: &[Option<Lit>], l: Lit| -> Lit {
        let base = map[l.node().index()].expect("topological order");
        base.with_complement(base.is_complement() ^ l.is_complement())
    };
    for id in aig.node_ids() {
        match aig.kind(id) {
            NodeKind::Const0 => {}
            NodeKind::Input(_) => map[id.index()] = Some(out.add_pi()),
            NodeKind::And(a, b) => {
                let a = if id == victim { !a } else { a };
                let (fa, fb) = (mapped(&map, a), mapped(&map, b));
                map[id.index()] = Some(out.and(fa, fb));
            }
        }
    }
    for &po in aig.pos() {
        out.add_po(mapped(&map, po));
    }
    Some(out)
}

/// Tentpole acceptance: the slack-aware pipeline must beat the
/// conservative one on nodes — at equal depth — on at least three EPFL
/// benchmarks, and every slack-aware run must be CEC-verified.
#[test]
fn slack_aware_rewriting_dominates_conservative() {
    let mut dominated = 0usize;
    for (name, aig) in [
        ("adder16", epfl::adder(16)),
        ("multiplier8", epfl::multiplier(8)),
        ("voter31", epfl::voter(31)),
        ("sin8", epfl::sin(8)),
    ] {
        let (_, cons) = optimize(&aig, &OptConfig::standard());
        let (slack_net, slack) = optimize(&aig, &OptConfig::slack_aware());
        assert!(
            slack.nodes_after <= cons.nodes_after,
            "{name}: slack-aware ({}) must never lose to conservative ({})",
            slack.nodes_after,
            cons.nodes_after
        );
        assert!(
            slack.depth_after <= slack.depth_before,
            "{name}: the depth guard must hold, got {} -> {}",
            slack.depth_before,
            slack.depth_after
        );
        let cec = check_equivalence(&aig, &slack_net, &CecConfig::default()).unwrap();
        assert_eq!(
            cec.verdict,
            CecVerdict::Equivalent,
            "{name}: slack-aware result must be CEC-verified equivalent"
        );
        if slack.nodes_after < cons.nodes_after && slack.depth_after == cons.depth_after {
            dominated += 1;
        }
    }
    assert!(
        dominated >= 3,
        "slack-aware must strictly win nodes at equal depth on >= 3 \
         benchmarks, got {dominated}"
    );
}

#[test]
fn single_pass_pipelines_preserve_function() {
    let aig = epfl::adder(8);
    for kind in PassKind::KNOWN {
        let cfg = OptConfig {
            enabled: true,
            passes: vec![kind],
            fixpoint: false,
            max_rounds: 1,
            ..OptConfig::disabled()
        };
        let (opt, report) = optimize(&aig, &cfg);
        assert_eq!(report.rounds.len(), 1);
        assert_eq!(report.rounds[0][0].pass, kind.name());
        let cec = check_equivalence(&aig, &opt, &CecConfig::default()).unwrap();
        assert_eq!(
            cec.verdict,
            CecVerdict::Equivalent,
            "pass {} must preserve the function",
            kind.name()
        );
    }
}

/// Tentpole acceptance: the default ID-stable in-place `sweep`/`rewrite`
/// variants must produce networks byte-identical (same structural hash) to
/// the from-scratch rebuild path across every pipeline flavor, on real
/// benchmark circuits — the invariant that lets `rebuild_passes` stay out
/// of the `OptConfig` fingerprint.
#[test]
fn in_place_passes_match_rebuild_path() {
    for (name, aig) in [
        ("adder16", epfl::adder(16)),
        ("multiplier8", epfl::multiplier(8)),
        ("sin8", epfl::sin(8)),
        ("voter31", epfl::voter(31)),
    ] {
        for cfg in [
            OptConfig::standard(),
            OptConfig::slack_aware(),
            OptConfig::dff_aware(4),
        ] {
            let mut rebuild_cfg = cfg.clone();
            rebuild_cfg.rebuild_passes = true;
            let (in_place, in_place_report) = optimize(&aig, &cfg);
            let (rebuilt, rebuilt_report) = optimize(&aig, &rebuild_cfg);
            assert_eq!(
                in_place.structural_hash(),
                rebuilt.structural_hash(),
                "{name}: in-place and rebuild paths must be byte-identical"
            );
            assert_eq!(in_place_report.nodes_after, rebuilt_report.nodes_after);
            assert_eq!(in_place_report.depth_after, rebuilt_report.depth_after);
            assert_eq!(in_place.dead_count(), 0, "{name}: optimize returns dense");
        }
        let (opt, _) = optimize(&aig, &OptConfig::standard());
        let cec = check_equivalence(&aig, &opt, &CecConfig::default()).unwrap();
        assert_eq!(cec.verdict, CecVerdict::Equivalent, "{name}: CEC");
    }
}

#[test]
fn fixpoint_report_structure() {
    let aig = epfl::adder(8);
    let (_, report) = optimize(&aig, &OptConfig::standard());
    assert!(
        report.converged,
        "small adder must converge within 8 rounds"
    );
    assert!(!report.rounds.is_empty());
    for round in &report.rounds {
        assert_eq!(round.len(), PassKind::ALL.len());
        for (stats, kind) in round.iter().zip(PassKind::ALL) {
            assert_eq!(stats.pass, kind.name());
        }
    }
}
