//! EPFL-like arithmetic benchmark generators.
//!
//! The paper evaluates on six circuits of the EPFL combinational benchmark
//! suite (`adder`, `sin`, `voter`, `square`, `multiplier`, `log2`). The
//! original AIG files are not redistributable here, so we generate circuits
//! of the same *function and structure class* (see DESIGN.md §4): each
//! generator takes a width parameter, with `paper-scale` convenience
//! constructors matching the suite's operand sizes.
//!
//! # Examples
//!
//! ```
//! use sfq_circuits::epfl;
//!
//! let adder = epfl::adder(8);
//! assert_eq!(adder.pi_count(), 16);
//! assert_eq!(adder.po_count(), 9);
//! ```

use crate::arith;
use sfq_netlist::aig::{Aig, Lit};

fn pis(g: &mut Aig, n: usize) -> Vec<Lit> {
    (0..n).map(|_| g.add_pi()).collect()
}

/// Ripple-carry adder of two `bits`-wide operands (EPFL `adder` is 128-bit).
///
/// POs: `bits` sum bits followed by the carry-out.
pub fn adder(bits: usize) -> Aig {
    let mut g = Aig::new();
    let a = pis(&mut g, bits);
    let b = pis(&mut g, bits);
    let (sum, carry) = arith::ripple_carry_adder(&mut g, &a, &b, None);
    for s in sum {
        g.add_po(s);
    }
    g.add_po(carry);
    g
}

/// The paper-scale 128-bit adder.
pub fn adder128() -> Aig {
    adder(128)
}

/// Array multiplier of two `bits`-wide operands (EPFL `multiplier` is
/// 64 × 64).
pub fn multiplier(bits: usize) -> Aig {
    let mut g = Aig::new();
    let a = pis(&mut g, bits);
    let b = pis(&mut g, bits);
    for p in arith::array_multiplier(&mut g, &a, &b) {
        g.add_po(p);
    }
    g
}

/// Dedicated squarer (EPFL `square` is 64-bit).
pub fn square(bits: usize) -> Aig {
    let mut g = Aig::new();
    let a = pis(&mut g, bits);
    for p in arith::squarer(&mut g, &a) {
        g.add_po(p);
    }
    g
}

/// K-input majority voter (EPFL `voter` is a 1001-input majority): a
/// population count followed by a threshold comparison.
///
/// # Panics
///
/// Panics if `inputs` is even or smaller than 3 (majority needs an odd
/// count to be well defined).
pub fn voter(inputs: usize) -> Aig {
    assert!(
        inputs >= 3 && inputs % 2 == 1,
        "majority needs an odd input count >= 3"
    );
    let mut g = Aig::new();
    let xs = pis(&mut g, inputs);
    let count = arith::popcount(&mut g, &xs);
    let threshold = (inputs as u64).div_ceil(2);
    let out = arith::ge_const(&mut g, &count, threshold);
    g.add_po(out);
    g
}

/// Fixed-point sine approximation circuit (EPFL `sin` computes sin(x) on a
/// 24-bit input). We build the odd cubic approximation
/// `sin(x) ≈ x − x³/6` in fixed point: a squarer, a multiplier, a
/// shift-add constant multiply (1/6 ≈ 43/256 for 8 fractional bits) and a
/// subtraction — the same multiplier-dominated profile with a long
/// recombination tail the real benchmark exhibits.
pub fn sin(bits: usize) -> Aig {
    let mut g = Aig::new();
    let x = pis(&mut g, bits);
    // x² (truncated back to operand width, fixed point: keep high half).
    let x2_full = arith::squarer(&mut g, &x);
    let x2: Vec<Lit> = x2_full[bits..].to_vec();
    // x³ = x² · x.
    let x3_full = arith::array_multiplier(&mut g, &x2, &x);
    let x3: Vec<Lit> = x3_full[bits..].to_vec();
    // x³/6 ≈ x³ · 43 / 256 (43/256 = 0.16796875 ≈ 1/6).
    let scaled = arith::mul_const(&mut g, &x3, 43, bits + 8);
    let x3_over_6: Vec<Lit> = scaled[8..].to_vec();
    // sin ≈ x − x³/6.
    let result = arith::subtract(&mut g, &x, &x3_over_6);
    for bit in result {
        g.add_po(bit);
    }
    g
}

/// Integer log2 approximation circuit (EPFL `log2` is a 32-bit log,
/// synthesized from a polynomial evaluation).
///
/// A priority encoder finds the characteristic, a barrel shifter normalizes
/// the mantissa, and a quadratic interpolation refines the fraction:
/// `log2(1 + m) ≈ m + m·(1 − m)/2`, evaluated with a squarer and adders —
/// reproducing the benchmark's mix of mux trees *and* multiplier-style
/// carry-save arithmetic (which is where its T1 candidates come from).
pub fn log2(bits: usize) -> Aig {
    let mut g = Aig::new();
    let x = pis(&mut g, bits);
    let (idx, valid) = arith::priority_encode(&mut g, &x);
    // Normalize: shift right by the characteristic so the leading one lands
    // at position 0; the next bits are the mantissa fraction m.
    let shifted = arith::barrel_shift_right(&mut g, &x, &idx);
    let frac_bits = bits.min(8);
    let m: Vec<Lit> = shifted.iter().take(frac_bits).copied().collect();
    // Quadratic refinement: m + (m - m²)/2 in fixed point.
    let m2_full = arith::squarer(&mut g, &m);
    let m2: Vec<Lit> = m2_full[frac_bits..].to_vec(); // high half: m² in Q(frac)
    let diff = arith::subtract(&mut g, &m, &m2); // m − m²
    let half: Vec<Lit> = diff[1..].iter().copied().chain([Lit::FALSE]).collect(); // /2
    let (frac, _) = arith::ripple_carry_adder(&mut g, &m, &half, None);
    // Output: characteristic, refined fraction, valid flag.
    for b in &idx {
        g.add_po(*b);
    }
    for bit in &frac {
        g.add_po(*bit);
    }
    g.add_po(valid);
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_bits(v: u64, w: usize) -> Vec<bool> {
        (0..w).map(|i| (v >> i) & 1 == 1).collect()
    }

    fn from_bits(bits: &[bool]) -> u64 {
        bits.iter().enumerate().map(|(i, &b)| (b as u64) << i).sum()
    }

    #[test]
    fn adder_functional() {
        let g = adder(16);
        let mut input = to_bits(12345, 16);
        input.extend(to_bits(54321, 16));
        let out = g.eval(&input);
        assert_eq!(from_bits(&out), 12345 + 54321);
    }

    #[test]
    fn adder128_shape() {
        let g = adder128();
        assert_eq!(g.pi_count(), 256);
        assert_eq!(g.po_count(), 129);
        // Ripple carry: depth grows linearly in width.
        assert!(
            g.depth() >= 128,
            "depth {} too shallow for a 128-bit RCA",
            g.depth()
        );
    }

    #[test]
    fn multiplier_functional() {
        let g = multiplier(8);
        let mut input = to_bits(171, 8);
        input.extend(to_bits(205, 8));
        let out = g.eval(&input);
        assert_eq!(from_bits(&out), 171 * 205);
    }

    #[test]
    fn square_functional() {
        let g = square(8);
        for x in [0u64, 1, 17, 100, 255] {
            let out = g.eval(&to_bits(x, 8));
            assert_eq!(from_bits(&out), x * x, "{x}^2");
        }
    }

    #[test]
    fn voter_functional() {
        let g = voter(9);
        for trial in [0u64, 0b111110000, 0b101010101, 0b111111111, 0b000010000] {
            let out = g.eval(&to_bits(trial, 9));
            let expect = trial.count_ones() >= 5;
            assert_eq!(out[0], expect, "voter({trial:#b})");
        }
    }

    #[test]
    fn sin_monotone_small_inputs() {
        // For small x, sin(x) ≈ x: the circuit must return x when x³ ≈ 0.
        let g = sin(12);
        let out = g.eval(&to_bits(5, 12));
        assert_eq!(from_bits(&out), 5);
    }

    #[test]
    fn log2_characteristic() {
        let g = log2(16);
        for x in [1u64, 2, 3, 255, 256, 0x8000] {
            let out = g.eval(&to_bits(x, 16));
            // First 4 bits: characteristic = floor(log2 x).
            let charac = from_bits(&out[..4]);
            assert_eq!(charac, 63 - x.leading_zeros() as u64, "log2({x})");
            // Valid flag is the last output.
            assert!(out[out.len() - 1]);
        }
        let out = g.eval(&to_bits(0, 16));
        assert!(!out[out.len() - 1], "log2(0) invalid");
    }

    #[test]
    fn paper_benchmarks_are_nontrivial() {
        for (name, g) in [
            ("adder", adder(32)),
            ("multiplier", multiplier(8)),
            ("square", square(8)),
            ("sin", sin(8)),
            ("log2", log2(16)),
            ("voter", voter(15)),
        ] {
            assert!(
                g.and_count() > 20,
                "{name} suspiciously small: {}",
                g.and_count()
            );
            assert!(g.depth() > 2, "{name} suspiciously shallow");
        }
    }
}
