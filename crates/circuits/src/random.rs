//! Seeded random AIG generation for property-based testing.
//!
//! Random networks exercise the mapping flow on structures *without* the
//! regularity of arithmetic circuits — important for invariant checks
//! (functional equivalence, schedule validity) that must hold universally.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sfq_netlist::aig::{Aig, Lit};

/// Configuration for random AIG generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomAigConfig {
    /// Number of primary inputs.
    pub num_pis: usize,
    /// Number of gate-construction attempts (the resulting AND count can be
    /// lower due to structural hashing).
    pub num_gates: usize,
    /// Number of primary outputs.
    pub num_pos: usize,
    /// Probability of building an XOR instead of an AND at each step
    /// (percent, 0–100). XORs seed T1-matchable structures.
    pub xor_percent: u8,
}

impl Default for RandomAigConfig {
    fn default() -> Self {
        RandomAigConfig {
            num_pis: 8,
            num_gates: 64,
            num_pos: 4,
            xor_percent: 30,
        }
    }
}

/// Generates a random AIG from `seed`.
///
/// The generation is deterministic in `(seed, config)`.
///
/// # Panics
///
/// Panics if `config.num_pis == 0` or `config.num_pos == 0`.
pub fn random_aig(seed: u64, config: &RandomAigConfig) -> Aig {
    assert!(config.num_pis > 0, "need at least one input");
    assert!(config.num_pos > 0, "need at least one output");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Aig::new();
    let mut pool: Vec<Lit> = (0..config.num_pis).map(|_| g.add_pi()).collect();
    for _ in 0..config.num_gates {
        let a = pool[rng.gen_range(0..pool.len())];
        let b = pool[rng.gen_range(0..pool.len())];
        let a = if rng.gen_bool(0.5) { !a } else { a };
        let b = if rng.gen_bool(0.5) { !b } else { b };
        let out = if rng.gen_range(0..100) < config.xor_percent {
            g.xor(a, b)
        } else {
            g.and(a, b)
        };
        pool.push(out);
    }
    for _ in 0..config.num_pos {
        let o = pool[rng.gen_range(0..pool.len())];
        let o = if rng.gen_bool(0.5) { !o } else { o };
        g.add_po(o);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let cfg = RandomAigConfig::default();
        let g1 = random_aig(7, &cfg);
        let g2 = random_aig(7, &cfg);
        assert_eq!(g1.and_count(), g2.and_count());
        assert_eq!(g1.depth(), g2.depth());
        // Same function on a probe vector.
        let inputs: Vec<u64> = (0..cfg.num_pis as u64)
            .map(|i| i.wrapping_mul(0x9E3779B9))
            .collect();
        assert_eq!(g1.eval64(&inputs), g2.eval64(&inputs));
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = RandomAigConfig::default();
        let g1 = random_aig(1, &cfg);
        let g2 = random_aig(2, &cfg);
        let inputs: Vec<u64> = (0..cfg.num_pis as u64)
            .map(|i| i.wrapping_mul(0xABCDEF))
            .collect();
        // Overwhelmingly likely to differ somewhere.
        assert!(
            g1.and_count() != g2.and_count() || g1.eval64(&inputs) != g2.eval64(&inputs),
            "seeds produced identical networks"
        );
    }

    #[test]
    fn respects_config() {
        let cfg = RandomAigConfig {
            num_pis: 5,
            num_gates: 30,
            num_pos: 3,
            xor_percent: 0,
        };
        let g = random_aig(3, &cfg);
        assert_eq!(g.pi_count(), 5);
        assert_eq!(g.po_count(), 3);
        assert!(g.and_count() <= 30);
    }
}
