//! ISCAS-85-like benchmark generators.
//!
//! The paper uses `c6288` and `c7552`. Per the reverse-engineering study of
//! Hansen et al. (ref \[13\] of the paper), c6288 is a 16×16 array multiplier
//! and c7552 is a 34-bit adder/comparator with parity logic. We generate
//! circuits with those structures directly (DESIGN.md §4).

use crate::arith;
use sfq_netlist::aig::{Aig, Lit};

fn pis(g: &mut Aig, n: usize) -> Vec<Lit> {
    (0..n).map(|_| g.add_pi()).collect()
}

/// A 16×16 array multiplier — the known structure of ISCAS-85 c6288.
pub fn c6288_like() -> Aig {
    let mut g = Aig::new();
    let a = pis(&mut g, 16);
    let b = pis(&mut g, 16);
    for p in arith::array_multiplier(&mut g, &a, &b) {
        g.add_po(p);
    }
    g
}

/// An ALU slice with the known c7552 ingredients: a 34-bit adder, a 34-bit
/// magnitude comparator and input parity checkers.
pub fn c7552_like() -> Aig {
    let mut g = Aig::new();
    let a = pis(&mut g, 34);
    let b = pis(&mut g, 34);
    // 34-bit addition.
    let (sum, carry) = arith::ripple_carry_adder(&mut g, &a, &b, None);
    for s in &sum {
        g.add_po(*s);
    }
    g.add_po(carry);
    // Magnitude comparison and equality.
    let ge = arith::ge(&mut g, &a, &b);
    let eq = arith::equals(&mut g, &a, &b);
    g.add_po(ge);
    g.add_po(eq);
    // Parity trees over each operand and over the sum.
    let pa = arith::parity(&mut g, &a);
    let pb = arith::parity(&mut g, &b);
    let ps = arith::parity(&mut g, &sum);
    g.add_po(pa);
    g.add_po(pb);
    g.add_po(ps);
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_bits(v: u64, w: usize) -> Vec<bool> {
        (0..w).map(|i| (v >> i) & 1 == 1).collect()
    }

    fn from_bits(bits: &[bool]) -> u64 {
        bits.iter().enumerate().map(|(i, &b)| (b as u64) << i).sum()
    }

    #[test]
    fn c6288_multiplies() {
        let g = c6288_like();
        assert_eq!(g.pi_count(), 32);
        assert_eq!(g.po_count(), 32);
        let mut input = to_bits(54321, 16);
        input.extend(to_bits(12345, 16));
        let out = g.eval(&input);
        assert_eq!(from_bits(&out), 54321 * 12345);
    }

    #[test]
    fn c7552_adds_and_compares() {
        let g = c7552_like();
        assert_eq!(g.pi_count(), 68);
        let x = 0x2_FFFF_FFFFu64;
        let y = 0x1_0000_0001u64;
        let mut input = to_bits(x, 34);
        input.extend(to_bits(y, 34));
        let out = g.eval(&input);
        let sum = from_bits(&out[..34]);
        assert_eq!(sum, (x + y) & 0x3_FFFF_FFFF);
        let carry = out[34];
        assert_eq!(carry, (x + y) >> 34 & 1 == 1);
        let ge = out[35];
        let eq = out[36];
        assert!(ge);
        assert!(!eq);
        let pa = out[37];
        let pb = out[38];
        assert_eq!(pa, x.count_ones() % 2 == 1);
        assert_eq!(pb, y.count_ones() % 2 == 1);
    }

    #[test]
    fn c6288_is_multiplier_scale() {
        let g = c6288_like();
        // c6288 has ~2400 gates; the array structure should be in that region.
        assert!(g.and_count() > 1000, "and count {}", g.and_count());
    }
}
