//! Arithmetic building blocks over [`Aig`]s.
//!
//! These are the word-level constructors from which the EPFL-like and
//! ISCAS-like benchmark generators are assembled: full/half adders, ripple
//! and carry-save addition, array multiplication, comparators, population
//! count, shifters and priority encoders.
//!
//! All functions operate on little-endian bit vectors (`bits[0]` is the LSB).
//!
//! # Examples
//!
//! ```
//! use sfq_netlist::aig::Aig;
//! use sfq_circuits::arith;
//!
//! let mut g = Aig::new();
//! let a: Vec<_> = (0..4).map(|_| g.add_pi()).collect();
//! let b: Vec<_> = (0..4).map(|_| g.add_pi()).collect();
//! let (sum, carry) = arith::ripple_carry_adder(&mut g, &a, &b, None);
//! for s in sum {
//!     g.add_po(s);
//! }
//! g.add_po(carry);
//! // 5 + 11 = 16 → sum 0000, carry 1.
//! let mut inputs = vec![true, false, true, false]; // a = 5
//! inputs.extend([true, true, false, true]);        // b = 11
//! let out = g.eval(&inputs);
//! assert_eq!(out, vec![false, false, false, false, true]);
//! ```

use sfq_netlist::aig::{Aig, Lit};

/// One-bit full adder; returns `(sum, carry)`.
pub fn full_adder(g: &mut Aig, a: Lit, b: Lit, c: Lit) -> (Lit, Lit) {
    (g.xor3(a, b, c), g.maj3(a, b, c))
}

/// One-bit half adder; returns `(sum, carry)`.
pub fn half_adder(g: &mut Aig, a: Lit, b: Lit) -> (Lit, Lit) {
    (g.xor(a, b), g.and(a, b))
}

/// Ripple-carry addition of two equal-width vectors with optional carry-in.
///
/// Returns `(sum_bits, carry_out)`.
///
/// # Panics
///
/// Panics if the vectors have different widths or are empty.
pub fn ripple_carry_adder(g: &mut Aig, a: &[Lit], b: &[Lit], cin: Option<Lit>) -> (Vec<Lit>, Lit) {
    assert_eq!(a.len(), b.len(), "operand widths must match");
    assert!(!a.is_empty(), "operands must be non-empty");
    let mut carry = cin.unwrap_or(Lit::FALSE);
    let mut sum = Vec::with_capacity(a.len());
    for i in 0..a.len() {
        let (s, c) = full_adder(g, a[i], b[i], carry);
        sum.push(s);
        carry = c;
    }
    (sum, carry)
}

/// Carry-save (3:2) compression of three equal-width vectors into two.
///
/// Returns `(sums, carries)` where `carries` is shifted one position up and
/// padded with constant false at the LSB.
///
/// # Panics
///
/// Panics if the widths differ.
pub fn carry_save(g: &mut Aig, a: &[Lit], b: &[Lit], c: &[Lit]) -> (Vec<Lit>, Vec<Lit>) {
    assert!(
        a.len() == b.len() && b.len() == c.len(),
        "widths must match"
    );
    let mut sums = Vec::with_capacity(a.len());
    let mut carries = vec![Lit::FALSE];
    for i in 0..a.len() {
        let (s, cy) = full_adder(g, a[i], b[i], c[i]);
        sums.push(s);
        carries.push(cy);
    }
    (sums, carries)
}

/// Pads `v` with constant-false bits up to `width`.
pub fn zero_extend(v: &[Lit], width: usize) -> Vec<Lit> {
    let mut out = v.to_vec();
    while out.len() < width {
        out.push(Lit::FALSE);
    }
    out
}

/// Sums an arbitrary list of equal-or-varying-width unsigned vectors with a
/// carry-save reduction tree followed by a final ripple adder.
///
/// `width` is the width of the result (higher bits are dropped, i.e. the sum
/// is computed modulo `2^width`).
///
/// # Panics
///
/// Panics if `addends` is empty.
pub fn sum_vectors(g: &mut Aig, addends: &[Vec<Lit>], width: usize) -> Vec<Lit> {
    assert!(!addends.is_empty(), "need at least one addend");
    let mut layer: Vec<Vec<Lit>> = addends
        .iter()
        .map(|v| {
            let mut x = zero_extend(v, width);
            x.truncate(width);
            x
        })
        .collect();
    while layer.len() > 2 {
        let mut next = Vec::with_capacity(layer.len() / 3 * 2 + 2);
        let mut iter = layer.chunks(3);
        for chunk in &mut iter {
            match chunk {
                [a, b, c] => {
                    let (s, cy) = carry_save(g, a, b, c);
                    let mut cy = cy;
                    cy.truncate(width);
                    next.push(s);
                    next.push(zero_extend(&cy, width));
                }
                rest => next.extend(rest.iter().cloned()),
            }
        }
        layer = next;
    }
    if layer.len() == 1 {
        return layer.pop().unwrap();
    }
    let (a, b) = (layer[0].clone(), layer[1].clone());
    let (sum, _) = ripple_carry_adder(g, &a, &b, None);
    sum
}

/// Unsigned array multiplier: returns the full `2·width` product bits.
///
/// The structure is the classic ripple array (as in ISCAS c6288): one row of
/// partial products per multiplier bit, reduced row by row with full adders.
///
/// # Panics
///
/// Panics if operands differ in width or are empty.
pub fn array_multiplier(g: &mut Aig, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
    assert_eq!(a.len(), b.len(), "operand widths must match");
    assert!(!a.is_empty(), "operands must be non-empty");
    let n = a.len();
    let out_width = 2 * n;
    let rows: Vec<Vec<Lit>> = (0..n)
        .map(|j| {
            let mut row = vec![Lit::FALSE; j];
            for &ai in a {
                row.push(g.and(ai, b[j]));
            }
            row
        })
        .collect();
    sum_vectors(g, &rows, out_width)
}

/// Unsigned squarer (`a * a`) using dedicated partial products
/// (`a_i & a_j` appears once with doubled weight for `i != j`).
///
/// Returns the full `2·width` result.
///
/// # Panics
///
/// Panics if `a` is empty.
pub fn squarer(g: &mut Aig, a: &[Lit]) -> Vec<Lit> {
    assert!(!a.is_empty(), "operand must be non-empty");
    let n = a.len();
    let out_width = 2 * n;
    let mut addends: Vec<Vec<Lit>> = Vec::new();
    for i in 0..n {
        // a_i & a_i = a_i at weight 2i.
        let mut diag = vec![Lit::FALSE; 2 * i];
        diag.push(a[i]);
        addends.push(diag);
        for j in i + 1..n {
            // Cross terms count twice: weight i + j + 1.
            let p = g.and(a[i], a[j]);
            let mut cross = vec![Lit::FALSE; i + j + 1];
            cross.push(p);
            addends.push(cross);
        }
    }
    sum_vectors(g, &addends, out_width)
}

/// Population count: number of set bits of `bits` as a binary vector of
/// width `ceil(log2(len + 1))`.
///
/// # Panics
///
/// Panics if `bits` is empty.
pub fn popcount(g: &mut Aig, bits: &[Lit]) -> Vec<Lit> {
    assert!(!bits.is_empty(), "need at least one bit");
    let width = usize::BITS as usize - bits.len().leading_zeros() as usize;
    let addends: Vec<Vec<Lit>> = bits.iter().map(|&b| vec![b]).collect();
    sum_vectors(g, &addends, width)
}

/// Unsigned comparison `a >= k` against a constant.
///
/// # Panics
///
/// Panics if `a` is empty or `k` does not fit `a`'s width + 1.
pub fn ge_const(g: &mut Aig, a: &[Lit], k: u64) -> Lit {
    assert!(!a.is_empty());
    assert!(k <= 1u64 << a.len(), "constant exceeds comparable range");
    if k == 0 {
        return Lit::TRUE;
    }
    if k == 1u64 << a.len() {
        return Lit::FALSE;
    }
    // From MSB down: result = a_i > k_i or (a_i == k_i and rest >= ...).
    let mut result = Lit::TRUE; // a >= k on empty suffix means equality so far
    for (i, &ai) in a.iter().enumerate() {
        let ki = (k >> i) & 1 == 1;
        result = if ki {
            // a_i must be 1 and rest >=, or a_i = 1 and carry... simplified:
            g.and(ai, result)
        } else {
            g.or(ai, result)
        };
    }
    result
}

/// Equality comparison of two equal-width vectors.
///
/// # Panics
///
/// Panics if widths differ or the vectors are empty.
pub fn equals(g: &mut Aig, a: &[Lit], b: &[Lit]) -> Lit {
    assert_eq!(a.len(), b.len());
    assert!(!a.is_empty());
    let mut acc = Lit::TRUE;
    for i in 0..a.len() {
        let x = g.xnor(a[i], b[i]);
        acc = g.and(acc, x);
    }
    acc
}

/// Unsigned comparison `a >= b` between vectors.
///
/// # Panics
///
/// Panics if widths differ or the vectors are empty.
pub fn ge(g: &mut Aig, a: &[Lit], b: &[Lit]) -> Lit {
    assert_eq!(a.len(), b.len());
    assert!(!a.is_empty());
    let mut acc = Lit::TRUE; // equal so far → a >= b
    for i in 0..a.len() {
        // From LSB to MSB: acc = (a_i > b_i) | (a_i == b_i) & acc
        let gt = g.and(a[i], !b[i]);
        let eq = g.xnor(a[i], b[i]);
        let keep = g.and(eq, acc);
        acc = g.or(gt, keep);
    }
    acc
}

/// Logical barrel shifter right: `a >> s` where `s` is a bit vector.
///
/// The result has `a.len()` bits; vacated positions are zero.
///
/// # Panics
///
/// Panics if `a` is empty or `s` is wider than needed (`> ceil(log2 a.len())`
/// bits are accepted but must be provided consistently by the caller).
pub fn barrel_shift_right(g: &mut Aig, a: &[Lit], s: &[Lit]) -> Vec<Lit> {
    assert!(!a.is_empty());
    let mut cur = a.to_vec();
    for (stage, &sel) in s.iter().enumerate() {
        let shift = 1usize << stage;
        let mut next = Vec::with_capacity(cur.len());
        for i in 0..cur.len() {
            let shifted = if i + shift < cur.len() {
                cur[i + shift]
            } else {
                Lit::FALSE
            };
            next.push(g.mux(sel, shifted, cur[i]));
        }
        cur = next;
    }
    cur
}

/// Parity (XOR-reduce) of a bit vector.
///
/// # Panics
///
/// Panics if `bits` is empty.
pub fn parity(g: &mut Aig, bits: &[Lit]) -> Lit {
    assert!(!bits.is_empty());
    let mut acc = bits[0];
    for &b in &bits[1..] {
        acc = g.xor(acc, b);
    }
    acc
}

/// Priority encoder: index of the most significant set bit, plus a `valid`
/// flag (false when the input is all zeros).
///
/// Returns `(index_bits, valid)` with `index_bits` of width
/// `ceil(log2(len))`.
///
/// # Panics
///
/// Panics if `bits` is empty.
pub fn priority_encode(g: &mut Aig, bits: &[Lit]) -> (Vec<Lit>, Lit) {
    assert!(!bits.is_empty());
    let n = bits.len();
    let width = (usize::BITS as usize - (n - 1).leading_zeros() as usize).max(1);
    // found_i = bits[i] & !bits[i+1..] — walk from MSB keeping a "none above" flag.
    let mut none_above = Lit::TRUE;
    let mut index = vec![Lit::FALSE; width];
    let mut valid = Lit::FALSE;
    for i in (0..n).rev() {
        let here = g.and(bits[i], none_above);
        valid = g.or(valid, here);
        for (b, idx_bit) in index.iter_mut().enumerate() {
            if (i >> b) & 1 == 1 {
                *idx_bit = g.or(*idx_bit, here);
            }
        }
        none_above = g.and(none_above, !bits[i]);
    }
    (index, valid)
}

/// Constant multiplication by shift-and-add: `a * k` truncated to `width`.
///
/// # Panics
///
/// Panics if `a` is empty.
pub fn mul_const(g: &mut Aig, a: &[Lit], k: u64, width: usize) -> Vec<Lit> {
    assert!(!a.is_empty());
    if k == 0 {
        return vec![Lit::FALSE; width];
    }
    let mut addends = Vec::new();
    for s in 0..64 {
        if (k >> s) & 1 == 1 {
            let mut shifted = vec![Lit::FALSE; s];
            shifted.extend_from_slice(a);
            addends.push(shifted);
        }
    }
    sum_vectors(g, &addends, width)
}

/// Kogge–Stone parallel-prefix adder; returns `(sum_bits, carry_out)`.
///
/// Logarithmic depth, heavily shared prefix tree — the architectural
/// antithesis of the ripple-carry adder. Used by the `abl-arch` ablation to
/// study how adder architecture affects the T1 advantage (prefix nodes are
/// AND/OR pairs, not full adders, so far fewer T1 candidates exist).
///
/// # Panics
///
/// Panics if the operands differ in width or are empty.
pub fn kogge_stone_adder(g: &mut Aig, a: &[Lit], b: &[Lit]) -> (Vec<Lit>, Lit) {
    assert_eq!(a.len(), b.len(), "operand widths must match");
    assert!(!a.is_empty(), "operands must be non-empty");
    let n = a.len();
    // Generate/propagate pairs.
    let mut gen: Vec<Lit> = (0..n).map(|i| g.and(a[i], b[i])).collect();
    let mut prop: Vec<Lit> = (0..n).map(|i| g.xor(a[i], b[i])).collect();
    let half_sum = prop.clone();
    // Prefix tree: (g, p)_i ∘ (g, p)_{i−d}.
    let mut d = 1usize;
    while d < n {
        let mut next_gen = gen.clone();
        let mut next_prop = prop.clone();
        for i in d..n {
            let carry_through = g.and(prop[i], gen[i - d]);
            next_gen[i] = g.or(gen[i], carry_through);
            next_prop[i] = g.and(prop[i], prop[i - d]);
        }
        gen = next_gen;
        prop = next_prop;
        d *= 2;
    }
    // Sum bits: half_sum[i] XOR carry_in(i) where carry_in(i) = gen[i−1].
    let mut sum = Vec::with_capacity(n);
    sum.push(half_sum[0]);
    for i in 1..n {
        sum.push(g.xor(half_sum[i], gen[i - 1]));
    }
    (sum, gen[n - 1])
}

/// Two's-complement subtraction `a - b` (same width, wrap-around).
///
/// # Panics
///
/// Panics if widths differ or the vectors are empty.
pub fn subtract(g: &mut Aig, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
    assert_eq!(a.len(), b.len());
    let nb: Vec<Lit> = b.iter().map(|&l| !l).collect();
    let (sum, _) = ripple_carry_adder(g, a, &nb, Some(Lit::TRUE));
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pis(g: &mut Aig, n: usize) -> Vec<Lit> {
        (0..n).map(|_| g.add_pi()).collect()
    }

    fn to_bits(v: u64, w: usize) -> Vec<bool> {
        (0..w).map(|i| (v >> i) & 1 == 1).collect()
    }

    fn from_bits(bits: &[bool]) -> u64 {
        bits.iter().enumerate().map(|(i, &b)| (b as u64) << i).sum()
    }

    #[test]
    fn adder_exhaustive_4bit() {
        let mut g = Aig::new();
        let a = pis(&mut g, 4);
        let b = pis(&mut g, 4);
        let (sum, carry) = ripple_carry_adder(&mut g, &a, &b, None);
        for s in sum {
            g.add_po(s);
        }
        g.add_po(carry);
        for x in 0..16u64 {
            for y in 0..16u64 {
                let mut input = to_bits(x, 4);
                input.extend(to_bits(y, 4));
                let out = g.eval(&input);
                let got = from_bits(&out);
                assert_eq!(got, x + y, "{x} + {y}");
            }
        }
    }

    #[test]
    fn kogge_stone_exhaustive_5bit() {
        let mut g = Aig::new();
        let a = pis(&mut g, 5);
        let b = pis(&mut g, 5);
        let (sum, carry) = kogge_stone_adder(&mut g, &a, &b);
        for s in sum {
            g.add_po(s);
        }
        g.add_po(carry);
        for x in 0..32u64 {
            for y in 0..32u64 {
                let mut input = to_bits(x, 5);
                input.extend(to_bits(y, 5));
                let out = g.eval(&input);
                assert_eq!(from_bits(&out), x + y, "{x} + {y}");
            }
        }
    }

    #[test]
    fn kogge_stone_is_logarithmic_depth() {
        let mut g = Aig::new();
        let a = pis(&mut g, 32);
        let b = pis(&mut g, 32);
        let (sum, carry) = kogge_stone_adder(&mut g, &a, &b);
        for s in sum {
            g.add_po(s);
        }
        g.add_po(carry);
        // Ripple: ~3 levels/bit → ~96. Kogge-Stone: O(log n) prefix levels.
        assert!(g.depth() < 32, "depth {} not logarithmic", g.depth());
    }

    #[test]
    fn subtract_wraps() {
        let mut g = Aig::new();
        let a = pis(&mut g, 4);
        let b = pis(&mut g, 4);
        let d = subtract(&mut g, &a, &b);
        for s in d {
            g.add_po(s);
        }
        for x in 0..16u64 {
            for y in 0..16u64 {
                let mut input = to_bits(x, 4);
                input.extend(to_bits(y, 4));
                let out = g.eval(&input);
                assert_eq!(from_bits(&out), (x.wrapping_sub(y)) & 0xF, "{x} - {y}");
            }
        }
    }

    #[test]
    fn multiplier_exhaustive_4bit() {
        let mut g = Aig::new();
        let a = pis(&mut g, 4);
        let b = pis(&mut g, 4);
        let p = array_multiplier(&mut g, &a, &b);
        assert_eq!(p.len(), 8);
        for s in p {
            g.add_po(s);
        }
        for x in 0..16u64 {
            for y in 0..16u64 {
                let mut input = to_bits(x, 4);
                input.extend(to_bits(y, 4));
                let out = g.eval(&input);
                assert_eq!(from_bits(&out), x * y, "{x} * {y}");
            }
        }
    }

    #[test]
    fn squarer_matches_multiplier() {
        let mut g = Aig::new();
        let a = pis(&mut g, 5);
        let sq = squarer(&mut g, &a);
        for s in sq {
            g.add_po(s);
        }
        for x in 0..32u64 {
            let out = g.eval(&to_bits(x, 5));
            assert_eq!(from_bits(&out), x * x, "{x}^2");
        }
    }

    #[test]
    fn popcount_exhaustive() {
        let mut g = Aig::new();
        let a = pis(&mut g, 7);
        let c = popcount(&mut g, &a);
        assert_eq!(c.len(), 3);
        for s in c {
            g.add_po(s);
        }
        for x in 0..128u64 {
            let out = g.eval(&to_bits(x, 7));
            assert_eq!(from_bits(&out), x.count_ones() as u64, "popcount({x:#b})");
        }
    }

    #[test]
    fn ge_const_exhaustive() {
        for k in 0..=16u64 {
            let mut g = Aig::new();
            let a = pis(&mut g, 4);
            let r = ge_const(&mut g, &a, k);
            g.add_po(r);
            for x in 0..16u64 {
                let out = g.eval(&to_bits(x, 4));
                assert_eq!(out[0], x >= k, "{x} >= {k}");
            }
        }
    }

    #[test]
    fn vector_ge_exhaustive() {
        let mut g = Aig::new();
        let a = pis(&mut g, 3);
        let b = pis(&mut g, 3);
        let r = ge(&mut g, &a, &b);
        g.add_po(r);
        for x in 0..8u64 {
            for y in 0..8u64 {
                let mut input = to_bits(x, 3);
                input.extend(to_bits(y, 3));
                let out = g.eval(&input);
                assert_eq!(out[0], x >= y, "{x} >= {y}");
            }
        }
    }

    #[test]
    fn equals_exhaustive() {
        let mut g = Aig::new();
        let a = pis(&mut g, 3);
        let b = pis(&mut g, 3);
        let r = equals(&mut g, &a, &b);
        g.add_po(r);
        for x in 0..8u64 {
            for y in 0..8u64 {
                let mut input = to_bits(x, 3);
                input.extend(to_bits(y, 3));
                assert_eq!(g.eval(&input)[0], x == y, "{x} == {y}");
            }
        }
    }

    #[test]
    fn barrel_shifter_exhaustive() {
        let mut g = Aig::new();
        let a = pis(&mut g, 8);
        let s = pis(&mut g, 3);
        let r = barrel_shift_right(&mut g, &a, &s);
        for bit in r {
            g.add_po(bit);
        }
        for x in [0xA5u64, 0xFF, 0x01, 0x80, 0x3C] {
            for sh in 0..8u64 {
                let mut input = to_bits(x, 8);
                input.extend(to_bits(sh, 3));
                let out = g.eval(&input);
                assert_eq!(from_bits(&out), x >> sh, "{x:#x} >> {sh}");
            }
        }
    }

    #[test]
    fn parity_exhaustive() {
        let mut g = Aig::new();
        let a = pis(&mut g, 5);
        let p = parity(&mut g, &a);
        g.add_po(p);
        for x in 0..32u64 {
            assert_eq!(g.eval(&to_bits(x, 5))[0], x.count_ones() % 2 == 1);
        }
    }

    #[test]
    fn priority_encoder_exhaustive() {
        let mut g = Aig::new();
        let a = pis(&mut g, 8);
        let (idx, valid) = priority_encode(&mut g, &a);
        for b in idx {
            g.add_po(b);
        }
        g.add_po(valid);
        for x in 0..256u64 {
            let out = g.eval(&to_bits(x, 8));
            let valid_got = out[out.len() - 1];
            assert_eq!(valid_got, x != 0, "valid for {x:#x}");
            if x != 0 {
                let idx_got = from_bits(&out[..out.len() - 1]);
                assert_eq!(
                    idx_got,
                    63 - x.leading_zeros() as u64,
                    "msb index of {x:#x}"
                );
            }
        }
    }

    #[test]
    fn mul_const_matches() {
        let mut g = Aig::new();
        let a = pis(&mut g, 6);
        let r = mul_const(&mut g, &a, 11, 10);
        for bit in r {
            g.add_po(bit);
        }
        for x in 0..64u64 {
            let out = g.eval(&to_bits(x, 6));
            assert_eq!(from_bits(&out), (x * 11) & 0x3FF, "{x} * 11");
        }
    }

    #[test]
    fn sum_vectors_many_addends() {
        let mut g = Aig::new();
        let vs: Vec<Vec<Lit>> = (0..5).map(|_| pis(&mut g, 3)).collect();
        let total = sum_vectors(&mut g, &vs, 6);
        for b in total {
            g.add_po(b);
        }
        let vals = [5u64, 7, 1, 6, 3];
        let mut input = Vec::new();
        for v in vals {
            input.extend(to_bits(v, 3));
        }
        let out = g.eval(&input);
        assert_eq!(from_bits(&out), vals.iter().sum::<u64>());
    }
}
