//! # sfq-circuits
//!
//! Benchmark circuit generators standing in for the EPFL and ISCAS-85
//! suites the paper evaluates on (the original AIG files are not
//! redistributable; see DESIGN.md §4 for the substitution argument):
//!
//! - [`arith`] — word-level building blocks (adders, multipliers,
//!   comparators, popcount, shifters),
//! - [`epfl`] — `adder`, `multiplier`, `square`, `sin`, `log2`, `voter`,
//! - [`iscas`] — `c6288_like` (16×16 array multiplier), `c7552_like`
//!   (adder/comparator/parity ALU slice),
//! - [`random`] — seeded random AIGs for property tests,
//! - [`named`] — the name-addressed registry the CLI and the explore
//!   sweep spec resolve benchmarks through.
//!
//! # Example
//!
//! ```
//! use sfq_circuits::epfl;
//!
//! // The paper's headline benchmark: the 128-bit adder.
//! let g = epfl::adder128();
//! assert_eq!(g.pi_count(), 256);
//! ```

pub mod arith;
pub mod epfl;
pub mod iscas;
pub mod named;
pub mod random;

pub use random::{random_aig, RandomAigConfig};
