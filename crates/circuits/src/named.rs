//! Name-addressed benchmark registry.
//!
//! The CLI (`gen`/`opt`/`sta`/`serve`) and the `sfq-explore` sweep spec all
//! resolve benchmarks by name; one registry keeps them agreeing on the
//! legal names, the default widths and the no-silent-typo policy (an
//! unknown name is a hard error listing every known benchmark, so a typo
//! can never fall through to another circuit).

use crate::random::{random_aig, RandomAigConfig};
use crate::{epfl, iscas};
use sfq_netlist::aig::Aig;

/// Seed of the `scale-100k` registry entry: the scale-class benchmark must
/// build the same network everywhere (CI smoke, bench suite, local runs) so
/// structural hashes compare across machines.
pub const SCALE_SEED: u64 = 0x5FA1_E100;

/// Benchmark names the registry resolves, with their default widths
/// (0 = the generator is fixed-size and takes no width). For `scale-100k`
/// the "width" is the gate-construction budget, so `scale-100k:250000`
/// stretches the same generator to a quarter million attempts.
pub const KNOWN_BENCHMARKS: [(&str, usize); 9] = [
    ("adder", 128),
    ("multiplier", 32),
    ("square", 32),
    ("sin", 16),
    ("log2", 32),
    ("voter", 255),
    ("c6288", 0),
    ("c7552", 0),
    ("scale-100k", 100_000),
];

/// Whether `name` is a registered benchmark.
pub fn is_known(name: &str) -> bool {
    KNOWN_BENCHMARKS.iter().any(|(n, _)| *n == name)
}

/// The registered names, in declaration order (for error messages).
pub fn known_names() -> Vec<&'static str> {
    KNOWN_BENCHMARKS.iter().map(|&(n, _)| n).collect()
}

/// Builds the named benchmark at `width` (0 = the benchmark's default).
///
/// # Errors
///
/// Unknown names are a hard error listing every known benchmark.
pub fn build(name: &str, width: usize) -> Result<Aig, String> {
    let default = KNOWN_BENCHMARKS
        .iter()
        .find(|(n, _)| *n == name)
        .map(|&(_, w)| w)
        .ok_or_else(|| {
            format!(
                "unknown benchmark '{name}' (known benchmarks: {})",
                known_names().join(", ")
            )
        })?;
    let width = if width == 0 { default } else { width };
    Ok(match name {
        "adder" => epfl::adder(width),
        "multiplier" => epfl::multiplier(width),
        "square" => epfl::square(width),
        "sin" => epfl::sin(width),
        "log2" => epfl::log2(width),
        "voter" => epfl::voter(width),
        "c6288" => iscas::c6288_like(),
        "c7552" => iscas::c7552_like(),
        "scale-100k" => random_aig(
            SCALE_SEED,
            &RandomAigConfig {
                num_pis: 64,
                num_gates: width,
                num_pos: 32,
                xor_percent: 30,
            },
        ),
        _ => unreachable!("name validated above"),
    })
}

/// Parses a `name[:width]` subject (the spelling shared by `serve`
/// request lines and the explore sweep spec's `benchmarks` axis) and
/// builds it. The returned label echoes the subject (`adder:8` keeps its
/// width suffix, `adder` stays bare).
pub fn build_subject(subject: &str) -> Result<(String, Aig), String> {
    let (name, width) = match subject.split_once(':') {
        Some((name, w)) => {
            let width: usize = w
                .parse()
                .ok()
                .filter(|&w| w >= 1)
                .ok_or_else(|| format!("bad width '{w}' in '{subject}'"))?;
            (name, width)
        }
        None => (subject, 0),
    };
    Ok((subject.to_string(), build(name, width)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registered_name_builds() {
        // Small explicit widths for the parametric generators keep this a
        // unit-speed test; the fixed-size ISCAS pair takes the default.
        for (name, width) in [
            ("adder", 8),
            ("multiplier", 4),
            ("square", 4),
            ("sin", 8),
            ("log2", 8),
            ("voter", 15),
            ("c6288", 0),
            ("c7552", 0),
            ("scale-100k", 2_000),
        ] {
            assert!(is_known(name), "{name} must be registered");
            let aig = build(name, width).expect(name);
            assert!(aig.po_count() > 0, "{name} has no outputs");
        }
    }

    #[test]
    fn scale_benchmark_is_deterministic_across_builds() {
        let a = build("scale-100k", 3_000).unwrap();
        let b = build("scale-100k", 3_000).unwrap();
        assert_eq!(a.structural_hash(), b.structural_hash());
        assert_eq!(a.pi_count(), 64);
        assert_eq!(a.po_count(), 32);
        assert!(a.and_count() > 2_000, "strashing must not collapse it");
    }

    #[test]
    fn unknown_names_list_the_registry() {
        let err = build("adedr", 8).unwrap_err();
        assert!(err.contains("unknown benchmark 'adedr'"), "{err}");
        for (name, _) in KNOWN_BENCHMARKS {
            assert!(err.contains(name), "error must list {name}: {err}");
        }
    }

    #[test]
    fn subjects_parse_widths_and_reject_bad_ones() {
        let (label, aig) = build_subject("adder:8").unwrap();
        assert_eq!(label, "adder:8");
        assert_eq!(aig.pi_count(), 16);
        let (label, _) = build_subject("c6288").unwrap();
        assert_eq!(label, "c6288");
        assert!(build_subject("adder:x").is_err());
        assert!(build_subject("adder:0").is_err());
        assert!(build_subject("nope:4").is_err());
    }
}
