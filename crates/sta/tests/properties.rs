//! Property-based tests of the timing analysis on random AIGs:
//!
//! - slack is non-negative on every constrained node,
//! - at least one PI→PO path is tight (zero slack along its whole length),
//! - incremental recompute after random localized edits matches a
//!   from-scratch analysis exactly,
//! - rebinding an analysis after ID-stable in-place netlist edits matches
//!   a from-scratch STA, with a dirty set bounded by the edit footprint.

use proptest::prelude::*;
use sfq_circuits::random::{random_aig, RandomAigConfig};
use sfq_netlist::aig::{Aig, Lit, NodeId, NodeKind};
use sfq_sta::{top_paths, AigSta, TimingAnalysis, TimingGraph};

fn subject(seed: u64, gates: usize) -> Aig {
    random_aig(
        seed,
        &RandomAigConfig {
            num_pis: 6,
            num_gates: gates,
            num_pos: 3,
            xor_percent: 30,
        },
    )
}

/// Mirrors the unit-delay graph an `AigSta` builds, but through the public
/// generic API so the tests can mutate delays afterwards.
fn unit_graph(aig: &Aig) -> TimingGraph {
    let mut g = TimingGraph::new();
    for id in aig.node_ids() {
        match aig.kind(id) {
            NodeKind::Const0 | NodeKind::Input(_) => {
                g.add_node(&[]);
            }
            NodeKind::And(a, b) => {
                g.add_node(&[(a.node().index(), 1), (b.node().index(), 1)]);
            }
        }
    }
    for po in aig.pos() {
        g.mark_sink(po.node().index());
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn slack_is_nonnegative_everywhere(seed in any::<u64>(), gates in 8usize..96) {
        let aig = subject(seed, gates);
        let sta = AigSta::new(&aig);
        for id in aig.node_ids() {
            prop_assert!(
                sta.slack(id) >= 0,
                "node {} has negative slack {}",
                id.0,
                sta.slack(id)
            );
        }
        // Arrivals are exactly the logic levels under unit delay.
        let levels = aig.levels();
        for id in aig.node_ids() {
            prop_assert_eq!(sta.arrival(id), levels[id.index()] as i64);
        }
    }

    #[test]
    fn a_tight_pi_to_po_path_exists(seed in any::<u64>(), gates in 8usize..96) {
        let aig = subject(seed, gates);
        let sta = AigSta::new(&aig);
        let paths = top_paths(sta.graph(), sta.analysis(), 1);
        prop_assert_eq!(paths.len(), 1, "every network has at least one path");
        let p = &paths[0];
        prop_assert_eq!(p.length, sta.horizon(), "top path realizes the depth");
        prop_assert_eq!(p.slack, 0);
        for &v in &p.nodes {
            prop_assert_eq!(
                sta.analysis().slack(v),
                0,
                "node n{} on the critical path must be tight",
                v
            );
        }
        // The path starts at a source (PI or constant) and ends at a PO driver.
        let first = p.nodes[0];
        prop_assert!(
            !matches!(aig.kind(sfq_netlist::aig::NodeId(first as u32)), NodeKind::And(..)),
            "critical path starts at a source"
        );
        let last = *p.nodes.last().unwrap();
        prop_assert!(aig.pos().iter().any(|po| po.node().index() == last));
    }

    #[test]
    fn incremental_refresh_matches_scratch(
        seed in any::<u64>(),
        gates in 8usize..64,
        edits in proptest::collection::vec((any::<u32>(), 1i64..4), 1..12),
    ) {
        let aig = subject(seed, gates);
        let mut graph = unit_graph(&aig);
        let mut incremental = TimingAnalysis::analyze(&graph);
        for (pick, delay) in edits {
            // Random single-node edit: change one fanin delay of one AND.
            let ands: Vec<usize> = (0..graph.len())
                .filter(|&v| graph.fanins(v).next().is_some())
                .collect();
            if ands.is_empty() {
                return Ok(());
            }
            let node = ands[pick as usize % ands.len()];
            let slot = (pick as usize / ands.len()) % 2;
            graph.set_fanin_delay(node, slot, delay);
            incremental.refresh(&graph, &[node]);
            prop_assert_eq!(
                &incremental,
                &TimingAnalysis::analyze(&graph),
                "incremental analysis diverged after editing node {}",
                node
            );
        }
    }

    #[test]
    fn rebind_matches_scratch_across_arbitrary_restructuring(
        seed_a in any::<u64>(),
        gates_a in 8usize..64,
        seed_b in any::<u64>(),
        gates_b in 8usize..64,
        floors in proptest::collection::vec((any::<u32>(), 0i64..6), 0..6),
    ) {
        // Analyze one network, consume slack through arrival floors (the
        // slack-aware-rewrite usage pattern), then rebind the analysis to a
        // completely unrelated network: the result must be exactly what a
        // from-scratch analysis of the new network computes.
        let a = subject(seed_a, gates_a);
        let b = subject(seed_b, gates_b);
        let mut sta = AigSta::new(&a);
        let ids: Vec<_> = a.node_ids().collect();
        for (pick, extra) in floors {
            let node = ids[pick as usize % ids.len()];
            let cur = sta.arrival(node);
            sta.raise_arrival(node, cur + extra);
        }
        let stats = sta.rebind(&b);
        prop_assert_eq!(stats.total, b.len());
        let fresh = AigSta::new(&b);
        prop_assert_eq!(sta.horizon(), fresh.horizon());
        prop_assert_eq!(
            sta.analysis(),
            fresh.analysis(),
            "rebound analysis diverged from scratch"
        );
    }

    #[test]
    fn rebind_after_in_place_edits_matches_scratch(
        seed in any::<u64>(),
        gates in 8usize..64,
        edits in proptest::collection::vec((any::<u32>(), any::<u32>(), any::<bool>()), 1..8),
    ) {
        // The tentpole contract: after ID-stable in-place edits the length
        // of the node array is unchanged, so `rebind` diffs slot by slot —
        // its dirty set must stay proportional to the true edit footprint
        // (changed slots, their former fanins, repointed sinks), and the
        // rebound analysis must equal a from-scratch one on the edited
        // (still hole-carrying) network.
        let mut aig = subject(seed, gates);
        let before: Vec<_> = aig.node_ids().map(|id| aig.kind(id)).collect();
        let mut sta = AigSta::new(&aig);
        for (pick, alt, reclaim) in edits {
            let ands: Vec<NodeId> = aig.and_ids().collect();
            if ands.is_empty() {
                break;
            }
            let old = ands[pick as usize % ands.len()];
            let pool: Vec<NodeId> = aig
                .node_ids()
                .filter(|&n| n.0 < old.0 && !aig.is_dead(n))
                .collect();
            let target = pool[alt as usize % pool.len()];
            aig.substitute(old, Lit::new(target, (alt >> 16) & 1 == 1));
            if reclaim {
                aig.delete_mffc(old);
            }
        }
        let stats = sta.rebind(&aig);
        prop_assert_eq!(stats.total, aig.len(), "in-place edits never move ids");
        let changed = aig
            .node_ids()
            .filter(|&id| aig.kind(id) != before[id.index()])
            .count();
        // Every changed slot contributes itself plus its two former fanins;
        // repointed POs can dirty old and new sink drivers.
        prop_assert!(
            stats.dirty <= 3 * changed + 2 * aig.po_count(),
            "dirty set ({}) exceeds the edit footprint ({} changed slots)",
            stats.dirty,
            changed
        );
        let fresh = AigSta::new(&aig);
        prop_assert_eq!(sta.horizon(), fresh.horizon());
        prop_assert_eq!(
            sta.analysis(),
            fresh.analysis(),
            "rebound analysis diverged from scratch after in-place edits"
        );
    }

    #[test]
    fn rebind_to_the_same_network_is_cheap(seed in any::<u64>(), gates in 8usize..64) {
        let aig = subject(seed, gates);
        let mut sta = AigSta::new(&aig);
        let stats = sta.rebind(&aig);
        prop_assert_eq!(stats.dirty, 0, "identical network: empty dirty set");
        prop_assert_eq!(stats.refreshed, 0);
        let fresh = AigSta::new(&aig);
        prop_assert_eq!(sta.analysis(), fresh.analysis());
    }

    #[test]
    fn incremental_floors_match_scratch(
        seed in any::<u64>(),
        gates in 8usize..64,
        floors in proptest::collection::vec((any::<u32>(), 0i64..20), 1..8),
    ) {
        let aig = subject(seed, gates);
        let mut graph = unit_graph(&aig);
        let horizon = TimingAnalysis::analyze(&graph).horizon + 32;
        let mut incremental = TimingAnalysis::analyze_with_horizon(&graph, horizon);
        for (pick, floor) in floors {
            let node = pick as usize % graph.len();
            graph.set_floor(node, floor);
            incremental.refresh(&graph, &[node]);
            prop_assert_eq!(
                &incremental,
                &TimingAnalysis::analyze_with_horizon(&graph, horizon),
                "incremental analysis diverged after flooring node {}",
                node
            );
        }
    }
}
