//! # sfq-sta
//!
//! Static timing and slack analysis — the required-time layer that makes
//! the rest of the workspace timing-aware, in the spirit of ABC's
//! arrival/required propagation.
//!
//! Four cooperating pieces:
//!
//! - [`graph`] — the generic [`TimingGraph`] (DAG with integer edge
//!   delays) and its [`TimingAnalysis`]: arrival times forward, required
//!   times backward from the sink deadline, per-node slack, and an
//!   incremental [`TimingAnalysis::refresh`] that re-propagates only the
//!   cone affected by a localized edit (dirty-set propagation — a rewrite
//!   site does not trigger whole-network retraversal). The graph is
//!   editable in place ([`TimingGraph::set_fanins`],
//!   [`TimingGraph::truncate`], [`TimingGraph::set_sinks`]) so an analysis
//!   can survive network restructuring.
//! - [`aig`] — [`AigSta`], the unit-delay view of an
//!   [`Aig`](sfq_netlist::aig::Aig): arrivals are logic levels, the
//!   horizon is the network depth, and slack is the headroom slack-aware
//!   rewriting (`sfq-opt`) may consume without deepening the network.
//!   [`AigSta::rebind`] diffs a cached analysis against a *rebuilt*
//!   network and refreshes only the changed cone — the mechanism behind
//!   `sfq-opt`'s analysis context never building the STA twice.
//! - [`path`] — [`top_paths`]: exact best-first extraction of the k
//!   longest source→sink paths with per-hop delay contributions.
//! - [`report`] / [`config`] — the rendered [`TimingReport`] behind the
//!   CLI `sta` subcommand, and the fingerprinted [`TimingConfig`] stage
//!   that rides inside `t1map::flow::FlowConfig` so `sfq-engine` cache
//!   keys distinguish timing configurations.
//!
//! The phase-granular view of a mapped, scheduled netlist (slack measured
//! in clock phases, convertible to per-edge DFF cost) lives upstream in
//! `t1map::timing`, which builds a [`TimingGraph`] from a
//! `MappedCircuit` + `Schedule` pair and runs the same analysis.
//!
//! # Example
//!
//! ```
//! use sfq_netlist::aig::Aig;
//! use sfq_sta::{AigSta, TimingReport};
//!
//! let mut aig = Aig::new();
//! let a = aig.add_pi();
//! let b = aig.add_pi();
//! let c = aig.add_pi();
//! let shallow = aig.and(a, b);
//! let deep = aig.xor3(a, b, c);
//! let top = aig.and(shallow, deep);
//! aig.add_po(top);
//!
//! let sta = AigSta::new(&aig);
//! assert_eq!(sta.slack(shallow.node()), 3, "the AND can sink 3 levels");
//! assert_eq!(sta.slack(deep.node()), 0, "the XOR3 cone is critical");
//!
//! let report = TimingReport::new(sta.graph(), sta.analysis(), 1);
//! assert_eq!(report.paths[0].length, sta.horizon());
//! ```

pub mod aig;
pub mod config;
pub mod graph;
pub mod path;
pub mod report;

pub use aig::{AigSta, RebindStats};
pub use config::TimingConfig;
pub use graph::{TimingAnalysis, TimingGraph};
pub use path::{top_paths, top_paths_bounded, TimingPath};
pub use report::TimingReport;
