//! The generic timing graph and its arrival/required/slack analysis.
//!
//! A [`TimingGraph`] is a DAG with integer edge delays, built in topological
//! order (every fanin precedes its consumer). Nodes without fanins are
//! *sources* (arrival 0); *sinks* are marked explicitly and carry the
//! deadline (the horizon). The same graph type backs both timing views of
//! the workspace: unit-delay AIG levels ([`crate::aig`]) and phase-granular
//! mapped schedules (`t1map::timing`).
//!
//! The analysis follows the classic ABC/STA recurrences:
//!
//! ```text
//! arrival(v)  = max over fanins  (arrival(u) + d(u→v))   (0 at sources)
//! required(v) = min over fanouts (required(w) − d(v→w))  (horizon at sinks)
//! slack(v)    = required(v) − arrival(v)
//! ```
//!
//! Nodes that cannot reach any sink are unconstrained: their required time
//! is `i64::MAX` and their slack saturates (they can never violate a sink
//! deadline).
//!
//! # Incremental recompute
//!
//! [`TimingAnalysis::refresh`] re-runs the recurrences only over the cone
//! affected by a set of *dirty* nodes (nodes whose fanin delays or arrival
//! floors changed): arrivals propagate forward through fanouts while they
//! keep changing, required times propagate backward through fanins, and an
//! untouched region is never revisited. A localized edit — the rewrite-site
//! case — therefore costs time proportional to the affected cone, not the
//! network.

/// A DAG with integer edge delays, built bottom-up in topological order.
#[derive(Debug, Clone, Default)]
pub struct TimingGraph {
    /// `fanins[v]` = `(u, delay)` pairs with `u < v`.
    fanins: Vec<Vec<(u32, i64)>>,
    /// Reverse edges, maintained on construction.
    fanouts: Vec<Vec<u32>>,
    /// Explicitly marked timing endpoints.
    sinks: Vec<u32>,
    is_sink: Vec<bool>,
    /// Per-node arrival floor (`i64::MIN` = none): the arrival is the max
    /// of the fanin-derived value and the floor. Used to model a pending
    /// local edit (e.g. an accepted rewrite site whose cone will deepen)
    /// without rebuilding the graph.
    floors: Vec<i64>,
}

impl TimingGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.fanins.len()
    }

    /// Returns `true` if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.fanins.is_empty()
    }

    /// Adds a node with the given `(fanin, delay)` edges and returns its
    /// index. A node without fanins is a source.
    ///
    /// # Panics
    ///
    /// Panics if any fanin index is not smaller than the new node's index
    /// (topological-order violation).
    pub fn add_node(&mut self, fanins: &[(usize, i64)]) -> usize {
        let id = self.fanins.len();
        for &(u, _) in fanins {
            assert!(u < id, "fanin {u} of node {id} violates topological order");
            self.fanouts[u].push(id as u32);
        }
        self.fanins
            .push(fanins.iter().map(|&(u, d)| (u as u32, d)).collect());
        self.fanouts.push(Vec::new());
        self.is_sink.push(false);
        self.floors.push(i64::MIN);
        id
    }

    /// Marks `node` as a timing endpoint (deadline carrier).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn mark_sink(&mut self, node: usize) {
        if !self.is_sink[node] {
            self.is_sink[node] = true;
            self.sinks.push(node as u32);
        }
    }

    /// The `(fanin, delay)` edges of `node`.
    pub fn fanins(&self, node: usize) -> impl Iterator<Item = (usize, i64)> + '_ {
        self.fanins[node].iter().map(|&(u, d)| (u as usize, d))
    }

    /// The consumers of `node`.
    pub fn fanouts(&self, node: usize) -> impl Iterator<Item = usize> + '_ {
        self.fanouts[node].iter().map(|&w| w as usize)
    }

    /// Whether `node` is a marked sink.
    pub fn is_sink(&self, node: usize) -> bool {
        self.is_sink[node]
    }

    /// The marked sinks.
    pub fn sinks(&self) -> impl Iterator<Item = usize> + '_ {
        self.sinks.iter().map(|&s| s as usize)
    }

    /// Changes the delay of fanin edge `slot` of `node`. The caller must
    /// pass `node` to the next [`TimingAnalysis::refresh`] (or re-run
    /// [`TimingAnalysis::analyze`]) for the analysis to see the edit.
    ///
    /// # Panics
    ///
    /// Panics if `node` or `slot` is out of range.
    pub fn set_fanin_delay(&mut self, node: usize, slot: usize, delay: i64) {
        self.fanins[node][slot].1 = delay;
    }

    /// The raw `(fanin, delay)` edge list of `node` — the comparison
    /// currency of diff-based rebinding (see `AigSta::rebind`).
    pub(crate) fn fanins_raw(&self, node: usize) -> &[(u32, i64)] {
        &self.fanins[node]
    }

    /// Replaces **all** fanin edges of `node`, maintaining the reverse
    /// (fanout) lists. As with delay edits, the caller must hand `node` —
    /// and, for the backward pass, the *previous* fanins, which lost a
    /// consumer — to the next [`TimingAnalysis::refresh`].
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range or any new fanin index is not
    /// smaller than `node` (topological-order violation).
    pub fn set_fanins(&mut self, node: usize, fanins: &[(usize, i64)]) {
        let id = node as u32;
        for &(u, _) in &self.fanins[node] {
            self.fanouts[u as usize].retain(|&w| w != id);
        }
        for &(u, _) in fanins {
            assert!(
                u < node,
                "fanin {u} of node {node} violates topological order"
            );
            self.fanouts[u].push(id);
        }
        self.fanins[node] = fanins.iter().map(|&(u, d)| (u as u32, d)).collect();
    }

    /// Drops every node with index `>= len`, unhooking them from the
    /// fanout lists of the survivors. Returns the (sorted, deduplicated)
    /// survivors that lost a consumer — their required times may change,
    /// so they belong in the next refresh's dirty set.
    pub fn truncate(&mut self, len: usize) -> Vec<usize> {
        let mut changed = Vec::new();
        for r in len..self.fanins.len() {
            for &(u, _) in &self.fanins[r] {
                if (u as usize) < len {
                    changed.push(u as usize);
                }
            }
        }
        for &u in &changed {
            self.fanouts[u].retain(|&w| (w as usize) < len);
        }
        self.fanins.truncate(len);
        self.fanouts.truncate(len);
        self.floors.truncate(len);
        self.is_sink.truncate(len);
        self.sinks.retain(|&s| (s as usize) < len);
        changed.sort_unstable();
        changed.dedup();
        changed
    }

    /// Replaces the sink set, returning every node whose sink flag flipped
    /// (those nodes' required times change, so they belong in the next
    /// refresh's dirty set).
    ///
    /// # Panics
    ///
    /// Panics if any sink index is out of range.
    pub fn set_sinks(&mut self, sinks: &[usize]) -> Vec<usize> {
        let mut new_flag = vec![false; self.len()];
        for &s in sinks {
            new_flag[s] = true;
        }
        let flips: Vec<usize> = (0..self.len())
            .filter(|&v| new_flag[v] != self.is_sink[v])
            .collect();
        self.sinks = (0..self.len() as u32)
            .filter(|&v| new_flag[v as usize])
            .collect();
        self.is_sink = new_flag;
        flips
    }

    /// Sets the arrival floor of `node` (`i64::MIN` clears it). As with
    /// delay edits, the caller must hand `node` to the next refresh.
    pub fn set_floor(&mut self, node: usize, floor: i64) {
        self.floors[node] = floor;
    }

    /// The arrival floor of `node` (`i64::MIN` = none).
    pub fn floor(&self, node: usize) -> i64 {
        self.floors[node]
    }

    fn arrival_of(&self, node: usize, arrival: &[i64]) -> i64 {
        let from_fanins = self.fanins[node]
            .iter()
            .map(|&(u, d)| arrival[u as usize] + d)
            .max()
            .unwrap_or(0);
        from_fanins.max(self.floors[node])
    }

    fn required_of(&self, node: usize, required: &[i64], horizon: i64) -> i64 {
        let mut req = if self.is_sink[node] {
            horizon
        } else {
            i64::MAX
        };
        for &w in &self.fanouts[node] {
            let w = w as usize;
            if required[w] == i64::MAX {
                continue; // unconstrained consumer
            }
            let d = self.fanins[w]
                .iter()
                .filter(|&&(u, _)| u as usize == node)
                .map(|&(_, d)| d)
                .max()
                .expect("fanout edge exists");
            req = req.min(required[w] - d);
        }
        req
    }
}

/// Arrival/required times of one analysis run over a [`TimingGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimingAnalysis {
    /// Arrival time per node.
    pub arrival: Vec<i64>,
    /// Required time per node (`i64::MAX` = unconstrained: the node cannot
    /// reach any sink).
    pub required: Vec<i64>,
    /// The sink deadline the required times were computed against.
    pub horizon: i64,
    /// Whether the horizon tracks the worst sink arrival (`analyze`) or was
    /// pinned by the caller (`analyze_with_horizon`).
    fixed_horizon: bool,
}

impl TimingAnalysis {
    /// Full analysis with the horizon set to the worst sink arrival (so at
    /// least one sink is tight and the worst slack over sinks is exactly 0).
    pub fn analyze(graph: &TimingGraph) -> Self {
        Self::run(graph, None)
    }

    /// Full analysis against a caller-pinned deadline.
    pub fn analyze_with_horizon(graph: &TimingGraph, horizon: i64) -> Self {
        Self::run(graph, Some(horizon))
    }

    fn run(graph: &TimingGraph, horizon: Option<i64>) -> Self {
        let _span = sfq_obs::span("sta:build");
        let n = graph.len();
        let mut arrival = vec![0i64; n];
        for v in 0..n {
            arrival[v] = graph.arrival_of(v, &arrival);
        }
        let fixed_horizon = horizon.is_some();
        let horizon =
            horizon.unwrap_or_else(|| graph.sinks().map(|s| arrival[s]).max().unwrap_or(0));
        let mut required = vec![i64::MAX; n];
        for v in (0..n).rev() {
            required[v] = graph.required_of(v, &required, horizon);
        }
        TimingAnalysis {
            arrival,
            required,
            horizon,
            fixed_horizon,
        }
    }

    /// Slack of `node`, saturating for unconstrained nodes.
    pub fn slack(&self, node: usize) -> i64 {
        self.required[node].saturating_sub(self.arrival[node])
    }

    /// Whether `node` lies on a tight path to a sink.
    pub fn is_critical(&self, node: usize) -> bool {
        self.slack(node) == 0
    }

    /// Re-runs the analysis over the cone affected by `dirty` — nodes whose
    /// fanin delays or arrival floors changed since the last run. Arrivals
    /// propagate forward only while they change; required times propagate
    /// backward the same way. When the refresh moves an auto-tracked
    /// horizon, the backward pass falls back to a full recompute (the
    /// deadline shift touches every constrained node by definition).
    ///
    /// Returns the number of node recomputations performed (the refreshed
    /// cone size, forward plus backward) — the cost the incremental path
    /// actually paid, which consumers like `sfq-opt`'s analysis context
    /// surface as "nodes refreshed vs. rebuilt" statistics.
    pub fn refresh(&mut self, graph: &TimingGraph, dirty: &[usize]) -> usize {
        use std::collections::BTreeSet;
        let _span = sfq_obs::span("sta:refresh");
        let mut recomputed = 0usize;
        // Forward: arrivals.
        let mut work: BTreeSet<usize> = dirty.iter().copied().collect();
        while let Some(v) = work.pop_first() {
            recomputed += 1;
            let a = graph.arrival_of(v, &self.arrival);
            if a != self.arrival[v] {
                self.arrival[v] = a;
                work.extend(graph.fanouts(v));
            }
        }
        // Horizon: tracked horizons follow the worst sink arrival.
        if !self.fixed_horizon {
            let new_horizon = graph.sinks().map(|s| self.arrival[s]).max().unwrap_or(0);
            if new_horizon != self.horizon {
                self.horizon = new_horizon;
                for v in (0..graph.len()).rev() {
                    self.required[v] = graph.required_of(v, &self.required, self.horizon);
                }
                return recomputed + graph.len();
            }
        }
        // Backward: required times. A delay edit at node v changes the
        // required times of v's *fanins*, so seed with those; propagation
        // handles the rest.
        let mut work: BTreeSet<usize> = BTreeSet::new();
        for &v in dirty {
            work.insert(v);
            work.extend(graph.fanins(v).map(|(u, _)| u));
        }
        while let Some(v) = work.pop_last() {
            recomputed += 1;
            let r = graph.required_of(v, &self.required, self.horizon);
            if r != self.required[v] {
                self.required[v] = r;
                work.extend(graph.fanins(v).map(|(u, _)| u));
            }
        }
        recomputed
    }

    /// Moves a *pinned* horizon to `new_horizon`, shifting every
    /// constrained required time uniformly. Exact by construction: under a
    /// single shared deadline `h`, `required(v) = h − maxdist(v → sink)`
    /// and the longest-distance term is purely structural, so a deadline
    /// change is a uniform shift — no graph traversal needed. Arrivals and
    /// unconstrained (`i64::MAX`) nodes are untouched.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the analysis tracks its horizon
    /// automatically — auto horizons follow sink arrivals through
    /// [`TimingAnalysis::refresh`] instead.
    pub fn retarget_horizon(&mut self, new_horizon: i64) {
        debug_assert!(
            self.fixed_horizon,
            "retarget_horizon is for pinned-horizon analyses"
        );
        let delta = new_horizon - self.horizon;
        if delta == 0 {
            return;
        }
        for r in &mut self.required {
            if *r != i64::MAX {
                *r += delta;
            }
        }
        self.horizon = new_horizon;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// a → b → d(sink), a → c → d: unequal delays make one branch slack.
    fn diamond() -> TimingGraph {
        let mut g = TimingGraph::new();
        let a = g.add_node(&[]);
        let b = g.add_node(&[(a, 1)]);
        let c = g.add_node(&[(a, 3)]);
        let d = g.add_node(&[(b, 1), (c, 1)]);
        g.mark_sink(d);
        g
    }

    #[test]
    fn diamond_arrivals_and_slacks() {
        let g = diamond();
        let t = TimingAnalysis::analyze(&g);
        assert_eq!(t.arrival, vec![0, 1, 3, 4]);
        assert_eq!(t.horizon, 4);
        assert_eq!(t.required, vec![0, 3, 3, 4]);
        assert_eq!(t.slack(0), 0);
        assert_eq!(t.slack(1), 2, "short branch has slack");
        assert_eq!(t.slack(2), 0, "long branch is critical");
        assert!(t.is_critical(3));
    }

    #[test]
    fn unreachable_nodes_are_unconstrained() {
        let mut g = diamond();
        let dangling = g.add_node(&[(0, 10)]);
        let t = TimingAnalysis::analyze(&g);
        assert_eq!(t.required[dangling], i64::MAX);
        assert_eq!(t.slack(dangling), i64::MAX - 10, "saturating slack");
        // The dangling fanout does not drag node 0's required time down.
        assert_eq!(t.required[0], 0);
    }

    #[test]
    fn pinned_horizon_adds_uniform_slack() {
        let g = diamond();
        let t = TimingAnalysis::analyze_with_horizon(&g, 6);
        assert_eq!(t.slack(3), 2);
        assert_eq!(t.slack(2), 2);
        assert_eq!(t.slack(1), 4);
    }

    #[test]
    fn refresh_matches_scratch_after_delay_edit() {
        let mut g = diamond();
        let mut t = TimingAnalysis::analyze(&g);
        // Lengthen the short branch: b→d edge now dominates.
        g.set_fanin_delay(1, 0, 5); // a→b delay 1 → 5
        t.refresh(&g, &[1]);
        assert_eq!(t, TimingAnalysis::analyze(&g));
        assert_eq!(t.arrival[3], 6);
        assert_eq!(t.slack(1), 0);
        assert_eq!(t.slack(2), 2, "roles swapped");
    }

    #[test]
    fn refresh_handles_floors() {
        let mut g = diamond();
        let mut t = TimingAnalysis::analyze_with_horizon(&g, 4);
        g.set_floor(1, 3); // pretend b is about to deepen to level 3
        t.refresh(&g, &[1]);
        assert_eq!(t, TimingAnalysis::analyze_with_horizon(&g, 4));
        assert_eq!(t.arrival[1], 3);
        assert_eq!(t.arrival[3], 4, "still within the pinned horizon");
        assert_eq!(t.slack(1), 0);
        // Clearing the floor restores the original analysis.
        g.set_floor(1, i64::MIN);
        t.refresh(&g, &[1]);
        assert_eq!(t, TimingAnalysis::analyze_with_horizon(&g, 4));
    }

    #[test]
    fn refresh_tracks_auto_horizon() {
        let mut g = diamond();
        let mut t = TimingAnalysis::analyze(&g);
        g.set_fanin_delay(2, 0, 7); // a→c delay 3 → 7
        t.refresh(&g, &[2]);
        assert_eq!(t, TimingAnalysis::analyze(&g));
        assert_eq!(t.horizon, 8);
    }
}
