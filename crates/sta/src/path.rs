//! Top-k critical path extraction.
//!
//! [`top_paths`] enumerates complete source→sink paths of a
//! [`TimingGraph`] in non-increasing length order, using a best-first
//! search guided by the exact longest-suffix potential `F(v)` (the longest
//! delay from `v` to any sink). The bound is *exact*, so the search is an
//! A*-style enumeration: every popped complete path is the next-longest
//! one, and the k-th pop ends the search — no path explosion for small k.

use crate::graph::{TimingAnalysis, TimingGraph};
use std::collections::BinaryHeap;

/// One extracted path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimingPath {
    /// Nodes from source to sink.
    pub nodes: Vec<usize>,
    /// Per-hop delay contribution: `delays[i]` is the delay of the edge
    /// into `nodes[i]` (`0` for the source).
    pub delays: Vec<i64>,
    /// Total path length (sum of `delays`).
    pub length: i64,
    /// Headroom against the analysis horizon: `horizon − length`.
    pub slack: i64,
}

/// Search state: a partial path ending at `node`, ordered by the exact
/// upper bound `len + F(node)` on any completion.
struct State {
    bound: i64,
    len: i64,
    node: usize,
    /// Index of the predecessor state in the arena (`usize::MAX` = none).
    prev: usize,
    done: bool,
}

/// Extracts the `k` longest source→sink paths, longest first. Ties are
/// broken arbitrarily but deterministically. `analysis` supplies the
/// horizon used for the per-path slack.
pub fn top_paths(graph: &TimingGraph, analysis: &TimingAnalysis, k: usize) -> Vec<TimingPath> {
    top_paths_bounded(graph, analysis, k).0
}

/// [`top_paths`] that also reports whether the search budget expired
/// before `k` paths were found (`true` = more paths may exist than were
/// returned). Callers that render reports should surface the flag instead
/// of letting a truncated result read as "this network has few paths".
pub fn top_paths_bounded(
    graph: &TimingGraph,
    analysis: &TimingAnalysis,
    k: usize,
) -> (Vec<TimingPath>, bool) {
    if k == 0 || graph.is_empty() {
        return (Vec::new(), false);
    }
    let n = graph.len();
    // F(v): longest delay from v to any sink; i64::MIN = reaches none.
    let mut f = vec![i64::MIN; n];
    for v in (0..n).rev() {
        if graph.is_sink(v) {
            f[v] = 0;
        }
        for w in graph.fanouts(v) {
            if f[w] == i64::MIN {
                continue;
            }
            for (u, d) in graph.fanins(w) {
                if u == v {
                    f[v] = f[v].max(f[w] + d);
                }
            }
        }
    }

    // Tie-break equal bounds toward the NEWEST state (plain `idx` in a
    // max-heap): on a network whose critical paths share one exact bound
    // (every prefix of every critical path bounds to the horizon), this
    // descends depth-first and completes a longest path after ~depth pops.
    // Oldest-first would sweep the whole equal-bound frontier breadth-first
    // and can exhaust the pop budget on high-multiplicity networks (array
    // multipliers) before a single complete path pops.
    let mut arena: Vec<State> = Vec::new();
    let mut heap: BinaryHeap<(i64, usize)> = BinaryHeap::new();
    let push = |arena: &mut Vec<State>, heap: &mut BinaryHeap<(i64, usize)>, st: State| {
        let idx = arena.len();
        heap.push((st.bound, idx));
        arena.push(st);
    };
    for (v, &fv) in f.iter().enumerate() {
        // Sources: no fanins, reaches a sink.
        if graph.fanins(v).next().is_none() && fv != i64::MIN {
            push(
                &mut arena,
                &mut heap,
                State {
                    bound: fv,
                    len: 0,
                    node: v,
                    prev: usize::MAX,
                    done: false,
                },
            );
        }
    }

    let mut out = Vec::with_capacity(k);
    // Backstop against adversarial graphs; with the newest-first tie-break
    // a path completes in ~depth pops, so real networks never get near it.
    // Paths found within the budget are still exact and in order; the
    // returned flag records an early exit.
    let mut truncated = false;
    let mut pops = 10_000usize.saturating_add(k.saturating_mul(1_000));
    while let Some((_, idx)) = heap.pop() {
        pops = match pops.checked_sub(1) {
            Some(p) => p,
            None => {
                truncated = true;
                break;
            }
        };
        let (len, node, done) = {
            let st = &arena[idx];
            (st.len, st.node, st.done)
        };
        if done {
            // Reconstruct the path by walking the arena chain.
            let mut nodes = Vec::new();
            let mut cur = arena[idx].prev; // skip the terminal marker
            while cur != usize::MAX {
                nodes.push(arena[cur].node);
                cur = arena[cur].prev;
            }
            nodes.reverse();
            let mut delays = Vec::with_capacity(nodes.len());
            delays.push(0);
            for w in nodes.windows(2) {
                let d = graph
                    .fanins(w[1])
                    .filter(|&(u, _)| u == w[0])
                    .map(|(_, d)| d)
                    .max()
                    .expect("path edge exists");
                delays.push(d);
            }
            out.push(TimingPath {
                nodes,
                delays,
                length: len,
                slack: analysis.horizon - len,
            });
            if out.len() >= k {
                break;
            }
            continue;
        }
        if graph.is_sink(node) {
            // Terminating here is one completion of this prefix.
            push(
                &mut arena,
                &mut heap,
                State {
                    bound: len,
                    len,
                    node,
                    prev: idx,
                    done: true,
                },
            );
        }
        // Parallel edges to one consumer collapse to their max-delay edge
        // (the shorter arm of a parallel pair is never the critical one);
        // the fanout list repeats such consumers, so dedupe to avoid
        // emitting the same path once per parallel edge. Duplicates are
        // adjacent by construction (one add_node call pushes them in a row).
        let mut fanouts: Vec<usize> = graph.fanouts(node).collect();
        fanouts.dedup();
        for w in fanouts {
            if f[w] == i64::MIN {
                continue;
            }
            let d = graph
                .fanins(w)
                .filter(|&(u, _)| u == node)
                .map(|(_, d)| d)
                .max()
                .expect("fanout edge exists");
            push(
                &mut arena,
                &mut heap,
                State {
                    bound: len + d + f[w],
                    len: len + d,
                    node: w,
                    prev: idx,
                    done: false,
                },
            );
        }
    }
    (out, truncated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TimingAnalysis;

    fn ladder() -> TimingGraph {
        // s → a → t(sink) with a parallel long edge s → b → t.
        let mut g = TimingGraph::new();
        let s = g.add_node(&[]);
        let a = g.add_node(&[(s, 1)]);
        let b = g.add_node(&[(s, 4)]);
        let t = g.add_node(&[(a, 1), (b, 1)]);
        g.mark_sink(t);
        g
    }

    #[test]
    fn paths_come_out_longest_first() {
        let g = ladder();
        let t = TimingAnalysis::analyze(&g);
        let paths = top_paths(&g, &t, 10);
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].length, 5);
        assert_eq!(paths[0].nodes, vec![0, 2, 3]);
        assert_eq!(paths[0].slack, 0);
        assert_eq!(paths[1].length, 2);
        assert_eq!(paths[1].nodes, vec![0, 1, 3]);
        assert_eq!(paths[1].slack, 3);
        assert_eq!(paths[0].delays, vec![0, 4, 1]);
    }

    #[test]
    fn k_limits_the_enumeration() {
        let g = ladder();
        let t = TimingAnalysis::analyze(&g);
        assert_eq!(top_paths(&g, &t, 1).len(), 1);
        assert!(top_paths(&g, &t, 0).is_empty());
    }

    #[test]
    fn sink_with_fanout_can_end_or_continue() {
        // s → m(sink) → t(sink): both the short and the full path exist.
        let mut g = TimingGraph::new();
        let s = g.add_node(&[]);
        let m = g.add_node(&[(s, 2)]);
        let t = g.add_node(&[(m, 2)]);
        g.mark_sink(m);
        g.mark_sink(t);
        let a = TimingAnalysis::analyze(&g);
        let paths = top_paths(&g, &a, 10);
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].nodes, vec![s, m, t]);
        assert_eq!(paths[0].length, 4);
        assert_eq!(paths[1].nodes, vec![s, m]);
        assert_eq!(paths[1].length, 2);
    }

    #[test]
    fn exhausts_without_panic_on_empty_graph() {
        let g = TimingGraph::new();
        let a = TimingAnalysis::analyze(&g);
        assert!(top_paths(&g, &a, 3).is_empty());
    }

    #[test]
    fn parallel_edges_collapse_to_one_path() {
        // Two edges u→w with different delays: one path at the max delay,
        // not the same path twice (and no phantom short-arm path).
        let mut g = TimingGraph::new();
        let u = g.add_node(&[]);
        let w = g.add_node(&[(u, 1), (u, 3)]);
        g.mark_sink(w);
        let t = TimingAnalysis::analyze(&g);
        let paths = top_paths(&g, &t, 5);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].length, 3);
        assert_eq!(paths[0].delays, vec![0, 3]);
    }

    #[test]
    fn huge_path_multiplicity_still_yields_paths() {
        // 60 stacked diamonds with equal-delay arms: 2^60 distinct
        // critical paths, every prefix bounding to the horizon. The
        // newest-first tie-break must descend and complete paths instead
        // of sweeping the equal-bound frontier until the budget dies
        // (the regression observed on the array-multiplier benchmarks).
        let mut g = TimingGraph::new();
        let mut cur = g.add_node(&[]);
        for _ in 0..60 {
            let a = g.add_node(&[(cur, 1)]);
            let b = g.add_node(&[(cur, 1)]);
            cur = g.add_node(&[(a, 1), (b, 1)]);
        }
        g.mark_sink(cur);
        let t = TimingAnalysis::analyze(&g);
        let (paths, truncated) = top_paths_bounded(&g, &t, 3);
        assert_eq!(paths.len(), 3, "three of the 2^60 paths extracted");
        assert!(!truncated, "budget must not be the limiting factor");
        for p in &paths {
            assert_eq!(p.length, 120);
            assert_eq!(p.slack, 0);
            assert_eq!(p.nodes.len(), 121);
        }
    }
}
