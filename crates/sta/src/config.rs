//! The fingerprinted timing-stage configuration.
//!
//! [`TimingConfig`] is plain data that rides inside
//! `t1map::flow::FlowConfig`: enabling the timing stage makes `run_flow`
//! attach a schedule-slack summary to its result, and the fingerprint keeps
//! `sfq-engine` cache keys sound — two jobs that differ only in their
//! timing stage hash to different content addresses.

use std::hash::Hasher;

/// Configuration of the flow's timing-analysis stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingConfig {
    /// Master switch; a disabled stage costs nothing and reports nothing.
    pub enabled: bool,
    /// Critical paths to extract when reporting.
    pub top_paths: u32,
}

impl TimingConfig {
    /// The disabled stage (flow default).
    pub fn disabled() -> Self {
        TimingConfig {
            enabled: false,
            top_paths: 3,
        }
    }

    /// The standard enabled stage.
    pub fn standard() -> Self {
        TimingConfig {
            enabled: true,
            ..Self::disabled()
        }
    }

    /// Canonical encoding of the configuration into `h` (versioned, fixed
    /// field order) — the `sfq-engine` cache-key contribution.
    ///
    /// Only computation-affecting fields participate: `top_paths` is a
    /// rendering knob (path extraction happens at report time, not inside
    /// the flow), so two configs differing only there produce identical
    /// flow results and must share a cache entry.
    pub fn fingerprint(&self, h: &mut impl Hasher) {
        h.write_u8(1); // encoding version
        h.write_u8(self.enabled as u8);
    }
}

impl Default for TimingConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal FNV-1a so the test does not pull `sfq_netlist` in.
    struct Fnv(u64);
    impl Hasher for Fnv {
        fn finish(&self) -> u64 {
            self.0
        }
        fn write(&mut self, bytes: &[u8]) {
            for &b in bytes {
                self.0 ^= b as u64;
                self.0 = self.0.wrapping_mul(0x100000001b3);
            }
        }
    }

    fn fp(cfg: &TimingConfig) -> u64 {
        let mut h = Fnv(0xcbf29ce484222325);
        cfg.fingerprint(&mut h);
        h.finish()
    }

    #[test]
    fn fingerprint_distinguishes_configs() {
        assert_ne!(fp(&TimingConfig::disabled()), fp(&TimingConfig::standard()));
        assert_eq!(fp(&TimingConfig::standard()), fp(&TimingConfig::standard()));
        // A rendering-only knob must NOT re-key the computation.
        let mut more_paths = TimingConfig::standard();
        more_paths.top_paths = 10;
        assert_eq!(fp(&TimingConfig::standard()), fp(&more_paths));
    }
}
