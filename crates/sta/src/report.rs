//! Human- and machine-readable timing reports.
//!
//! [`TimingReport`] condenses one [`TimingAnalysis`] into the numbers a
//! designer acts on — worst slack, critical-node count, a slack histogram
//! and the top-k critical paths — and renders them as text (the CLI `sta`
//! subcommand) or CSV (`--csv`).

use crate::graph::{TimingAnalysis, TimingGraph};
use crate::path::{top_paths_bounded, TimingPath};
use std::fmt;

/// Summary of one timing analysis.
#[derive(Debug, Clone)]
pub struct TimingReport {
    /// The deadline the analysis ran against.
    pub horizon: i64,
    /// Nodes constrained by some sink (unconstrained nodes are excluded
    /// from every statistic below).
    pub constrained: usize,
    /// Worst (minimum) slack over constrained nodes.
    pub worst_slack: i64,
    /// Constrained nodes with zero slack.
    pub critical: usize,
    /// `(slack, node count)` pairs, ascending by slack.
    pub histogram: Vec<(i64, usize)>,
    /// The top-k critical paths, longest first.
    pub paths: Vec<TimingPath>,
    /// Whether path extraction hit its search budget before finding all
    /// requested paths (more paths may exist than are listed).
    pub paths_truncated: bool,
}

impl TimingReport {
    /// Builds a report with the `top_paths` longest paths extracted.
    pub fn new(graph: &TimingGraph, analysis: &TimingAnalysis, top_paths_k: usize) -> Self {
        let mut histogram: std::collections::BTreeMap<i64, usize> = Default::default();
        let mut constrained = 0usize;
        let mut worst = i64::MAX;
        for v in 0..graph.len() {
            if analysis.required[v] == i64::MAX {
                continue;
            }
            let s = analysis.slack(v);
            constrained += 1;
            worst = worst.min(s);
            *histogram.entry(s).or_insert(0) += 1;
        }
        let critical = histogram.get(&0).copied().unwrap_or(0);
        let (paths, paths_truncated) = top_paths_bounded(graph, analysis, top_paths_k);
        TimingReport {
            horizon: analysis.horizon,
            constrained,
            worst_slack: if constrained == 0 { 0 } else { worst },
            critical,
            histogram: histogram.into_iter().collect(),
            paths,
            paths_truncated,
        }
    }

    /// Per-node CSV (`node,arrival,required,slack`), constrained nodes only.
    pub fn node_csv(graph: &TimingGraph, analysis: &TimingAnalysis) -> String {
        let mut out = String::from("node,arrival,required,slack\n");
        for v in 0..graph.len() {
            if analysis.required[v] == i64::MAX {
                continue;
            }
            out.push_str(&format!(
                "{v},{},{},{}\n",
                analysis.arrival[v],
                analysis.required[v],
                analysis.slack(v)
            ));
        }
        out
    }
}

/// Renders one path as `n3 -> n7 -> n12`, eliding long middles.
fn render_path(path: &TimingPath, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    const HEAD: usize = 4;
    const TAIL: usize = 3;
    let n = path.nodes.len();
    if n <= HEAD + TAIL + 1 {
        for (i, v) in path.nodes.iter().enumerate() {
            if i > 0 {
                write!(f, " -> ")?;
            }
            write!(f, "n{v}")?;
        }
    } else {
        for v in &path.nodes[..HEAD] {
            write!(f, "n{v} -> ")?;
        }
        write!(f, "... {} more ...", n - HEAD - TAIL)?;
        for v in &path.nodes[n - TAIL..] {
            write!(f, " -> n{v}")?;
        }
    }
    Ok(())
}

impl fmt::Display for TimingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "horizon {}: {} constrained nodes, worst slack {}, {} critical ({:.1}%)",
            self.horizon,
            self.constrained,
            self.worst_slack,
            self.critical,
            100.0 * self.critical as f64 / self.constrained.max(1) as f64
        )?;
        write!(f, "slack histogram:")?;
        const BUCKETS: usize = 8;
        for (i, (s, c)) in self.histogram.iter().enumerate() {
            if i >= BUCKETS {
                let rest: usize = self.histogram[BUCKETS..].iter().map(|&(_, c)| c).sum();
                write!(f, "  >={}:{rest}", self.histogram[BUCKETS].0)?;
                break;
            }
            write!(f, "  {s}:{c}")?;
        }
        writeln!(f)?;
        for (i, p) in self.paths.iter().enumerate() {
            write!(
                f,
                "path #{} length {} slack {} ({} nodes): ",
                i + 1,
                p.length,
                p.slack,
                p.nodes.len()
            )?;
            render_path(p, f)?;
            writeln!(f)?;
        }
        if self.paths_truncated {
            writeln!(
                f,
                "(path search budget exhausted — more paths exist than listed)"
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TimingGraph;

    fn sample() -> (TimingGraph, TimingAnalysis) {
        let mut g = TimingGraph::new();
        let a = g.add_node(&[]);
        let b = g.add_node(&[(a, 1)]);
        let c = g.add_node(&[(a, 3)]);
        let d = g.add_node(&[(b, 1), (c, 1)]);
        g.mark_sink(d);
        let t = TimingAnalysis::analyze(&g);
        (g, t)
    }

    #[test]
    fn report_counts_and_histogram() {
        let (g, t) = sample();
        let r = TimingReport::new(&g, &t, 2);
        assert_eq!(r.horizon, 4);
        assert_eq!(r.constrained, 4);
        assert_eq!(r.worst_slack, 0);
        assert_eq!(r.critical, 3); // a, c, d
        assert_eq!(r.histogram, vec![(0, 3), (2, 1)]);
        assert_eq!(r.paths.len(), 2);
        assert_eq!(r.paths[0].length, 4);
    }

    #[test]
    fn display_and_csv_render() {
        let (g, t) = sample();
        let r = TimingReport::new(&g, &t, 1);
        let text = r.to_string();
        assert!(text.contains("worst slack 0"), "{text}");
        assert!(text.contains("path #1"), "{text}");
        let csv = TimingReport::node_csv(&g, &t);
        assert!(csv.starts_with("node,arrival,required,slack\n"), "{csv}");
        assert_eq!(csv.lines().count(), 5, "{csv}");
    }

    #[test]
    fn dangling_nodes_stay_out_of_the_report() {
        let (mut g, _) = sample();
        g.add_node(&[(0, 9)]); // unconstrained
        let t = TimingAnalysis::analyze(&g);
        let r = TimingReport::new(&g, &t, 0);
        assert_eq!(r.constrained, 4);
        let csv = TimingReport::node_csv(&g, &t);
        assert_eq!(csv.lines().count(), 5);
    }
}
