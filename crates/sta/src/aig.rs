//! Unit-delay timing over an [`Aig`]: arrivals are logic levels, the
//! horizon is the network depth, and per-node slack is the headroom a
//! rewrite site may consume without deepening the network.
//!
//! [`AigSta`] is the view `sfq-opt`'s slack-aware rewriting runs on: its
//! analysis context builds one (reusing a cached level vector — see
//! [`AigSta::with_levels`]) at most once per pipeline run, updates it
//! incrementally as sites are accepted ([`AigSta::raise_arrival`] floors
//! the site root at its estimated post-rewrite level and re-propagates
//! only the affected cone), and carries it across pass and round
//! boundaries by diff-rebinding it to each rebuilt network
//! ([`AigSta::rebind`]).
//!
//! # Examples
//!
//! ```
//! use sfq_netlist::aig::Aig;
//! use sfq_sta::aig::AigSta;
//!
//! let mut aig = Aig::new();
//! let a = aig.add_pi();
//! let b = aig.add_pi();
//! let c = aig.add_pi();
//! let ab = aig.and(a, b);
//! let deep = aig.xor3(a, b, c); // level 4 cone
//! let top = aig.and(ab, deep);
//! aig.add_po(top);
//!
//! let sta = AigSta::new(&aig);
//! assert_eq!(sta.horizon(), aig.depth() as i64);
//! // The shallow AND can slip 3 levels before it would deepen the output.
//! assert_eq!(sta.slack(ab.node()), 3);
//! assert_eq!(sta.slack(deep.node()), 0, "the xor cone is critical");
//! ```

use crate::graph::{TimingAnalysis, TimingGraph};
use sfq_netlist::aig::{Aig, NodeId, NodeKind};

/// Unit-delay arrival/required/slack analysis of an AIG.
#[derive(Debug, Clone)]
pub struct AigSta {
    graph: TimingGraph,
    analysis: TimingAnalysis,
}

/// Cost accounting of one [`AigSta::rebind`]: how much of the network the
/// incremental path actually touched, versus the full rebuild it avoided.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RebindStats {
    /// Seed dirty-set size (structurally changed nodes, cleared floors,
    /// flipped sinks, truncation survivors).
    pub dirty: usize,
    /// Node recomputations performed by the refresh (forward + backward).
    pub refreshed: usize,
    /// Nodes in the rebound network — what a from-scratch build would have
    /// visited twice (arrival and required sweeps).
    pub total: usize,
}

fn build_graph(aig: &Aig) -> TimingGraph {
    let mut graph = TimingGraph::new();
    for id in aig.node_ids() {
        match aig.kind(id) {
            NodeKind::Const0 | NodeKind::Input(_) => {
                graph.add_node(&[]);
            }
            NodeKind::And(a, b) => {
                graph.add_node(&[(a.node().index(), 1), (b.node().index(), 1)]);
            }
        }
    }
    for po in aig.pos() {
        graph.mark_sink(po.node().index());
    }
    graph
}

impl AigSta {
    /// Analyzes `aig` under the unit-delay model. The horizon is *pinned*
    /// to the network depth at construction time — it does not drift if
    /// arrivals are later floored past it — so both constructors give
    /// [`AigSta::raise_arrival`] the same fixed-deadline semantics.
    pub fn new(aig: &Aig) -> Self {
        Self::with_levels(aig, &aig.levels())
    }

    /// [`AigSta::new`] reusing a level vector the caller already computed
    /// (see [`Aig::levels`]); the levels pin the horizon and are
    /// cross-checked in debug builds.
    pub fn with_levels(aig: &Aig, levels: &[u32]) -> Self {
        let graph = build_graph(aig);
        let horizon = aig
            .pos()
            .iter()
            .map(|po| levels[po.node().index()] as i64)
            .max()
            .unwrap_or(0);
        let analysis = TimingAnalysis::analyze_with_horizon(&graph, horizon);
        debug_assert!(
            analysis
                .arrival
                .iter()
                .zip(levels)
                .all(|(&a, &l)| a == l as i64),
            "caller-provided levels disagree with the unit-delay arrivals"
        );
        AigSta { graph, analysis }
    }

    /// The deadline (network depth at analysis time).
    pub fn horizon(&self) -> i64 {
        self.analysis.horizon
    }

    /// Arrival time (logic level, possibly floored by
    /// [`AigSta::raise_arrival`]) of `node`.
    pub fn arrival(&self, node: NodeId) -> i64 {
        self.analysis.arrival[node.index()]
    }

    /// The arrival times of all nodes, indexed by [`NodeId::index`].
    pub fn arrivals(&self) -> &[i64] {
        &self.analysis.arrival
    }

    /// Required time of `node` (`i64::MAX` for nodes that reach no output).
    pub fn required(&self, node: NodeId) -> i64 {
        self.analysis.required[node.index()]
    }

    /// Slack of `node` (saturating for unconstrained nodes).
    pub fn slack(&self, node: NodeId) -> i64 {
        self.analysis.slack(node.index())
    }

    /// Whether `node` lies on a tight path to an output.
    pub fn is_critical(&self, node: NodeId) -> bool {
        self.analysis.is_critical(node.index())
    }

    /// Floors `node`'s arrival at `level` and incrementally re-propagates
    /// arrivals through the affected cone. Used by slack-aware rewriting:
    /// once a site is accepted at an estimated post-rewrite level, every
    /// later estimate must see the (possibly deeper) cone it feeds.
    ///
    /// The horizon is pinned at construction (both constructors), so it
    /// and the required times are untouched — a floor pushing a sink past
    /// the deadline shows up as *negative* slack rather than silently
    /// loosening every deadline, which is exactly what a depth-budget
    /// check needs.
    pub fn raise_arrival(&mut self, node: NodeId, level: i64) {
        self.graph.set_floor(node.index(), level);
        self.analysis.refresh(&self.graph, &[node.index()]);
    }

    /// Re-targets this analysis at `aig` — typically the *rebuilt* network
    /// an optimization pass produced from the one this analysis was
    /// computed on — without a from-scratch rebuild: the cached graph is
    /// diffed against the new network node by node, only structurally
    /// changed nodes (plus any [`AigSta::raise_arrival`] floors, which are
    /// cleared) enter the dirty set, and [`TimingAnalysis::refresh`]
    /// re-propagates just the affected cone. The pinned horizon is then
    /// moved to the new network depth by a uniform required-time shift.
    ///
    /// The result is exactly the analysis [`AigSta::new`] would compute
    /// for `aig` (cross-checked in debug builds); the cost is proportional
    /// to the structural diff plus the refreshed cone, so a converged
    /// fixpoint round — where passes reproduce the network verbatim — is
    /// nearly free.
    pub fn rebind(&mut self, aig: &Aig) -> RebindStats {
        let _span = sfq_obs::span("sta:rebind");
        let new_len = aig.len();
        let old_len = self.graph.len();
        let mut dirty: Vec<usize> = Vec::new();
        if new_len < old_len {
            dirty.extend(self.graph.truncate(new_len));
            self.analysis.arrival.truncate(new_len);
            self.analysis.required.truncate(new_len);
        }
        let common = old_len.min(new_len);
        for id in aig.node_ids() {
            let i = id.index();
            let want: &[(usize, i64)] = match aig.kind(id) {
                NodeKind::Const0 | NodeKind::Input(_) => &[],
                NodeKind::And(a, b) => &[(a.node().index(), 1), (b.node().index(), 1)],
            };
            if i < common {
                let same = {
                    let have = self.graph.fanins_raw(i);
                    have.len() == want.len()
                        && have
                            .iter()
                            .zip(want)
                            .all(|(&(hu, hd), &(wu, wd))| hu as usize == wu && hd == wd)
                };
                if !same {
                    // The previous fanins lost a consumer: their required
                    // times may change, so they are dirty too.
                    dirty.extend(self.graph.fanins(i).map(|(u, _)| u));
                    self.graph.set_fanins(i, want);
                    dirty.push(i);
                }
            } else {
                let added = self.graph.add_node(want);
                debug_assert_eq!(added, i);
                self.analysis.arrival.push(0);
                self.analysis.required.push(i64::MAX);
                dirty.push(i);
            }
            if self.graph.floor(i) != i64::MIN {
                self.graph.set_floor(i, i64::MIN);
                dirty.push(i);
            }
        }
        let sink_nodes: Vec<usize> = aig.pos().iter().map(|po| po.node().index()).collect();
        dirty.extend(self.graph.set_sinks(&sink_nodes));
        dirty.sort_unstable();
        dirty.dedup();
        let refreshed = self.analysis.refresh(&self.graph, &dirty);
        // The horizon is pinned; move it to the new network depth with a
        // uniform required-time shift (exact under a shared deadline).
        let new_horizon = self
            .graph
            .sinks()
            .map(|s| self.analysis.arrival[s])
            .max()
            .unwrap_or(0);
        self.analysis.retarget_horizon(new_horizon);
        debug_assert!(
            self.analysis
                .arrival
                .iter()
                .zip(aig.levels())
                .all(|(&a, l)| a == l as i64),
            "rebound arrivals disagree with the network levels"
        );
        RebindStats {
            dirty: dirty.len(),
            refreshed,
            total: new_len,
        }
    }

    /// Borrow of the underlying graph (for path extraction / reporting).
    pub fn graph(&self) -> &TimingGraph {
        &self.graph
    }

    /// Borrow of the underlying analysis (for path extraction / reporting).
    pub fn analysis(&self) -> &TimingAnalysis {
        &self.analysis
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slack_zero_along_critical_path() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let c = g.add_pi();
        let x = g.xor(a, b); // level 2
        let y = g.and(x, c); // level 3
        g.add_po(y);
        let sta = AigSta::new(&g);
        assert_eq!(sta.horizon(), 3);
        assert_eq!(sta.slack(y.node()), 0);
        assert!(sta.slack(a.node()) == 0, "PIs on the critical path");
        assert_eq!(sta.required(y.node()), 3);
    }

    #[test]
    fn dangling_logic_is_unconstrained() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let keep = g.and(a, b);
        let dead = g.xor(a, b);
        g.add_po(keep);
        let sta = AigSta::new(&g);
        assert_eq!(sta.required(dead.node()), i64::MAX);
        assert!(sta.slack(dead.node()) > 1_000_000);
    }

    #[test]
    fn raise_arrival_propagates_incrementally() {
        let mut g = Aig::new();
        let pis: Vec<_> = (0..4).map(|_| g.add_pi()).collect();
        let ab = g.and(pis[0], pis[1]); // level 1, slack comes from the deep side
        let deep = g.xor3(pis[1], pis[2], pis[3]); // level 4
        let top = g.and(ab, deep); // level 5
        g.add_po(top);
        let mut sta = AigSta::new(&g);
        let slack = sta.slack(ab.node());
        assert_eq!(slack, 3);
        // Consume the slack: the root's cone re-levels, the output stays.
        sta.raise_arrival(ab.node(), sta.arrival(ab.node()) + slack);
        assert_eq!(sta.slack(ab.node()), 0);
        assert_eq!(sta.arrival(top.node()), 5, "output level unchanged");
        assert_eq!(sta.horizon(), 5);
    }

    #[test]
    fn with_levels_matches_new() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let x = g.xor(a, b);
        g.add_po(x);
        let levels = g.levels();
        let s1 = AigSta::new(&g);
        let s2 = AigSta::with_levels(&g, &levels);
        assert_eq!(s1.horizon(), s2.horizon());
        for id in g.node_ids() {
            assert_eq!(s1.slack(id), s2.slack(id));
        }
    }
}
