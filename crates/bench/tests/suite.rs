//! Integration tests of the benchmark suites running through `sfq-engine`:
//! the cache-hit guarantee of the ablation phase sweep and the Table-I
//! row-major result layout.

use sfq_bench::{phase_sweep_jobs, table1_jobs, BenchmarkScale, SWEEP_PHASES, TABLE1_FLOWS};
use sfq_circuits::epfl;
use sfq_engine::SuiteRunner;
use std::sync::Arc;
use t1map::cells::CellLibrary;

#[test]
fn phase_sweep_reports_cache_hits_for_the_shared_baseline() {
    let lib = CellLibrary::default();
    let aig = Arc::new(epfl::adder(8));
    let jobs = phase_sweep_jobs("adder8", &aig, &lib);
    let report = SuiteRunner::new(2).run(&jobs);

    // One 1φ reference per sweep point, identical content → exactly one
    // computation and hits for every other request.
    let expected_hits = (SWEEP_PHASES.len() - 1) as u64;
    assert_eq!(
        report.cache.hits(),
        expected_hits,
        "shared baselines reused"
    );
    assert_eq!(
        report.cache.misses,
        (jobs.len() as u64) - expected_hits,
        "every distinct job computed once"
    );

    // Every sweep point's 1φ column is the same shared result.
    let reference = &report.results[2];
    for chunk in report.results.chunks(3) {
        assert!(Arc::ptr_eq(&chunk[2], reference));
    }
}

#[test]
fn table1_small_suite_runs_in_parallel_with_paper_shape() {
    let lib = CellLibrary::default();
    let jobs = table1_jobs(&BenchmarkScale::small(), 4, &lib);
    let report = SuiteRunner::new(4).run(&jobs);
    assert_eq!(report.results.len(), 8 * TABLE1_FLOWS.len());

    // Row-major triples: per benchmark, T1 beats the 1φ baseline on area
    // (the paper's headline claim) and the three flows are distinct jobs.
    assert_eq!(report.cache.hits(), 0, "Table I has no duplicate jobs");
    for (i, triple) in report.results.chunks(3).enumerate() {
        let (single, t1) = (&triple[0].stats, &triple[2].stats);
        assert!(
            t1.area < single.area,
            "benchmark {} ({}): T1 area {} vs 1φ {}",
            i,
            jobs[i * 3].name,
            t1.area,
            single.area
        );
    }
}
