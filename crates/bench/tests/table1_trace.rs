//! The issue's acceptance command, end to end:
//! `table1 --small --trace t.json --bench-json BENCH_table1.json` must emit
//! a valid Chrome trace with spans from every instrumented layer plus a
//! schema-valid bench report — and tracing must not change the table.

use std::path::PathBuf;
use std::process::Command;

fn table1() -> Command {
    Command::new(env!("CARGO_BIN_EXE_table1"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("sfq_table1_trace_{}_{name}", std::process::id()));
    p
}

fn span_names(trace_text: &str) -> Vec<String> {
    let doc = sfq_obs::json::parse(trace_text).expect("trace is valid JSON");
    doc.get("traceEvents")
        .and_then(|v| v.as_arr())
        .expect("traceEvents array")
        .iter()
        .filter_map(|e| e.get("name").and_then(|n| n.as_str()))
        .map(str::to_owned)
        .collect()
}

#[test]
fn acceptance_command_emits_trace_and_bench_report() {
    let trace = tmp("t.json");
    let bench = tmp("BENCH_table1.json");
    let traced_csv = tmp("traced.csv");
    let out = table1()
        .args([
            "--small",
            "--trace",
            trace.to_str().unwrap(),
            "--bench-json",
            bench.to_str().unwrap(),
            "--csv",
            traced_csv.to_str().unwrap(),
        ])
        .output()
        .expect("run table1 --trace --bench-json");
    assert!(
        out.status.success(),
        "table1 failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // The trace carries spans from core (flow stages), sta and engine.
    let names = span_names(&std::fs::read_to_string(&trace).expect("trace written"));
    for required in [
        "flow:run",
        "flow:detect",
        "flow:map",
        "flow:phase-assign",
        "flow:dff-insert",
        "flow:timing",
        "sta:build",
        "engine:job",
        "engine:compute",
        "engine:queue-wait",
    ] {
        assert!(
            names.iter().any(|n| n == required),
            "trace must contain span '{required}': {names:?}"
        );
    }

    // The bench report passes its own schema validator.
    let report = std::fs::read_to_string(&bench).expect("bench report written");
    sfq_bench::validate_bench_report(&report).expect("BENCH_table1.json validates");

    // Tracing is a pure observer: the CSV matches an untraced run byte
    // for byte.
    let plain_csv = tmp("plain.csv");
    let out = table1()
        .args(["--small", "--csv", plain_csv.to_str().unwrap()])
        .output()
        .expect("run untraced table1");
    assert!(out.status.success());
    let a = std::fs::read(&traced_csv).expect("traced CSV");
    let b = std::fs::read(&plain_csv).expect("plain CSV");
    assert_eq!(a, b, "tracing changed the table");

    for f in [&trace, &bench, &traced_csv, &plain_csv] {
        let _ = std::fs::remove_file(f);
    }
}

#[test]
fn pre_opt_run_traces_optimizer_passes() {
    let trace = tmp("preopt.json");
    let out = table1()
        .args(["--small", "--pre-opt", "--trace", trace.to_str().unwrap()])
        .output()
        .expect("run table1 --pre-opt --trace");
    assert!(
        out.status.success(),
        "table1 --pre-opt failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let names = span_names(&std::fs::read_to_string(&trace).expect("trace written"));
    for required in ["flow:pre-opt", "opt:strash", "opt:sweep", "opt:rewrite"] {
        assert!(
            names.iter().any(|n| n == required),
            "pre-opt trace must contain span '{required}': {names:?}"
        );
    }
    let _ = std::fs::remove_file(&trace);
}
