//! Criterion benchmark of the `sfq-opt` analysis manager: the slack-aware
//! fixpoint pipeline on `multiplier`, with one shared [`OptContext`]
//! threaded through all rounds (the STA is built once and incrementally
//! rebound) versus scratch mode (every timing consumer rebuilds from
//! scratch — the pre-context behavior). Both produce byte-identical
//! networks; the delta is pure analysis cost.
//!
//! A third pair isolates the analysis layer itself: rebinding a cached
//! [`sfq_sta::AigSta`] to a locally-edited network versus building a fresh
//! one.

use criterion::{criterion_group, criterion_main, Criterion};
use sfq_circuits::epfl;
use sfq_opt::{OptConfig, OptContext, Pipeline};
use sfq_sta::AigSta;

fn bench_fixpoint_context(c: &mut Criterion) {
    let aig = epfl::multiplier(8);
    let pipeline = Pipeline::from_config(&OptConfig::slack_aware());
    let mut group = c.benchmark_group("sta_incremental");
    group.sample_size(10);
    group.bench_function("fixpoint-shared-context", |b| {
        b.iter(|| {
            let mut g = aig.clone();
            let mut ctx = OptContext::new();
            pipeline
                .run_until_fixpoint_with(&mut g, 8, &mut ctx)
                .nodes_after
        })
    });
    group.bench_function("fixpoint-scratch-rebuilds", |b| {
        b.iter(|| {
            let mut g = aig.clone();
            let mut ctx = OptContext::scratch();
            pipeline
                .run_until_fixpoint_with(&mut g, 8, &mut ctx)
                .nodes_after
        })
    });
    group.finish();
}

fn bench_rebind_vs_scratch(c: &mut Criterion) {
    // The analysis layer alone: one optimization round's worth of change
    // (the conservative rewrite restructures a few local cones), then
    // either rebind the stale analysis or build a fresh one.
    let before = epfl::multiplier(8);
    let (after, _) = sfq_opt::rewrite_network(&before, &sfq_opt::RewriteConfig::conservative());
    let mut group = c.benchmark_group("sta_rebind");
    group.bench_function("rebind-after-rewrite", |b| {
        let baseline = AigSta::new(&before);
        b.iter(|| {
            let mut sta = baseline.clone();
            sta.rebind(&after).refreshed
        })
    });
    group.bench_function("build-from-scratch", |b| {
        b.iter(|| AigSta::new(&after).horizon())
    });
    group.finish();
}

criterion_group!(benches, bench_fixpoint_context, bench_rebind_vs_scratch);
criterion_main!(benches);
