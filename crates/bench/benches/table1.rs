//! Criterion benchmarks of the three mapping flows on the Table-I
//! benchmark set (one group per table row; run with reduced widths so the
//! suite completes quickly — absolute flow runtimes at paper scale are
//! printed by the `table1` binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sfq_bench::{paper_benchmarks, BenchmarkScale};
use t1map::cells::CellLibrary;
use t1map::flow::{run_flow, FlowConfig};

fn bench_flows(c: &mut Criterion) {
    let lib = CellLibrary::default();
    let scale = BenchmarkScale::small();
    let mut group = c.benchmark_group("table1-flows");
    group.sample_size(10);
    for (name, aig) in paper_benchmarks(&scale) {
        group.bench_with_input(BenchmarkId::new("1phase", name), &aig, |b, aig| {
            b.iter(|| run_flow(aig, &lib, &FlowConfig::single_phase()).stats)
        });
        group.bench_with_input(BenchmarkId::new("4phase", name), &aig, |b, aig| {
            b.iter(|| run_flow(aig, &lib, &FlowConfig::multiphase(4)).stats)
        });
        group.bench_with_input(BenchmarkId::new("t1", name), &aig, |b, aig| {
            b.iter(|| run_flow(aig, &lib, &FlowConfig::t1(4)).stats)
        });
    }
    group.finish();
}

fn bench_flow_stages(c: &mut Criterion) {
    use sfq_circuits::epfl;
    use t1map::detect::{detect, DetectConfig};
    use t1map::dff::insert_dffs;
    use t1map::mapper::map;
    use t1map::phase::assign_phases;

    let lib = CellLibrary::default();
    let aig = epfl::adder(32);
    let mut group = c.benchmark_group("flow-stages-adder32");
    group.sample_size(20);
    group.bench_function("mapping", |b| {
        b.iter(|| map(&aig, &lib, None).circuit.len())
    });
    group.bench_function("detection", |b| {
        b.iter(|| detect(&aig, &lib, &DetectConfig::default()).found())
    });
    let mc = map(&aig, &lib, None).circuit;
    group.bench_function("phase-assignment", |b| {
        b.iter(|| assign_phases(&mc, 4, 2).horizon)
    });
    let sched = assign_phases(&mc, 4, 2);
    group.bench_function("dff-insertion", |b| {
        b.iter(|| insert_dffs(&mc, &sched).total_dffs)
    });
    group.finish();
}

criterion_group!(benches, bench_flows, bench_flow_stages);
criterion_main!(benches);
