//! Criterion benchmarks of the substrate layers: cut enumeration, NPN
//! canonization, the LP/MILP/SAT/CP solvers and the pulse simulator.

use criterion::{criterion_group, criterion_main, Criterion};
use sfq_circuits::epfl;
use sfq_netlist::cut::{enumerate_cuts, CutConfig};
use sfq_netlist::npn::npn_canonical;
use sfq_netlist::truth_table::TruthTable;
use sfq_solver::linear::{Constraint, LinExpr, Sense, VarId};
use sfq_solver::milp::MilpProblem;
use sfq_solver::sat::{SatLit, SatSolver};
use sfq_solver::simplex::solve_lp;
use t1map::cells::CellLibrary;
use t1map::flow::{run_flow, FlowConfig};
use t1map::to_pulse_circuit;

fn bench_netlist(c: &mut Criterion) {
    let aig = epfl::adder(64);
    let mut group = c.benchmark_group("netlist");
    group.sample_size(20);
    group.bench_function("cut-enum-adder64-k3", |b| {
        b.iter(|| {
            enumerate_cuts(
                &aig,
                &CutConfig {
                    max_leaves: 3,
                    max_cuts: 20,
                },
            )
            .total()
        })
    });
    group.bench_function("npn-canon-all-3var", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for bits in 0u64..256 {
                acc ^= npn_canonical(TruthTable::from_bits(3, bits)).canon.bits();
            }
            acc
        })
    });
    group.bench_function("eval64-adder64", |b| {
        let inputs: Vec<u64> = (0..aig.pi_count() as u64)
            .map(|i| i.wrapping_mul(0x9E37))
            .collect();
        b.iter(|| aig.eval64(&inputs))
    });
    group.finish();
}

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("solvers");
    group.sample_size(20);
    group.bench_function("simplex-20x40", |b| {
        // A scheduling-like LP: chain of difference constraints.
        let n = 40;
        let mut cons = Vec::new();
        for i in 0..n - 1 {
            cons.push(Constraint::new(
                LinExpr::var(VarId(i + 1)) - LinExpr::var(VarId(i)),
                Sense::Ge,
                1.0,
            ));
        }
        cons.push(Constraint::new(
            LinExpr::var(VarId(n - 1)),
            Sense::Le,
            100.0,
        ));
        let obj = LinExpr::var(VarId(n - 1)) - LinExpr::var(VarId(0));
        b.iter(|| solve_lp(n, &cons, &obj))
    });
    group.bench_function("milp-knapsack-12", |b| {
        b.iter(|| {
            let mut p = MilpProblem::new();
            let vars: Vec<_> = (0..12).map(|_| p.add_int_var(0.0, Some(1.0))).collect();
            let mut weight = LinExpr::new();
            let mut value = LinExpr::new();
            for (i, &v) in vars.iter().enumerate() {
                weight.add_term(v, (i % 5 + 1) as f64);
                value.add_term(v, -((i % 7 + 1) as f64));
            }
            p.add_constraint(weight, Sense::Le, 14.0);
            p.set_objective(value);
            p.solve().expect("feasible").objective
        })
    });
    group.bench_function("sat-php-6-5", |b| {
        b.iter(|| {
            let (p, h) = (6, 5);
            let mut s = SatSolver::new();
            let vars: Vec<Vec<_>> = (0..p)
                .map(|_| (0..h).map(|_| s.new_var()).collect())
                .collect();
            for row in &vars {
                s.add_clause(row.iter().map(|&v| SatLit::pos(v)));
            }
            for (a, row1) in vars.iter().enumerate() {
                for row2 in &vars[a + 1..] {
                    for (&va, &vb) in row1.iter().zip(row2) {
                        s.add_clause([SatLit::neg(va), SatLit::neg(vb)]);
                    }
                }
            }
            assert!(s.solve().is_none());
            s.conflicts
        })
    });
    group.finish();
}

fn bench_pulse_sim(c: &mut Criterion) {
    let lib = CellLibrary::default();
    let aig = epfl::adder(16);
    let res = run_flow(&aig, &lib, &FlowConfig::t1(4));
    let pc = to_pulse_circuit(&res.mapped, &res.schedule, &res.plan);
    let vectors: Vec<Vec<bool>> = (0..16u64)
        .map(|k| {
            (0..32)
                .map(|i| (k.wrapping_mul(0x9E3779B9) >> (i % 60)) & 1 == 1)
                .collect()
        })
        .collect();
    let mut group = c.benchmark_group("pulse-sim");
    group.sample_size(20);
    group.bench_function("adder16-t1-16waves", |b| {
        b.iter(|| pc.simulate(&vectors, 4).expect("valid").pulses)
    });
    group.finish();
}

criterion_group!(benches, bench_netlist, bench_solvers, bench_pulse_sim);
criterion_main!(benches);
