//! Regenerates Table I of the paper: all eight benchmarks through the 1φ,
//! 4φ and T1 flows, with ratio columns and averages.
//!
//! ```sh
//! cargo run --release -p sfq-bench --bin table1 [-- --small] [-- --csv out.csv]
//! ```

use sfq_bench::{paper_benchmarks, BenchmarkScale};
use std::time::Instant;
use t1map::cells::CellLibrary;
use t1map::report::TableOne;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let small = args.iter().any(|a| a == "--small");
    let csv_path = args
        .iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let scale = if small {
        BenchmarkScale::small()
    } else {
        BenchmarkScale::paper()
    };
    let lib = CellLibrary::default();
    let n = 4;

    println!(
        "Table I — multiphase clocking with T1 cells ({} scale, n = {n} phases)\n",
        if small { "small" } else { "paper" }
    );
    let mut table = TableOne::new();
    for (name, aig) in paper_benchmarks(&scale) {
        let t0 = Instant::now();
        table.add(name, &aig, &lib, n);
        eprintln!(
            "  {name:<11} {:>6} ANDs  mapped in {:>7.1?}",
            aig.and_count(),
            t0.elapsed()
        );
    }
    println!("\n{table}");
    println!(
        "paper averages for comparison: DFF T1/1φ 0.35, T1/4φ 0.94; \
         area 0.59 / 0.94; depth 0.29 / 1.13"
    );

    if let Some(path) = csv_path {
        std::fs::write(&path, table.to_csv()).expect("write CSV");
        println!("CSV written to {path}");
    }
}
