//! Regenerates Table I of the paper: all eight benchmarks through the 1φ,
//! 4φ and T1 flows, with ratio columns and averages.
//!
//! All benchmark×flow jobs are submitted up front to the `sfq-engine`
//! worker pool; results come back in deterministic input order, so the
//! table on stdout is byte-identical for every `--jobs` value (progress and
//! timing go to stderr). With `--cache-dir` the run is backed by the
//! persistent result store: a second run over a populated store performs
//! zero flow computations and prints a `store:` breakdown saying so.
//!
//! `--trace` writes a Chrome-trace JSON of the run (open it in
//! `chrome://tracing` or Perfetto) and `--bench-json` writes the
//! schema-versioned `BENCH_*.json` perf report; both are pure observers —
//! the table and CSV are byte-identical with or without them.
//!
//! ```sh
//! cargo run --release -p sfq-bench --bin table1 -- \
//!     [--small] [--pre-opt] [--jobs N] [--csv out.csv] [--cache-dir DIR] \
//!     [--trace t.json] [--bench-json BENCH_table1.json]
//! ```

use sfq_bench::{
    bench_json_flag, bench_report_json, csv_flag, jobs_flag, pre_opt_flag, progress_event,
    progress_line, result_rows, store_flag, store_summary, suite_summary, table1_jobs_with,
    table_one, trace_flag, BenchmarkScale, JobSample, ReportMeta,
};
use sfq_engine::SuiteRunner;
use std::process::ExitCode;
use t1map::cells::CellLibrary;

// Memory columns of `--bench-json` reports need the counting allocator;
// it is free (one relaxed load per call) until the recorder is enabled.
#[global_allocator]
static ALLOC: sfq_obs::alloc::CountingAlloc = sfq_obs::alloc::CountingAlloc::new();

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let small = args.iter().any(|a| a == "--small");
    let pre_opt = pre_opt_flag(args);
    let csv_path = csv_flag(args)?;
    let workers = jobs_flag(args)?;
    let store = store_flag(args)?;
    let trace_path = trace_flag(args)?;
    let bench_json_path = bench_json_flag(args)?;
    let observing = trace_path.is_some() || bench_json_path.is_some();
    if observing {
        sfq_obs::enable();
    }

    let scale = if small {
        BenchmarkScale::small()
    } else {
        BenchmarkScale::paper()
    };
    let lib = CellLibrary::default();
    let n = 4;

    println!(
        "Table I — multiphase clocking with T1 cells ({} scale, n = {n} phases{})\n",
        if small { "small" } else { "paper" },
        if pre_opt { ", pre-opt" } else { "" }
    );

    let jobs = table1_jobs_with(&scale, n, &lib, pre_opt);
    let mut runner = SuiteRunner::new(workers);
    if let Some(store) = &store {
        runner = runner.with_store(store.clone());
    }
    let mut samples = vec![JobSample::default(); jobs.len()];
    let report = runner.run_with_progress(&jobs, |o| {
        samples[o.index] = JobSample::from_outcome(&o);
        progress_event(&o);
    });
    let trace = observing.then(sfq_obs::take).unwrap_or_default();

    let table = table_one(&jobs, &report);
    println!("\n{table}");
    println!(
        "paper averages for comparison: DFF T1/1φ 0.35, T1/4φ 0.94; \
         area 0.59 / 0.94; depth 0.29 / 1.13"
    );
    if store.is_some() {
        println!("{}", store_summary(&report));
    }
    progress_line(suite_summary(jobs.len(), &report));

    if let Some(path) = csv_path {
        std::fs::write(&path, table.to_csv()).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("CSV written to {path}");
    }
    if let Some(path) = trace_path {
        std::fs::write(&path, trace.chrome_json())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("trace written to {path}");
    }
    if let Some(path) = bench_json_path {
        let meta = ReportMeta {
            suite: "table1".to_string(),
            scale: if small { "small" } else { "paper" }.to_string(),
            phases: n,
            pre_opt,
        };
        let rows = result_rows(&jobs, &report);
        let text = bench_report_json(&meta, &jobs, &rows, &report, &samples, &trace);
        std::fs::write(&path, text).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("bench report written to {path}");
    }
    Ok(())
}
