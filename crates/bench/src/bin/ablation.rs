//! Ablation studies extending the paper's evaluation:
//!
//! 1. **Phase-count sweep** (`abl-phases`): area/DFF/depth of the baseline
//!    and T1 flows as the number of clock phases varies. The paper fixes
//!    n = 4; the sweep shows where the T1 advantage peaks.
//! 2. **Heuristic vs exact phase assignment** (`abl-exact`): the optimality
//!    gap of the scalable local search against the exact MILP, on instances
//!    the MILP can solve.
//! 3. **Sharing-aware retiming** (`abl-retime`): the per-edge objective of
//!    the paper's ILP vs our shared-chain objective — how much the richer
//!    cost model saves on realized DFFs.
//! 4. **Pre-mapping optimization** (`abl-opt`): node/depth/#DFF deltas of
//!    the `sfq-opt` fixpoint pipeline on every Table-I benchmark.
//! 5. **Slack-aware rewriting** (`abl-sta`): what required-time-bounded
//!    rewriting (`sfq-sta` slack) buys over the conservative pipeline —
//!    node/depth deltas at the AIG level and #DFF deltas end to end.
//! 6. **Analysis context** (`abl-ctx`): scratch-vs-incremental analysis
//!    cost of the slack-aware fixpoint pipeline — one shared `OptContext`
//!    (STA built once, then incrementally rebound) against per-consumer
//!    scratch rebuilds, with byte-identical results asserted per row.
//!
//! ```sh
//! cargo run --release -p sfq-bench --bin ablation \
//!     [-- --jobs N] [--pre-opt] [--small|--paper] [--cache-dir DIR]
//! ```
//!
//! `--pre-opt` additionally runs the phase sweep itself on pre-optimized
//! networks. The benchmark-suite sections (`abl-opt`, `abl-sta`,
//! `abl-ctx`) run at small scale by default (`--small` spells it out, as
//! CI does); `--paper` selects the full Table-I widths. With `--cache-dir`
//! every engine-backed section shares one persistent result store, so
//! repeated runs (and other front ends pointed at the same directory) skip
//! already-computed flows.

use sfq_bench::{
    jobs_flag, opt_sweep_jobs, phase_sweep_jobs_with, pre_opt_flag, progress_event, progress_line,
    slack_sweep_jobs, store_flag, BenchmarkScale, SWEEP_PHASES,
};
use sfq_circuits::epfl;
use sfq_engine::SuiteRunner;
use std::process::ExitCode;
use std::sync::Arc;
use t1map::cells::CellLibrary;
use t1map::dff::insert_dffs;
use t1map::flow::{run_flow, FlowConfig};
use t1map::mapper::map;
use t1map::phase::{assign_phases_exact, assign_phases_with, edge_dff_objective, SearchObjective};

// Same counting allocator as the other binaries: inert until tracing.
#[global_allocator]
static ALLOC: sfq_obs::alloc::CountingAlloc = sfq_obs::alloc::CountingAlloc::new();

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let lib = CellLibrary::default();
    let workers = match jobs_flag(&args) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    // One runner for every engine-backed section; with --cache-dir it is
    // backed by the shared persistent store.
    let mut runner = SuiteRunner::new(workers);
    match store_flag(&args) {
        Ok(Some(store)) => runner = runner.with_store(store),
        Ok(None) => {}
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }

    let pre_opt = pre_opt_flag(&args);
    // The suite sections run small-scale unless --paper asks for Table-I
    // widths (--small spells the default out; CI passes it explicitly).
    let suite_scale = if args.iter().any(|a| a == "--paper") {
        BenchmarkScale::paper()
    } else {
        BenchmarkScale::small()
    };
    let scale_label = if args.iter().any(|a| a == "--paper") {
        "paper scale"
    } else {
        "small scale"
    };
    println!(
        "=== abl-phases: phase-count sweep (64-bit adder{}) ===",
        if pre_opt { ", pre-opt" } else { "" }
    );
    println!(
        "{:>2} | {:>9} {:>9} {:>6} | {:>9} {:>9} {:>6} | {:>10}",
        "n", "base DFF", "base area", "depth", "T1 DFF", "T1 area", "depth", "area ratio"
    );
    let aig = Arc::new(epfl::adder(64));
    // Each sweep point submits (baseline, T1, shared 1φ reference); the
    // engine's content-addressed cache computes the repeated 1φ job once.
    let jobs = phase_sweep_jobs_with("adder64", &aig, &lib, pre_opt);
    let report = runner.run_with_progress(&jobs, |o| progress_event(&o));
    for (n, triple) in SWEEP_PHASES.iter().zip(report.results.chunks(3)) {
        let (base, t1) = (&triple[0].stats, &triple[1].stats);
        println!(
            "{n:>2} | {:>9} {:>9} {:>6} | {:>9} {:>9} {:>6} | {:>10.3}",
            base.dffs,
            base.area,
            base.depth_cycles,
            t1.dffs,
            t1.area,
            t1.depth_cycles,
            t1.area as f64 / base.area as f64,
        );
    }
    // Single-phase reference (T1 is infeasible below three phases) —
    // computed once, served from cache for every other sweep point.
    let base1 = &report.results[2].stats;
    println!(
        " 1 | {:>9} {:>9} {:>6} | {:>9} {:>9} {:>6} | {:>10}",
        base1.dffs, base1.area, base1.depth_cycles, "-", "-", "-", "-"
    );
    progress_line(format_args!(
        "sweep: {} jobs on {} workers in {:.1?} ({} cache hits, {} flow runs)",
        jobs.len(),
        report.workers,
        report.elapsed,
        report.cache.hits(),
        report.cache.misses
    ));

    println!("\n=== abl-exact: heuristic vs exact MILP (per-edge ILP objective) ===");
    println!(
        "{:<10} {:>2} | {:>10} {:>10} {:>7}",
        "circuit", "n", "heuristic", "exact", "gap"
    );
    for (name, aig) in [
        ("adder2", epfl::adder(2)),
        ("adder3", epfl::adder(3)),
        ("adder4", epfl::adder(4)),
    ] {
        let mc = map(&aig, &lib, None).circuit;
        for n in [1u32, 2, 4] {
            let h = assign_phases_with(&mc, n, 3, SearchObjective::PerEdge);
            let ho = edge_dff_objective(&mc, &h);
            match assign_phases_exact(&mc, n) {
                Ok(e) => {
                    let eo = edge_dff_objective(&mc, &e);
                    let gap = if eo == 0 {
                        0.0
                    } else {
                        (ho as f64 - eo as f64) / eo as f64 * 100.0
                    };
                    println!("{name:<10} {n:>2} | {ho:>10} {eo:>10} {gap:>6.1}%");
                }
                Err(err) => println!("{name:<10} {n:>2} | {ho:>10} {:>10} (exact: {err})", "-"),
            }
        }
    }

    println!("\n=== abl-arch: adder architecture (ripple-carry vs Kogge-Stone) ===");
    println!(
        "{:<14} | {:>5} {:>5} | {:>9} {:>9} {:>10} | {:>6} {:>6}",
        "adder (32b)", "found", "used", "base area", "T1 area", "area ratio", "base D", "T1 D"
    );
    {
        use sfq_circuits::arith;
        use sfq_netlist::aig::Aig;
        let rca = epfl::adder(32);
        let mut ks = Aig::new();
        let a: Vec<_> = (0..32).map(|_| ks.add_pi()).collect();
        let b: Vec<_> = (0..32).map(|_| ks.add_pi()).collect();
        let (sum, carry) = arith::kogge_stone_adder(&mut ks, &a, &b);
        for s in sum {
            ks.add_po(s);
        }
        ks.add_po(carry);
        for (name, aig) in [("ripple-carry", rca), ("kogge-stone", ks)] {
            let base = run_flow(&aig, &lib, &FlowConfig::multiphase(4));
            let t1 = run_flow(&aig, &lib, &FlowConfig::t1(4));
            println!(
                "{name:<14} | {:>5} {:>5} | {:>9} {:>9} {:>10.3} | {:>6} {:>6}",
                t1.stats.t1_found,
                t1.stats.t1_used,
                base.stats.area,
                t1.stats.area,
                t1.stats.area as f64 / base.stats.area as f64,
                base.stats.depth_cycles,
                t1.stats.depth_cycles,
            );
        }
        println!(
            "(prefix adders trade the T1-friendly full-adder chain for shared\n\
             AND/OR prefix nodes: far fewer candidates, lower latency)"
        );
    }

    println!("\n=== abl-select: greedy vs exact (ILP) T1 group selection ===");
    println!(
        "{:<10} | {:>6} {:>12} {:>12} {:>12}",
        "circuit", "cands", "greedy gain", "exact gain", "greedy used"
    );
    {
        use t1map::detect::{detect, select_exact, DetectConfig};
        for (name, aig) in [
            ("adder8", epfl::adder(8)),
            ("adder16", epfl::adder(16)),
            ("square8", epfl::square(8)),
        ] {
            let res = detect(&aig, &lib, &DetectConfig::default());
            let greedy: i64 = res.selection.groups.iter().map(|g| g.gain.max(0)).sum();
            match select_exact(&aig, &res.candidates) {
                Ok(exact) => {
                    let eg: i64 = exact.groups.iter().map(|g| g.gain.max(0)).sum();
                    println!(
                        "{name:<10} | {:>6} {:>12} {:>12} {:>12}",
                        res.found(),
                        greedy,
                        eg,
                        res.selected()
                    );
                }
                Err(e) => println!(
                    "{name:<10} | {:>6} {greedy:>12} {:>12} ({e})",
                    res.found(),
                    "-"
                ),
            }
        }
        println!("(greedy-by-gain matches the ILP optimum on these instances)");
    }

    println!("\n=== abl-jitter: clock-jitter margin of the T1 staggering ===");
    println!(
        "{:>10} | {:>8} {:>10} {:>12}",
        "jitter", "hazards", "bit errors", "margin used"
    );
    {
        use sfq_sim::pulse::{SimOptions, SLOT, T1_MIN_SEPARATION};
        use t1map::to_pulse_circuit;
        let aig = epfl::adder(16);
        let res = run_flow(&aig, &lib, &FlowConfig::t1(4));
        let pc = to_pulse_circuit(&res.mapped, &res.schedule, &res.plan);
        let waves = 16usize;
        let mut seed = 0xFEE1_600D_u64 | 1;
        let vectors: Vec<Vec<bool>> = (0..waves)
            .map(|_| {
                (0..aig.pi_count())
                    .map(|_| {
                        seed ^= seed << 13;
                        seed ^= seed >> 7;
                        seed ^= seed << 17;
                        seed & 1 == 1
                    })
                    .collect()
            })
            .collect();
        // The nominal margin: pulses are SLOT apart, hazard below
        // T1_MIN_SEPARATION, so overlap needs 2·jitter > SLOT − threshold.
        for amplitude in [0u64, 100, 200, 250, 300, 400, 600, 900] {
            let mut hazards = 0u64;
            let mut errors = 0u64;
            for js in 0..4u64 {
                let (out, _) = pc
                    .simulate_opts(
                        &vectors,
                        4,
                        None,
                        SimOptions {
                            jitter_amplitude: amplitude,
                            jitter_seed: js,
                        },
                    )
                    .expect("valid schedule");
                hazards += out.hazards;
                for (k, v) in vectors.iter().enumerate() {
                    let expect = aig.eval(v);
                    errors += out.outputs[k]
                        .iter()
                        .zip(expect.iter())
                        .filter(|(a, b)| a != b)
                        .count() as u64;
                }
            }
            println!(
                "{:>9}± | {:>8} {:>10} {:>11.0}%",
                amplitude,
                hazards,
                errors,
                200.0 * amplitude as f64 / (SLOT - T1_MIN_SEPARATION) as f64
            );
        }
        println!(
            "(one stage slot = {SLOT}, hazard threshold = {T1_MIN_SEPARATION}: T1 pulse overlap \
             needs ~±{} of jitter.\n Functional bit errors appear much earlier: edges that use \
             the full n-stage\n capture window have only the clock-to-output delay ({} units) of \
             hold margin\n — the timing bottleneck is window-filling path balancing, not the T1 \
             staggering.)",
            (SLOT - T1_MIN_SEPARATION) / 2,
            sfq_sim::pulse::EMIT_DELAY
        );
    }

    println!("\n=== abl-opt: sfq-opt pre-mapping pipeline ({scale_label}, T1@4φ) ===");
    println!(
        "{:<10} | {:>6} {:>6} {:>6} | {:>5} {:>5} | {:>8} {:>8} {:>7}",
        "circuit", "nodes", "opt", "Δ%", "depth", "opt", "T1 DFF", "opt DFF", "Δ%"
    );
    {
        use sfq_opt::{optimize, OptConfig};
        let scale = suite_scale;
        let jobs = opt_sweep_jobs(&scale, 4, &lib);
        let report = runner.run(&jobs);
        for (pair, job) in report.results.chunks(2).zip(jobs.iter().step_by(2)) {
            let (_, opt_report) = optimize(&job.aig, &OptConfig::standard());
            let (plain, opted) = (&pair[0].stats, &pair[1].stats);
            println!(
                "{:<10} | {:>6} {:>6} {:>5.1}% | {:>5} {:>5} | {:>8} {:>8} {:>6.1}%",
                job.name,
                opt_report.nodes_before,
                opt_report.nodes_after,
                100.0 * opt_report.node_delta() as f64 / opt_report.nodes_before.max(1) as f64,
                opt_report.depth_before,
                opt_report.depth_after,
                plain.dffs,
                opted.dffs,
                100.0 * (opted.dffs as f64 - plain.dffs as f64) / plain.dffs.max(1) as f64,
            );
        }
        println!(
            "(negative Δ = reduction; the pipeline is guarded, so nodes and depth\n\
             never increase — DFFs can move either way since path-balancing cost\n\
             depends on the schedule, not just the gate count)"
        );
    }

    println!("\n=== abl-sta: slack-aware vs conservative rewriting ({scale_label}, T1@4φ) ===");
    println!(
        "{:<10} | {:>6} {:>6} {:>6} | {:>5} {:>5} | {:>8} {:>8} | {:>16}",
        "circuit", "cons n", "slck n", "Δn", "consD", "slckD", "cons DFF", "slck DFF", "delta"
    );
    {
        let scale = suite_scale;
        let jobs = slack_sweep_jobs(&scale, 4, &lib);
        let report = runner.run(&jobs);
        let mut node_wins = 0usize;
        for (pair, job) in report.results.chunks(2).zip(jobs.iter().step_by(2)) {
            // The flows already ran both pre-opt pipelines inside the
            // engine; read their AIG-level reports instead of re-running.
            let cons = pair[0].pre_opt.as_ref().expect("T1+opt ran pre-opt");
            let slack = pair[1].pre_opt.as_ref().expect("T1+slack ran pre-opt");
            let dn = cons.nodes_after as i64 - slack.nodes_after as i64;
            if dn > 0 {
                node_wins += 1;
            }
            let (cons_flow, slack_flow) = (&pair[0].stats, &pair[1].stats);
            println!(
                "{:<10} | {:>6} {:>6} {:>+6} | {:>5} {:>5} | {:>8} {:>8} | delta {:>+5.1}% n",
                job.name,
                cons.nodes_after,
                slack.nodes_after,
                -dn,
                cons.depth_after,
                slack.depth_after,
                cons_flow.dffs,
                slack_flow.dffs,
                -100.0 * dn as f64 / cons.nodes_after.max(1) as f64,
            );
        }
        println!(
            "abl-sta: slack-aware rewriting strictly reduced nodes on {node_wins}/{} \
             benchmarks (depth never above the subject's; per-site growth is \
             bounded by required-time slack)",
            jobs.len() / 2
        );
    }

    println!("\n=== abl-ctx: shared analysis context vs scratch rebuilds ({scale_label}, slack-aware fixpoint) ===");
    println!(
        "{:<10} | {:>6} | {:>9} {:>9} {:>7} | {:>9} {:>9} | {:>11} | {:>9}",
        "circuit",
        "nodes",
        "scratch",
        "ctx",
        "ratio",
        "STA s/c",
        "refr/net",
        "cache hits",
        "identical"
    );
    {
        use sfq_bench::paper_benchmarks;
        use sfq_opt::{OptConfig, OptContext, Pipeline};
        use std::time::Instant;
        let pipeline = Pipeline::from_config(&OptConfig::slack_aware());
        let mut identical_rows = 0usize;
        let mut rows = 0usize;
        for (name, aig) in paper_benchmarks(&suite_scale) {
            let t0 = Instant::now();
            let mut scratch_net = aig.clone();
            let mut scratch_ctx = OptContext::scratch();
            let scratch = pipeline.run_until_fixpoint_with(&mut scratch_net, 8, &mut scratch_ctx);
            let t_scratch = t0.elapsed();

            let t1 = Instant::now();
            let mut ctx_net = aig.clone();
            let mut ctx = OptContext::new();
            let shared = pipeline.run_until_fixpoint_with(&mut ctx_net, 8, &mut ctx);
            let t_ctx = t1.elapsed();

            let identical = scratch_net.structural_hash() == ctx_net.structural_hash();
            rows += 1;
            identical_rows += identical as usize;
            println!(
                "{:<10} | {:>6} | {:>9.1?} {:>9.1?} {:>6.2}x | {:>4}/{:<4} {:>9} | {:>11} | {:>9}",
                name,
                shared.nodes_after,
                t_scratch,
                t_ctx,
                t_scratch.as_secs_f64() / t_ctx.as_secs_f64().max(1e-9),
                scratch.analysis.sta_full_builds,
                shared.analysis.sta_full_builds,
                format!(
                    "{}/{}",
                    shared.analysis.sta_nodes_refreshed,
                    2 * aig.len() * scratch.analysis.sta_full_builds.max(1)
                ),
                shared.analysis.cache_hits,
                if identical { "yes" } else { "NO" }
            );
        }
        println!(
            "abl-ctx: identical results on {identical_rows}/{rows} benchmarks; the shared \
             context builds the STA at most once per run\n(refr/net = STA nodes refreshed \
             incrementally vs ≈2·n node visits a scratch pipeline pays across its rebuilds)"
        );
    }

    println!("\n=== abl-retime: per-edge (paper) vs sharing-aware objective ===");
    println!(
        "{:<10} {:>2} | {:>10} {:>12} {:>8}",
        "circuit", "n", "per-edge", "share-aware", "saved"
    );
    for (name, aig) in [("adder32", epfl::adder(32)), ("square16", epfl::square(16))] {
        let mc = map(&aig, &lib, None).circuit;
        for n in [1u32, 4] {
            let pe = assign_phases_with(&mc, n, 3, SearchObjective::PerEdge);
            let sc = assign_phases_with(&mc, n, 3, SearchObjective::SharedChains);
            let pe_d = insert_dffs(&mc, &pe).total_dffs;
            let sc_d = insert_dffs(&mc, &sc).total_dffs;
            println!(
                "{name:<10} {n:>2} | {pe_d:>10} {sc_d:>12} {:>7.1}%",
                (pe_d as f64 - sc_d as f64) / pe_d as f64 * 100.0
            );
        }
    }
    ExitCode::SUCCESS
}
