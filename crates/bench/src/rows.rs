//! Shared result-row formatting for every suite front end.
//!
//! `table1`, `ablation` and the CLI `suite` subcommand all turn a job list
//! plus a [`SuiteReport`] into rows, progress lines, summary lines and CSV.
//! One implementation keeps the three front ends byte-identical where they
//! overlap — in particular, the engine's submission-ordered results make
//! every function here independent of worker count, so `--jobs 1` and
//! `--jobs N` produce identical tables and CSV.

use sfq_engine::{Job, JobOutcome, SuiteReport};
use t1map::flow::FlowStats;
use t1map::report::{TableOne, TableRow};

use crate::progress_line;

/// One job's result, labelled for rendering: the benchmark and flow names
/// from the [`Job`] plus the aggregate [`FlowStats`] of its result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResultRow {
    /// Benchmark name (e.g. `"adder"`).
    pub name: String,
    /// Flow label (e.g. `"1φ"`, `"T1@4φ"`).
    pub flow: String,
    /// Aggregate metrics of the result.
    pub stats: FlowStats,
}

impl ResultRow {
    /// `name/flow`, matching [`Job::label`].
    pub fn label(&self) -> String {
        format!("{}/{}", self.name, self.flow)
    }
}

/// Pairs each submitted job with its (submission-ordered) result.
///
/// # Panics
///
/// Panics if `report` was produced from a different job list.
pub fn result_rows(jobs: &[Job], report: &SuiteReport) -> Vec<ResultRow> {
    assert_eq!(
        jobs.len(),
        report.results.len(),
        "report does not match the job list"
    );
    jobs.iter()
        .zip(&report.results)
        .map(|(job, result)| ResultRow {
            name: job.name.clone(),
            flow: job.flow.clone(),
            stats: result.stats,
        })
        .collect()
}

/// Per-job CSV over [`ResultRow`]s: one line per row in submission order,
/// with a header. Used by the sweep-style front ends; the Table-I front
/// ends use [`table_one`] (ratio columns and averages) instead.
pub fn rows_csv(rows: &[ResultRow]) -> String {
    let mut csv = String::from(
        "benchmark,flow,t1_found,t1_used,gates,dffs,splitters,cell_area,area,depth_cycles\n",
    );
    for r in rows {
        csv.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{}\n",
            r.name,
            r.flow,
            r.stats.t1_found,
            r.stats.t1_used,
            r.stats.gates,
            r.stats.dffs,
            r.stats.splitters,
            r.stats.cell_area,
            r.stats.area,
            r.stats.depth_cycles
        ));
    }
    csv
}

/// Assembles the Table-I view from a suite laid out as consecutive
/// `(1φ, nφ, T1)` triples (the layout of
/// [`table1_jobs`](crate::table1_jobs)).
///
/// # Panics
///
/// Panics if the job list is not a whole number of triples or does not
/// match the report.
pub fn table_one(jobs: &[Job], report: &SuiteReport) -> TableOne {
    assert_eq!(
        jobs.len(),
        report.results.len(),
        "report does not match the job list"
    );
    assert_eq!(jobs.len() % 3, 0, "Table-I suites are (1φ, nφ, T1) triples");
    let mut table = TableOne::new();
    for (triple, job) in report.results.chunks(3).zip(jobs.iter().step_by(3)) {
        table.push(TableRow::from_stats(
            &job.name,
            triple[0].stats,
            triple[1].stats,
            triple[2].stats,
        ));
    }
    table
}

/// The shared per-job progress line (stderr): completion counter, label,
/// subject size, result source, duration, and the monotonic elapsed time
/// since run start (`t+<micros>µs`) so interleaved parallel logs order.
pub fn progress_event(o: &JobOutcome<'_>) {
    progress_line(format_args!(
        "  [{:>2}/{}] {:<14} {:>6} ANDs  {} in {:>7.1?}  t+{}µs",
        o.completed,
        o.total,
        o.job.label(),
        o.job.aig.and_count(),
        o.source.label(),
        o.duration,
        o.elapsed.as_micros()
    ));
}

/// The shared end-of-suite summary line (for [`progress_line`]).
pub fn suite_summary(jobs: usize, report: &SuiteReport) -> String {
    let c = &report.cache;
    format!(
        "suite: {} jobs on {} workers in {:.1?} ({} cache hits, {} flow runs)",
        jobs,
        report.workers,
        report.elapsed,
        c.hits(),
        c.misses
    )
}

/// Per-backend store breakdown (stdout when a persistent store is in use,
/// and `suite --stats`). The "flow runs" figure is what warm-start CI greps
/// for: a second run over a populated store must report `0 flow runs`.
pub fn store_summary(report: &SuiteReport) -> String {
    let c = &report.cache;
    format!(
        "store: {} memory hits, {} disk hits, {} flow runs, {} disk entries \
         ({} disk reads failed)",
        c.memory_hits, c.disk_hits, c.misses, c.disk.entries, c.disk.errors
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{table1_jobs, BenchmarkScale};
    use sfq_engine::SuiteRunner;
    use t1map::cells::CellLibrary;

    #[test]
    fn rows_and_csv_are_independent_of_worker_count() {
        let lib = CellLibrary::default();
        let jobs = table1_jobs(&BenchmarkScale::small(), 4, &lib);
        let serial = SuiteRunner::new(1).run(&jobs);
        let parallel = SuiteRunner::new(4).run(&jobs);

        let rows1 = result_rows(&jobs, &serial);
        let rows_n = result_rows(&jobs, &parallel);
        assert_eq!(rows1, rows_n);
        assert_eq!(rows_csv(&rows1), rows_csv(&rows_n), "per-job CSV");
        assert_eq!(
            table_one(&jobs, &serial).to_csv(),
            table_one(&jobs, &parallel).to_csv(),
            "Table-I CSV"
        );
        assert_eq!(rows1[0].label(), "adder/1φ");
    }
}
