//! Shared flag parsing for the suite-running binaries.
//!
//! `table1`, `ablation` and the CLI `suite` subcommand all take `--jobs`
//! (and two of them `--csv`); one parser keeps the three front ends
//! agreeing on syntax and on *failing loudly* — a bare `--csv` or a
//! malformed `--jobs` is a hard error, never a silently dropped file or a
//! silent fallback to the default worker count.

use sfq_engine::{default_workers, DiskStore, ResultCache};
use std::sync::Arc;

/// Parses `--csv <path>`: `Ok(Some(path))` when present with a path,
/// `Ok(None)` when absent, and an error when the path is missing or looks
/// like another flag.
pub fn csv_flag(args: &[String]) -> Result<Option<String>, String> {
    let Some(i) = args.iter().position(|a| a == "--csv") else {
        return Ok(None);
    };
    match args.get(i + 1) {
        Some(path) if !path.starts_with('-') => Ok(Some(path.clone())),
        _ => Err("--csv requires a file path (e.g. --csv table1.csv)".to_string()),
    }
}

/// Parses `--pre-opt`: enable the `sfq-opt` pre-mapping optimization stage
/// on every job of the suite.
pub fn pre_opt_flag(args: &[String]) -> bool {
    args.iter().any(|a| a == "--pre-opt")
}

/// Parses `--cache-dir <dir>`: `Ok(Some(dir))` when present with a path,
/// `Ok(None)` when absent, and an error when the path is missing or looks
/// like another flag.
pub fn cache_dir_flag(args: &[String]) -> Result<Option<String>, String> {
    let Some(i) = args.iter().position(|a| a == "--cache-dir") else {
        return Ok(None);
    };
    match args.get(i + 1) {
        Some(dir) if !dir.starts_with('-') => Ok(Some(dir.clone())),
        _ => Err("--cache-dir requires a directory (e.g. --cache-dir .sfq-cache)".to_string()),
    }
}

/// Parses `--cache-dir` and, when present, opens the persistent store under
/// it: an in-memory [`ResultCache`] layered over a [`DiskStore`], ready to
/// hand to [`SuiteRunner::with_store`](sfq_engine::SuiteRunner::with_store).
pub fn store_flag(args: &[String]) -> Result<Option<Arc<ResultCache>>, String> {
    let Some(dir) = cache_dir_flag(args)? else {
        return Ok(None);
    };
    let disk = DiskStore::open(&dir).map_err(|e| format!("--cache-dir {dir}: {e}"))?;
    Ok(Some(Arc::new(ResultCache::with_backing(Arc::new(disk)))))
}

/// Parses `--trace <path>`: write a Chrome-trace JSON of the run there.
/// Same contract as [`csv_flag`]: a bare `--trace` is a hard error.
pub fn trace_flag(args: &[String]) -> Result<Option<String>, String> {
    let Some(i) = args.iter().position(|a| a == "--trace") else {
        return Ok(None);
    };
    match args.get(i + 1) {
        Some(path) if !path.starts_with('-') => Ok(Some(path.clone())),
        _ => Err("--trace requires a file path (e.g. --trace t.json)".to_string()),
    }
}

/// Parses `--bench-json <path>`: write the schema-versioned bench report
/// (the `BENCH_*.json` perf trajectory) there. Bare flag is a hard error.
pub fn bench_json_flag(args: &[String]) -> Result<Option<String>, String> {
    let Some(i) = args.iter().position(|a| a == "--bench-json") else {
        return Ok(None);
    };
    match args.get(i + 1) {
        Some(path) if !path.starts_with('-') => Ok(Some(path.clone())),
        _ => Err(
            "--bench-json requires a file path (e.g. --bench-json BENCH_table1.json)".to_string(),
        ),
    }
}

/// Parses `--jobs <N>` (N ≥ 1), defaulting to the machine's available
/// parallelism when the flag is absent.
pub fn jobs_flag(args: &[String]) -> Result<usize, String> {
    let Some(i) = args.iter().position(|a| a == "--jobs") else {
        return Ok(default_workers());
    };
    let value = args
        .get(i + 1)
        .ok_or("--jobs requires a worker count (e.g. --jobs 4)")?;
    match value.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!("--jobs: '{value}' is not a positive integer")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn csv_present_absent_and_missing_path() {
        assert_eq!(
            csv_flag(&args(&["--csv", "out.csv"])).unwrap(),
            Some("out.csv".into())
        );
        assert_eq!(csv_flag(&args(&["--small"])).unwrap(), None);
        assert!(csv_flag(&args(&["--csv"])).is_err(), "bare --csv");
        assert!(
            csv_flag(&args(&["--csv", "--small"])).is_err(),
            "flag where the path should be"
        );
    }

    #[test]
    fn cache_dir_present_absent_and_missing_path() {
        assert_eq!(
            cache_dir_flag(&args(&["--cache-dir", "store"])).unwrap(),
            Some("store".into())
        );
        assert_eq!(cache_dir_flag(&args(&["--small"])).unwrap(), None);
        assert!(cache_dir_flag(&args(&["--cache-dir"])).is_err());
        assert!(cache_dir_flag(&args(&["--cache-dir", "--small"])).is_err());
        assert!(store_flag(&args(&[])).unwrap().is_none());
    }

    #[test]
    fn trace_and_bench_json_fail_loudly_on_missing_paths() {
        assert_eq!(
            trace_flag(&args(&["--trace", "t.json"])).unwrap(),
            Some("t.json".into())
        );
        assert_eq!(trace_flag(&args(&["--small"])).unwrap(), None);
        assert!(trace_flag(&args(&["--trace"])).is_err());
        assert!(trace_flag(&args(&["--trace", "--small"])).is_err());
        assert_eq!(
            bench_json_flag(&args(&["--bench-json", "b.json"])).unwrap(),
            Some("b.json".into())
        );
        assert_eq!(bench_json_flag(&args(&[])).unwrap(), None);
        assert!(bench_json_flag(&args(&["--bench-json"])).is_err());
        assert!(bench_json_flag(&args(&["--bench-json", "--csv"])).is_err());
    }

    #[test]
    fn jobs_valid_invalid_and_default() {
        assert_eq!(jobs_flag(&args(&["--jobs", "3"])).unwrap(), 3);
        assert!(jobs_flag(&args(&[])).unwrap() >= 1, "defaults to ≥ 1");
        for bad in [&["--jobs"][..], &["--jobs", "0"], &["--jobs", "abc"]] {
            assert!(jobs_flag(&args(bad)).is_err(), "{bad:?} must hard-error");
        }
    }
}
