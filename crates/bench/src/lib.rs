//! # sfq-bench
//!
//! Benchmark harness regenerating every table and figure of the paper:
//!
//! - `table1` binary — the full Table I (all eight benchmarks × three
//!   flows, ratio columns and averages), printed and written as CSV;
//! - `ablation` binary — phase-count sweep and heuristic-vs-exact /
//!   sharing-aware-retiming ablations (extensions beyond the paper);
//! - Criterion benches (`table1`, `substrates`) — flow and substrate
//!   runtime measurements.
//!
//! The paper-scale benchmark set is exposed as [`paper_benchmarks`] so the
//! binaries, the Criterion benches and the integration tests agree on the
//! exact workloads.

use sfq_circuits::{epfl, iscas};
use sfq_netlist::aig::Aig;

/// Operand widths used for the Table-I reproduction.
///
/// The generators reproduce each benchmark's *structure class*
/// (DESIGN.md §4); widths are chosen paper-scale where runtime permits and
/// reduced otherwise (noted per benchmark in EXPERIMENTS.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchmarkScale {
    /// `adder` width (paper: 128).
    pub adder_bits: usize,
    /// `multiplier` width (paper: 64; array multipliers grow quadratically).
    pub multiplier_bits: usize,
    /// `square` width (paper: 64).
    pub square_bits: usize,
    /// `sin` fixed-point width (paper: 24).
    pub sin_bits: usize,
    /// `log2` width (paper: 32).
    pub log2_bits: usize,
    /// `voter` input count (paper: 1001).
    pub voter_inputs: usize,
}

impl BenchmarkScale {
    /// The scale used by the shipped Table-I reproduction.
    pub fn paper() -> Self {
        BenchmarkScale {
            adder_bits: 128,
            multiplier_bits: 32,
            square_bits: 32,
            sin_bits: 16,
            log2_bits: 32,
            voter_inputs: 255,
        }
    }

    /// A small scale for CI and unit tests.
    pub fn small() -> Self {
        BenchmarkScale {
            adder_bits: 16,
            multiplier_bits: 8,
            square_bits: 8,
            sin_bits: 8,
            log2_bits: 16,
            voter_inputs: 31,
        }
    }
}

/// Builds the eight Table-I benchmarks (in the paper's row order) at the
/// given scale.
pub fn paper_benchmarks(scale: &BenchmarkScale) -> Vec<(&'static str, Aig)> {
    vec![
        ("adder", epfl::adder(scale.adder_bits)),
        ("c7552", iscas::c7552_like()),
        ("c6288", iscas::c6288_like()),
        ("sin", epfl::sin(scale.sin_bits)),
        ("voter", epfl::voter(scale.voter_inputs)),
        ("square", epfl::square(scale.square_bits)),
        ("multiplier", epfl::multiplier(scale.multiplier_bits)),
        ("log2", epfl::log2(scale.log2_bits)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scale_builds_all_benchmarks() {
        let benches = paper_benchmarks(&BenchmarkScale::small());
        assert_eq!(benches.len(), 8);
        for (name, aig) in &benches {
            assert!(aig.and_count() > 10, "{name} too small");
            assert!(aig.po_count() > 0, "{name} has no outputs");
        }
    }

    #[test]
    fn row_order_matches_paper() {
        let names: Vec<&str> = paper_benchmarks(&BenchmarkScale::small())
            .iter()
            .map(|(n, _)| *n)
            .collect();
        assert_eq!(
            names,
            [
                "adder",
                "c7552",
                "c6288",
                "sin",
                "voter",
                "square",
                "multiplier",
                "log2"
            ]
        );
    }
}
