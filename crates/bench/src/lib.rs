//! # sfq-bench
//!
//! Benchmark harness regenerating every table and figure of the paper:
//!
//! - `table1` binary — the full Table I (all eight benchmarks × three
//!   flows, ratio columns and averages), printed and written as CSV;
//! - `ablation` binary — phase-count sweep and heuristic-vs-exact /
//!   sharing-aware-retiming ablations (extensions beyond the paper);
//! - Criterion benches (`table1`, `substrates`) — flow and substrate
//!   runtime measurements.
//!
//! The paper-scale benchmark set is exposed as [`paper_benchmarks`] so the
//! binaries, the Criterion benches and the integration tests agree on the
//! exact workloads, and the suites themselves are exposed as `sfq-engine`
//! job lists ([`table1_jobs`], [`phase_sweep_jobs`]) so every consumer runs
//! them through the same parallel, cached execution engine.

use sfq_circuits::{epfl, iscas};
use sfq_engine::Job;
use sfq_netlist::aig::Aig;
use std::sync::Arc;
use t1map::cells::CellLibrary;
use t1map::flow::FlowConfig;

pub mod args;
pub mod diff;
pub mod progress;
pub mod report;
pub mod rows;
pub use args::{
    bench_json_flag, cache_dir_flag, csv_flag, jobs_flag, pre_opt_flag, store_flag, trace_flag,
};
pub use diff::{diff_reports, DiffReport, DiffStatus, JobDiff, DEFAULT_MAX_REGRESS_PCT};
pub use progress::progress_line;
pub use report::{
    bench_report_json, tool_report_json, validate as validate_bench_report, JobSample, ReportEntry,
    ReportMeta,
};
pub use rows::{
    progress_event, result_rows, rows_csv, store_summary, suite_summary, table_one, ResultRow,
};

/// Operand widths used for the Table-I reproduction.
///
/// The generators reproduce each benchmark's *structure class*
/// (DESIGN.md §4); widths are chosen paper-scale where runtime permits and
/// reduced otherwise (noted per benchmark in EXPERIMENTS.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchmarkScale {
    /// `adder` width (paper: 128).
    pub adder_bits: usize,
    /// `multiplier` width (paper: 64; array multipliers grow quadratically).
    pub multiplier_bits: usize,
    /// `square` width (paper: 64).
    pub square_bits: usize,
    /// `sin` fixed-point width (paper: 24).
    pub sin_bits: usize,
    /// `log2` width (paper: 32).
    pub log2_bits: usize,
    /// `voter` input count (paper: 1001).
    pub voter_inputs: usize,
    /// Gate budget of the scale-class random benchmark (paper: 100 000,
    /// matching the `scale-100k` registry default).
    pub scale_gates: usize,
}

impl BenchmarkScale {
    /// The scale used by the shipped Table-I reproduction.
    pub fn paper() -> Self {
        BenchmarkScale {
            adder_bits: 128,
            multiplier_bits: 32,
            square_bits: 32,
            sin_bits: 16,
            log2_bits: 32,
            voter_inputs: 255,
            scale_gates: 100_000,
        }
    }

    /// A small scale for CI and unit tests.
    pub fn small() -> Self {
        BenchmarkScale {
            adder_bits: 16,
            multiplier_bits: 8,
            square_bits: 8,
            sin_bits: 8,
            log2_bits: 16,
            voter_inputs: 31,
            scale_gates: 2_000,
        }
    }
}

/// Builds the eight Table-I benchmarks (in the paper's row order) at the
/// given scale.
pub fn paper_benchmarks(scale: &BenchmarkScale) -> Vec<(&'static str, Aig)> {
    vec![
        ("adder", epfl::adder(scale.adder_bits)),
        ("c7552", iscas::c7552_like()),
        ("c6288", iscas::c6288_like()),
        ("sin", epfl::sin(scale.sin_bits)),
        ("voter", epfl::voter(scale.voter_inputs)),
        ("square", epfl::square(scale.square_bits)),
        ("multiplier", epfl::multiplier(scale.multiplier_bits)),
        ("log2", epfl::log2(scale.log2_bits)),
    ]
}

/// Flow labels of the three Table-I columns, in column order. Every
/// benchmark contributes one job per label (see [`table1_jobs`]).
pub const TABLE1_FLOWS: [&str; 3] = ["1φ", "nφ", "T1"];

/// The complete Table-I suite as an `sfq-engine` job list: every benchmark
/// of [`paper_benchmarks`] × the three flows of [`TABLE1_FLOWS`], in
/// row-major paper order. Chunking the engine's (submission-ordered)
/// results by 3 therefore yields one `(1φ, nφ, T1)` triple per benchmark.
pub fn table1_jobs(scale: &BenchmarkScale, n: u32, lib: &CellLibrary) -> Vec<Job> {
    table1_jobs_with(scale, n, lib, false)
}

/// [`table1_jobs`] with an optional `sfq-opt` pre-mapping stage on every
/// flow (`--pre-opt` on the binaries). Optimized jobs carry a different
/// [`FlowConfig`] fingerprint, so the engine caches the two flavors
/// separately.
pub fn table1_jobs_with(
    scale: &BenchmarkScale,
    n: u32,
    lib: &CellLibrary,
    pre_opt: bool,
) -> Vec<Job> {
    // Every Table-I job runs the post-scheduling timing stage: it is pure
    // analysis (stats and CSV provably unchanged — see
    // `timing_stage_attaches_a_summary` in `t1map::flow`), so traces and
    // bench reports carry schedule-slack data on every benchmark.
    let stage = |config: FlowConfig| {
        let timed = config.to_builder().timing(true);
        if pre_opt {
            timed.standard_opt().build()
        } else {
            timed.build()
        }
    };
    let mut jobs = Vec::new();
    for (name, aig) in paper_benchmarks(scale) {
        let aig = Arc::new(aig);
        for (flow, config) in [
            (TABLE1_FLOWS[0], FlowConfig::single_phase()),
            (TABLE1_FLOWS[1], FlowConfig::multiphase(n)),
            (TABLE1_FLOWS[2], FlowConfig::t1(n)),
        ] {
            jobs.push(Job::new(name, flow, aig.clone(), *lib, stage(config)));
        }
    }
    jobs
}

/// Flow label of the fixpoint-optimization jobs of [`fixpoint_opt_jobs`].
pub const FIXPOINT_OPT_FLOW: &str = "T1+fix";

/// The scale-class fixpoint-optimization jobs the bench report appends to
/// the Table-I suite: `adder`, `multiplier` and the seeded `scale-100k`
/// random network, each through the T1 flow with a *fixpoint* `sfq-opt`
/// stage in front. These are the allocation-sensitive rows of the
/// regression baseline — the optimizer dominates their `alloc_bytes`, so
/// they pin the cost of the in-place-vs-rebuild transform strategy.
///
/// `rebuild_passes` selects that strategy (rebuild passes clone the
/// network once per pass per round); the two flavors produce byte-identical
/// networks, which is exactly why the flag is worth measuring and not
/// worth fingerprinting.
pub fn fixpoint_opt_jobs(
    scale: &BenchmarkScale,
    n: u32,
    lib: &CellLibrary,
    rebuild_passes: bool,
) -> Vec<Job> {
    let mut opt = sfq_opt::OptConfig::standard();
    opt.rebuild_passes = rebuild_passes;
    let subjects = [
        ("adder", epfl::adder(scale.adder_bits)),
        ("multiplier", epfl::multiplier(scale.multiplier_bits)),
        (
            "scale-100k",
            sfq_circuits::named::build("scale-100k", scale.scale_gates)
                .expect("scale-100k is registered"),
        ),
    ];
    subjects
        .into_iter()
        .map(|(name, aig)| {
            Job::new(
                name,
                FIXPOINT_OPT_FLOW,
                Arc::new(aig),
                *lib,
                FlowConfig::t1(n)
                    .to_builder()
                    .timing(true)
                    .pre_opt(opt.clone())
                    .build(),
            )
        })
        .collect()
}

/// Phase counts swept by the ablation study (T1 needs ≥ 3 phases).
pub const SWEEP_PHASES: [u32; 5] = [3, 4, 5, 6, 8];

/// The ablation phase-sweep suite as an `sfq-engine` job list: for every
/// `n` in [`SWEEP_PHASES`], the multiphase baseline, the T1 flow and the
/// shared single-phase reference — three jobs per sweep point, so chunking
/// the results by 3 yields one `(baseline, T1, 1φ)` triple per `n`.
///
/// The 1φ reference is deliberately submitted *per sweep point*: its
/// content address is identical every time, so the engine's
/// content-addressed cache computes it once and serves the remaining
/// `SWEEP_PHASES.len() - 1` requests as cache hits. This keeps the suite
/// definition declarative (each row names everything it reads) without
/// paying for the redundancy.
pub fn phase_sweep_jobs(name: &str, aig: &Arc<Aig>, lib: &CellLibrary) -> Vec<Job> {
    phase_sweep_jobs_with(name, aig, lib, false)
}

/// [`phase_sweep_jobs`] with an optional `sfq-opt` pre-mapping stage.
pub fn phase_sweep_jobs_with(
    name: &str,
    aig: &Arc<Aig>,
    lib: &CellLibrary,
    pre_opt: bool,
) -> Vec<Job> {
    let stage = |config: FlowConfig| {
        if pre_opt {
            config.to_builder().standard_opt().build()
        } else {
            config
        }
    };
    let mut jobs = Vec::new();
    for n in SWEEP_PHASES {
        jobs.push(Job::new(
            name,
            format!("{n}φ"),
            aig.clone(),
            *lib,
            stage(FlowConfig::multiphase(n)),
        ));
        jobs.push(Job::new(
            name,
            format!("T1@{n}φ"),
            aig.clone(),
            *lib,
            stage(FlowConfig::t1(n)),
        ));
        jobs.push(Job::new(
            name,
            "1φ",
            aig.clone(),
            *lib,
            stage(FlowConfig::single_phase()),
        ));
    }
    jobs
}

/// The pre-mapping optimization sweep: for every Table-I benchmark, the T1
/// flow without and with the `sfq-opt` stage — two jobs per benchmark, in
/// [`paper_benchmarks`] order, so chunking the engine's results by 2 yields
/// one `(plain, pre-opt)` pair per row. Together with a local
/// `sfq_opt::optimize` run for the AIG-level numbers, this is what the
/// `ablation` binary's `abl-opt` section prints (node/depth/#DFF deltas per
/// benchmark).
pub fn opt_sweep_jobs(scale: &BenchmarkScale, n: u32, lib: &CellLibrary) -> Vec<Job> {
    let mut jobs = Vec::new();
    for (name, aig) in paper_benchmarks(scale) {
        let aig = Arc::new(aig);
        jobs.push(Job::new(name, "T1", aig.clone(), *lib, FlowConfig::t1(n)));
        jobs.push(Job::new(
            name,
            "T1+opt",
            aig.clone(),
            *lib,
            FlowConfig::t1(n).to_builder().standard_opt().build(),
        ));
    }
    jobs
}

/// The slack-aware optimization sweep behind the `abl-sta` ablation: for
/// every Table-I benchmark, the T1 flow with the conservative pre-opt stage
/// and with the slack-aware one — two jobs per benchmark, in
/// [`paper_benchmarks`] order, so chunking the engine's results by 2 yields
/// one `(conservative, slack-aware)` pair per row. Combined with local
/// `sfq_opt::optimize` runs for the AIG-level numbers, this quantifies what
/// required-time-bounded rewriting buys end to end (node/depth/#DFF deltas).
pub fn slack_sweep_jobs(scale: &BenchmarkScale, n: u32, lib: &CellLibrary) -> Vec<Job> {
    let mut jobs = Vec::new();
    for (name, aig) in paper_benchmarks(scale) {
        let aig = Arc::new(aig);
        jobs.push(Job::new(
            name,
            "T1+opt",
            aig.clone(),
            *lib,
            FlowConfig::t1(n).to_builder().standard_opt().build(),
        ));
        jobs.push(Job::new(
            name,
            "T1+slack",
            aig.clone(),
            *lib,
            FlowConfig::t1(n).to_builder().slack_opt().build(),
        ));
    }
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scale_builds_all_benchmarks() {
        let benches = paper_benchmarks(&BenchmarkScale::small());
        assert_eq!(benches.len(), 8);
        for (name, aig) in &benches {
            assert!(aig.and_count() > 10, "{name} too small");
            assert!(aig.po_count() > 0, "{name} has no outputs");
        }
    }

    #[test]
    fn table1_suite_is_row_major() {
        let lib = CellLibrary::default();
        let jobs = table1_jobs(&BenchmarkScale::small(), 4, &lib);
        assert_eq!(jobs.len(), 8 * 3);
        assert_eq!(jobs[0].label(), "adder/1φ");
        assert_eq!(jobs[1].label(), "adder/nφ");
        assert_eq!(jobs[2].label(), "adder/T1");
        assert_eq!(jobs[23].label(), "log2/T1");
        // Each benchmark's three jobs share one AIG allocation.
        assert!(Arc::ptr_eq(&jobs[0].aig, &jobs[2].aig));
    }

    #[test]
    fn phase_sweep_repeats_the_single_phase_reference() {
        let lib = CellLibrary::default();
        let aig = Arc::new(epfl::adder(4));
        let jobs = phase_sweep_jobs("adder4", &aig, &lib);
        assert_eq!(jobs.len(), SWEEP_PHASES.len() * 3);
        let reference_key = jobs[2].key();
        for chunk in jobs.chunks(3) {
            assert_eq!(chunk[2].key(), reference_key, "shared 1φ baseline");
            assert_ne!(chunk[0].key(), chunk[1].key());
        }
    }

    #[test]
    fn opt_sweep_pairs_have_distinct_cache_keys() {
        let lib = CellLibrary::default();
        let jobs = opt_sweep_jobs(&BenchmarkScale::small(), 4, &lib);
        assert_eq!(jobs.len(), 8 * 2);
        for pair in jobs.chunks(2) {
            assert_eq!(pair[0].name, pair[1].name);
            assert!(Arc::ptr_eq(&pair[0].aig, &pair[1].aig));
            assert_ne!(
                pair[0].key(),
                pair[1].key(),
                "{}: the pre-opt stage must re-key the job",
                pair[0].name
            );
        }
    }

    #[test]
    fn slack_sweep_pairs_have_distinct_cache_keys() {
        let lib = CellLibrary::default();
        let jobs = slack_sweep_jobs(&BenchmarkScale::small(), 4, &lib);
        assert_eq!(jobs.len(), 8 * 2);
        for pair in jobs.chunks(2) {
            assert_eq!(pair[0].name, pair[1].name);
            assert!(Arc::ptr_eq(&pair[0].aig, &pair[1].aig));
            assert_ne!(
                pair[0].key(),
                pair[1].key(),
                "{}: the slack-aware stage must re-key the job",
                pair[0].name
            );
        }
    }

    #[test]
    fn pre_opt_rekeys_every_table1_job() {
        let lib = CellLibrary::default();
        let plain = table1_jobs(&BenchmarkScale::small(), 4, &lib);
        let opted = table1_jobs_with(&BenchmarkScale::small(), 4, &lib, true);
        assert_eq!(plain.len(), opted.len());
        for (p, o) in plain.iter().zip(&opted) {
            assert_eq!(p.label(), o.label());
            assert_ne!(p.key(), o.key(), "{} must get a distinct key", p.label());
        }
    }

    #[test]
    fn fixpoint_opt_jobs_share_keys_across_strategies() {
        let lib = CellLibrary::default();
        let scale = BenchmarkScale::small();
        let in_place = fixpoint_opt_jobs(&scale, 4, &lib, false);
        let rebuild = fixpoint_opt_jobs(&scale, 4, &lib, true);
        assert_eq!(in_place.len(), 3);
        let names: Vec<&str> = in_place.iter().map(|j| j.name.as_str()).collect();
        assert_eq!(names, ["adder", "multiplier", "scale-100k"]);
        for (a, b) in in_place.iter().zip(&rebuild) {
            assert_eq!(a.flow, FIXPOINT_OPT_FLOW);
            // Byte-identical results ⇒ same content address: the strategy
            // flag must not split the cache.
            assert_eq!(a.key(), b.key(), "{}: strategy re-keyed the job", a.name);
        }
    }

    #[test]
    fn row_order_matches_paper() {
        let names: Vec<&str> = paper_benchmarks(&BenchmarkScale::small())
            .iter()
            .map(|(n, _)| *n)
            .collect();
        assert_eq!(
            names,
            [
                "adder",
                "c7552",
                "c6288",
                "sin",
                "voter",
                "square",
                "multiplier",
                "log2"
            ]
        );
    }
}
