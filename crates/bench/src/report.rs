//! Schema-versioned machine-readable bench reports (`BENCH_*.json`).
//!
//! One report captures a whole suite run: per-job wall micros and result
//! provenance, the mapped-circuit results (nodes, depth, DFFs — the
//! numbers a perf regression must not silently change), the cache-source
//! breakdown, and the span rollups of the run's trace. Reports are the
//! PR-over-PR perf trajectory: CI emits `BENCH_table1.json` on every run
//! and validates it against [`validate`], so the format only evolves via
//! an explicit [`BENCH_SCHEMA_VERSION`] bump.
//!
//! Emission is hand-rolled JSON (no dependencies) and deliberately free
//! of absolute timestamps: two runs of equal speed produce structurally
//! identical reports, which keeps diffs reviewable.

use crate::rows::ResultRow;
use sfq_engine::{Job, JobOutcome, SuiteReport};
use sfq_obs::json::Value;
use sfq_obs::{escape_json, Trace};

/// `schema` field of every report this module writes.
pub const BENCH_SCHEMA: &str = "sfq-t1/bench-report";
/// Current schema version; bump on any breaking format change.
pub const BENCH_SCHEMA_VERSION: u64 = 1;

/// Per-job timing sample collected from [`JobOutcome`] progress events.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobSample {
    /// Wall micros the job occupied a worker.
    pub micros: u64,
    /// Result provenance: `"memory"`, `"disk"` or `"computed"`.
    pub source: &'static str,
}

impl JobSample {
    /// Extracts the sample for `o.index` from a progress event.
    pub fn from_outcome(o: &JobOutcome<'_>) -> Self {
        JobSample {
            micros: o.duration.as_micros() as u64,
            source: o.source.serve_label(),
        }
    }
}

/// Suite-level context the report records alongside the results.
#[derive(Debug, Clone)]
pub struct ReportMeta {
    /// Which suite produced the report (e.g. `"table1"`).
    pub suite: String,
    /// Benchmark scale label (`"paper"` or `"small"`).
    pub scale: String,
    /// Phase count of the multiphase/T1 flows.
    pub phases: u32,
    /// Whether the pre-mapping optimization stage ran.
    pub pre_opt: bool,
}

/// Renders the report. `samples` must be indexed like `jobs` (missing
/// entries render as zero micros with an `"unknown"` source).
///
/// # Panics
///
/// Panics if `report` was produced from a different job list.
pub fn bench_report_json(
    meta: &ReportMeta,
    jobs: &[Job],
    rows: &[ResultRow],
    report: &SuiteReport,
    samples: &[JobSample],
    trace: &Trace,
) -> String {
    assert_eq!(jobs.len(), rows.len(), "rows must match the job list");
    let mut out = String::with_capacity(1024 + jobs.len() * 256);
    out.push_str(&format!(
        "{{\n  \"schema\": \"{}\",\n  \"schema_version\": {},\n",
        escape_json(BENCH_SCHEMA),
        BENCH_SCHEMA_VERSION
    ));
    out.push_str(&format!(
        "  \"suite\": \"{}\",\n  \"scale\": \"{}\",\n  \"phases\": {},\n  \"pre_opt\": {},\n",
        escape_json(&meta.suite),
        escape_json(&meta.scale),
        meta.phases,
        meta.pre_opt
    ));
    out.push_str(&format!(
        "  \"jobs\": {},\n  \"workers\": {},\n  \"wall_micros\": {},\n",
        jobs.len(),
        report.workers,
        report.elapsed.as_micros()
    ));

    out.push_str("  \"benchmarks\": [\n");
    for (i, (job, row)) in jobs.iter().zip(rows).enumerate() {
        let sample = samples.get(i).copied().unwrap_or(JobSample {
            micros: 0,
            source: "unknown",
        });
        let s = row.stats;
        out.push_str(&format!(
            "    {{\"benchmark\": \"{}\", \"flow\": \"{}\", \"micros\": {}, \"source\": \"{}\", \
             \"ands\": {}, \"gates\": {}, \"dffs\": {}, \"splitters\": {}, \"cell_area\": {}, \
             \"area\": {}, \"depth_cycles\": {}, \"t1_found\": {}, \"t1_used\": {}}}{}\n",
            escape_json(&row.name),
            escape_json(&row.flow),
            sample.micros,
            escape_json(sample.source),
            job.aig.and_count(),
            s.gates,
            s.dffs,
            s.splitters,
            s.cell_area,
            s.area,
            s.depth_cycles,
            s.t1_found,
            s.t1_used,
            if i + 1 == jobs.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");

    let c = &report.cache;
    out.push_str(&format!(
        "  \"cache\": {{\"memory_hits\": {}, \"disk_hits\": {}, \"misses\": {}, \
         \"disk_entries\": {}, \"disk_errors\": {}}},\n",
        c.memory_hits, c.disk_hits, c.misses, c.disk.entries, c.disk.errors
    ));

    out.push_str("  \"spans\": [\n");
    let rollups = trace.rollups();
    for (i, r) in rollups.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"count\": {}, \"total_micros\": {}}}{}\n",
            escape_json(&r.name),
            r.count,
            r.total_us,
            if i + 1 == rollups.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");

    out.push_str("  \"counters\": [\n");
    for (i, (name, value)) in trace.counters.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"value\": {}}}{}\n",
            escape_json(name),
            value,
            if i + 1 == trace.counters.len() {
                ""
            } else {
                ","
            }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Checks that `text` is a well-formed report of the current schema.
/// Returns a human-readable reason on the first violation.
pub fn validate(text: &str) -> Result<(), String> {
    let doc = sfq_obs::json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let field = |key: &str| doc.get(key).ok_or_else(|| format!("missing field '{key}'"));
    let schema = field("schema")?
        .as_str()
        .ok_or("'schema' must be a string")?;
    if schema != BENCH_SCHEMA {
        return Err(format!("schema is '{schema}', expected '{BENCH_SCHEMA}'"));
    }
    let version = field("schema_version")?
        .as_u64()
        .ok_or("'schema_version' must be an integer")?;
    if version != BENCH_SCHEMA_VERSION {
        return Err(format!(
            "schema_version is {version}, expected {BENCH_SCHEMA_VERSION}"
        ));
    }
    for key in ["suite", "scale"] {
        field(key)?
            .as_str()
            .ok_or_else(|| format!("'{key}' must be a string"))?;
    }
    for key in ["phases", "jobs", "workers", "wall_micros"] {
        field(key)?
            .as_u64()
            .ok_or_else(|| format!("'{key}' must be a non-negative integer"))?;
    }
    field("pre_opt")?
        .as_bool()
        .ok_or("'pre_opt' must be a boolean")?;

    let benchmarks = field("benchmarks")?
        .as_arr()
        .ok_or("'benchmarks' must be an array")?;
    if benchmarks.is_empty() {
        return Err("'benchmarks' must not be empty".to_string());
    }
    let job_count = doc.get("jobs").and_then(Value::as_u64).unwrap_or(0);
    if benchmarks.len() as u64 != job_count {
        return Err(format!(
            "'benchmarks' has {} entries but 'jobs' says {job_count}",
            benchmarks.len()
        ));
    }
    for (i, b) in benchmarks.iter().enumerate() {
        for key in ["benchmark", "flow", "source"] {
            b.get(key)
                .and_then(Value::as_str)
                .ok_or_else(|| format!("benchmarks[{i}].{key} must be a string"))?;
        }
        for key in [
            "micros",
            "ands",
            "gates",
            "dffs",
            "splitters",
            "cell_area",
            "area",
            "depth_cycles",
            "t1_found",
            "t1_used",
        ] {
            b.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("benchmarks[{i}].{key} must be an integer"))?;
        }
    }

    let cache = field("cache")?;
    for key in [
        "memory_hits",
        "disk_hits",
        "misses",
        "disk_entries",
        "disk_errors",
    ] {
        cache
            .get(key)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("cache.{key} must be an integer"))?;
    }

    let spans = field("spans")?.as_arr().ok_or("'spans' must be an array")?;
    for (i, s) in spans.iter().enumerate() {
        s.get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("spans[{i}].name must be a string"))?;
        for key in ["count", "total_micros"] {
            s.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("spans[{i}].{key} must be an integer"))?;
        }
    }
    let counters = field("counters")?
        .as_arr()
        .ok_or("'counters' must be an array")?;
    for (i, c) in counters.iter().enumerate() {
        c.get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("counters[{i}].name must be a string"))?;
        c.get("value")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("counters[{i}].value must be an integer"))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{result_rows, table1_jobs, BenchmarkScale};
    use sfq_engine::SuiteRunner;
    use t1map::cells::CellLibrary;

    fn small_report() -> String {
        let lib = CellLibrary::default();
        // One benchmark (three flows) keeps this a unit-speed test.
        let jobs: Vec<_> = table1_jobs(&BenchmarkScale::small(), 4, &lib)
            .into_iter()
            .take(3)
            .collect();
        let mut samples = vec![JobSample::default(); jobs.len()];
        let report = SuiteRunner::new(2).run_with_progress(&jobs, |o| {
            samples[o.index] = JobSample::from_outcome(&o);
        });
        let rows = result_rows(&jobs, &report);
        let meta = ReportMeta {
            suite: "table1".to_string(),
            scale: "small".to_string(),
            phases: 4,
            pre_opt: false,
        };
        bench_report_json(&meta, &jobs, &rows, &report, &samples, &Trace::default())
    }

    #[test]
    fn emitted_report_validates() {
        let text = small_report();
        validate(&text).expect("fresh report must validate");
        // And every job carries a real sample.
        let doc = sfq_obs::json::parse(&text).unwrap();
        for b in doc.get("benchmarks").unwrap().as_arr().unwrap() {
            assert_eq!(b.get("source").unwrap().as_str(), Some("computed"));
        }
    }

    #[test]
    fn validate_rejects_wrong_schema_and_missing_fields() {
        assert!(validate("not json").is_err());
        assert!(validate("{}").unwrap_err().contains("schema"));
        let text = small_report();
        let wrong_version = text.replace("\"schema_version\": 1", "\"schema_version\": 99");
        assert!(validate(&wrong_version).unwrap_err().contains("99"));
        let wrong_schema = text.replace(BENCH_SCHEMA, "other/format");
        assert!(validate(&wrong_schema).is_err());
        let no_benchmarks = text.replace("\"benchmarks\"", "\"renamed\"");
        assert!(validate(&no_benchmarks).is_err());
    }
}
