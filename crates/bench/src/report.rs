//! Schema-versioned machine-readable bench reports (`BENCH_*.json`).
//!
//! One report captures a whole suite run: per-job wall micros, result
//! provenance and allocation volume, the mapped-circuit results (nodes,
//! depth, DFFs — the numbers a perf regression must not silently
//! change), the cache-source breakdown, the span rollups of the run's
//! trace, latency/allocation histograms, and the process memory
//! high-water mark. Reports are the PR-over-PR perf trajectory: CI
//! emits `BENCH_table1.json` on every run, validates it against
//! [`validate`], and diffs it against the committed baseline with
//! [`crate::diff`], so the format only evolves via an explicit
//! [`BENCH_SCHEMA_VERSION`] bump.
//!
//! Schema history: v1 (PR 7) had timing + quality metrics; v2 adds
//! per-job `alloc_bytes`/`peak_bytes`, a top-level `memory` object and a
//! `histograms` array. [`validate`] still accepts v1 files, so old
//! baselines keep working as diff inputs.
//!
//! Emission is hand-rolled JSON (no dependencies) and deliberately free
//! of absolute timestamps: two runs of equal speed produce structurally
//! identical reports, which keeps diffs reviewable.

use crate::rows::ResultRow;
use sfq_engine::{CacheStats, Job, JobOutcome, SuiteReport};
use sfq_obs::json::Value;
use sfq_obs::{escape_json, Trace};

/// `schema` field of every report this module writes.
pub const BENCH_SCHEMA: &str = "sfq-t1/bench-report";
/// Current schema version; bump on any breaking format change.
pub const BENCH_SCHEMA_VERSION: u64 = 2;
/// Oldest version [`validate`] still accepts (pre-memory, pre-histogram).
pub const BENCH_SCHEMA_MIN_VERSION: u64 = 1;

/// Per-job timing sample collected from [`JobOutcome`] progress events.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobSample {
    /// Wall micros the job occupied a worker.
    pub micros: u64,
    /// Result provenance: `"memory"`, `"disk"` or `"computed"`.
    pub source: &'static str,
    /// Bytes the worker allocated during the job (0 if untracked).
    pub alloc_bytes: u64,
    /// Process-wide peak live bytes at job end (0 if untracked).
    pub peak_bytes: u64,
}

impl JobSample {
    /// Extracts the sample for `o.index` from a progress event.
    pub fn from_outcome(o: &JobOutcome<'_>) -> Self {
        JobSample {
            micros: o.duration.as_micros() as u64,
            source: o.source.serve_label(),
            alloc_bytes: o.alloc_bytes,
            peak_bytes: o.peak_bytes,
        }
    }
}

/// Suite-level context the report records alongside the results.
#[derive(Debug, Clone)]
pub struct ReportMeta {
    /// Which suite produced the report (e.g. `"table1"`).
    pub suite: String,
    /// Benchmark scale label (`"paper"` or `"small"`).
    pub scale: String,
    /// Phase count of the multiphase/T1 flows.
    pub phases: u32,
    /// Whether the pre-mapping optimization stage ran.
    pub pre_opt: bool,
}

/// One `benchmarks[]` entry — the unit the regression diff aligns on
/// (keyed by `benchmark` × `flow`).
#[derive(Debug, Clone, Default)]
pub struct ReportEntry {
    /// Benchmark name.
    pub benchmark: String,
    /// Flow label (`"1φ"`, `"nφ"`, `"T1"`, or a tool name for
    /// single-network reports).
    pub flow: String,
    /// Wall micros.
    pub micros: u64,
    /// Result provenance.
    pub source: String,
    /// Input AIG and-node count.
    pub ands: u64,
    /// Mapped gate count.
    pub gates: u64,
    /// Path-balancing DFF count.
    pub dffs: u64,
    /// Splitter count.
    pub splitters: u64,
    /// Logic-cell area.
    pub cell_area: u64,
    /// Total area including DFFs and splitters.
    pub area: u64,
    /// Pipeline depth in clock cycles.
    pub depth_cycles: u64,
    /// T1 candidate count found.
    pub t1_found: u64,
    /// T1 cells actually used.
    pub t1_used: u64,
    /// Worker-thread allocation volume of the job.
    pub alloc_bytes: u64,
    /// Process peak live bytes at job end.
    pub peak_bytes: u64,
}

/// Renders the report. `samples` must be indexed like `jobs` (missing
/// entries render as zero micros with an `"unknown"` source).
///
/// # Panics
///
/// Panics if `report` was produced from a different job list.
pub fn bench_report_json(
    meta: &ReportMeta,
    jobs: &[Job],
    rows: &[ResultRow],
    report: &SuiteReport,
    samples: &[JobSample],
    trace: &Trace,
) -> String {
    assert_eq!(jobs.len(), rows.len(), "rows must match the job list");
    let entries: Vec<ReportEntry> = jobs
        .iter()
        .zip(rows)
        .enumerate()
        .map(|(i, (job, row))| {
            let sample = samples.get(i).copied().unwrap_or(JobSample {
                micros: 0,
                source: "unknown",
                alloc_bytes: 0,
                peak_bytes: 0,
            });
            let s = row.stats;
            ReportEntry {
                benchmark: row.name.clone(),
                flow: row.flow.clone(),
                micros: sample.micros,
                source: sample.source.to_string(),
                ands: job.aig.and_count() as u64,
                gates: s.gates as u64,
                dffs: s.dffs,
                splitters: s.splitters,
                cell_area: s.cell_area,
                area: s.area,
                depth_cycles: s.depth_cycles as u64,
                t1_found: s.t1_found as u64,
                t1_used: s.t1_used as u64,
                alloc_bytes: sample.alloc_bytes,
                peak_bytes: sample.peak_bytes,
            }
        })
        .collect();
    render_report(
        meta,
        report.workers as u64,
        report.elapsed.as_micros() as u64,
        &entries,
        &report.cache,
        trace,
    )
}

/// Renders a single-network report for the `opt`/`sta` tool paths: one
/// entry whose `flow` is the tool name, zeros for metrics the tool does
/// not produce. Same schema, same validator, same diff alignment.
pub fn tool_report_json(
    tool: &str,
    entry: &ReportEntry,
    wall_micros: u64,
    trace: &Trace,
) -> String {
    let meta = ReportMeta {
        suite: tool.to_string(),
        scale: "single".to_string(),
        phases: 0,
        pre_opt: false,
    };
    render_report(
        &meta,
        1,
        wall_micros,
        std::slice::from_ref(entry),
        &CacheStats::default(),
        trace,
    )
}

fn render_report(
    meta: &ReportMeta,
    workers: u64,
    wall_micros: u64,
    entries: &[ReportEntry],
    cache: &CacheStats,
    trace: &Trace,
) -> String {
    let mut out = String::with_capacity(1024 + entries.len() * 256);
    out.push_str(&format!(
        "{{\n  \"schema\": \"{}\",\n  \"schema_version\": {},\n",
        escape_json(BENCH_SCHEMA),
        BENCH_SCHEMA_VERSION
    ));
    out.push_str(&format!(
        "  \"suite\": \"{}\",\n  \"scale\": \"{}\",\n  \"phases\": {},\n  \"pre_opt\": {},\n",
        escape_json(&meta.suite),
        escape_json(&meta.scale),
        meta.phases,
        meta.pre_opt
    ));
    out.push_str(&format!(
        "  \"jobs\": {},\n  \"workers\": {},\n  \"wall_micros\": {},\n",
        entries.len(),
        workers,
        wall_micros
    ));

    out.push_str("  \"benchmarks\": [\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"benchmark\": \"{}\", \"flow\": \"{}\", \"micros\": {}, \"source\": \"{}\", \
             \"ands\": {}, \"gates\": {}, \"dffs\": {}, \"splitters\": {}, \"cell_area\": {}, \
             \"area\": {}, \"depth_cycles\": {}, \"t1_found\": {}, \"t1_used\": {}, \
             \"alloc_bytes\": {}, \"peak_bytes\": {}}}{}\n",
            escape_json(&e.benchmark),
            escape_json(&e.flow),
            e.micros,
            escape_json(&e.source),
            e.ands,
            e.gates,
            e.dffs,
            e.splitters,
            e.cell_area,
            e.area,
            e.depth_cycles,
            e.t1_found,
            e.t1_used,
            e.alloc_bytes,
            e.peak_bytes,
            if i + 1 == entries.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");

    out.push_str(&format!(
        "  \"cache\": {{\"memory_hits\": {}, \"disk_hits\": {}, \"misses\": {}, \
         \"disk_entries\": {}, \"disk_errors\": {}}},\n",
        cache.memory_hits, cache.disk_hits, cache.misses, cache.disk.entries, cache.disk.errors
    ));

    // Process-wide allocation counters for the whole run. `tracked` says
    // whether the counting allocator was installed — zeros are
    // meaningful only when it was.
    let mem = sfq_obs::alloc::stats();
    out.push_str(&format!(
        "  \"memory\": {{\"tracked\": {}, \"allocated_bytes\": {}, \"freed_bytes\": {}, \
         \"peak_bytes\": {}}},\n",
        sfq_obs::alloc::is_tracking(),
        mem.allocated,
        mem.freed,
        mem.peak
    ));

    out.push_str("  \"spans\": [\n");
    let rollups = trace.rollups();
    for (i, r) in rollups.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"count\": {}, \"total_micros\": {}}}{}\n",
            escape_json(&r.name),
            r.count,
            r.total_us,
            if i + 1 == rollups.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");

    out.push_str("  \"histograms\": [\n");
    for (i, (name, h)) in trace.histograms.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"count\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \
             \"max\": {}}}{}\n",
            escape_json(name),
            h.count(),
            h.percentile(50),
            h.percentile(90),
            h.percentile(99),
            h.max(),
            if i + 1 == trace.histograms.len() {
                ""
            } else {
                ","
            }
        ));
    }
    out.push_str("  ],\n");

    out.push_str("  \"counters\": [\n");
    for (i, (name, value)) in trace.counters.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"value\": {}}}{}\n",
            escape_json(name),
            value,
            if i + 1 == trace.counters.len() {
                ""
            } else {
                ","
            }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Checks that `text` is a well-formed report of an accepted schema
/// version (v1 files lack the memory/histogram fields and still pass).
/// Returns a human-readable reason on the first violation.
pub fn validate(text: &str) -> Result<(), String> {
    let doc = sfq_obs::json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let field = |key: &str| doc.get(key).ok_or_else(|| format!("missing field '{key}'"));
    let schema = field("schema")?
        .as_str()
        .ok_or("'schema' must be a string")?;
    if schema != BENCH_SCHEMA {
        return Err(format!("schema is '{schema}', expected '{BENCH_SCHEMA}'"));
    }
    let version = field("schema_version")?
        .as_u64()
        .ok_or("'schema_version' must be an integer")?;
    if !(BENCH_SCHEMA_MIN_VERSION..=BENCH_SCHEMA_VERSION).contains(&version) {
        return Err(format!(
            "schema_version is {version}, expected {BENCH_SCHEMA_MIN_VERSION}..={BENCH_SCHEMA_VERSION}"
        ));
    }
    for key in ["suite", "scale"] {
        field(key)?
            .as_str()
            .ok_or_else(|| format!("'{key}' must be a string"))?;
    }
    for key in ["phases", "jobs", "workers", "wall_micros"] {
        field(key)?
            .as_u64()
            .ok_or_else(|| format!("'{key}' must be a non-negative integer"))?;
    }
    field("pre_opt")?
        .as_bool()
        .ok_or("'pre_opt' must be a boolean")?;

    let benchmarks = field("benchmarks")?
        .as_arr()
        .ok_or("'benchmarks' must be an array")?;
    if benchmarks.is_empty() {
        return Err("'benchmarks' must not be empty".to_string());
    }
    let job_count = doc.get("jobs").and_then(Value::as_u64).unwrap_or(0);
    if benchmarks.len() as u64 != job_count {
        return Err(format!(
            "'benchmarks' has {} entries but 'jobs' says {job_count}",
            benchmarks.len()
        ));
    }
    let mut per_job_keys = vec![
        "micros",
        "ands",
        "gates",
        "dffs",
        "splitters",
        "cell_area",
        "area",
        "depth_cycles",
        "t1_found",
        "t1_used",
    ];
    if version >= 2 {
        per_job_keys.extend(["alloc_bytes", "peak_bytes"]);
    }
    for (i, b) in benchmarks.iter().enumerate() {
        for key in ["benchmark", "flow", "source"] {
            b.get(key)
                .and_then(Value::as_str)
                .ok_or_else(|| format!("benchmarks[{i}].{key} must be a string"))?;
        }
        for key in &per_job_keys {
            b.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("benchmarks[{i}].{key} must be an integer"))?;
        }
    }

    let cache = field("cache")?;
    for key in [
        "memory_hits",
        "disk_hits",
        "misses",
        "disk_entries",
        "disk_errors",
    ] {
        cache
            .get(key)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("cache.{key} must be an integer"))?;
    }

    if version >= 2 {
        let mem = field("memory")?;
        mem.get("tracked")
            .and_then(Value::as_bool)
            .ok_or("memory.tracked must be a boolean")?;
        for key in ["allocated_bytes", "freed_bytes", "peak_bytes"] {
            mem.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("memory.{key} must be an integer"))?;
        }
        let hists = field("histograms")?
            .as_arr()
            .ok_or("'histograms' must be an array")?;
        for (i, h) in hists.iter().enumerate() {
            h.get("name")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("histograms[{i}].name must be a string"))?;
            for key in ["count", "p50", "p90", "p99", "max"] {
                h.get(key)
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("histograms[{i}].{key} must be an integer"))?;
            }
        }
    }

    let spans = field("spans")?.as_arr().ok_or("'spans' must be an array")?;
    for (i, s) in spans.iter().enumerate() {
        s.get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("spans[{i}].name must be a string"))?;
        for key in ["count", "total_micros"] {
            s.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("spans[{i}].{key} must be an integer"))?;
        }
    }
    let counters = field("counters")?
        .as_arr()
        .ok_or("'counters' must be an array")?;
    for (i, c) in counters.iter().enumerate() {
        c.get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("counters[{i}].name must be a string"))?;
        c.get("value")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("counters[{i}].value must be an integer"))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{result_rows, table1_jobs, BenchmarkScale};
    use sfq_engine::SuiteRunner;
    use t1map::cells::CellLibrary;

    fn small_report() -> String {
        let lib = CellLibrary::default();
        // One benchmark (three flows) keeps this a unit-speed test.
        let jobs: Vec<_> = table1_jobs(&BenchmarkScale::small(), 4, &lib)
            .into_iter()
            .take(3)
            .collect();
        let mut samples = vec![JobSample::default(); jobs.len()];
        let report = SuiteRunner::new(2).run_with_progress(&jobs, |o| {
            samples[o.index] = JobSample::from_outcome(&o);
        });
        let rows = result_rows(&jobs, &report);
        let meta = ReportMeta {
            suite: "table1".to_string(),
            scale: "small".to_string(),
            phases: 4,
            pre_opt: false,
        };
        bench_report_json(&meta, &jobs, &rows, &report, &samples, &Trace::default())
    }

    #[test]
    fn emitted_report_validates() {
        let text = small_report();
        validate(&text).expect("fresh report must validate");
        // And every job carries a real sample.
        let doc = sfq_obs::json::parse(&text).unwrap();
        for b in doc.get("benchmarks").unwrap().as_arr().unwrap() {
            assert_eq!(b.get("source").unwrap().as_str(), Some("computed"));
            assert!(b.get("alloc_bytes").unwrap().as_u64().is_some());
            assert!(b.get("peak_bytes").unwrap().as_u64().is_some());
        }
        assert_eq!(
            doc.get("schema_version").unwrap().as_u64(),
            Some(BENCH_SCHEMA_VERSION)
        );
        assert!(doc.get("memory").is_some());
        assert!(doc.get("histograms").is_some());
    }

    #[test]
    fn validate_accepts_v1_reports_without_memory_fields() {
        // Simulate a v1 baseline: strip the v2-only fields. (The test
        // binary has no counting allocator, so the byte fields are 0.)
        let text = small_report();
        let v1 = text
            .replace("\"schema_version\": 2", "\"schema_version\": 1")
            .replace(", \"alloc_bytes\": 0, \"peak_bytes\": 0", "")
            .lines()
            .filter(|l| !l.trim_start().starts_with("\"memory\""))
            .collect::<Vec<_>>()
            .join("\n");
        assert!(!v1.contains("alloc_bytes"), "v2 fields really stripped");
        validate(&v1).expect("v1 reader compatibility");
    }

    #[test]
    fn tool_report_is_a_valid_single_entry_report() {
        let entry = ReportEntry {
            benchmark: "adder4".to_string(),
            flow: "opt".to_string(),
            micros: 1234,
            source: "computed".to_string(),
            ands: 40,
            ..ReportEntry::default()
        };
        let text = tool_report_json("opt", &entry, 1500, &Trace::default());
        validate(&text).expect("tool report must validate");
        let doc = sfq_obs::json::parse(&text).unwrap();
        assert_eq!(doc.get("suite").unwrap().as_str(), Some("opt"));
        assert_eq!(doc.get("jobs").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn validate_rejects_wrong_schema_and_missing_fields() {
        assert!(validate("not json").is_err());
        assert!(validate("{}").unwrap_err().contains("schema"));
        let text = small_report();
        let wrong_version = text.replace("\"schema_version\": 2", "\"schema_version\": 99");
        assert!(validate(&wrong_version).unwrap_err().contains("99"));
        let wrong_schema = text.replace(BENCH_SCHEMA, "other/format");
        assert!(validate(&wrong_schema).is_err());
        let no_benchmarks = text.replace("\"benchmarks\"", "\"renamed\"");
        assert!(validate(&no_benchmarks).is_err());
    }
}
