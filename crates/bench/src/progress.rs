//! Interleaving-safe progress output for the benchmark binaries.
//!
//! `eprintln!` can issue several small writes for one line (format
//! fragments, then the newline), so two threads reporting progress at once
//! may interleave mid-line. [`progress_line`] formats the whole line —
//! newline included — into one buffer first and emits it with a single
//! locked write, so lines from parallel engine workers stay whole.
//!
//! Progress goes to *stderr* by design: the tables and CSVs the binaries
//! produce on stdout stay byte-identical across worker counts and can be
//! diffed or piped, while timing and cache chatter lands on the terminal.

use std::io::Write;

/// Writes one whole line to stderr atomically with respect to other
/// `progress_line` callers in this process.
///
/// Accepts anything displayable; combine with `format_args!` to avoid an
/// intermediate allocation at call sites that already format fields.
pub fn progress_line(msg: impl std::fmt::Display) {
    let line = format!("{msg}\n");
    // A single `write_all` on the locked handle is one `write(2)` for any
    // realistic line length, and the lock orders whole lines regardless.
    let mut stderr = std::io::stderr().lock();
    let _ = stderr.write_all(line.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_display_and_format_args() {
        progress_line("plain str");
        progress_line(format_args!("{} + {} = {}", 1, 2, 1 + 2));
        progress_line(String::from("owned"));
    }

    #[test]
    fn parallel_lines_do_not_panic() {
        std::thread::scope(|s| {
            for t in 0..4 {
                s.spawn(move || {
                    for i in 0..10 {
                        progress_line(format_args!("thread {t} line {i}"));
                    }
                });
            }
        });
    }
}
