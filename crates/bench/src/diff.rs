//! Regression diffing of two `BENCH_*.json` reports.
//!
//! [`diff_reports`] aligns jobs by their benchmark×flow key and
//! classifies each one:
//!
//! - **quality metrics** (`gates`, `dffs`, `splitters`, `area`,
//!   `depth_cycles`) are deterministic outputs of the flow, so *any*
//!   increase is a regression — no noise allowance;
//! - **timing** (`micros`) and **allocation volume** (`alloc_bytes`,
//!   when both reports carry tracked values) are noisy, so they regress
//!   only beyond `--max-regress-pct`; smaller increases classify as
//!   `slower`, mirror-image decreases as `faster`;
//! - jobs present on one side only are `added`/`removed` — reported,
//!   but not failures (suites grow and shrink on purpose).
//!
//! The result renders as a human table ([`DiffReport::table`]) and a
//! machine-readable verdict ([`DiffReport::verdict_json`]); the CLI
//! exits nonzero iff [`DiffReport::ok`] is false. Baselines may be v1
//! reports (pre-memory): the byte comparison simply switches off.

use crate::report;
use sfq_obs::escape_json;
use sfq_obs::json::Value;
use std::collections::BTreeMap;

/// Default `--max-regress-pct`: generous enough for warm-cache jitter
/// on one machine, tight enough to catch a real slowdown.
pub const DEFAULT_MAX_REGRESS_PCT: u64 = 25;

/// Classification of one aligned job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffStatus {
    /// In the current report only.
    Added,
    /// In the baseline only.
    Removed,
    /// A metric got worse beyond its allowance — fails the diff.
    Regressed,
    /// Timing up, but within the allowance.
    Slower,
    /// Timing down beyond the allowance.
    Faster,
    /// Nothing moved meaningfully.
    Unchanged,
}

impl DiffStatus {
    /// Stable lowercase label used in both sinks.
    pub fn label(self) -> &'static str {
        match self {
            DiffStatus::Added => "added",
            DiffStatus::Removed => "removed",
            DiffStatus::Regressed => "regressed",
            DiffStatus::Slower => "slower",
            DiffStatus::Faster => "faster",
            DiffStatus::Unchanged => "unchanged",
        }
    }
}

/// One job's comparison.
#[derive(Debug, Clone)]
pub struct JobDiff {
    /// Benchmark name (alignment key, first half).
    pub benchmark: String,
    /// Flow label (alignment key, second half).
    pub flow: String,
    /// Classification.
    pub status: DiffStatus,
    /// Baseline wall micros (0 for added jobs).
    pub base_micros: u64,
    /// Current wall micros (0 for removed jobs).
    pub cur_micros: u64,
    /// Human-readable reasons, one per moved metric.
    pub notes: Vec<String>,
}

/// The full comparison of two reports.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Per-job rows, sorted by benchmark then flow.
    pub jobs: Vec<JobDiff>,
    /// The timing/allocation allowance the comparison used.
    pub max_regress_pct: u64,
}

/// Everything the diff reads out of one `benchmarks[]` entry.
struct JobMetrics {
    micros: u64,
    gates: u64,
    dffs: u64,
    splitters: u64,
    area: u64,
    depth_cycles: u64,
    /// `None` when the report predates v2 or tracking was off.
    alloc_bytes: Option<u64>,
}

fn parse_jobs(text: &str, which: &str) -> Result<BTreeMap<(String, String), JobMetrics>, String> {
    report::validate(text).map_err(|e| format!("{which} report invalid: {e}"))?;
    let doc = sfq_obs::json::parse(text).map_err(|e| format!("{which} report: {e}"))?;
    let tracked = doc
        .get("memory")
        .and_then(|m| m.get("tracked"))
        .and_then(Value::as_bool)
        .unwrap_or(false);
    let mut out = BTreeMap::new();
    for b in doc
        .get("benchmarks")
        .and_then(Value::as_arr)
        .into_iter()
        .flatten()
    {
        let s = |key: &str| b.get(key).and_then(Value::as_str).unwrap_or("").to_string();
        let n = |key: &str| b.get(key).and_then(Value::as_u64).unwrap_or(0);
        out.insert(
            (s("benchmark"), s("flow")),
            JobMetrics {
                micros: n("micros"),
                gates: n("gates"),
                dffs: n("dffs"),
                splitters: n("splitters"),
                area: n("area"),
                depth_cycles: n("depth_cycles"),
                alloc_bytes: if tracked {
                    b.get("alloc_bytes").and_then(Value::as_u64)
                } else {
                    None
                },
            },
        );
    }
    Ok(out)
}

/// `true` when `cur` exceeds `base` by more than `pct` percent
/// (integer-exact: no float rounding at the threshold).
fn beyond(base: u64, cur: u64, pct: u64) -> bool {
    cur as u128 * 100 > base as u128 * (100 + pct) as u128
}

fn pct_change(base: u64, cur: u64) -> String {
    if base == 0 {
        return "n/a".to_string();
    }
    let delta = cur as i128 - base as i128;
    format!("{:+}%", delta * 100 / base as i128)
}

fn compare(base: &JobMetrics, cur: &JobMetrics, pct: u64) -> (DiffStatus, Vec<String>) {
    let mut notes = Vec::new();
    let mut regressed = false;
    // Deterministic quality metrics: any increase is a regression.
    for (name, b, c) in [
        ("gates", base.gates, cur.gates),
        ("dffs", base.dffs, cur.dffs),
        ("splitters", base.splitters, cur.splitters),
        ("area", base.area, cur.area),
        ("depth_cycles", base.depth_cycles, cur.depth_cycles),
    ] {
        match c.cmp(&b) {
            std::cmp::Ordering::Greater => {
                regressed = true;
                notes.push(format!("{name} {b} → {c}"));
            }
            std::cmp::Ordering::Less => notes.push(format!("{name} {b} → {c} (improved)")),
            std::cmp::Ordering::Equal => {}
        }
    }
    // Noisy metrics: percentage allowance. A zero baseline (cache hit
    // rounding to 0 µs) cannot be compared meaningfully.
    let mut slower = false;
    let mut faster = false;
    if base.micros > 0 {
        if beyond(base.micros, cur.micros, pct) {
            regressed = true;
            notes.push(format!(
                "micros {} → {} ({}, allowance {pct}%)",
                base.micros,
                cur.micros,
                pct_change(base.micros, cur.micros)
            ));
        } else if beyond(cur.micros, base.micros, pct) {
            faster = true;
            notes.push(format!(
                "micros {} → {} ({})",
                base.micros,
                cur.micros,
                pct_change(base.micros, cur.micros)
            ));
        } else if cur.micros > base.micros {
            slower = true;
        }
    }
    match (base.alloc_bytes, cur.alloc_bytes) {
        (Some(b), Some(c)) => {
            if b > 0 && beyond(b, c, pct) {
                regressed = true;
                notes.push(format!(
                    "alloc_bytes {b} → {c} ({}, allowance {pct}%)",
                    pct_change(b, c)
                ));
            }
        }
        // An untracked side must say so, not vanish: an allocation
        // regression hiding behind a baseline regenerated without
        // tracking would otherwise pass the diff without a trace.
        _ => notes.push("alloc: not compared (untracked)".to_string()),
    }
    let status = if regressed {
        DiffStatus::Regressed
    } else if slower {
        DiffStatus::Slower
    } else if faster {
        DiffStatus::Faster
    } else {
        DiffStatus::Unchanged
    };
    (status, notes)
}

/// Compares two report files' contents. Errors if either fails
/// [`report::validate`].
pub fn diff_reports(
    baseline: &str,
    current: &str,
    max_regress_pct: u64,
) -> Result<DiffReport, String> {
    let base = parse_jobs(baseline, "baseline")?;
    let cur = parse_jobs(current, "current")?;
    let mut jobs = Vec::new();
    for ((bench, flow), bm) in &base {
        match cur.get(&(bench.clone(), flow.clone())) {
            Some(cm) => {
                let (status, notes) = compare(bm, cm, max_regress_pct);
                jobs.push(JobDiff {
                    benchmark: bench.clone(),
                    flow: flow.clone(),
                    status,
                    base_micros: bm.micros,
                    cur_micros: cm.micros,
                    notes,
                });
            }
            None => jobs.push(JobDiff {
                benchmark: bench.clone(),
                flow: flow.clone(),
                status: DiffStatus::Removed,
                base_micros: bm.micros,
                cur_micros: 0,
                notes: vec!["not in current report".to_string()],
            }),
        }
    }
    for ((bench, flow), cm) in &cur {
        if !base.contains_key(&(bench.clone(), flow.clone())) {
            jobs.push(JobDiff {
                benchmark: bench.clone(),
                flow: flow.clone(),
                status: DiffStatus::Added,
                base_micros: 0,
                cur_micros: cm.micros,
                notes: vec!["not in baseline".to_string()],
            });
        }
    }
    jobs.sort_by(|a, b| (&a.benchmark, &a.flow).cmp(&(&b.benchmark, &b.flow)));
    Ok(DiffReport {
        jobs,
        max_regress_pct,
    })
}

impl DiffReport {
    /// Jobs classified as regressed.
    pub fn regressions(&self) -> Vec<&JobDiff> {
        self.jobs
            .iter()
            .filter(|j| j.status == DiffStatus::Regressed)
            .collect()
    }

    /// `true` when no job regressed (the CLI's exit-zero condition).
    pub fn ok(&self) -> bool {
        self.regressions().is_empty()
    }

    /// Renders the human table plus a one-line verdict.
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<32} {:>10} {:>10} {:>10} {:>7}  notes\n",
            "job", "status", "base µs", "cur µs", "Δ"
        ));
        for j in &self.jobs {
            out.push_str(&format!(
                "  {:<30} {:>10} {:>10} {:>10} {:>7}  {}\n",
                format!("{}/{}", j.benchmark, j.flow),
                j.status.label(),
                j.base_micros,
                j.cur_micros,
                pct_change(j.base_micros, j.cur_micros),
                j.notes.join("; ")
            ));
        }
        let regressed = self.regressions();
        if regressed.is_empty() {
            out.push_str(&format!(
                "OK: no regressions across {} job(s) (allowance {}%)\n",
                self.jobs.len(),
                self.max_regress_pct
            ));
        } else {
            out.push_str(&format!(
                "REGRESSED: {} of {} job(s): {}\n",
                regressed.len(),
                self.jobs.len(),
                regressed
                    .iter()
                    .map(|j| format!("{}/{}", j.benchmark, j.flow))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
        out
    }

    /// Renders the machine-readable verdict (its own small schema, so
    /// CI consumers don't parse the human table).
    pub fn verdict_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\n  \"schema\": \"sfq-t1/bench-diff\",\n  \"schema_version\": 1,\n  \
             \"max_regress_pct\": {},\n  \"jobs\": {},\n  \"regressed\": {},\n  \"ok\": {},\n",
            self.max_regress_pct,
            self.jobs.len(),
            self.regressions().len(),
            self.ok()
        ));
        out.push_str("  \"results\": [\n");
        for (i, j) in self.jobs.iter().enumerate() {
            let notes = j
                .notes
                .iter()
                .map(|n| format!("\"{}\"", escape_json(n)))
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!(
                "    {{\"benchmark\": \"{}\", \"flow\": \"{}\", \"status\": \"{}\", \
                 \"base_micros\": {}, \"cur_micros\": {}, \"notes\": [{}]}}{}\n",
                escape_json(&j.benchmark),
                escape_json(&j.flow),
                j.status.label(),
                j.base_micros,
                j.cur_micros,
                notes,
                if i + 1 == self.jobs.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal valid v2 report with the given (benchmark, flow, micros,
    /// gates, alloc_bytes) entries.
    fn fixture(entries: &[(&str, &str, u64, u64, u64)], tracked: bool) -> String {
        let mut out = String::from(
            "{\n\"schema\": \"sfq-t1/bench-report\",\n\"schema_version\": 2,\n\
             \"suite\": \"table1\",\n\"scale\": \"small\",\n\"phases\": 4,\n\
             \"pre_opt\": false,\n\"workers\": 2,\n\"wall_micros\": 100,\n",
        );
        out.push_str(&format!(
            "\"jobs\": {},\n\"benchmarks\": [\n",
            entries.len()
        ));
        for (i, (bench, flow, micros, gates, alloc)) in entries.iter().enumerate() {
            out.push_str(&format!(
                "{{\"benchmark\": \"{bench}\", \"flow\": \"{flow}\", \"micros\": {micros}, \
                 \"source\": \"computed\", \"ands\": 10, \"gates\": {gates}, \"dffs\": 5, \
                 \"splitters\": 2, \"cell_area\": 50, \"area\": 80, \"depth_cycles\": 7, \
                 \"t1_found\": 1, \"t1_used\": 1, \"alloc_bytes\": {alloc}, \
                 \"peak_bytes\": 1000}}{}\n",
                if i + 1 == entries.len() { "" } else { "," }
            ));
        }
        out.push_str(&format!(
            "],\n\"cache\": {{\"memory_hits\": 0, \"disk_hits\": 0, \"misses\": 0, \
             \"disk_entries\": 0, \"disk_errors\": 0}},\n\
             \"memory\": {{\"tracked\": {tracked}, \"allocated_bytes\": 0, \"freed_bytes\": 0, \
             \"peak_bytes\": 0}},\n\"spans\": [\n],\n\"histograms\": [\n],\n\"counters\": [\n]\n}}\n"
        ));
        out
    }

    #[test]
    fn self_diff_is_clean() {
        let text = fixture(&[("adder4", "1φ", 1000, 10, 4096)], true);
        let d = diff_reports(&text, &text, 25).unwrap();
        assert!(d.ok());
        assert!(d.jobs.iter().all(|j| j.status == DiffStatus::Unchanged));
        assert!(d.table().contains("OK: no regressions"));
    }

    #[test]
    fn injected_double_slowdown_flags_exactly_that_job() {
        let base = fixture(
            &[
                ("adder4", "1φ", 1000, 10, 4096),
                ("adder4", "T1", 2000, 10, 4096),
            ],
            true,
        );
        let cur = fixture(
            &[
                ("adder4", "1φ", 1000, 10, 4096),
                ("adder4", "T1", 4000, 10, 4096), // 2× slower
            ],
            true,
        );
        let d = diff_reports(&base, &cur, 25).unwrap();
        assert!(!d.ok());
        let reg = d.regressions();
        assert_eq!(reg.len(), 1, "exactly one job flagged");
        assert_eq!(
            (reg[0].benchmark.as_str(), reg[0].flow.as_str()),
            ("adder4", "T1")
        );
        assert!(d.table().contains("REGRESSED: 1 of 2"));
        assert!(d.table().contains("adder4/T1"));
        let verdict = d.verdict_json();
        let doc = sfq_obs::json::parse(&verdict).unwrap();
        assert_eq!(doc.get("ok").and_then(Value::as_bool), Some(false));
        assert_eq!(doc.get("regressed").and_then(Value::as_u64), Some(1));
    }

    #[test]
    fn quality_metrics_regress_on_any_increase() {
        let base = fixture(&[("adder4", "1φ", 1000, 10, 4096)], true);
        let cur = fixture(&[("adder4", "1φ", 1000, 11, 4096)], true);
        let d = diff_reports(&base, &cur, 25).unwrap();
        assert!(!d.ok(), "one extra gate must fail the diff");
        assert!(d.jobs[0].notes.iter().any(|n| n.contains("gates 10 → 11")));
    }

    #[test]
    fn timing_within_allowance_is_slower_not_regressed() {
        let base = fixture(&[("adder4", "1φ", 1000, 10, 0)], true);
        let cur = fixture(&[("adder4", "1φ", 1200, 10, 0)], true);
        let d = diff_reports(&base, &cur, 25).unwrap();
        assert!(d.ok());
        assert_eq!(d.jobs[0].status, DiffStatus::Slower);
        // And a mirror-image speedup classifies as faster.
        let d = diff_reports(&cur, &base, 10).unwrap();
        assert_eq!(d.jobs[0].status, DiffStatus::Faster);
    }

    #[test]
    fn allocation_regression_needs_tracked_reports() {
        let base_untracked = fixture(&[("adder4", "1φ", 1000, 10, 1000)], false);
        let cur = fixture(&[("adder4", "1φ", 1000, 10, 900_000)], true);
        let d = diff_reports(&base_untracked, &cur, 25).unwrap();
        assert!(d.ok(), "untracked baseline bytes are not comparable");
        assert!(
            d.jobs[0]
                .notes
                .iter()
                .any(|n| n == "alloc: not compared (untracked)"),
            "skipping the alloc comparison must be explicit, got {:?}",
            d.jobs[0].notes
        );
        assert!(d.table().contains("alloc: not compared (untracked)"));
        let base_tracked = fixture(&[("adder4", "1φ", 1000, 10, 1000)], true);
        let d = diff_reports(&base_tracked, &cur, 25).unwrap();
        assert!(!d.ok(), "900× allocation growth must fail");
        assert!(d.jobs[0].notes.iter().any(|n| n.contains("alloc_bytes")));
    }

    #[test]
    fn added_and_removed_jobs_are_reported_but_not_failures() {
        let base = fixture(&[("adder4", "1φ", 1000, 10, 0)], true);
        let cur = fixture(&[("adder4", "T1", 900, 10, 0)], true);
        let d = diff_reports(&base, &cur, 25).unwrap();
        assert!(d.ok());
        let statuses: Vec<_> = d.jobs.iter().map(|j| j.status).collect();
        assert!(statuses.contains(&DiffStatus::Removed));
        assert!(statuses.contains(&DiffStatus::Added));
    }

    #[test]
    fn invalid_input_is_a_readable_error() {
        let good = fixture(&[("adder4", "1φ", 1000, 10, 0)], true);
        let err = diff_reports("not json", &good, 25).unwrap_err();
        assert!(err.contains("baseline"), "{err}");
        let err = diff_reports(&good, "{}", 25).unwrap_err();
        assert!(err.contains("current"), "{err}");
    }
}
