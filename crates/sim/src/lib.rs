//! # sfq-sim
//!
//! Event-driven pulse-level simulation of scheduled SFQ netlists under
//! multiphase clocking — the verification substrate standing in for the
//! analog/SPICE level of the paper (DESIGN.md §4):
//!
//! - [`t1cell`] — behavioural T1 flip-flop (Fig. 1 of the paper), including
//!   pulse-overlap hazard detection,
//! - [`pulse`] — wave-pipelined simulation of a scheduled netlist with
//!   capture-window validation.
//!
//! # Example
//!
//! ```
//! use sfq_sim::pulse::{Fanin, PulseCircuit};
//! use sfq_sim::t1cell::T1Cell;
//!
//! // A T1-based full adder: operands staggered over phases 1..3, read at 4.
//! let mut c = PulseCircuit::new();
//! let a = c.add_input();
//! let b = c.add_input();
//! let cin = c.add_input();
//! let da = c.add_dff(Fanin::plain(a), 1);
//! let db = c.add_dff(Fanin::plain(b), 2);
//! let dc = c.add_dff(Fanin::plain(cin), 3);
//! let t1 = c.add_t1([Fanin::plain(da), Fanin::plain(db), Fanin::plain(dc)], 4);
//! # let _ = t1;
//! ```

pub mod pulse;
pub mod t1cell;
pub mod trace;

pub use pulse::{ElementId, Fanin, OutRef, PulseCircuit, SimError, SimOptions, SimOutcome};
pub use t1cell::{T1Cell, T1Event};
pub use trace::{render_waveform, TraceEvent, TraceKind};
