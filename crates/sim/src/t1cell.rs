//! Behavioural model of the T1 flip-flop (Polonsky et al., ref \[5\]).
//!
//! The T1 cell is a pulse counter with a single internal storage loop:
//!
//! - a pulse on **T** toggles the loop; on the 0→1 transition the cell emits
//!   a pulse on **Q\***, on the 1→0 transition it emits on **C\***;
//! - a pulse on **R** (the clock, in the full-adder configuration) emits on
//!   **S** if the loop holds 1, then resets the loop; on state 0 the pulse
//!   is absorbed.
//!
//! In the extended (synchronous) configuration used by the mapping flow the
//! cell additionally latches the *first* `Q*`/`C*` events of an epoch and
//! releases them as synchronous `Q` (OR3) and `C` (MAJ3) outputs on the `R`
//! pulse, alongside `S` (XOR3).
//!
//! Two `T` pulses closer than the cell's separation threshold constitute a
//! *data hazard* (they may be absorbed as one); the model counts them — the
//! exact failure mode multiphase staggering is designed to avoid.
//!
//! # Examples
//!
//! ```
//! use sfq_sim::t1cell::{T1Cell, T1Event};
//!
//! let mut t1 = T1Cell::new(500);
//! // Three operand pulses, well separated (stages of a 4-phase epoch).
//! assert_eq!(t1.pulse_t(1000), vec![T1Event::QStar]);
//! assert_eq!(t1.pulse_t(2000), vec![T1Event::CStar]);
//! assert_eq!(t1.pulse_t(3000), vec![T1Event::QStar]);
//! // Clock: loop holds 1 (odd count) → S fires; C and Q were latched.
//! let out = t1.pulse_r(4000);
//! assert!(out.contains(&T1Event::S));
//! assert!(out.contains(&T1Event::C));
//! assert!(out.contains(&T1Event::Q));
//! assert_eq!(t1.hazards(), 0);
//! ```

/// Output events of the T1 cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum T1Event {
    /// Asynchronous pulse on the `Q*` output (loop 0→1).
    QStar,
    /// Asynchronous pulse on the `C*` output (loop 1→0).
    CStar,
    /// Synchronous sum output (XOR3) on the `R` pulse.
    S,
    /// Synchronous carry output (MAJ3) on the `R` pulse.
    C,
    /// Synchronous or output (OR3) on the `R` pulse.
    Q,
}

/// Behavioural T1 flip-flop state machine.
#[derive(Debug, Clone)]
pub struct T1Cell {
    /// Internal storage loop (false = bias along J_Q, true = along J_C).
    state: bool,
    /// Latched "at least two pulses this epoch" flag → synchronous C.
    c_latch: bool,
    /// Latched "at least one pulse this epoch" flag → synchronous Q.
    q_latch: bool,
    /// Minimum admissible separation between consecutive T pulses.
    min_separation: u64,
    last_t: Option<u64>,
    hazards: u64,
}

impl T1Cell {
    /// Creates a cell in state 0 with the given pulse-separation threshold
    /// (same time unit as the pulse timestamps).
    pub fn new(min_separation: u64) -> Self {
        T1Cell {
            state: false,
            c_latch: false,
            q_latch: false,
            min_separation,
            last_t: None,
            hazards: 0,
        }
    }

    /// Current loop state.
    pub fn state(&self) -> bool {
        self.state
    }

    /// Number of pulse-overlap hazards observed so far.
    pub fn hazards(&self) -> u64 {
        self.hazards
    }

    /// Applies a pulse on the `T` (toggle/data) input at `time`.
    ///
    /// Returns the asynchronous events emitted.
    pub fn pulse_t(&mut self, time: u64) -> Vec<T1Event> {
        if let Some(last) = self.last_t {
            if time.saturating_sub(last) < self.min_separation {
                self.hazards += 1;
            }
        }
        self.last_t = Some(time);
        self.state = !self.state;
        if self.state {
            self.q_latch = true;
            vec![T1Event::QStar]
        } else {
            self.c_latch = true;
            vec![T1Event::CStar]
        }
    }

    /// Applies a pulse on the `R` (reset/clock) input at `time`.
    ///
    /// Emits `S` if the loop held 1, plus the latched synchronous `C`/`Q`
    /// events, then resets the epoch state.
    pub fn pulse_r(&mut self, _time: u64) -> Vec<T1Event> {
        let mut out = Vec::new();
        if self.state {
            out.push(T1Event::S);
        }
        if self.c_latch {
            out.push(T1Event::C);
        }
        if self.q_latch {
            out.push(T1Event::Q);
        }
        self.state = false;
        self.c_latch = false;
        self.q_latch = false;
        self.last_t = None;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives `k` well-separated T pulses then the R clock; returns the
    /// synchronous events.
    fn epoch(k: usize) -> Vec<T1Event> {
        let mut t1 = T1Cell::new(500);
        for i in 0..k {
            t1.pulse_t(1000 * (i as u64 + 1));
        }
        let out = t1.pulse_r(1000 * (k as u64 + 2));
        assert_eq!(t1.hazards(), 0);
        out
    }

    #[test]
    fn zero_pulses_all_outputs_silent() {
        assert_eq!(epoch(0), vec![]);
    }

    #[test]
    fn one_pulse_gives_sum_and_or() {
        let out = epoch(1);
        assert!(out.contains(&T1Event::S), "xor3 of one pulse is 1");
        assert!(out.contains(&T1Event::Q), "or3 of one pulse is 1");
        assert!(!out.contains(&T1Event::C), "maj3 of one pulse is 0");
    }

    #[test]
    fn two_pulses_give_carry_and_or() {
        let out = epoch(2);
        assert!(!out.contains(&T1Event::S));
        assert!(out.contains(&T1Event::C));
        assert!(out.contains(&T1Event::Q));
    }

    #[test]
    fn three_pulses_give_all() {
        let out = epoch(3);
        assert!(out.contains(&T1Event::S));
        assert!(out.contains(&T1Event::C));
        assert!(out.contains(&T1Event::Q));
    }

    #[test]
    fn full_adder_truth_table() {
        // For every (a, b, cin): pulse count = a + b + cin; verify
        // S = XOR3, C = MAJ3, Q = OR3.
        for bits in 0..8u32 {
            let k = bits.count_ones() as usize;
            let out = epoch(k);
            assert_eq!(out.contains(&T1Event::S), k % 2 == 1, "S at k={k}");
            assert_eq!(out.contains(&T1Event::C), k >= 2, "C at k={k}");
            assert_eq!(out.contains(&T1Event::Q), k >= 1, "Q at k={k}");
        }
    }

    #[test]
    fn fig1b_waveform_sequence() {
        // Reproduces the Fig. 1b simulation: epochs with inputs a, ab, abc.
        let mut t1 = T1Cell::new(500);
        // Epoch 1: single pulse (a).
        assert_eq!(t1.pulse_t(1000), vec![T1Event::QStar]);
        let e1 = t1.pulse_r(4000);
        assert!(e1.contains(&T1Event::S) && e1.contains(&T1Event::Q));
        // Epoch 2: two pulses (a, b).
        assert_eq!(t1.pulse_t(5000), vec![T1Event::QStar]);
        assert_eq!(t1.pulse_t(6000), vec![T1Event::CStar]);
        let e2 = t1.pulse_r(8000);
        assert!(!e2.contains(&T1Event::S) && e2.contains(&T1Event::C));
        // Epoch 3: three pulses (a, b, c).
        assert_eq!(t1.pulse_t(9000), vec![T1Event::QStar]);
        assert_eq!(t1.pulse_t(10000), vec![T1Event::CStar]);
        assert_eq!(t1.pulse_t(11000), vec![T1Event::QStar]);
        let e3 = t1.pulse_r(12000);
        assert!(e3.contains(&T1Event::S) && e3.contains(&T1Event::C) && e3.contains(&T1Event::Q));
        assert_eq!(t1.hazards(), 0);
    }

    #[test]
    fn overlapping_pulses_flag_hazard() {
        let mut t1 = T1Cell::new(500);
        t1.pulse_t(1000);
        t1.pulse_t(1100); // 100 < 500 → hazard
        assert_eq!(t1.hazards(), 1);
    }

    #[test]
    fn reset_on_state_zero_absorbed() {
        let mut t1 = T1Cell::new(500);
        assert_eq!(t1.pulse_r(1000), vec![]);
        assert!(!t1.state());
    }

    #[test]
    fn state_resets_between_epochs() {
        let mut t1 = T1Cell::new(500);
        t1.pulse_t(1000);
        t1.pulse_r(2000);
        // New epoch starts clean: one pulse again yields Q*.
        assert_eq!(t1.pulse_t(3000), vec![T1Event::QStar]);
    }
}
