//! Event-driven pulse-level simulation of scheduled SFQ netlists.
//!
//! The simulator executes a *scheduled* netlist — every clocked element
//! carries the stage `σ = n·epoch + phase` assigned by the mapping flow —
//! under multiphase clocking, streaming one input vector per epoch
//! (wave pipelining, the actual operating mode of gate-level-pipelined SFQ).
//!
//! Semantics (see DESIGN.md §4 for the modeling decisions):
//!
//! - time is measured in abstract units; one stage slot is [`SLOT`] units and
//!   an n-phase epoch is `n · SLOT`;
//! - a clocked element at stage `σ` receives clock pulses at times
//!   `(σ + k·n) · SLOT` for wave `k = 0, 1, …`;
//! - on its clock, an element computes its function over the input pulses
//!   captured since its previous clock, clears them, and (for a logic 1)
//!   emits an output pulse shortly after the clock edge;
//! - input-port inversions are absorbed into the consuming cell (RSFQ cell
//!   variants — NAND/NOR/inverted-input gates — share the cost class);
//! - the [T1 cell](crate::t1cell) processes `T` pulses asynchronously at
//!   arrival time and counts pulse-overlap hazards.
//!
//! Because data is only valid for `n` stages, the simulator validates the
//! schedule (every fanin within the capture window) before running — a
//! mapping-flow bug that violates the window is reported as an error rather
//! than silently mis-simulating.

use crate::t1cell::{T1Cell, T1Event};
use sfq_netlist::truth_table::TruthTable;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

/// Duration of one stage slot in simulator time units.
pub const SLOT: u64 = 1000;
/// Delay from a clock edge to the corresponding data pulse emission.
pub const EMIT_DELAY: u64 = 60;
/// Minimum admissible separation of T1 `T`-input pulses (hazard threshold).
pub const T1_MIN_SEPARATION: u64 = 500;

/// Identifier of an element inside a [`PulseCircuit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ElementId(pub u32);

impl ElementId {
    fn index(self) -> usize {
        self.0 as usize
    }
}

/// A reference to an output port of an element (T1 cells have three ports).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OutRef {
    /// Producing element.
    pub elem: ElementId,
    /// Output port (0 except for T1: 0 = S, 1 = C, 2 = Q).
    pub port: u8,
}

/// A connection to a fanin, with the consumer-side inversion flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fanin {
    /// Driving output.
    pub source: OutRef,
    /// Whether the consuming cell reads the complement.
    pub invert: bool,
}

impl Fanin {
    /// Plain (non-inverting) connection to port 0 of `elem`.
    pub fn plain(elem: ElementId) -> Self {
        Fanin {
            source: OutRef { elem, port: 0 },
            invert: false,
        }
    }
}

#[derive(Debug, Clone)]
enum Element {
    /// Primary input (stage 0); emits according to the wave's vector.
    Input { index: usize },
    /// Constant driver (stage 0); emits every wave if `value`.
    Const { value: bool },
    /// Clocked combinational cell: function over captured fanin flags.
    Gate {
        tt: TruthTable,
        fanins: Vec<Fanin>,
        stage: u32,
    },
    /// Clocked D flip-flop (a path-balancing buffer).
    Dff { fanin: Fanin, stage: u32 },
    /// T1 cell: three data fanins merged into `T`, clock on `R`.
    T1 { fanins: [Fanin; 3], stage: u32 },
    /// Output capture latch.
    Output {
        fanin: Fanin,
        index: usize,
        stage: u32,
    },
}

impl Element {
    fn stage(&self) -> u32 {
        match self {
            Element::Input { .. } | Element::Const { .. } => 0,
            Element::Gate { stage, .. }
            | Element::Dff { stage, .. }
            | Element::T1 { stage, .. }
            | Element::Output { stage, .. } => *stage,
        }
    }

    fn fanins(&self) -> Vec<Fanin> {
        match self {
            Element::Input { .. } | Element::Const { .. } => vec![],
            Element::Gate { fanins, .. } => fanins.clone(),
            Element::Dff { fanin, .. } | Element::Output { fanin, .. } => vec![*fanin],
            Element::T1 { fanins, .. } => fanins.to_vec(),
        }
    }
}

/// Errors reported by schedule validation or simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A fanin is produced outside the consumer's capture window.
    WindowViolation {
        /// Consuming element.
        consumer: ElementId,
        /// Driving element.
        producer: ElementId,
        /// Consumer stage.
        consumer_stage: u32,
        /// Producer stage.
        producer_stage: u32,
    },
    /// A T1 cell's fanins do not arrive at pairwise distinct stages.
    T1InputsNotStaggered(ElementId),
    /// Fewer than three phases: T1 staggering is impossible.
    TooFewPhases,
    /// An input vector has the wrong width.
    VectorWidth {
        /// Expected width (number of inputs).
        expected: usize,
        /// Provided width.
        got: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::WindowViolation {
                consumer,
                producer,
                consumer_stage,
                producer_stage,
            } => {
                write!(
                    f,
                    "element {} (stage {}) cannot capture element {} (stage {})",
                    consumer.0, consumer_stage, producer.0, producer_stage
                )
            }
            SimError::T1InputsNotStaggered(id) => {
                write!(f, "T1 cell {} has non-staggered inputs", id.0)
            }
            SimError::TooFewPhases => f.write_str("T1 cells require at least 3 clock phases"),
            SimError::VectorWidth { expected, got } => {
                write!(f, "input vector width {got}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Optional simulation controls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimOptions {
    /// Peak clock jitter: every clock event is displaced by a deterministic
    /// pseudo-random offset in `[-amplitude, +amplitude]` time units.
    /// Models skew/jitter of the multiphase clock network; large values
    /// shrink the T1 pulse-separation margin until hazards appear.
    pub jitter_amplitude: u64,
    /// Seed for the jitter pattern.
    pub jitter_seed: u64,
}

/// Result of a simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimOutcome {
    /// One output vector per input wave (indexed by output index).
    pub outputs: Vec<Vec<bool>>,
    /// Total T1 pulse-overlap hazards observed.
    pub hazards: u64,
    /// Total pulses emitted (activity metric).
    pub pulses: u64,
}

/// A scheduled SFQ netlist ready for pulse simulation.
#[derive(Debug, Clone, Default)]
pub struct PulseCircuit {
    elements: Vec<Element>,
    num_inputs: usize,
    num_outputs: usize,
}

impl PulseCircuit {
    /// Creates an empty circuit.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a primary input (stage 0) and returns its element id.
    pub fn add_input(&mut self) -> ElementId {
        let id = ElementId(self.elements.len() as u32);
        self.elements.push(Element::Input {
            index: self.num_inputs,
        });
        self.num_inputs += 1;
        id
    }

    /// Adds a constant driver (stage 0).
    pub fn add_const(&mut self, value: bool) -> ElementId {
        let id = ElementId(self.elements.len() as u32);
        self.elements.push(Element::Const { value });
        id
    }

    /// Adds a clocked gate computing `tt` over its fanins at `stage`.
    ///
    /// # Panics
    ///
    /// Panics if `tt.num_vars() != fanins.len()` or `stage == 0`.
    pub fn add_gate(&mut self, tt: TruthTable, fanins: Vec<Fanin>, stage: u32) -> ElementId {
        assert_eq!(
            tt.num_vars(),
            fanins.len(),
            "function arity must match fanin count"
        );
        assert!(stage > 0, "clocked elements start at stage 1");
        let id = ElementId(self.elements.len() as u32);
        self.elements.push(Element::Gate { tt, fanins, stage });
        id
    }

    /// Adds a path-balancing DFF at `stage`.
    ///
    /// # Panics
    ///
    /// Panics if `stage == 0`.
    pub fn add_dff(&mut self, fanin: Fanin, stage: u32) -> ElementId {
        assert!(stage > 0, "clocked elements start at stage 1");
        let id = ElementId(self.elements.len() as u32);
        self.elements.push(Element::Dff { fanin, stage });
        id
    }

    /// Adds a T1 cell clocked (R input) at `stage`; ports 0/1/2 are S/C/Q.
    ///
    /// # Panics
    ///
    /// Panics if `stage == 0`.
    pub fn add_t1(&mut self, fanins: [Fanin; 3], stage: u32) -> ElementId {
        assert!(stage > 0, "clocked elements start at stage 1");
        let id = ElementId(self.elements.len() as u32);
        self.elements.push(Element::T1 { fanins, stage });
        id
    }

    /// Adds an output capture latch at `stage`; returns the output index.
    ///
    /// # Panics
    ///
    /// Panics if `stage == 0`.
    pub fn add_output(&mut self, fanin: Fanin, stage: u32) -> usize {
        assert!(stage > 0, "clocked elements start at stage 1");
        let index = self.num_outputs;
        self.elements.push(Element::Output {
            fanin,
            index,
            stage,
        });
        self.num_outputs += 1;
        index
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of outputs.
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// Number of elements (including inputs and output latches).
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Returns `true` if the circuit has no elements.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Number of DFF elements.
    pub fn dff_count(&self) -> usize {
        self.elements
            .iter()
            .filter(|e| matches!(e, Element::Dff { .. }))
            .count()
    }

    /// Maximum stage over all elements.
    pub fn max_stage(&self) -> u32 {
        self.elements.iter().map(Element::stage).max().unwrap_or(0)
    }

    /// Validates the schedule for `n`-phase operation.
    ///
    /// # Errors
    ///
    /// Returns the first [`SimError`] found: capture-window violations,
    /// non-staggered T1 inputs, or `n < 3` in the presence of T1 cells.
    pub fn validate(&self, n: u32) -> Result<(), SimError> {
        if n < 3
            && self
                .elements
                .iter()
                .any(|e| matches!(e, Element::T1 { .. }))
        {
            return Err(SimError::TooFewPhases);
        }
        for (i, e) in self.elements.iter().enumerate() {
            let id = ElementId(i as u32);
            let stage = e.stage();
            for f in e.fanins() {
                let pstage = self.elements[f.source.elem.index()].stage();
                let gap = stage as i64 - pstage as i64;
                if gap < 1 || gap > n as i64 {
                    return Err(SimError::WindowViolation {
                        consumer: id,
                        producer: f.source.elem,
                        consumer_stage: stage,
                        producer_stage: pstage,
                    });
                }
            }
            if let Element::T1 { fanins, .. } = e {
                if n < 3 {
                    return Err(SimError::TooFewPhases);
                }
                let mut stages: Vec<u32> = fanins
                    .iter()
                    .map(|f| self.elements[f.source.elem.index()].stage())
                    .collect();
                stages.sort_unstable();
                stages.dedup();
                if stages.len() != 3 {
                    return Err(SimError::T1InputsNotStaggered(id));
                }
            }
        }
        Ok(())
    }

    /// Runs the circuit on a stream of input vectors (one per epoch) under
    /// `n`-phase clocking.
    ///
    /// # Errors
    ///
    /// Propagates [`PulseCircuit::validate`] errors and rejects vectors of
    /// the wrong width.
    pub fn simulate(&self, vectors: &[Vec<bool>], n: u32) -> Result<SimOutcome, SimError> {
        self.simulate_traced(vectors, n, None).map(|(o, _)| o)
    }

    /// Like [`PulseCircuit::simulate`], optionally recording a pulse trace
    /// (see [`crate::trace`]). `watch` limits recording to the given
    /// elements (`None` records everything).
    ///
    /// # Errors
    ///
    /// Same conditions as [`PulseCircuit::simulate`].
    pub fn simulate_traced(
        &self,
        vectors: &[Vec<bool>],
        n: u32,
        watch: Option<&[ElementId]>,
    ) -> Result<(SimOutcome, Vec<crate::trace::TraceEvent>), SimError> {
        self.simulate_opts(vectors, n, watch, SimOptions::default())
    }

    /// Full-control entry point: like [`PulseCircuit::simulate_traced`] with
    /// explicit [`SimOptions`] (clock jitter injection for timing-margin
    /// studies).
    ///
    /// # Errors
    ///
    /// Same conditions as [`PulseCircuit::simulate`].
    pub fn simulate_opts(
        &self,
        vectors: &[Vec<bool>],
        n: u32,
        watch: Option<&[ElementId]>,
        opts: SimOptions,
    ) -> Result<(SimOutcome, Vec<crate::trace::TraceEvent>), SimError> {
        use crate::trace::{TraceEvent, TraceKind};
        // SplitMix64-style hash for deterministic per-event jitter.
        let jitter = |elem: u32, wave: u32| -> i64 {
            if opts.jitter_amplitude == 0 {
                return 0;
            }
            let mut z = opts
                .jitter_seed
                .wrapping_add(0x9E3779B97F4A7C15)
                .wrapping_add((elem as u64) << 32 | wave as u64);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            let span = 2 * opts.jitter_amplitude + 1;
            (z % span) as i64 - opts.jitter_amplitude as i64
        };
        let mut trace: Vec<TraceEvent> = Vec::new();
        let record =
            |trace: &mut Vec<TraceEvent>, time: u64, element: ElementId, kind: TraceKind| {
                if watch.is_none_or(|w| w.contains(&element)) {
                    trace.push(TraceEvent {
                        time,
                        element,
                        kind,
                    });
                }
            };
        self.validate(n)?;
        for v in vectors {
            if v.len() != self.num_inputs {
                return Err(SimError::VectorWidth {
                    expected: self.num_inputs,
                    got: v.len(),
                });
            }
        }
        let num_waves = vectors.len();

        // Fanout lists per (element, port).
        let mut fanouts: Vec<Vec<Vec<(ElementId, u8)>>> = self
            .elements
            .iter()
            .map(|e| {
                let ports = if matches!(e, Element::T1 { .. }) {
                    3
                } else {
                    1
                };
                vec![Vec::new(); ports]
            })
            .collect();
        for (i, e) in self.elements.iter().enumerate() {
            for (slot, f) in e.fanins().iter().enumerate() {
                fanouts[f.source.elem.index()][f.source.port as usize]
                    .push((ElementId(i as u32), slot as u8));
            }
        }

        // Per-element run state.
        let mut flags: Vec<Vec<bool>> = self
            .elements
            .iter()
            .map(|e| vec![false; e.fanins().len()])
            .collect();
        let mut t1_state: Vec<Option<T1Cell>> = self
            .elements
            .iter()
            .map(|e| matches!(e, Element::T1 { .. }).then(|| T1Cell::new(T1_MIN_SEPARATION)))
            .collect();
        let mut outputs = vec![vec![false; self.num_outputs]; num_waves];
        let mut pulses: u64 = 0;

        // Event queue: (time, kind_rank, element). Pulses (rank 0) are
        // processed before clocks (rank 1) at equal times, although the
        // EMIT_DELAY offset keeps times distinct in practice.
        #[derive(PartialEq, Eq, PartialOrd, Ord)]
        enum Ev {
            Pulse(ElementId, u8),
            Clock(ElementId, u32),
        }
        let mut queue: BinaryHeap<Reverse<(u64, u8, u32, Ev)>> = BinaryHeap::new();
        let push = |q: &mut BinaryHeap<Reverse<(u64, u8, u32, Ev)>>, t: u64, ev: Ev| {
            let (rank, id) = match &ev {
                Ev::Pulse(e, _) => (0u8, e.0),
                Ev::Clock(e, _) => (1u8, e.0),
            };
            q.push(Reverse((t, rank, id, ev)));
        };

        // Schedule all clock events (with optional jitter displacement).
        for (i, e) in self.elements.iter().enumerate() {
            let id = ElementId(i as u32);
            for k in 0..num_waves as u32 {
                let nominal = (e.stage() as u64 + k as u64 * n as u64) * SLOT;
                let t = nominal.saturating_add_signed(jitter(i as u32, k));
                match e {
                    Element::Input { index } => {
                        if vectors[k as usize][*index] {
                            push(&mut queue, t + EMIT_DELAY, Ev::Clock(id, k));
                        }
                    }
                    Element::Const { value } => {
                        if *value {
                            push(&mut queue, t + EMIT_DELAY, Ev::Clock(id, k));
                        }
                    }
                    _ => push(&mut queue, t, Ev::Clock(id, k)),
                }
            }
        }

        // Drain the queue.
        while let Some(Reverse((time, _, _, ev))) = queue.pop() {
            match ev {
                Ev::Pulse(target, slot) => {
                    let ti = target.index();
                    match &self.elements[ti] {
                        Element::T1 { .. } => {
                            // All three fanin slots merge into the T input.
                            let cell = t1_state[ti].as_mut().expect("T1 state allocated");
                            let _async_events = cell.pulse_t(time);
                        }
                        _ => {
                            flags[ti][slot as usize] = true;
                        }
                    }
                }
                Ev::Clock(id, wave) => {
                    let i = id.index();
                    if !matches!(
                        self.elements[i],
                        Element::Input { .. } | Element::Const { .. }
                    ) {
                        record(&mut trace, time, id, TraceKind::Clock);
                    }
                    let value = match &self.elements[i] {
                        Element::Input { .. } | Element::Const { .. } => Some(true),
                        Element::Gate { tt, fanins, .. } => {
                            let mut idx = 0usize;
                            for (s, f) in fanins.iter().enumerate() {
                                if flags[i][s] ^ f.invert {
                                    idx |= 1 << s;
                                }
                            }
                            for fl in flags[i].iter_mut() {
                                *fl = false;
                            }
                            Some(tt.get(idx))
                        }
                        Element::Dff { fanin, .. } => {
                            let v = flags[i][0] ^ fanin.invert;
                            flags[i][0] = false;
                            Some(v)
                        }
                        Element::Output { fanin, index, .. } => {
                            let v = flags[i][0] ^ fanin.invert;
                            flags[i][0] = false;
                            outputs[wave as usize][*index] = v;
                            None
                        }
                        Element::T1 { .. } => {
                            let cell = t1_state[i].as_mut().expect("T1 state allocated");
                            let events = cell.pulse_r(time);
                            // Emit per port: 0 = S, 1 = C, 2 = Q.
                            for (port, ev_kind) in
                                [(0u8, T1Event::S), (1, T1Event::C), (2, T1Event::Q)]
                            {
                                if events.contains(&ev_kind) {
                                    record(&mut trace, time + EMIT_DELAY, id, TraceKind::Emit);
                                    for &(consumer, slot) in &fanouts[i][port as usize] {
                                        pulses += 1;
                                        push(
                                            &mut queue,
                                            time + EMIT_DELAY,
                                            Ev::Pulse(consumer, slot),
                                        );
                                    }
                                }
                            }
                            None
                        }
                    };
                    if let Some(true) = value {
                        // T1 inverted-input handling lives in the mapping
                        // flow (explicit NOT gates), so plain emission is
                        // correct for all single-port elements.
                        record(&mut trace, time + EMIT_DELAY, id, TraceKind::Emit);
                        for &(consumer, slot) in &fanouts[i][0] {
                            pulses += 1;
                            push(&mut queue, time + EMIT_DELAY, Ev::Pulse(consumer, slot));
                        }
                    }
                }
            }
        }

        let hazards = t1_state.iter().flatten().map(T1Cell::hazards).sum();
        Ok((
            SimOutcome {
                outputs,
                hazards,
                pulses,
            },
            trace,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tt_and2() -> TruthTable {
        TruthTable::var(2, 0) & TruthTable::var(2, 1)
    }

    fn tt_xor2() -> TruthTable {
        TruthTable::var(2, 0) ^ TruthTable::var(2, 1)
    }

    #[test]
    fn single_gate_and() {
        let mut c = PulseCircuit::new();
        let a = c.add_input();
        let b = c.add_input();
        let g = c.add_gate(tt_and2(), vec![Fanin::plain(a), Fanin::plain(b)], 1);
        c.add_output(Fanin::plain(g), 2);
        let out = c
            .simulate(
                &[vec![true, true], vec![true, false], vec![false, false]],
                1,
            )
            .unwrap();
        assert_eq!(out.outputs, vec![vec![true], vec![false], vec![false]]);
    }

    #[test]
    fn inverted_input_gate() {
        let mut c = PulseCircuit::new();
        let a = c.add_input();
        let b = c.add_input();
        let g = c.add_gate(
            tt_and2(),
            vec![
                Fanin::plain(a),
                Fanin {
                    source: OutRef { elem: b, port: 0 },
                    invert: true,
                },
            ],
            1,
        );
        c.add_output(Fanin::plain(g), 2);
        let out = c
            .simulate(&[vec![true, false], vec![true, true]], 1)
            .unwrap();
        assert_eq!(out.outputs, vec![vec![true], vec![false]]);
    }

    #[test]
    fn dff_chain_delays_one_stage_each() {
        let mut c = PulseCircuit::new();
        let a = c.add_input();
        let d1 = c.add_dff(Fanin::plain(a), 1);
        let d2 = c.add_dff(Fanin::plain(d1), 2);
        c.add_output(Fanin::plain(d2), 3);
        let out = c
            .simulate(&[vec![true], vec![false], vec![true]], 1)
            .unwrap();
        assert_eq!(out.outputs, vec![vec![true], vec![false], vec![true]]);
    }

    #[test]
    fn multiphase_window_allows_gap() {
        // Producer at stage 1, consumer at stage 4: legal under n = 4.
        let mut c = PulseCircuit::new();
        let a = c.add_input();
        let g = c.add_gate(TruthTable::var(1, 0), vec![Fanin::plain(a)], 1);
        c.add_output(Fanin::plain(g), 4);
        let out = c.simulate(&[vec![true], vec![false]], 4).unwrap();
        assert_eq!(out.outputs, vec![vec![true], vec![false]]);
        // Same netlist under single-phase clocking is invalid.
        assert!(matches!(
            c.simulate(&[vec![true]], 1),
            Err(SimError::WindowViolation { .. })
        ));
    }

    #[test]
    fn t1_full_adder_all_combinations() {
        // T1 at stage 4, inputs delivered at stages 1, 2, 3 via DFFs.
        let mut c = PulseCircuit::new();
        let a = c.add_input();
        let b = c.add_input();
        let cin = c.add_input();
        let da = c.add_dff(Fanin::plain(a), 1);
        let db = c.add_dff(Fanin::plain(b), 2);
        let dc = c.add_dff(Fanin::plain(cin), 3);
        let t1 = c.add_t1([Fanin::plain(da), Fanin::plain(db), Fanin::plain(dc)], 4);
        c.add_output(
            Fanin {
                source: OutRef { elem: t1, port: 0 },
                invert: false,
            },
            5,
        );
        c.add_output(
            Fanin {
                source: OutRef { elem: t1, port: 1 },
                invert: false,
            },
            5,
        );
        c.add_output(
            Fanin {
                source: OutRef { elem: t1, port: 2 },
                invert: false,
            },
            5,
        );
        let vectors: Vec<Vec<bool>> = (0..8u32)
            .map(|i| (0..3).map(|b| (i >> b) & 1 == 1).collect())
            .collect();
        let out = c.simulate(&vectors, 4).unwrap();
        assert_eq!(out.hazards, 0, "staggered inputs must not overlap");
        for (i, got) in out.outputs.iter().enumerate() {
            let ones = (i as u32).count_ones();
            assert_eq!(got[0], ones % 2 == 1, "S at input {i}");
            assert_eq!(got[1], ones >= 2, "C at input {i}");
            assert_eq!(got[2], ones >= 1, "Q at input {i}");
        }
    }

    #[test]
    fn t1_unstaggered_inputs_rejected() {
        let mut c = PulseCircuit::new();
        let a = c.add_input();
        let b = c.add_input();
        let cin = c.add_input();
        let da = c.add_dff(Fanin::plain(a), 2);
        let db = c.add_dff(Fanin::plain(b), 2); // same stage as da
        let dc = c.add_dff(Fanin::plain(cin), 3);
        let t1 = c.add_t1([Fanin::plain(da), Fanin::plain(db), Fanin::plain(dc)], 4);
        c.add_output(
            Fanin {
                source: OutRef { elem: t1, port: 0 },
                invert: false,
            },
            5,
        );
        assert_eq!(
            c.simulate(&[vec![false, false, false]], 4),
            Err(SimError::T1InputsNotStaggered(t1))
        );
    }

    #[test]
    fn t1_requires_three_phases() {
        let mut c = PulseCircuit::new();
        let a = c.add_input();
        let b = c.add_input();
        let cin = c.add_input();
        let da = c.add_dff(Fanin::plain(a), 1);
        let db = c.add_dff(Fanin::plain(b), 2);
        let dc = c.add_dff(Fanin::plain(cin), 3);
        let t1 = c.add_t1([Fanin::plain(da), Fanin::plain(db), Fanin::plain(dc)], 4);
        c.add_output(
            Fanin {
                source: OutRef { elem: t1, port: 0 },
                invert: false,
            },
            5,
        );
        assert_eq!(
            c.simulate(&[vec![true, true, true]], 2),
            Err(SimError::TooFewPhases)
        );
    }

    #[test]
    fn wave_pipelining_streams_independent_vectors() {
        // xor of two inputs, 8 random-ish waves, single phase.
        let mut c = PulseCircuit::new();
        let a = c.add_input();
        let b = c.add_input();
        let g = c.add_gate(tt_xor2(), vec![Fanin::plain(a), Fanin::plain(b)], 1);
        c.add_output(Fanin::plain(g), 2);
        let vectors: Vec<Vec<bool>> = (0..8u32)
            .map(|i| vec![i & 1 == 1, i >> 1 & 1 == 1])
            .collect();
        let out = c.simulate(&vectors, 1).unwrap();
        for (i, got) in out.outputs.iter().enumerate() {
            let expect = ((i & 1) ^ ((i >> 1) & 1)) == 1;
            assert_eq!(got[0], expect, "wave {i}");
        }
    }

    #[test]
    fn const_driver() {
        let mut c = PulseCircuit::new();
        let a = c.add_input();
        let k = c.add_const(true);
        let g = c.add_gate(tt_and2(), vec![Fanin::plain(a), Fanin::plain(k)], 1);
        c.add_output(Fanin::plain(g), 2);
        let out = c.simulate(&[vec![true], vec![false]], 1).unwrap();
        assert_eq!(out.outputs, vec![vec![true], vec![false]]);
    }

    #[test]
    fn vector_width_checked() {
        let mut c = PulseCircuit::new();
        let a = c.add_input();
        c.add_output(Fanin::plain(a), 1);
        assert_eq!(
            c.simulate(&[vec![true, false]], 1),
            Err(SimError::VectorWidth {
                expected: 1,
                got: 2
            })
        );
    }

    #[test]
    fn inverted_output() {
        let mut c = PulseCircuit::new();
        let a = c.add_input();
        c.add_output(
            Fanin {
                source: OutRef { elem: a, port: 0 },
                invert: true,
            },
            1,
        );
        let out = c.simulate(&[vec![true], vec![false]], 1).unwrap();
        assert_eq!(out.outputs, vec![vec![false], vec![true]]);
    }
}

#[cfg(test)]
mod jitter_tests {
    use super::*;

    /// T1 full adder with release DFFs at stages 1..3, T1 at 4.
    fn t1_fa() -> PulseCircuit {
        let mut c = PulseCircuit::new();
        let a = c.add_input();
        let b = c.add_input();
        let cin = c.add_input();
        let da = c.add_dff(Fanin::plain(a), 1);
        let db = c.add_dff(Fanin::plain(b), 2);
        let dc = c.add_dff(Fanin::plain(cin), 3);
        let t1 = c.add_t1([Fanin::plain(da), Fanin::plain(db), Fanin::plain(dc)], 4);
        c.add_output(
            Fanin {
                source: OutRef { elem: t1, port: 0 },
                invert: false,
            },
            5,
        );
        c
    }

    #[test]
    fn zero_jitter_matches_plain_simulation() {
        let c = t1_fa();
        let vectors: Vec<Vec<bool>> = (0..8u32)
            .map(|i| (0..3).map(|k| (i >> k) & 1 == 1).collect())
            .collect();
        let plain = c.simulate(&vectors, 4).unwrap();
        let (opt, _) = c
            .simulate_opts(
                &vectors,
                4,
                None,
                SimOptions {
                    jitter_amplitude: 0,
                    jitter_seed: 7,
                },
            )
            .unwrap();
        assert_eq!(plain, opt);
    }

    #[test]
    fn small_jitter_is_harmless() {
        // Stage separation is SLOT = 1000, hazard threshold 500:
        // ±100 of jitter keeps pulses separated and capture windows intact.
        let c = t1_fa();
        let vectors: Vec<Vec<bool>> = (0..8u32)
            .map(|i| (0..3).map(|k| (i >> k) & 1 == 1).collect())
            .collect();
        for seed in 0..5 {
            let (out, _) = c
                .simulate_opts(
                    &vectors,
                    4,
                    None,
                    SimOptions {
                        jitter_amplitude: 100,
                        jitter_seed: seed,
                    },
                )
                .unwrap();
            assert_eq!(out.hazards, 0, "seed {seed}");
            for (i, o) in out.outputs.iter().enumerate() {
                assert_eq!(
                    o[0],
                    (i as u32).count_ones() % 2 == 1,
                    "seed {seed} wave {i}"
                );
            }
        }
    }

    #[test]
    fn large_jitter_produces_hazards() {
        // Jitter comparable to the slot width collapses the staggering:
        // consecutive T pulses can fall closer than the hazard threshold.
        let c = t1_fa();
        let vectors: Vec<Vec<bool>> = (0..16).map(|_| vec![true, true, true]).collect();
        let mut total_hazards = 0;
        for seed in 0..8 {
            let (out, _) = c
                .simulate_opts(
                    &vectors,
                    4,
                    None,
                    SimOptions {
                        jitter_amplitude: 700,
                        jitter_seed: seed,
                    },
                )
                .unwrap();
            total_hazards += out.hazards;
        }
        assert!(
            total_hazards > 0,
            "700-unit jitter must eventually overlap pulses"
        );
    }

    #[test]
    fn jitter_is_deterministic_in_seed() {
        let c = t1_fa();
        let vectors: Vec<Vec<bool>> = (0..4).map(|_| vec![true, false, true]).collect();
        let opts = SimOptions {
            jitter_amplitude: 300,
            jitter_seed: 42,
        };
        let (a, _) = c.simulate_opts(&vectors, 4, None, opts).unwrap();
        let (b, _) = c.simulate_opts(&vectors, 4, None, opts).unwrap();
        assert_eq!(a, b);
    }
}
