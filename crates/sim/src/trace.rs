//! Pulse-trace recording and text-waveform rendering.
//!
//! For debugging scheduled netlists and for the Fig.-1b-style waveform
//! plots, the simulator can record every emitted pulse and clock event; the
//! [`render_waveform`] helper draws a compact ASCII timing diagram (one row
//! per watched element, one column per stage slot).
//!
//! # Examples
//!
//! ```
//! use sfq_sim::trace::{render_waveform, TraceEvent, TraceKind};
//! use sfq_sim::pulse::ElementId;
//!
//! let events = vec![
//!     TraceEvent { time: 1060, element: ElementId(0), kind: TraceKind::Emit },
//!     TraceEvent { time: 2000, element: ElementId(1), kind: TraceKind::Clock },
//!     TraceEvent { time: 2060, element: ElementId(1), kind: TraceKind::Emit },
//! ];
//! let text = render_waveform(&events, &[(ElementId(0), "a"), (ElementId(1), "g")], 4);
//! assert!(text.contains("a"));
//! ```

use crate::pulse::{ElementId, SLOT};
use std::fmt::Write as _;

/// Kind of a traced event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// The element received its clock pulse.
    Clock,
    /// The element emitted a data pulse (any output port).
    Emit,
}

/// One recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulator time.
    pub time: u64,
    /// The element concerned.
    pub element: ElementId,
    /// What happened.
    pub kind: TraceKind,
}

/// Renders selected elements' activity as an ASCII waveform.
///
/// Each column is one stage slot ([`SLOT`] time units); `|` marks a clock,
/// `*` a pulse emission, `#` both in the same slot. `max_slots` bounds the
/// width.
pub fn render_waveform(
    events: &[TraceEvent],
    rows: &[(ElementId, &str)],
    max_slots: usize,
) -> String {
    let horizon = events.iter().map(|e| e.time).max().unwrap_or(0);
    let slots = (((horizon / SLOT) + 1) as usize).min(max_slots.max(1));
    let label_width = rows.iter().map(|(_, l)| l.len()).max().unwrap_or(4).max(4);
    let mut out = String::new();
    // Header ruler (slot numbers mod 10).
    let _ = write!(out, "{:width$} ", "slot", width = label_width);
    for s in 0..slots {
        let _ = write!(out, "{}", s % 10);
    }
    out.push('\n');
    for &(elem, label) in rows {
        let mut lane = vec![b' '; slots];
        for e in events.iter().filter(|e| e.element == elem) {
            let slot = (e.time / SLOT) as usize;
            if slot >= slots {
                continue;
            }
            let mark = match e.kind {
                TraceKind::Clock => b'|',
                TraceKind::Emit => b'*',
            };
            lane[slot] = if lane[slot] == b' ' || lane[slot] == mark {
                mark
            } else {
                b'#'
            };
        }
        let _ = writeln!(
            out,
            "{:width$} {}",
            label,
            String::from_utf8(lane).expect("ascii"),
            width = label_width
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_marks_in_correct_slots() {
        let events = vec![
            TraceEvent {
                time: 0,
                element: ElementId(0),
                kind: TraceKind::Clock,
            },
            TraceEvent {
                time: 60,
                element: ElementId(0),
                kind: TraceKind::Emit,
            },
            TraceEvent {
                time: 3 * SLOT,
                element: ElementId(1),
                kind: TraceKind::Clock,
            },
        ];
        let text = render_waveform(&events, &[(ElementId(0), "in"), (ElementId(1), "t1")], 8);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        // Element 0: clock+emit in slot 0 → '#'.
        assert!(lines[1].contains('#'), "{text}");
        // Element 1: clock in slot 3. Lane starts after "slot"-wide label + space.
        let lane_offset = "slot".len() + 1;
        assert_eq!(lines[2].chars().nth(lane_offset + 3), Some('|'), "{text}");
    }

    #[test]
    fn truncates_to_max_slots() {
        let events = vec![TraceEvent {
            time: 100 * SLOT,
            element: ElementId(0),
            kind: TraceKind::Emit,
        }];
        let text = render_waveform(&events, &[(ElementId(0), "x")], 10);
        // Event beyond the window is dropped, not panicking.
        assert!(!text.contains('*'));
    }

    #[test]
    fn empty_events_render_header_only_lanes() {
        let text = render_waveform(&[], &[(ElementId(0), "a")], 4);
        assert!(text.starts_with("slot"));
        assert_eq!(text.lines().count(), 2);
    }
}
