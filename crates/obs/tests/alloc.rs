//! Integration tests of the counting allocator. This test binary — and
//! only this one — installs [`sfq_obs::alloc::CountingAlloc`] as its
//! global allocator, exactly like the CLI binaries do, so these tests
//! see real counted allocations while the sibling `obs.rs` binary
//! exercises the uninstalled path.

use sfq_obs::alloc::{self, CountingAlloc};
use std::sync::Mutex;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

/// The recorder (and thus the allocator gate) is process-global state.
static GLOBAL: Mutex<()> = Mutex::new(());

#[test]
fn disabled_recorder_counts_nothing() {
    let _guard = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    sfq_obs::enable(); // resets counters…
    sfq_obs::disable(); // …and gates them off again
    let before = alloc::stats();
    let v: Vec<u8> = Vec::with_capacity(1 << 16);
    drop(v);
    let after = alloc::stats();
    assert_eq!(before, after, "disabled path must not count");
    assert!(!alloc::is_tracking());
}

#[test]
fn enabled_recorder_counts_bytes_live_and_peak() {
    let _guard = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    sfq_obs::enable();
    let t0 = alloc::thread_allocated();
    let v: Vec<u8> = Vec::with_capacity(1 << 16);
    let mid = alloc::stats();
    assert!(mid.allocated >= 1 << 16, "allocation counted: {mid:?}");
    assert!(mid.peak >= 1 << 16, "peak tracks the high-water mark");
    assert!(alloc::is_tracking());
    drop(v);
    let end = alloc::stats();
    assert!(end.freed >= 1 << 16, "free counted: {end:?}");
    assert!(end.peak >= end.live, "peak never below live");
    assert!(
        alloc::thread_allocated() - t0 >= 1 << 16,
        "per-thread tally advanced"
    );
    sfq_obs::disable();
    let _ = sfq_obs::take();
}

#[test]
fn span_close_attaches_allocation_delta_and_bytes_histogram() {
    let _guard = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    sfq_obs::enable();
    {
        let _s = sfq_obs::span("alloc-heavy");
        let v: Vec<u64> = vec![0; 8192];
        std::hint::black_box(&v);
    }
    {
        let _s = sfq_obs::span("alloc-light");
    }
    let trace = sfq_obs::take();
    sfq_obs::disable();

    let heavy = trace
        .events
        .iter()
        .find(|e| e.name == "alloc-heavy")
        .unwrap();
    assert!(
        heavy.alloc_bytes >= 8192 * 8,
        "span records its thread's allocation delta, got {}",
        heavy.alloc_bytes
    );
    let light = trace
        .events
        .iter()
        .find(|e| e.name == "alloc-light")
        .unwrap();
    assert!(
        light.alloc_bytes < 8192 * 8,
        "empty span must not inherit the heavy span's bytes"
    );

    let bytes_hist = trace
        .histogram("alloc-heavy.bytes")
        .expect("span close feeds a .bytes histogram when tracking");
    assert_eq!(bytes_hist.count(), 1);
    assert!(bytes_hist.max() >= 8192 * 8);

    // The summary surfaces the per-span peak bytes column.
    let summary = trace.summary();
    assert!(summary.contains("peak B"), "{summary}");
    assert!(summary.contains("alloc-heavy"), "{summary}");
}

#[test]
fn per_thread_tallies_are_independent() {
    let _guard = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    sfq_obs::enable();
    let t0 = alloc::thread_allocated();
    std::thread::spawn(|| {
        let v: Vec<u8> = Vec::with_capacity(1 << 20);
        std::hint::black_box(&v);
    })
    .join()
    .unwrap();
    let delta = alloc::thread_allocated() - t0;
    assert!(
        delta < 1 << 20,
        "another thread's megabyte must not land on this thread's tally (delta {delta})"
    );
    let s = alloc::stats();
    assert!(
        s.allocated >= 1 << 20,
        "process-wide counter sees it: {s:?}"
    );
    sfq_obs::disable();
    let _ = sfq_obs::take();
}
