//! Property tests of [`sfq_obs::Histogram`]: merge must be independent
//! of how samples were partitioned across threads and of merge order,
//! and percentile estimates must bracket the true quantiles within one
//! bucket's resolution.

use proptest::prelude::*;
use sfq_obs::hist::{bucket_bounds, bucket_of};
use sfq_obs::Histogram;

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn merge_is_order_and_thread_count_independent(
        values in prop::collection::vec(any::<u64>(), 1..200),
        threads in 1usize..8,
        rotate in 0usize..200,
    ) {
        // Ground truth: one histogram fed sequentially.
        let mut whole = Histogram::new();
        for &v in &values {
            whole.record(v);
        }

        // Partition round-robin over `threads` shards, really recording
        // on separate threads to cover any thread-affine state.
        let shards: Vec<Histogram> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let vals = &values;
                    scope.spawn(move || {
                        let mut h = Histogram::new();
                        for (i, &v) in vals.iter().enumerate() {
                            if i % threads == t {
                                h.record(v);
                            }
                        }
                        h
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        // Merge in an arbitrary rotation of shard order.
        let mut merged = Histogram::new();
        for i in 0..shards.len() {
            merged.merge(&shards[(i + rotate) % shards.len()]);
        }
        prop_assert_eq!(&merged, &whole);

        // And pairwise tree-merge (another association) agrees too.
        let mut tree = shards;
        while tree.len() > 1 {
            let mut next = Vec::new();
            for pair in tree.chunks(2) {
                let mut h = pair[0].clone();
                if let Some(b) = pair.get(1) {
                    h.merge(b);
                }
                next.push(h);
            }
            tree = next;
        }
        prop_assert_eq!(&tree[0], &whole);
    }

    #[test]
    fn percentiles_bracket_true_quantiles_within_bucket_resolution(
        values in prop::collection::vec(0u64..1_000_000_000, 1..300),
        p in 0u32..101,
    ) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let rank = ((u64::from(p.min(100)) * sorted.len() as u64).div_ceil(100)).max(1);
        let truth = sorted[rank as usize - 1];
        let est = h.percentile(p);
        // Never undershoots the true quantile…
        prop_assert!(est >= truth, "p{}: {} < true {}", p, est, truth);
        // …and overshoots by at most the truth's bucket (clamped to max).
        let (_, hi) = bucket_bounds(bucket_of(truth));
        prop_assert!(
            est <= hi.min(h.max()),
            "p{}: {} above bucket cap {} (max {})",
            p, est, hi, h.max()
        );
        // Exact stats stay exact.
        prop_assert_eq!(h.min(), sorted[0]);
        prop_assert_eq!(h.max(), *sorted.last().unwrap());
        prop_assert_eq!(h.count(), sorted.len() as u64);
    }
}
