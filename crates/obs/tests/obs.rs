//! Integration tests of the global recorder. The recorder is
//! process-global state, so every test serializes on one mutex.

use sfq_obs::{json, Trace};
use std::sync::Mutex;

static GLOBAL: Mutex<()> = Mutex::new(());

/// Runs `f` with exclusive ownership of the (freshly enabled) recorder
/// and returns what it recorded, leaving the recorder disabled.
fn recorded(f: impl FnOnce()) -> Trace {
    let _guard = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    sfq_obs::enable();
    f();
    let trace = sfq_obs::take();
    sfq_obs::disable();
    trace
}

#[test]
fn spans_balance_including_nesting() {
    let trace = recorded(|| {
        let _outer = sfq_obs::span("outer");
        for _ in 0..3 {
            let _inner = sfq_obs::span("inner");
            sfq_obs::counter("work", 1);
        }
        assert_eq!(sfq_obs::open_spans(), 1, "outer still open");
    });
    assert_eq!(sfq_obs::open_spans(), 0, "all spans closed");
    assert_eq!(trace.events.len(), 4);
    let outer = trace.events.iter().find(|e| e.name == "outer").unwrap();
    assert_eq!(outer.depth, 0);
    assert!(trace
        .events
        .iter()
        .filter(|e| e.name == "inner")
        .all(|e| e.depth == 1));
    assert_eq!(trace.counters, vec![("work".to_string(), 3)]);
}

#[test]
fn spans_balance_through_a_panicking_pass() {
    let trace = recorded(|| {
        let caught = std::panic::catch_unwind(|| {
            let _span = sfq_obs::span("doomed-pass");
            panic!("pass blew up");
        });
        assert!(caught.is_err());
        assert_eq!(
            sfq_obs::open_spans(),
            0,
            "unwinding must close the span via Drop"
        );
    });
    let doomed = trace.events.iter().find(|e| e.name == "doomed-pass");
    assert!(doomed.is_some(), "panicked span still recorded");
}

#[test]
fn chrome_trace_json_is_valid_and_faithful() {
    let trace = recorded(|| {
        let _a = sfq_obs::span_labeled("stage", || "job \"q\"\tφ".to_string());
        drop(sfq_obs::span_owned(|| "opt:rewrite".to_string()));
        sfq_obs::counter("store.memory.hits", 4);
        sfq_obs::gauge("store.disk.entries", 17);
    });
    let text = trace.chrome_json();
    let doc = json::parse(&text).expect("chrome trace parses as JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .expect("traceEvents array");
    // 2 spans + 1 counter + 1 gauge + 2 histogram tracks (one per
    // distinct span name, auto-fed on close).
    assert_eq!(events.len(), 6);
    let hist = events
        .iter()
        .find(|e| e.get("name").and_then(|v| v.as_str()) == Some("hist:stage"))
        .expect("span close feeds a hist:stage counter track");
    for key in ["p50", "p90", "p99", "max"] {
        assert!(
            hist.get("args").and_then(|a| a.get(key)).is_some(),
            "hist track carries {key}"
        );
    }
    for e in events {
        assert!(e.get("name").and_then(|v| v.as_str()).is_some());
        assert!(matches!(
            e.get("ph").and_then(|v| v.as_str()),
            Some("X" | "C")
        ));
        assert!(e.get("ts").and_then(|v| v.as_u64()).is_some());
    }
    let labeled = events
        .iter()
        .find(|e| e.get("name").and_then(|v| v.as_str()) == Some("stage"))
        .unwrap();
    assert_eq!(
        labeled
            .get("args")
            .and_then(|a| a.get("label"))
            .and_then(|v| v.as_str()),
        Some("job \"q\"\tφ"),
        "label escaping roundtrips"
    );
    let counter = events
        .iter()
        .find(|e| e.get("name").and_then(|v| v.as_str()) == Some("store.memory.hits"))
        .unwrap();
    assert_eq!(
        counter
            .get("args")
            .and_then(|a| a.get("value"))
            .and_then(|v| v.as_u64()),
        Some(4)
    );
}

#[test]
fn counters_from_two_threads_merge_losslessly() {
    const PER_THREAD: u64 = 10_000;
    let trace = recorded(|| {
        std::thread::scope(|scope| {
            for _ in 0..2 {
                scope.spawn(|| {
                    let _span = sfq_obs::span("worker");
                    for _ in 0..PER_THREAD {
                        sfq_obs::counter("shared", 1);
                    }
                });
            }
        });
    });
    assert_eq!(
        trace.counters,
        vec![("shared".to_string(), 2 * PER_THREAD)],
        "no increments lost to racing threads"
    );
    let tids: std::collections::BTreeSet<u64> = trace
        .events
        .iter()
        .filter(|e| e.name == "worker")
        .map(|e| e.tid)
        .collect();
    assert_eq!(tids.len(), 2, "each thread gets its own tid");
}

#[test]
fn disabled_recorder_records_nothing_and_costs_no_state() {
    let _guard = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    sfq_obs::disable();
    let _ = sfq_obs::take();
    {
        let _span = sfq_obs::span("ghost");
        let _labeled = sfq_obs::span_labeled("ghost", || unreachable!("label not built"));
        let _named = sfq_obs::span_owned(|| unreachable!("name not built"));
        sfq_obs::counter("ghost", 1);
        sfq_obs::gauge("ghost", 1);
        assert_eq!(sfq_obs::open_spans(), 0);
    }
    assert!(sfq_obs::now_us().is_none());
    assert!(sfq_obs::take().is_empty());
}

#[test]
fn summary_and_rollups_aggregate_by_name() {
    let trace = recorded(|| {
        for _ in 0..2 {
            let _s = sfq_obs::span("flow:map");
        }
        sfq_obs::counter("store.misses", 2);
    });
    let rollups = trace.rollups();
    assert_eq!(rollups.len(), 1);
    assert_eq!(rollups[0].name, "flow:map");
    assert_eq!(rollups[0].count, 2);
    let summary = trace.summary();
    assert!(summary.contains("flow:map"), "{summary}");
    assert!(summary.contains("store.misses"), "{summary}");
}
