//! Counting `#[global_allocator]` wrapper.
//!
//! [`CountingAlloc`] delegates every request to the system allocator and,
//! *only while the recorder is enabled*, maintains process-wide byte
//! counters with relaxed atomics plus a per-thread allocated-bytes tally.
//! When the recorder is disabled the entire overhead is one relaxed
//! atomic load per allocator call — the same contract the span macros
//! honor — so installing the wrapper cannot perturb untraced runs.
//!
//! Installation is per *binary* (that is what `#[global_allocator]`
//! means), so library users opt in explicitly:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: sfq_obs::alloc::CountingAlloc = sfq_obs::alloc::CountingAlloc::new();
//! ```
//!
//! [`crate::enable`] resets the counters, so [`stats`] reports the window
//! since tracing started. `live`/`peak` are clamped to zero at reporting:
//! blocks allocated before enabling and freed afterwards would otherwise
//! drive the live count negative.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering::Relaxed};

static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static FREED_BYTES: AtomicU64 = AtomicU64::new(0);
static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
// Signed: frees of pre-enable blocks can transiently outweigh allocations.
static LIVE_BYTES: AtomicI64 = AtomicI64::new(0);
static PEAK_BYTES: AtomicI64 = AtomicI64::new(0);

thread_local! {
    static THREAD_ALLOC: Cell<u64> = const { Cell::new(0) };
}

/// Snapshot of the allocation counters since the last [`crate::enable`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Bytes handed out by the allocator while tracking was on.
    pub allocated: u64,
    /// Bytes returned to the allocator while tracking was on.
    pub freed: u64,
    /// Allocated minus freed, clamped to zero.
    pub live: u64,
    /// High-water mark of `live`.
    pub peak: u64,
    /// Number of counted allocator calls (alloc + realloc-grow).
    pub calls: u64,
}

/// Reads the current counters. All zeros when the wrapper is not
/// installed or tracking never ran.
pub fn stats() -> AllocStats {
    AllocStats {
        allocated: ALLOC_BYTES.load(Relaxed),
        freed: FREED_BYTES.load(Relaxed),
        live: LIVE_BYTES.load(Relaxed).max(0) as u64,
        peak: PEAK_BYTES.load(Relaxed).max(0) as u64,
        calls: ALLOC_CALLS.load(Relaxed),
    }
}

/// `true` once the installed wrapper has counted at least one
/// allocation — i.e. memory numbers in reports are meaningful.
pub fn is_tracking() -> bool {
    ALLOC_CALLS.load(Relaxed) > 0
}

/// Total bytes this thread allocated while tracking was on. Differences
/// of this value bracket a region's exact allocation volume on one
/// thread, which is how spans and pool workers attribute bytes.
pub fn thread_allocated() -> u64 {
    THREAD_ALLOC.try_with(Cell::get).unwrap_or(0)
}

/// Zeroes the process-wide counters (called from [`crate::enable`]).
/// Per-thread tallies are left alone: consumers only use differences.
pub(crate) fn reset() {
    ALLOC_BYTES.store(0, Relaxed);
    FREED_BYTES.store(0, Relaxed);
    ALLOC_CALLS.store(0, Relaxed);
    LIVE_BYTES.store(0, Relaxed);
    PEAK_BYTES.store(0, Relaxed);
}

#[inline]
fn count_alloc(bytes: usize) {
    let bytes = bytes as u64;
    ALLOC_BYTES.fetch_add(bytes, Relaxed);
    ALLOC_CALLS.fetch_add(1, Relaxed);
    let live = LIVE_BYTES.fetch_add(bytes as i64, Relaxed) + bytes as i64;
    PEAK_BYTES.fetch_max(live, Relaxed);
    // try_with: allocator calls can arrive during TLS teardown.
    let _ = THREAD_ALLOC.try_with(|c| c.set(c.get() + bytes));
}

#[inline]
fn count_free(bytes: usize) {
    FREED_BYTES.fetch_add(bytes as u64, Relaxed);
    LIVE_BYTES.fetch_sub(bytes as i64, Relaxed);
}

/// The counting allocator. Install with `#[global_allocator]`; behaves
/// exactly like [`System`] until the recorder is enabled.
pub struct CountingAlloc;

impl CountingAlloc {
    /// Const constructor for the `static` the attribute requires.
    pub const fn new() -> Self {
        CountingAlloc
    }
}

impl Default for CountingAlloc {
    fn default() -> Self {
        Self::new()
    }
}

// SAFETY: all four methods delegate verbatim to `System` and only add
// side-effect-free atomic/Cell bookkeeping, so `System`'s contract holds.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() && crate::is_enabled() {
            count_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() && crate::is_enabled() {
            count_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        if crate::is_enabled() {
            count_free(layout.size());
        }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() && crate::is_enabled() {
            // Count the delta so allocated/freed stay net-consistent.
            if new_size >= layout.size() {
                count_alloc(new_size - layout.size());
            } else {
                count_free(layout.size() - new_size);
            }
        }
        p
    }
}
