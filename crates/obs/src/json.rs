//! Minimal recursive-descent JSON parser.
//!
//! Exists so tests and CLI validators can check emitted artifacts
//! (Chrome traces, `BENCH_*.json` reports) without external crates.
//! It parses strict JSON into a [`Value`] tree; numbers are kept as
//! `f64`, which is exact for every integer the emitters produce
//! (micros and counts fit well inside 2^53).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on objects; `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `u64` if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parse error: message plus byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub msg: String,
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Parses `text` as a single JSON document (trailing whitespace allowed).
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            msg: msg.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(out));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so this is safe).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xc0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("input slice is valid UTF-8"),
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("non-ASCII in \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let v = parse(r#"{"a":[1,2.5,-3e2,true,false,null],"b":{"c":"d"}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 6);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("d"));
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = parse(r#""q\"\\\n\té😀φ""#).unwrap();
        assert_eq!(v.as_str(), Some("q\"\\\n\té😀φ"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "\"abc",
            "{\"a\" 1}",
            "01x",
            "nul",
            "[1]extra",
            r#""\ud800""#,
            "\"\u{01}\"",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn roundtrips_escape_json() {
        let raw = "a\"b\\c\nd\te\u{01}φ";
        let quoted = format!("\"{}\"", crate::escape_json(raw));
        assert_eq!(parse(&quoted).unwrap().as_str(), Some(raw));
    }
}
