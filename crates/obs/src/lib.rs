//! Zero-dependency tracing and metrics for the sfq-t1 stack.
//!
//! The crate owns one process-global recorder. It is **strictly opt-in**:
//! until [`enable`] is called, every instrumentation point — [`span`],
//! [`counter`], [`gauge`] — costs exactly one relaxed atomic load and
//! allocates nothing (dynamic span labels are closures that are never
//! evaluated while disabled). Instrumented code therefore never branches
//! on "are we tracing?" itself and never changes behaviour based on it.
//!
//! What the recorder collects:
//!
//! - **Spans** — hierarchical wall-time intervals with per-thread depth,
//!   opened by [`span`]/[`span_labeled`]/[`span_owned`] and closed by the
//!   RAII guard's `Drop` (so unwinding a panic still closes them), or
//!   emitted whole via [`emit_span`] for intervals whose start predates
//!   the observing thread. Timestamps are monotonic micros relative to
//!   the instant [`enable`] was called.
//! - **Counters** — named monotonically-accumulated `u64` values, merged
//!   across threads under one lock.
//! - **Gauges** — named last-write-wins `i64` values.
//! - **Histograms** — fixed-bucket log-scale [`Histogram`]s of `u64`
//!   samples. Every span close automatically records its duration under
//!   the span's name (and, when the [`alloc`] wrapper is counting, its
//!   allocation delta under `{name}.bytes`), so rollups carry
//!   p50/p90/p99/max, not just mean. [`record_value`] feeds ad-hoc
//!   samples. Merging is element-wise and lossless, like counters.
//!
//! [`take`] drains everything into a [`Trace`], which renders to the two
//! sinks: [`Trace::chrome_json`] (the Chrome trace-event format, loadable
//! in `chrome://tracing` or Perfetto) and [`Trace::summary`] (a human
//! table of span rollups and counters, the `--stats` view). [`Trace`]
//! also exposes [`Trace::rollups`] for programmatic consumers such as
//! the `BENCH_*.json` perf-trajectory reports.
//!
//! The sibling [`json`] module is a minimal JSON parser used by tests
//! and CLI validators to check emitted files without external crates.
//! The [`alloc`] module is an opt-in counting `#[global_allocator]`
//! wrapper that follows the same enable path as the recorder.

pub mod alloc;
pub mod hist;
pub mod json;

pub use hist::Histogram;

use std::borrow::Cow;
use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// One closed span: a named interval on one thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span name; static for fixed instrument points, owned for dynamic
    /// ones (e.g. `opt:rewrite`).
    pub name: Cow<'static, str>,
    /// Optional free-form label (job name, benchmark, …).
    pub label: Option<String>,
    /// Recorder-assigned thread id (small, stable per thread).
    pub tid: u64,
    /// Start, micros since [`enable`].
    pub start_us: u64,
    /// Duration in micros.
    pub dur_us: u64,
    /// Nesting depth on its thread at open time (0 = top level).
    pub depth: u32,
    /// Bytes this span's thread allocated while the span was open. Zero
    /// unless the [`alloc`] wrapper is installed and counting.
    pub alloc_bytes: u64,
}

struct Recorder {
    enabled: AtomicBool,
    /// Spans currently open across all threads; zero when balanced.
    open: AtomicI64,
    epoch: Mutex<Option<Instant>>,
    events: Mutex<Vec<SpanEvent>>,
    counters: Mutex<BTreeMap<Cow<'static, str>, u64>>,
    gauges: Mutex<BTreeMap<Cow<'static, str>, i64>>,
    histograms: Mutex<BTreeMap<Cow<'static, str>, Histogram>>,
}

static RECORDER: Recorder = Recorder {
    enabled: AtomicBool::new(false),
    open: AtomicI64::new(0),
    epoch: Mutex::new(None),
    events: Mutex::new(Vec::new()),
    counters: Mutex::new(BTreeMap::new()),
    gauges: Mutex::new(BTreeMap::new()),
    histograms: Mutex::new(BTreeMap::new()),
};

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // The recorder never panics while holding a lock; recover anyway so
    // observation can't take the observed program down.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Clears all recorded data and starts recording. Timestamps from here
/// on are micros relative to this call.
pub fn enable() {
    *lock(&RECORDER.epoch) = Some(Instant::now());
    lock(&RECORDER.events).clear();
    lock(&RECORDER.counters).clear();
    lock(&RECORDER.gauges).clear();
    lock(&RECORDER.histograms).clear();
    alloc::reset();
    RECORDER.open.store(0, Ordering::Relaxed);
    RECORDER.enabled.store(true, Ordering::Relaxed);
}

/// Stops recording. Already-collected data stays until [`take`] or the
/// next [`enable`]. Spans opened before `disable` still close normally.
pub fn disable() {
    RECORDER.enabled.store(false, Ordering::Relaxed);
}

/// Whether the recorder is currently collecting.
pub fn is_enabled() -> bool {
    RECORDER.enabled.load(Ordering::Relaxed)
}

/// Micros elapsed since [`enable`], or `None` while disabled.
pub fn now_us() -> Option<u64> {
    if !is_enabled() {
        return None;
    }
    let epoch = (*lock(&RECORDER.epoch))?;
    Some(epoch.elapsed().as_micros() as u64)
}

/// Number of spans currently open (begin without end). Zero whenever
/// instrumented code is quiescent — the balance invariant tests assert.
pub fn open_spans() -> i64 {
    RECORDER.open.load(Ordering::Relaxed)
}

/// RAII span guard: records a [`SpanEvent`] when dropped. Obtained from
/// [`span`], [`span_labeled`] or [`span_owned`]; a guard created while
/// the recorder is disabled is inert.
#[must_use = "a span measures the scope that holds it"]
pub struct Span {
    rec: Option<OpenSpan>,
}

struct OpenSpan {
    name: Cow<'static, str>,
    label: Option<String>,
    tid: u64,
    start_us: u64,
    depth: u32,
    /// Thread-allocated bytes at open time; the close delta is the
    /// span's allocation volume (exact: the tally is per-thread).
    alloc_at_open: u64,
}

fn open(name: Cow<'static, str>, label: Option<String>) -> Span {
    let Some(start_us) = now_us() else {
        return Span { rec: None };
    };
    let tid = TID.with(|t| *t);
    let depth = DEPTH.with(|d| {
        let v = d.get();
        d.set(v + 1);
        v
    });
    RECORDER.open.fetch_add(1, Ordering::Relaxed);
    Span {
        rec: Some(OpenSpan {
            name,
            label,
            tid,
            start_us,
            depth,
            alloc_at_open: alloc::thread_allocated(),
        }),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(open) = self.rec.take() else {
            return;
        };
        // Close even if the recorder was disabled mid-span, so the
        // open-span balance always returns to zero.
        let end_us = lock(&RECORDER.epoch)
            .map(|e| e.elapsed().as_micros() as u64)
            .unwrap_or(open.start_us);
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        RECORDER.open.fetch_sub(1, Ordering::Relaxed);
        let dur_us = end_us.saturating_sub(open.start_us);
        let alloc_bytes = alloc::thread_allocated().saturating_sub(open.alloc_at_open);
        record_hist(open.name.clone(), dur_us);
        if alloc::is_tracking() {
            record_hist(Cow::Owned(format!("{}.bytes", open.name)), alloc_bytes);
        }
        lock(&RECORDER.events).push(SpanEvent {
            name: open.name,
            label: open.label,
            tid: open.tid,
            start_us: open.start_us,
            dur_us,
            depth: open.depth,
            alloc_bytes,
        });
    }
}

/// Opens a span with a static name. Disabled cost: one atomic load.
pub fn span(name: &'static str) -> Span {
    if !is_enabled() {
        return Span { rec: None };
    }
    open(Cow::Borrowed(name), None)
}

/// Opens a span with a static name and a lazily-built label. The closure
/// runs only while recording, so the disabled path allocates nothing.
pub fn span_labeled(name: &'static str, label: impl FnOnce() -> String) -> Span {
    if !is_enabled() {
        return Span { rec: None };
    }
    open(Cow::Borrowed(name), Some(label()))
}

/// Opens a span whose name itself is built lazily (e.g. `opt:{pass}`).
pub fn span_owned(name: impl FnOnce() -> String) -> Span {
    if !is_enabled() {
        return Span { rec: None };
    }
    open(Cow::Owned(name()), None)
}

/// Records an already-measured interval, for spans whose start predates
/// the recording thread (e.g. queue wait measured from run start).
/// `start_us`/`end_us` are values previously obtained from [`now_us`].
pub fn emit_span(name: &'static str, start_us: u64, end_us: u64, label: impl FnOnce() -> String) {
    if !is_enabled() {
        return;
    }
    let tid = TID.with(|t| *t);
    let depth = DEPTH.with(|d| d.get());
    let dur_us = end_us.saturating_sub(start_us);
    record_hist(Cow::Borrowed(name), dur_us);
    lock(&RECORDER.events).push(SpanEvent {
        name: Cow::Borrowed(name),
        label: Some(label()),
        tid,
        start_us,
        dur_us,
        depth,
        alloc_bytes: 0,
    });
}

/// Adds `delta` to the named counter. Disabled cost: one atomic load.
pub fn counter(name: &'static str, delta: u64) {
    if !is_enabled() || delta == 0 {
        return;
    }
    *lock(&RECORDER.counters)
        .entry(Cow::Borrowed(name))
        .or_insert(0) += delta;
}

/// Sets the named gauge to `value` (last write wins).
pub fn gauge(name: &'static str, value: i64) {
    if !is_enabled() {
        return;
    }
    lock(&RECORDER.gauges).insert(Cow::Borrowed(name), value);
}

fn record_hist(name: Cow<'static, str>, value: u64) {
    lock(&RECORDER.histograms)
        .entry(name)
        .or_default()
        .record(value);
}

/// Records one sample into the named histogram. Span closes call this
/// implicitly with their duration; use it directly for ad-hoc series
/// (sizes, queue depths). Disabled cost: one atomic load.
pub fn record_value(name: &'static str, value: u64) {
    if !is_enabled() {
        return;
    }
    record_hist(Cow::Borrowed(name), value);
}

/// Snapshot of one histogram without draining it — for live status
/// lines (e.g. serve `stats`) that must not disturb the recording.
pub fn histogram(name: &str) -> Option<Histogram> {
    lock(&RECORDER.histograms).get(name).cloned()
}

/// Drops the recorded span events while keeping counters, gauges and
/// histograms accumulating. Long-running processes (serve mode) call
/// this after each flush so recorder memory stays bounded: per-event
/// storage is cleared, per-name aggregates keep their full history.
pub fn discard_events() {
    lock(&RECORDER.events).clear();
}

/// Drains everything recorded so far into a [`Trace`]. Recording state
/// (enabled/disabled, epoch) is left unchanged, so a long-running
/// process can take periodic snapshots.
pub fn take() -> Trace {
    let mut events = std::mem::take(&mut *lock(&RECORDER.events));
    // Drop order is completion order; present start order for readers.
    events.sort_by(|a, b| {
        (a.start_us, a.tid, std::cmp::Reverse(a.dur_us)).cmp(&(
            b.start_us,
            b.tid,
            std::cmp::Reverse(b.dur_us),
        ))
    });
    let counters = std::mem::take(&mut *lock(&RECORDER.counters))
        .into_iter()
        .map(|(k, v)| (k.into_owned(), v))
        .collect();
    let gauges = std::mem::take(&mut *lock(&RECORDER.gauges))
        .into_iter()
        .map(|(k, v)| (k.into_owned(), v))
        .collect();
    let histograms = std::mem::take(&mut *lock(&RECORDER.histograms))
        .into_iter()
        .map(|(k, v)| (k.into_owned(), v))
        .collect();
    Trace {
        events,
        counters,
        gauges,
        histograms,
    }
}

/// A drained recording: closed spans plus final counter/gauge values.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// Closed spans, sorted by start time then thread.
    pub events: Vec<SpanEvent>,
    /// Final counter values, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Final gauge values, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// Histograms, sorted by name. Span names hold duration micros;
    /// `{span}.bytes` hold per-span allocation deltas.
    pub histograms: Vec<(String, Histogram)>,
}

/// Per-span-name aggregate used by the summary sink and bench reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rollup {
    /// Span name.
    pub name: String,
    /// Number of closed spans with this name.
    pub count: usize,
    /// Sum of their durations, micros.
    pub total_us: u64,
}

impl Trace {
    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
            && self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Aggregates spans by name, sorted by name for determinism.
    pub fn rollups(&self) -> Vec<Rollup> {
        let mut by_name: BTreeMap<&str, (usize, u64)> = BTreeMap::new();
        for e in &self.events {
            let slot = by_name.entry(&e.name).or_insert((0, 0));
            slot.0 += 1;
            slot.1 += e.dur_us;
        }
        by_name
            .into_iter()
            .map(|(name, (count, total_us))| Rollup {
                name: name.to_string(),
                count,
                total_us,
            })
            .collect()
    }

    /// Renders the Chrome trace-event format: an object whose
    /// `traceEvents` array holds one complete (`"ph":"X"`) event per
    /// span and one counter (`"ph":"C"`) sample per counter. Open the
    /// file in `chrome://tracing` or <https://ui.perfetto.dev>.
    pub fn chrome_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 96);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        let mut push = |s: String, out: &mut String| {
            if !std::mem::take(&mut first) {
                out.push(',');
            }
            out.push_str(&s);
            out.push('\n');
        };
        for e in &self.events {
            let mut ev = format!(
                "{{\"name\":\"{}\",\"cat\":\"sfq\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{}",
                escape_json(&e.name),
                e.tid,
                e.start_us,
                e.dur_us
            );
            let alloc = if e.alloc_bytes > 0 {
                format!(",\"alloc_bytes\":{}", e.alloc_bytes)
            } else {
                String::new()
            };
            match &e.label {
                Some(label) => {
                    ev.push_str(&format!(
                        ",\"args\":{{\"label\":\"{}\",\"depth\":{}{}}}}}",
                        escape_json(label),
                        e.depth,
                        alloc
                    ));
                }
                None => ev.push_str(&format!(",\"args\":{{\"depth\":{}{}}}}}", e.depth, alloc)),
            }
            push(ev, &mut out);
        }
        let end_ts = self
            .events
            .iter()
            .map(|e| e.start_us + e.dur_us)
            .max()
            .unwrap_or(0);
        for (name, value) in &self.counters {
            push(
                format!(
                    "{{\"name\":\"{}\",\"cat\":\"sfq\",\"ph\":\"C\",\"pid\":1,\"ts\":{},\"args\":{{\"value\":{}}}}}",
                    escape_json(name),
                    end_ts,
                    value
                ),
                &mut out,
            );
        }
        for (name, value) in &self.gauges {
            push(
                format!(
                    "{{\"name\":\"{}\",\"cat\":\"sfq\",\"ph\":\"C\",\"pid\":1,\"ts\":{},\"args\":{{\"value\":{}}}}}",
                    escape_json(name),
                    end_ts,
                    value
                ),
                &mut out,
            );
        }
        // One counter sample per histogram: a `hist:*` track carrying the
        // percentile summary, viewable alongside the span timeline.
        for (name, h) in &self.histograms {
            push(
                format!(
                    "{{\"name\":\"hist:{}\",\"cat\":\"sfq\",\"ph\":\"C\",\"pid\":1,\"ts\":{},\
                     \"args\":{{\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}}}}",
                    escape_json(name),
                    end_ts,
                    h.percentile(50),
                    h.percentile(90),
                    h.percentile(99),
                    h.max()
                ),
                &mut out,
            );
        }
        out.push_str("]}\n");
        out
    }

    /// Renders the human summary: span rollups (count, total, mean and —
    /// when histograms were recorded — p50/p99/max plus the peak per-span
    /// allocation) sorted by total time, then counters and gauges, then
    /// histograms that belong to no span. This is the `--stats` sink.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let mut rollups = self.rollups();
        rollups.sort_by(|a, b| b.total_us.cmp(&a.total_us).then(a.name.cmp(&b.name)));
        let mut span_hist_names = std::collections::BTreeSet::new();
        if !rollups.is_empty() {
            out.push_str(&format!(
                "{:<28} {:>7} {:>12} {:>10} {:>10} {:>10} {:>10} {:>12}\n",
                "span", "count", "total µs", "mean µs", "p50 µs", "p99 µs", "max µs", "peak B"
            ));
            for r in &rollups {
                let bytes_name = format!("{}.bytes", r.name);
                let dur = self.histogram(&r.name);
                let bytes = self.histogram(&bytes_name);
                span_hist_names.insert(r.name.clone());
                span_hist_names.insert(bytes_name);
                let pct = |p| dur.map_or("-".to_string(), |h| h.percentile(p).to_string());
                out.push_str(&format!(
                    "  {:<26} {:>7} {:>12} {:>10} {:>10} {:>10} {:>10} {:>12}\n",
                    r.name,
                    r.count,
                    r.total_us,
                    r.total_us / r.count.max(1) as u64,
                    pct(50),
                    pct(99),
                    dur.map_or("-".to_string(), |h| h.max().to_string()),
                    bytes.map_or("-".to_string(), |h| h.max().to_string()),
                ));
            }
        }
        if !self.counters.is_empty() || !self.gauges.is_empty() {
            out.push_str(&format!("{:<28} {:>12}\n", "counter", "value"));
            for (name, value) in &self.counters {
                out.push_str(&format!("  {:<26} {:>12}\n", name, value));
            }
            for (name, value) in &self.gauges {
                out.push_str(&format!("  {:<26} {:>12}\n", name, value));
            }
        }
        let extra: Vec<_> = self
            .histograms
            .iter()
            .filter(|(n, _)| !span_hist_names.contains(n))
            .collect();
        if !extra.is_empty() {
            out.push_str(&format!(
                "{:<28} {:>7} {:>10} {:>10} {:>10}\n",
                "histogram", "count", "p50", "p99", "max"
            ));
            for (name, h) in extra {
                out.push_str(&format!(
                    "  {:<26} {:>7} {:>10} {:>10} {:>10}\n",
                    name,
                    h.count(),
                    h.percentile(50),
                    h.percentile(99),
                    h.max()
                ));
            }
        }
        out
    }
}

/// Escapes `s` for inclusion inside a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// Compile-time audit: guards may cross threads with the data they wrap.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Span>();
    assert_send_sync::<Trace>();
};
