//! Fixed-bucket log-scale histograms for latency and allocation samples.
//!
//! A [`Histogram`] is a fixed 256-bucket array: values below 16 get one
//! exact bucket each, and every power-of-two octave above that is split
//! into 4 sub-buckets, so any recorded value lands in a bucket whose width
//! is at most 25% of its lower bound. The layout is *fixed* — every
//! histogram of every thread uses the same bucket boundaries — which makes
//! [`merge`](Histogram::merge) a plain element-wise add: commutative,
//! associative, and therefore independent of thread count and merge order
//! (the same losslessness guarantee the recorder's counters give).
//!
//! Reported percentiles are bucket upper bounds clamped to the exact
//! observed maximum, so an estimate can overshoot the true quantile by at
//! most the width of its bucket (≤ 25%) and never undershoots it.
//! Count, sum, min and max are tracked exactly.

/// Number of buckets in every histogram.
pub const BUCKETS: usize = 256;

/// Values below this get one exact bucket each.
const LINEAR_MAX: u64 = 16;

/// Sub-buckets per power-of-two octave above the linear range.
const SUBS: usize = 4;

/// A fixed-bucket log-scale histogram of `u64` samples (micros, bytes).
#[derive(Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("min", &self.min())
            .field("max", &self.max)
            .field("p50", &self.percentile(50))
            .field("p99", &self.percentile(99))
            .finish()
    }
}

/// Bucket index of `v`: exact below 16, then 4 sub-buckets per octave,
/// saturating in the top bucket.
pub fn bucket_of(v: u64) -> usize {
    if v < LINEAR_MAX {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros() as usize; // ≥ 4 here
    let sub = ((v >> (octave - 2)) & 0b11) as usize;
    (LINEAR_MAX as usize + (octave - 4) * SUBS + sub).min(BUCKETS - 1)
}

/// Inclusive `[low, high]` value range of bucket `index`.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    if index < LINEAR_MAX as usize {
        return (index as u64, index as u64);
    }
    let octave = 4 + (index - LINEAR_MAX as usize) / SUBS;
    let sub = ((index - LINEAR_MAX as usize) % SUBS) as u128;
    let low = (4 + sub) << (octave - 2);
    let high = ((5 + sub) << (octave - 2)) - 1;
    (low as u64, u64::try_from(high).unwrap_or(u64::MAX))
}

impl Histogram {
    /// Creates an empty histogram.
    pub const fn new() -> Self {
        Histogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Merges `other` into `self` — element-wise, so the result is the
    /// same histogram regardless of how the samples were partitioned
    /// across threads or in what order partitions are merged.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact smallest sample, 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact largest sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample, rounded down; 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum / self.count.max(1)
    }

    /// The `p`-th percentile (`p` clamped to 0..=100): the upper bound of
    /// the bucket holding the sample of that rank, clamped to the exact
    /// observed maximum. Never below the true quantile; above it by at
    /// most the bucket width (≤ 25% of the value).
    pub fn percentile(&self, p: u32) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = u64::from(p.min(100));
        // Rank of the percentile sample, 1-based, ceil — p=0 maps to the
        // first sample (the minimum), p=100 to the last (the maximum).
        let rank = ((p * self.count).div_ceil(100)).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_bounds(i).1.min(self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_value_line() {
        // Every value maps to a bucket whose bounds contain it, and bucket
        // boundaries tile contiguously.
        for v in (0..4096).chain([u64::MAX / 2, u64::MAX - 1, u64::MAX]) {
            let b = bucket_of(v);
            let (lo, hi) = bucket_bounds(b);
            assert!(lo <= v && v <= hi, "{v} outside bucket {b} [{lo}, {hi}]");
        }
        for i in 0..BUCKETS - 1 {
            let (_, hi) = bucket_bounds(i);
            let (lo_next, _) = bucket_bounds(i + 1);
            assert_eq!(hi + 1, lo_next, "gap between buckets {i} and {}", i + 1);
        }
        // Relative bucket width is bounded by 25% above the linear range.
        for i in LINEAR_MAX as usize..BUCKETS - 1 {
            let (lo, hi) = bucket_bounds(i);
            assert!(
                (hi - lo) * 4 <= lo,
                "bucket {i} wider than 25%: [{lo},{hi}]"
            );
        }
    }

    #[test]
    fn exact_stats_and_small_value_percentiles() {
        let mut h = Histogram::new();
        assert_eq!(h.percentile(50), 0);
        for v in [3, 1, 4, 1, 5, 9, 2, 6] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum(), 31);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 9);
        assert_eq!(h.mean(), 3);
        // Below the linear cutoff buckets are exact, so percentiles are too.
        // Sorted: 1,1,2,3,4,5,6,9 — p50 rank is ceil(0.5·8) = 4th → 3.
        assert_eq!(h.percentile(0), 1);
        assert_eq!(h.percentile(50), 3);
        assert_eq!(h.percentile(100), 9);
    }

    #[test]
    fn percentile_never_undershoots_and_stays_in_bucket() {
        let mut h = Histogram::new();
        let values: Vec<u64> = (0..500).map(|i| i * i * 7 + 13).collect();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for p in [1, 10, 50, 90, 99, 100] {
            let rank = ((p * sorted.len() as u64).div_ceil(100)).max(1);
            let truth = sorted[rank as usize - 1];
            let est = h.percentile(p as u32);
            assert!(est >= truth, "p{p}: {est} < true {truth}");
            let (lo, hi) = bucket_bounds(bucket_of(truth));
            assert!(
                est >= lo && est <= hi.min(h.max()),
                "p{p}: {est} vs [{lo},{hi}]"
            );
        }
    }

    #[test]
    fn merge_is_partition_independent() {
        let values: Vec<u64> = (0..300).map(|i| (i * 2654435761u64) >> 16).collect();
        let mut whole = Histogram::new();
        for &v in &values {
            whole.record(v);
        }
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut c = Histogram::new();
        for (i, &v) in values.iter().enumerate() {
            [&mut a, &mut b, &mut c][i % 3].record(v);
        }
        // Merge in one order…
        let mut abc = a.clone();
        abc.merge(&b);
        abc.merge(&c);
        // …and another.
        let mut cba = c.clone();
        cba.merge(&b);
        cba.merge(&a);
        assert_eq!(abc, whole);
        assert_eq!(cba, whole);
    }
}
