//! Conversion of a scheduled, DFF-inserted netlist into a pulse-level
//! simulation model ([`sfq_sim::PulseCircuit`]).
//!
//! This closes the verification loop: the flow's output — cells with stage
//! assignments plus shared DFF chains — is rebuilt as a physical netlist
//! where every consumer is wired to its chain *tap* element, and simulated
//! wave-pipelined. Functional mismatch or a T1 pulse-overlap hazard indicates
//! a mapping/scheduling bug.

use crate::dff::{Consumer, DffPlan};
use crate::mapped::{CellId, MappedCell, MappedCircuit};
use crate::phase::Schedule;
use sfq_sim::pulse::{ElementId, Fanin, OutRef, PulseCircuit};
use std::collections::HashMap;

/// Builds the pulse-level model of a scheduled netlist.
///
/// `plan` must have been produced by [`crate::dff::insert_dffs`] for exactly
/// this `(mc, sched)` pair.
///
/// # Panics
///
/// Panics if the plan is inconsistent with the netlist (missing drivers or
/// taps), or if any stage is negative.
pub fn to_pulse_circuit(mc: &MappedCircuit, sched: &Schedule, plan: &DffPlan) -> PulseCircuit {
    let mut pc = PulseCircuit::new();

    // 1. Create one element per cell (inputs first, in index order, which is
    //    creation order in MappedCircuit).
    let mut cell_elem: Vec<ElementId> = Vec::with_capacity(mc.len());
    // Tap resolution needs chain DFF elements: (driver, stage) → element.
    let mut chain_elems: HashMap<((CellId, u8), i64), ElementId> = HashMap::new();

    // First pass: inputs/constants (stage 0) and placeholders.
    for (_, cell) in mc.cells() {
        let elem = match cell {
            MappedCell::Input { .. } => pc.add_input(),
            MappedCell::Const0 => pc.add_const(false),
            // Real gates/T1s are created in the second pass, once their
            // fanin taps exist; reserve a placeholder id slot.
            _ => ElementId(u32::MAX),
        };
        cell_elem.push(elem);
    }

    // 2. Create chain DFFs in stage order per driver. A chain member's fanin
    //    is the previous member (or the driver); drivers that are gates do
    //    not exist yet, so chains rooted at gates are deferred to pass 3.
    //    To keep it simple we create everything in global topological order:
    //    cells are topologically sorted already, and a chain hangs off one
    //    driver, so interleave: for each cell (in order) create its element,
    //    then its chains.
    let stage_of = |sched: &Schedule, cell: CellId| sched.stages[cell.index()];

    // Tap lookup used when wiring consumers.
    let resolve_tap = |cell_elem: &[ElementId],
                       chain_elems: &HashMap<((CellId, u8), i64), ElementId>,
                       driver: (CellId, u8),
                       tap_stage: i64,
                       source_stage: i64|
     -> OutRef {
        if tap_stage == source_stage {
            OutRef {
                elem: cell_elem[driver.0.index()],
                port: driver.1,
            }
        } else {
            let elem = *chain_elems
                .get(&(driver, tap_stage))
                .expect("tap element must exist in the chain");
            OutRef { elem, port: 0 }
        }
    };

    // (driver output, tap stage, source stage) for one consumer slot.
    type TapSource = ((CellId, u8), i64, i64);
    // consumer (cell, slot) → where its pulse is tapped from
    let mut taps: HashMap<(CellId, usize), TapSource> = HashMap::new();
    let mut po_taps: HashMap<usize, TapSource> = HashMap::new();
    for d in &plan.drivers {
        for ((consumer, _req), &tap) in d.consumers.iter().zip(d.chain.taps.iter()) {
            match *consumer {
                Consumer::GateInput { cell, slot } | Consumer::T1Input { cell, slot } => {
                    taps.insert((cell, slot), (d.source, tap, d.source_stage));
                }
                Consumer::Output { index } => {
                    po_taps.insert(index, (d.source, tap, d.source_stage));
                }
            }
        }
    }

    // Driver plans indexed by source for chain creation.
    let mut plans_by_source: HashMap<(CellId, u8), &crate::dff::DriverPlan> = HashMap::new();
    for d in &plan.drivers {
        plans_by_source.insert(d.source, d);
    }

    // 3. Walk cells topologically: create the element, then its chains.
    for (id, cell) in mc.cells() {
        match cell {
            MappedCell::Input { .. } | MappedCell::Const0 => {}
            MappedCell::Gate { tt, fanins } => {
                let wired: Vec<Fanin> = fanins
                    .iter()
                    .enumerate()
                    .map(|(slot, e)| {
                        let &(driver, tap, src) =
                            taps.get(&(id, slot)).expect("gate input has a tap");
                        Fanin {
                            source: resolve_tap(&cell_elem, &chain_elems, driver, tap, src),
                            invert: e.invert,
                        }
                    })
                    .collect();
                let stage = stage_of(sched, id);
                assert!(stage >= 1, "gate at non-positive stage");
                cell_elem[id.index()] = pc.add_gate(*tt, wired, stage as u32);
            }
            MappedCell::T1 { fanins } => {
                let mut wired = [Fanin::plain(ElementId(0)); 3];
                for (slot, e) in fanins.iter().enumerate() {
                    let &(driver, tap, src) = taps.get(&(id, slot)).expect("T1 input has a tap");
                    debug_assert!(!e.invert, "T1 operands are positive by construction");
                    wired[slot] = Fanin {
                        source: resolve_tap(&cell_elem, &chain_elems, driver, tap, src),
                        invert: false,
                    };
                }
                let stage = stage_of(sched, id);
                cell_elem[id.index()] = pc.add_t1(wired, stage as u32);
            }
        }
        // Chains hanging off this cell's ports.
        for port in 0..mc.num_ports(id) as u8 {
            if let Some(d) = plans_by_source.get(&(id, port)) {
                let mut prev = OutRef {
                    elem: cell_elem[id.index()],
                    port,
                };
                for &m in &d.chain.members {
                    let elem = pc.add_dff(
                        Fanin {
                            source: prev,
                            invert: false,
                        },
                        m as u32,
                    );
                    chain_elems.insert(((id, port), m), elem);
                    prev = OutRef { elem, port: 0 };
                }
            }
        }
    }

    // 4. Primary outputs: capture one stage after the horizon.
    for (index, e) in mc.pos().iter().enumerate() {
        if matches!(mc.cell(e.cell), MappedCell::Const0) {
            // Constant outputs need no balancing; capture right away.
            let src = OutRef {
                elem: cell_elem[e.cell.index()],
                port: 0,
            };
            pc.add_output(
                Fanin {
                    source: src,
                    invert: e.invert,
                },
                1,
            );
            continue;
        }
        let &(driver, tap, src) = po_taps.get(&index).expect("PO has a tap");
        let source = resolve_tap(&cell_elem, &chain_elems, driver, tap, src);
        let capture = (sched.horizon + 1).max(1) as u32;
        pc.add_output(
            Fanin {
                source,
                invert: e.invert,
            },
            capture,
        );
    }

    pc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::CellLibrary;
    use crate::dff::insert_dffs;
    use crate::flow::{run_flow, FlowConfig};
    use sfq_circuits::epfl::adder;
    use sfq_circuits::random::{random_aig, RandomAigConfig};

    fn random_vectors(width: usize, count: usize, mut seed: u64) -> Vec<Vec<bool>> {
        (0..count)
            .map(|_| {
                (0..width)
                    .map(|_| {
                        seed ^= seed << 13;
                        seed ^= seed >> 7;
                        seed ^= seed << 17;
                        seed & 1 == 1
                    })
                    .collect()
            })
            .collect()
    }

    fn check_flow_in_sim(aig: &sfq_netlist::aig::Aig, cfg: &FlowConfig, waves: usize) {
        let lib = CellLibrary::default();
        let res = run_flow(aig, &lib, cfg);
        let pc = to_pulse_circuit(&res.mapped, &res.schedule, &res.plan);
        let vectors = random_vectors(aig.pi_count(), waves, 0xABCDEF987654321);
        let outcome = pc.simulate(&vectors, cfg.phases).expect("valid schedule");
        assert_eq!(outcome.hazards, 0, "no T1 pulse-overlap hazards");
        for (k, v) in vectors.iter().enumerate() {
            let expect = aig.eval(v);
            assert_eq!(outcome.outputs[k], expect, "wave {k} mismatch");
        }
    }

    #[test]
    fn pulse_sim_matches_adder_single_phase() {
        check_flow_in_sim(&adder(4), &FlowConfig::single_phase(), 6);
    }

    #[test]
    fn pulse_sim_matches_adder_four_phase() {
        check_flow_in_sim(&adder(4), &FlowConfig::multiphase(4), 6);
    }

    #[test]
    fn pulse_sim_matches_adder_t1_flow() {
        check_flow_in_sim(&adder(4), &FlowConfig::t1(4), 8);
    }

    #[test]
    fn pulse_sim_matches_random_networks() {
        for seed in 0..5 {
            let aig = random_aig(
                seed,
                &RandomAigConfig {
                    num_pis: 6,
                    num_gates: 40,
                    num_pos: 3,
                    xor_percent: 40,
                },
            );
            check_flow_in_sim(&aig, &FlowConfig::multiphase(4), 4);
            check_flow_in_sim(&aig, &FlowConfig::t1(4), 4);
        }
    }

    #[test]
    fn dff_elements_match_plan() {
        let lib = CellLibrary::default();
        let aig = adder(4);
        let res = run_flow(&aig, &lib, &FlowConfig::t1(4));
        let plan = insert_dffs(&res.mapped, &res.schedule);
        let pc = to_pulse_circuit(&res.mapped, &res.schedule, &plan);
        assert_eq!(pc.dff_count() as u64, plan.total_dffs);
    }
}
