//! # t1map
//!
//! The paper's contribution: T1-cell-aware multiphase technology mapping for
//! SFQ (RSFQ) circuits, reproducing
//! *"Unleashing the Power of T1-cells in SFQ Arithmetic Circuits"*
//! (Bairamkulov, Yu, De Micheli — DATE 2024).
//!
//! The three-stage flow of §II:
//!
//! 1. [`mod@detect`] — T1-FF detection via cut enumeration + Boolean matching,
//!    gated by the area-gain test of eq. (2);
//! 2. [`phase`] — multiphase stage assignment with the T1 constraint of
//!    eq. (3) (heuristic and exact-ILP engines);
//! 3. [`dff`] — path-balancing DFF insertion with fanout-shared chains and
//!    the T1 staggering constraint of eq. (5).
//!
//! Supporting modules: [`cells`] (JJ area model), [`mapper`] (cut-based
//! covering), [`mapped`] (netlist model), [`flow`] (end-to-end flows),
//! [`timing`] (phase-granular schedule slack via `sfq-sta`), [`report`]
//! (Table-I assembly) and [`sim_bridge`] (pulse-level verification via
//! `sfq-sim`).
//!
//! # Example
//!
//! ```
//! use t1map::cells::CellLibrary;
//! use t1map::flow::{run_flow, FlowConfig};
//! use sfq_netlist::aig::Aig;
//!
//! // A 1-bit full adder.
//! let mut aig = Aig::new();
//! let a = aig.add_pi();
//! let b = aig.add_pi();
//! let cin = aig.add_pi();
//! let s = aig.xor3(a, b, cin);
//! let c = aig.maj3(a, b, cin);
//! aig.add_po(s);
//! aig.add_po(c);
//!
//! let lib = CellLibrary::default();
//! let result = run_flow(&aig, &lib, &FlowConfig::t1(4));
//! assert_eq!(result.stats.t1_used, 1, "the FA collapses into one T1 cell");
//! ```

pub mod cells;
pub mod detect;
pub mod dff;
pub mod dot;
pub mod energy;
pub mod flow;
pub mod mapped;
pub mod mapper;
pub mod phase;
pub mod report;
pub mod sim_bridge;
pub mod timing;
pub mod verilog;

pub use cells::{CellLibrary, GateClass};
pub use detect::{detect, select_exact, DetectConfig, DetectionResult};
pub use dff::{build_chain, insert_dffs, Chain, Consumer, DffPlan, Requirement};
pub use dot::to_dot;
pub use energy::{EnergyModel, EnergyReport};
pub use flow::{run_flow, FlowBuilder, FlowConfig, FlowResult, FlowStats, PhaseEngine};
pub use mapped::{CellId, Edge, MappedCell, MappedCircuit};
pub use mapper::{map, MapResult, T1Group, T1Member, T1Selection};
pub use phase::{assign_phases, assign_phases_exact, Schedule};
pub use report::{TableOne, TableRow};
pub use sim_bridge::to_pulse_circuit;
pub use timing::{analyze_mapped, MappedTiming, TimingConfig, TimingSummary};
pub use verilog::{export as export_verilog, ExportOptions};
