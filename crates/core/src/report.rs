//! Table-I assembly: per-benchmark comparison of the 1φ, 4φ and T1 flows.
//!
//! Produces the same row layout as the paper's Table I — T1 cells
//! found/used, path-balancing DFF counts, area (JJs) and depth (cycles) for
//! all three flows, with `T1/1φ` and `T1/4φ` ratio columns and a final
//! averages row.

use crate::cells::CellLibrary;
use crate::flow::{run_flow, FlowConfig, FlowStats};
use sfq_netlist::aig::Aig;
use std::fmt;

/// One benchmark row of Table I.
#[derive(Debug, Clone)]
pub struct TableRow {
    /// Benchmark name.
    pub name: String,
    /// Single-phase baseline stats.
    pub single: FlowStats,
    /// Multiphase (no T1) baseline stats.
    pub multi: FlowStats,
    /// Proposed T1-flow stats.
    pub t1: FlowStats,
}

impl TableRow {
    /// Assembles a row from already-measured flow stats (the `sfq-engine`
    /// path: flows run elsewhere, possibly in parallel or from cache).
    pub fn from_stats(name: &str, single: FlowStats, multi: FlowStats, t1: FlowStats) -> Self {
        TableRow {
            name: name.to_string(),
            single,
            multi,
            t1,
        }
    }

    /// Runs all three flows on `aig` under `n` phases.
    pub fn measure(name: &str, aig: &Aig, lib: &CellLibrary, n: u32) -> Self {
        let single = run_flow(aig, lib, &FlowConfig::single_phase()).stats;
        let multi = run_flow(aig, lib, &FlowConfig::multiphase(n)).stats;
        let t1 = run_flow(aig, lib, &FlowConfig::t1(n)).stats;
        Self::from_stats(name, single, multi, t1)
    }

    /// `T1 / 1φ` DFF ratio.
    pub fn dff_ratio_1(&self) -> f64 {
        ratio(self.t1.dffs as f64, self.single.dffs as f64)
    }

    /// `T1 / 4φ` DFF ratio.
    pub fn dff_ratio_n(&self) -> f64 {
        ratio(self.t1.dffs as f64, self.multi.dffs as f64)
    }

    /// `T1 / 1φ` area ratio.
    pub fn area_ratio_1(&self) -> f64 {
        ratio(self.t1.area as f64, self.single.area as f64)
    }

    /// `T1 / 4φ` area ratio.
    pub fn area_ratio_n(&self) -> f64 {
        ratio(self.t1.area as f64, self.multi.area as f64)
    }

    /// `T1 / 1φ` depth ratio.
    pub fn depth_ratio_1(&self) -> f64 {
        ratio(self.t1.depth_cycles as f64, self.single.depth_cycles as f64)
    }

    /// `T1 / 4φ` depth ratio.
    pub fn depth_ratio_n(&self) -> f64 {
        ratio(self.t1.depth_cycles as f64, self.multi.depth_cycles as f64)
    }
}

fn ratio(a: f64, b: f64) -> f64 {
    if b == 0.0 {
        if a == 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        a / b
    }
}

/// A complete Table-I instance.
#[derive(Debug, Clone, Default)]
pub struct TableOne {
    /// Benchmark rows in insertion order.
    pub rows: Vec<TableRow>,
}

impl TableOne {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Measures and appends a benchmark.
    pub fn add(&mut self, name: &str, aig: &Aig, lib: &CellLibrary, n: u32) -> &TableRow {
        let row = TableRow::measure(name, aig, lib, n);
        self.rows.push(row);
        self.rows.last().expect("just pushed")
    }

    /// Appends an already-measured row (the `sfq-engine` path).
    pub fn push(&mut self, row: TableRow) {
        self.rows.push(row);
    }

    /// Geometric-mean-free averages of the ratio columns, in the paper's
    /// order: (dff vs 1φ, dff vs 4φ, area vs 1φ, area vs 4φ, depth vs 1φ,
    /// depth vs 4φ).
    pub fn averages(&self) -> [f64; 6] {
        let k = self.rows.len().max(1) as f64;
        let mut sums = [0.0f64; 6];
        for r in &self.rows {
            sums[0] += r.dff_ratio_1();
            sums[1] += r.dff_ratio_n();
            sums[2] += r.area_ratio_1();
            sums[3] += r.area_ratio_n();
            sums[4] += r.depth_ratio_1();
            sums[5] += r.depth_ratio_n();
        }
        sums.map(|s| s / k)
    }

    /// Renders the table as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "benchmark,t1_found,t1_used,dff_1p,dff_np,dff_t1,dff_vs_1p,dff_vs_np,\
             area_1p,area_np,area_t1,area_vs_1p,area_vs_np,\
             depth_1p,depth_np,depth_t1,depth_vs_1p,depth_vs_np\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{},{},{},{:.2},{:.2},{},{},{},{:.2},{:.2},{},{},{},{:.2},{:.2}\n",
                r.name,
                r.t1.t1_found,
                r.t1.t1_used,
                r.single.dffs,
                r.multi.dffs,
                r.t1.dffs,
                r.dff_ratio_1(),
                r.dff_ratio_n(),
                r.single.area,
                r.multi.area,
                r.t1.area,
                r.area_ratio_1(),
                r.area_ratio_n(),
                r.single.depth_cycles,
                r.multi.depth_cycles,
                r.t1.depth_cycles,
                r.depth_ratio_1(),
                r.depth_ratio_n(),
            ));
        }
        out
    }
}

impl fmt::Display for TableOne {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<12} {:>6} {:>5} | {:>9} {:>9} {:>9} {:>5} {:>5} | {:>9} {:>9} {:>9} {:>5} {:>5} | {:>5} {:>5} {:>5} {:>5} {:>5}",
            "benchmark", "found", "used",
            "#DFF 1φ", "#DFF nφ", "#DFF T1", "r/1φ", "r/nφ",
            "Area 1φ", "Area nφ", "Area T1", "r/1φ", "r/nφ",
            "D 1φ", "D nφ", "D T1", "r/1φ", "r/nφ",
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<12} {:>6} {:>5} | {:>9} {:>9} {:>9} {:>5.2} {:>5.2} | {:>9} {:>9} {:>9} {:>5.2} {:>5.2} | {:>5} {:>5} {:>5} {:>5.2} {:>5.2}",
                r.name,
                r.t1.t1_found,
                r.t1.t1_used,
                r.single.dffs,
                r.multi.dffs,
                r.t1.dffs,
                r.dff_ratio_1(),
                r.dff_ratio_n(),
                r.single.area,
                r.multi.area,
                r.t1.area,
                r.area_ratio_1(),
                r.area_ratio_n(),
                r.single.depth_cycles,
                r.multi.depth_cycles,
                r.t1.depth_cycles,
                r.depth_ratio_1(),
                r.depth_ratio_n(),
            )?;
        }
        let avg = self.averages();
        writeln!(
            f,
            "{:<12} {:>6} {:>5} | {:>9} {:>9} {:>9} {:>5.2} {:>5.2} | {:>9} {:>9} {:>9} {:>5.2} {:>5.2} | {:>5} {:>5} {:>5} {:>5.2} {:>5.2}",
            "Average", "", "", "", "", "", avg[0], avg[1], "", "", "", avg[2], avg[3], "", "", "", avg[4], avg[5],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfq_circuits::epfl::adder;

    #[test]
    fn table_row_on_small_adder() {
        let lib = CellLibrary::default();
        let aig = adder(8);
        let row = TableRow::measure("adder8", &aig, &lib, 4);
        assert!(row.t1.t1_used > 0);
        assert!(row.dff_ratio_1() < 1.0, "T1 beats 1φ on DFFs");
        assert!(row.area_ratio_1() < 1.0, "T1 beats 1φ on area");
    }

    #[test]
    fn csv_has_header_and_rows() {
        let lib = CellLibrary::default();
        let mut t = TableOne::new();
        t.add("adder4", &adder(4), &lib, 4);
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.starts_with("benchmark,"));
    }

    #[test]
    fn display_renders() {
        let lib = CellLibrary::default();
        let mut t = TableOne::new();
        t.add("adder4", &adder(4), &lib, 4);
        let s = t.to_string();
        assert!(s.contains("adder4"));
        assert!(s.contains("Average"));
    }
}
