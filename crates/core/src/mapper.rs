//! Cut-based technology mapping of AIGs onto the SFQ cell library.
//!
//! This is the "technology mapping flow implemented in mockturtle" the paper
//! integrates into (§III): an area-flow driven DAG covering with 1/2-input
//! clocked cells, extended here with T1-aware covering — selected T1 groups
//! (from [`mod@crate::detect`]) are instantiated as multi-output T1 cells and
//! the remaining logic is covered with ordinary gates.
//!
//! Negated T1 operands receive explicit NOT gates (a pulse absence cannot
//! toggle the `T` input), while ordinary gate-input polarities are absorbed
//! into cell variants.

use crate::cells::CellLibrary;
use crate::mapped::{CellId, Edge, MappedCircuit};
use sfq_netlist::aig::{Aig, NodeId, NodeKind};
use sfq_netlist::cut::{enumerate_cuts, CutConfig, CutSet};
use sfq_netlist::truth_table::TruthTable;
use std::collections::HashMap;

/// One function realized by a T1 group member.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct T1Member {
    /// The AIG node whose function the T1 port reproduces.
    pub root: NodeId,
    /// T1 output port (see `mapped::T1_PORT_*`).
    pub port: u8,
    /// Whether the node computes the *complement* of the port function.
    pub output_invert: bool,
}

/// A set of cuts sharing three leaves, implementable by one T1 cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct T1Group {
    /// The shared cut leaves (ascending node order).
    pub leaves: [NodeId; 3],
    /// Operand negation mask: bit `i` set means leaf `i` enters `T` negated
    /// (realized by an explicit NOT gate).
    pub input_neg: u8,
    /// The member functions replaced by this T1 cell.
    pub members: Vec<T1Member>,
    /// Area gain ΔA of eq. (2), in JJs (positive = beneficial).
    pub gain: i64,
}

/// The set of T1 groups chosen for instantiation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct T1Selection {
    /// Selected, mutually compatible groups.
    pub groups: Vec<T1Group>,
}

/// Output of the mapping stage.
#[derive(Debug, Clone)]
pub struct MapResult {
    /// The mapped netlist.
    pub circuit: MappedCircuit,
    /// Mapped-cell cost attributed to each covering cut root (used by the
    /// ΔA computation of eq. 2).
    pub attribution: HashMap<NodeId, u32>,
    /// Number of T1 groups actually instantiated by the cover.
    pub t1_used: usize,
}

/// Maps `aig` onto the library, optionally instantiating the given T1
/// selection.
///
/// # Panics
///
/// Panics if a selected T1 group references nodes outside `aig`.
pub fn map(aig: &Aig, lib: &CellLibrary, t1: Option<&T1Selection>) -> MapResult {
    // 3-feasible cuts: the library has 1/2-input cells plus MAJ3/XOR3.
    let cuts = enumerate_cuts(
        aig,
        &CutConfig {
            max_leaves: 3,
            max_cuts: 16,
        },
    );
    let best = choose_cuts(aig, lib, &cuts);
    Cover::new(aig, lib, &cuts, &best, t1).run()
}

/// Area-flow cut choice: `best[node]` is the index of the selected cut.
fn choose_cuts(aig: &Aig, lib: &CellLibrary, cuts: &CutSet) -> Vec<usize> {
    let mut area_flow = vec![0.0f64; aig.len()];
    let mut best = vec![usize::MAX; aig.len()];
    for id in aig.node_ids() {
        if !matches!(aig.kind(id), NodeKind::And(..)) {
            continue;
        }
        let mut best_cost = f64::INFINITY;
        for (ci, cut) in cuts.cuts(id).iter().enumerate() {
            let leaves = cut.leaves();
            if leaves.is_empty() || leaves.len() > 3 || leaves == [id] {
                continue;
            }
            // Skip cuts no library cell implements (3-input non-MAJ3/XOR3).
            let Some(cell) = lib.gate_cost_checked(cut.truth_table()) else {
                continue;
            };
            let flow: f64 = leaves.iter().map(|l| area_flow[l.index()]).sum();
            let cost = cell as f64 + flow;
            if cost < best_cost {
                best_cost = cost;
                best[id.index()] = ci;
            }
        }
        debug_assert_ne!(best[id.index()], usize::MAX, "every AND has a fanin cut");
        let refs = aig.fanout_count(id).max(1) as f64;
        area_flow[id.index()] = best_cost / refs;
    }
    best
}

struct Cover<'a> {
    aig: &'a Aig,
    lib: &'a CellLibrary,
    cuts: &'a CutSet,
    best: &'a [usize],
    /// node → (group index, port, output inversion)
    t1_roots: HashMap<NodeId, (usize, u8, bool)>,
    groups: Vec<&'a T1Group>,
    built: HashMap<NodeId, Edge>,
    t1_cells: Vec<Option<CellId>>,
    out: MappedCircuit,
    attribution: HashMap<NodeId, u32>,
    input_edges: Vec<Edge>,
    const_edge: Option<Edge>,
}

impl<'a> Cover<'a> {
    fn new(
        aig: &'a Aig,
        lib: &'a CellLibrary,
        cuts: &'a CutSet,
        best: &'a [usize],
        t1: Option<&'a T1Selection>,
    ) -> Self {
        let mut t1_roots = HashMap::new();
        let mut groups = Vec::new();
        if let Some(sel) = t1 {
            for (gi, g) in sel.groups.iter().enumerate() {
                groups.push(g);
                for m in &g.members {
                    t1_roots.insert(m.root, (gi, m.port, m.output_invert));
                }
            }
        }
        let mut out = MappedCircuit::new();
        let input_edges: Vec<Edge> = (0..aig.pi_count())
            .map(|_| Edge::plain(out.add_input()))
            .collect();
        let t1_cells = vec![None; groups.len()];
        Cover {
            aig,
            lib,
            cuts,
            best,
            t1_roots,
            groups,
            built: HashMap::new(),
            t1_cells,
            out,
            attribution: HashMap::new(),
            input_edges,
            const_edge: None,
        }
    }

    fn run(mut self) -> MapResult {
        for po in self.aig.pos().to_vec() {
            let edge = self.build(po.node()).xor_invert(po.is_complement());
            self.out.add_po(edge);
        }
        let t1_used = self.t1_cells.iter().flatten().count();
        MapResult {
            circuit: self.out,
            attribution: self.attribution,
            t1_used,
        }
    }

    fn const_edge(&mut self) -> Edge {
        if let Some(e) = self.const_edge {
            return e;
        }
        let e = Edge::plain(self.out.add_const0());
        self.const_edge = Some(e);
        e
    }

    fn build(&mut self, node: NodeId) -> Edge {
        if let Some(&e) = self.built.get(&node) {
            return e;
        }
        let edge = match self.aig.kind(node) {
            NodeKind::Const0 => self.const_edge(),
            NodeKind::Input(i) => self.input_edges[i as usize],
            NodeKind::And(..) => {
                if let Some(&(gi, port, inv)) = self.t1_roots.get(&node) {
                    let cell = self.build_t1(gi);
                    Edge {
                        cell,
                        port,
                        invert: inv,
                    }
                } else {
                    self.build_gate(node)
                }
            }
        };
        self.built.insert(node, edge);
        edge
    }

    fn build_gate(&mut self, node: NodeId) -> Edge {
        let ci = self.best[node.index()];
        let cut = &self.cuts.cuts(node)[ci];
        let leaves = cut.leaves().to_vec();
        let tt = cut.truth_table();
        let fanins: Vec<Edge> = leaves.iter().map(|&l| self.build(l)).collect();
        let cost = self.lib.gate_cost(tt);
        let cell = self.out.add_gate(tt, fanins);
        self.attribution.insert(node, cost);
        Edge::plain(cell)
    }

    fn build_t1(&mut self, gi: usize) -> CellId {
        if let Some(c) = self.t1_cells[gi] {
            return c;
        }
        let group = self.groups[gi];
        let mut operands = [Edge::plain(CellId(0)); 3];
        for (k, &leaf) in group.leaves.iter().enumerate() {
            let e = self.build(leaf);
            let neg = group.input_neg >> k & 1 == 1;
            let flip = neg ^ e.invert;
            operands[k] = if flip {
                // Pulse logic cannot invert on a wire: materialize a NOT.
                let raw = Edge {
                    cell: e.cell,
                    port: e.port,
                    invert: false,
                };
                let not_tt = !TruthTable::var(1, 0);
                Edge::plain(self.out.add_gate(not_tt, vec![raw]))
            } else {
                Edge {
                    cell: e.cell,
                    port: e.port,
                    invert: false,
                }
            };
        }
        let cell = self.out.add_t1(operands);
        self.t1_cells[gi] = Some(cell);
        cell
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapped::{T1_PORT_CARRY, T1_PORT_SUM};
    use sfq_netlist::aig::Lit;

    fn check_equivalent(aig: &Aig, mc: &MappedCircuit, samples: u64) {
        assert_eq!(aig.pi_count(), mc.num_inputs());
        assert_eq!(aig.po_count(), mc.pos().len());
        let mut state = 0x243F6A8885A308D3u64;
        for _ in 0..samples {
            let inputs: Vec<u64> = (0..aig.pi_count())
                .map(|_| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state
                })
                .collect();
            assert_eq!(
                aig.eval64(&inputs),
                mc.eval64(&inputs),
                "functional mismatch"
            );
        }
    }

    fn full_adder_aig() -> (Aig, Lit, Lit) {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let c = g.add_pi();
        let s = g.xor3(a, b, c);
        let m = g.maj3(a, b, c);
        g.add_po(s);
        g.add_po(m);
        (g, s, m)
    }

    #[test]
    fn baseline_maps_full_adder_equivalently() {
        let (g, _, _) = full_adder_aig();
        let lib = CellLibrary::default();
        let res = map(&g, &lib, None);
        check_equivalent(&g, &res.circuit, 8);
        assert_eq!(res.t1_used, 0);
    }

    #[test]
    fn xor_maps_to_single_cell() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let x = g.xor(a, b);
        g.add_po(x);
        let lib = CellLibrary::default();
        let res = map(&g, &lib, None);
        // One XOR2 cell instead of three AND-class cells.
        assert_eq!(res.circuit.gate_count(), 1);
        assert_eq!(res.circuit.cell_area(&lib), lib.xor2 as u64);
        check_equivalent(&g, &res.circuit, 4);
    }

    #[test]
    fn attribution_covers_mapped_cells() {
        let (g, _, _) = full_adder_aig();
        let lib = CellLibrary::default();
        let res = map(&g, &lib, None);
        let total: u64 = res.attribution.values().map(|&c| c as u64).sum();
        assert_eq!(
            total,
            res.circuit.cell_area(&lib),
            "attribution sums to cell area"
        );
    }

    #[test]
    fn t1_cover_replaces_full_adder() {
        let (g, s, m) = full_adder_aig();
        let lib = CellLibrary::default();
        // Hand-build the selection: both roots on the PI leaves.
        let leaves = [g.pis()[0], g.pis()[1], g.pis()[2]];
        let sel = T1Selection {
            groups: vec![T1Group {
                leaves,
                input_neg: 0,
                members: vec![
                    T1Member {
                        root: s.node(),
                        port: T1_PORT_SUM,
                        output_invert: s.is_complement(),
                    },
                    T1Member {
                        root: m.node(),
                        port: T1_PORT_CARRY,
                        output_invert: m.is_complement(),
                    },
                ],
                gain: 40,
            }],
        };
        let res = map(&g, &lib, Some(&sel));
        assert_eq!(res.t1_used, 1);
        assert_eq!(res.circuit.t1_count(), 1);
        assert_eq!(
            res.circuit.gate_count(),
            0,
            "whole FA collapses into the T1"
        );
        check_equivalent(&g, &res.circuit, 8);
    }

    #[test]
    fn t1_with_negated_operand_gets_not_gate() {
        // f = xor3(!a, b, c), g = maj3(!a, b, c).
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let c = g.add_pi();
        let s = g.xor3(!a, b, c);
        let m = g.maj3(!a, b, c);
        g.add_po(s);
        g.add_po(m);
        let lib = CellLibrary::default();
        let sel = T1Selection {
            groups: vec![T1Group {
                leaves: [a.node(), b.node(), c.node()],
                input_neg: 0b001,
                members: vec![
                    T1Member {
                        root: s.node(),
                        port: T1_PORT_SUM,
                        output_invert: s.is_complement(),
                    },
                    T1Member {
                        root: m.node(),
                        port: T1_PORT_CARRY,
                        output_invert: m.is_complement(),
                    },
                ],
                gain: 30,
            }],
        };
        let res = map(&g, &lib, Some(&sel));
        assert_eq!(res.circuit.t1_count(), 1);
        assert_eq!(
            res.circuit.gate_count(),
            1,
            "one NOT gate for the negated operand"
        );
        check_equivalent(&g, &res.circuit, 8);
    }

    #[test]
    fn constant_and_pass_through_pos() {
        let mut g = Aig::new();
        let a = g.add_pi();
        g.add_po(a);
        g.add_po(!a);
        g.add_po(Lit::FALSE);
        g.add_po(Lit::TRUE);
        let lib = CellLibrary::default();
        let res = map(&g, &lib, None);
        check_equivalent(&g, &res.circuit, 2);
    }

    #[test]
    fn random_networks_map_equivalently() {
        use sfq_circuits::random::{random_aig, RandomAigConfig};
        let lib = CellLibrary::default();
        for seed in 0..10 {
            let g = random_aig(seed, &RandomAigConfig::default());
            let res = map(&g, &lib, None);
            check_equivalent(&g, &res.circuit, 4);
        }
    }

    #[test]
    fn ripple_adder_maps_equivalently() {
        use sfq_circuits::epfl::adder;
        let g = adder(16);
        let lib = CellLibrary::default();
        let res = map(&g, &lib, None);
        check_equivalent(&g, &res.circuit, 4);
        // An FA per bit: 2 XOR-class + a few AND-class cells each; the total
        // must be far below naive 1-cell-per-AND.
        assert!(res.circuit.gate_count() < g.and_count());
    }
}
