//! T1-FF detection: cut enumeration + Boolean matching (§II-A of the paper).
//!
//! Candidate formation: for every node, every 3-leaf cut whose function is
//! (a possibly input/output-negated) XOR3, MAJ3 or OR3 yields a *match*.
//! Matches sharing the same leaves and operand-negation mask form a
//! candidate *group* — a set of cuts `{C(u_1), …, C(u_n)}` implementable by
//! one T1 cell. A group is beneficial when the area gain of eq. (2),
//!
//! ```text
//! ΔA = Σᵢ A(MFFC(uᵢ)) − A_T1(C)  >  0,
//! ```
//!
//! is positive, where the MFFC areas are measured on the *baseline-mapped*
//! netlist (the cells that actually disappear) and `A_T1` includes NOT gates
//! for negated operands. Overlapping groups are resolved greedily by
//! descending gain, which is the mockturtle convention.

use crate::cells::CellLibrary;
use crate::mapped::{T1_PORT_CARRY, T1_PORT_OR, T1_PORT_SUM};
use crate::mapper::{map, T1Group, T1Member, T1Selection};
use sfq_netlist::aig::{Aig, NodeId, NodeKind};
use sfq_netlist::cut::{enumerate_cuts, CutConfig};
use sfq_netlist::mffc::Mffc;
use sfq_netlist::truth_table::TruthTable;
use std::collections::{HashMap, HashSet};

/// Parameters of the detection stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectConfig {
    /// Cut enumeration parameters (cuts wider than 3 leaves are ignored).
    pub cut: CutConfig,
    /// Keep groups with non-positive gain as candidates (they are never
    /// selected, but are reported as "found").
    pub min_members: usize,
}

impl Default for DetectConfig {
    fn default() -> Self {
        DetectConfig {
            cut: CutConfig {
                max_leaves: 3,
                max_cuts: 20,
            },
            min_members: 2,
        }
    }
}

impl DetectConfig {
    /// Feeds a canonical encoding of the detection parameters into `h`, in
    /// fixed field order, for the `sfq-engine` content-addressed cache key.
    pub fn fingerprint(&self, h: &mut impl std::hash::Hasher) {
        h.write_usize(self.cut.max_leaves);
        h.write_usize(self.cut.max_cuts);
        h.write_usize(self.min_members);
    }
}

/// Result of T1 detection.
#[derive(Debug, Clone)]
pub struct DetectionResult {
    /// Groups selected for instantiation (mutually compatible, gain > 0).
    pub selection: T1Selection,
    /// All candidate groups (deduplicated), including rejected ones.
    pub candidates: Vec<T1Group>,
}

impl DetectionResult {
    /// Number of candidate T1 cells found (the paper's "found" column).
    pub fn found(&self) -> usize {
        self.candidates.len()
    }

    /// Number of T1 cells selected (the paper's "used" column upper bound —
    /// the cover reports the exact instantiated count).
    pub fn selected(&self) -> usize {
        self.selection.groups.len()
    }
}

/// The five T1-implementable functions, as (port, base table) pairs.
fn port_functions() -> [(u8, TruthTable); 3] {
    [
        (T1_PORT_SUM, TruthTable::xor3()),
        (T1_PORT_CARRY, TruthTable::maj3()),
        (T1_PORT_OR, TruthTable::or3()),
    ]
}

fn apply_mask(tt: TruthTable, mask: u8) -> TruthTable {
    let mut out = tt;
    for v in 0..3 {
        if mask >> v & 1 == 1 {
            out = out.flip_var(v);
        }
    }
    out
}

/// Runs T1 detection on `aig`.
///
/// The baseline mapping is computed internally to attribute realistic cell
/// areas to cut roots (eq. 2).
pub fn detect(aig: &Aig, lib: &CellLibrary, config: &DetectConfig) -> DetectionResult {
    let attribution = map(aig, lib, None).attribution;
    detect_with_attribution(aig, lib, config, &attribution)
}

/// Like [`detect`], but reusing an existing baseline-mapping attribution.
pub fn detect_with_attribution(
    aig: &Aig,
    lib: &CellLibrary,
    config: &DetectConfig,
    attribution: &HashMap<NodeId, u32>,
) -> DetectionResult {
    let cuts = enumerate_cuts(aig, &config.cut);
    let ports = port_functions();

    // (leaves, mask) → members.
    let mut groups: HashMap<([NodeId; 3], u8), Vec<T1Member>> = HashMap::new();
    for id in aig.node_ids() {
        if !matches!(aig.kind(id), NodeKind::And(..)) {
            continue;
        }
        let mut seen_masks = HashSet::new();
        for cut in cuts.cuts(id) {
            if cut.leaves().len() != 3 {
                continue;
            }
            let tt = cut.truth_table();
            if tt.support_size() != 3 {
                continue;
            }
            let leaves = [cut.leaves()[0], cut.leaves()[1], cut.leaves()[2]];
            for mask in 0u8..8 {
                for &(port, base) in &ports {
                    let target = apply_mask(base, mask);
                    let inv = if tt == target {
                        Some(false)
                    } else if tt == !target {
                        Some(true)
                    } else {
                        None
                    };
                    if let Some(output_invert) = inv {
                        // A node matches one port per (leaves, mask); guard
                        // against duplicate cuts of the same node.
                        if seen_masks.insert((leaves, mask)) {
                            groups.entry((leaves, mask)).or_default().push(T1Member {
                                root: id,
                                port,
                                output_invert,
                            });
                        }
                    }
                }
            }
        }
    }

    // Bundle mask variants of the same replacement (same leaves, same root
    // set): each variant needs different operand negations, whose cost
    // depends on what earlier selections provide (a preceding T1's inverted
    // output is free), so the winning variant is chosen during the greedy
    // pass below — exactly how the cover's NOT-insertion logic works.
    let mut mffc = Mffc::new(aig);
    struct Candidate {
        leaves: [NodeId; 3],
        variants: Vec<(u8, Vec<T1Member>)>,
        union: Vec<NodeId>,
        freed: i64,
    }
    // (leaf triple, root-set union) → mask variants with their members.
    type BundleKey = ([NodeId; 3], Vec<NodeId>);
    let mut bundles: HashMap<BundleKey, Vec<(u8, Vec<T1Member>)>> = HashMap::new();
    for ((leaves, mask), members) in groups {
        if members.len() < config.min_members {
            continue;
        }
        let mut roots: Vec<NodeId> = members.iter().map(|m| m.root).collect();
        roots.sort();
        bundles
            .entry((leaves, roots))
            .or_default()
            .push((mask, members));
    }
    let mut cands: Vec<Candidate> = Vec::new();
    for ((leaves, roots), variants) in bundles {
        // Bound the dereference at the cut leaves: the replacement removes
        // exactly the cones between the roots and the shared cut.
        let union = mffc.union_members_bounded(&roots, &leaves);
        let freed: i64 = union
            .iter()
            .map(|n| attribution.get(n).copied().unwrap_or(0) as i64)
            .sum();
        cands.push(Candidate {
            leaves,
            variants,
            union,
            freed,
        });
    }

    // Greedy selection by descending optimistic gain; ties broken by leaf
    // order, which processes chained structures (ripple carry) forward so
    // inverted carries are already available when a successor is scored.
    cands.sort_by(|a, b| b.freed.cmp(&a.freed).then(a.leaves.cmp(&b.leaves)));
    let mut claimed: HashSet<NodeId> = HashSet::new();
    // Accepted member roots → output polarity their T1 port provides
    // (true = the port emits the complement of the node value).
    let mut kept_roots: HashMap<NodeId, bool> = HashMap::new();
    let mut protected_leaves: HashSet<NodeId> = HashSet::new();
    let mut selection = T1Selection::default();
    let mut candidates = Vec::new();
    let base_cost = lib.t1_assembly() as i64;
    for cand in cands {
        // Resolve the best mask variant under the current selection state:
        // a negated operand is free iff the leaf's available polarity
        // already matches (mirrors `Cover::build_t1`'s flip computation).
        let mut best: Option<(i64, &(u8, Vec<T1Member>))> = None;
        for v in &cand.variants {
            let (mask, _) = *v;
            let mut nots = 0i64;
            for (k, leaf) in cand.leaves.iter().enumerate() {
                let neg = mask >> k & 1 == 1;
                let avail_invert = kept_roots.get(leaf).copied().unwrap_or(false);
                if neg ^ avail_invert {
                    nots += 1;
                }
            }
            let gain = cand.freed - base_cost - nots * lib.not as i64;
            if best.is_none() || gain > best.as_ref().expect("set").0 {
                best = Some((gain, v));
            }
        }
        let (gain, (mask, members)) = best.expect("at least one variant");
        let group = T1Group {
            leaves: cand.leaves,
            input_neg: *mask,
            members: members.clone(),
            gain,
        };
        // A protected leaf inside this union is fine iff it is one of this
        // group's own roots (it stays available through the new T1's port).
        let own_roots: HashSet<NodeId> = group.members.iter().map(|m| m.root).collect();
        let ok = gain > 0
            && cand.union.iter().all(|n| {
                !claimed.contains(n) && (!protected_leaves.contains(n) || own_roots.contains(n))
            })
            && group
                .leaves
                .iter()
                .all(|l| !claimed.contains(l) || kept_roots.contains_key(l));
        candidates.push(group.clone());
        if ok {
            claimed.extend(cand.union.iter().copied());
            for m in &group.members {
                kept_roots.insert(m.root, m.output_invert);
            }
            protected_leaves.extend(group.leaves.iter().copied());
            selection.groups.push(group);
        }
    }

    DetectionResult {
        selection,
        candidates,
    }
}

/// Exact T1 selection: maximum-total-gain compatible subset of the
/// candidates, solved as a 0/1 ILP on [`sfq_solver::milp`].
///
/// Pairwise compatibility is the static part of the greedy rules (disjoint
/// removed cones; a leaf inside another group's cone only if it is one of
/// that group's member roots). Gains are priced optimistically (negations
/// free), matching the greedy's tie-free ordering criterion; the realized
/// area is decided by the cover as usual.
///
/// Intended for small/medium candidate sets (the constraint count is
/// quadratic in candidates); used by the `abl-select` ablation to audit the
/// greedy selection.
///
/// # Errors
///
/// Propagates [`sfq_solver::milp::MilpError`] from the solver (e.g. node-limit exhaustion).
pub fn select_exact(
    aig: &Aig,
    candidates: &[T1Group],
) -> Result<T1Selection, sfq_solver::milp::MilpError> {
    use sfq_solver::linear::{LinExpr, Sense};
    use sfq_solver::milp::MilpProblem;

    let mut mffc = Mffc::new(aig);
    let unions: Vec<HashSet<NodeId>> = candidates
        .iter()
        .map(|g| {
            let roots: Vec<NodeId> = g.members.iter().map(|m| m.root).collect();
            mffc.union_members_bounded(&roots, &g.leaves)
                .into_iter()
                .collect()
        })
        .collect();
    let roots: Vec<HashSet<NodeId>> = candidates
        .iter()
        .map(|g| g.members.iter().map(|m| m.root).collect())
        .collect();
    let gains: Vec<i64> = candidates.iter().map(|g| g.gain).collect();

    let mut p = MilpProblem::new();
    let xs: Vec<_> = (0..candidates.len())
        .map(|_| p.add_int_var(0.0, Some(1.0)))
        .collect();
    let mut obj = LinExpr::new();
    for (i, &x) in xs.iter().enumerate() {
        // Maximize total gain → minimize negated gain.
        obj.add_term(x, -(gains[i] as f64));
        if gains[i] <= 0 {
            // Non-beneficial groups are never selected.
            p.add_constraint(LinExpr::var(x), Sense::Le, 0.0);
        }
    }
    for i in 0..candidates.len() {
        for j in i + 1..candidates.len() {
            let cones_overlap = !unions[i].is_disjoint(&unions[j]);
            let leaf_conflict_ij = candidates[i]
                .leaves
                .iter()
                .any(|l| unions[j].contains(l) && !roots[j].contains(l));
            let leaf_conflict_ji = candidates[j]
                .leaves
                .iter()
                .any(|l| unions[i].contains(l) && !roots[i].contains(l));
            if cones_overlap || leaf_conflict_ij || leaf_conflict_ji {
                p.add_constraint(LinExpr::var(xs[i]) + LinExpr::var(xs[j]), Sense::Le, 1.0);
            }
        }
    }
    p.set_objective(obj);
    let sol = p.solve()?;
    let groups = candidates
        .iter()
        .enumerate()
        .filter(|(i, _)| sol.int_value(xs[*i]) == 1)
        .map(|(_, g)| g.clone())
        .collect();
    Ok(T1Selection { groups })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfq_circuits::epfl::adder;

    fn full_adder_aig() -> Aig {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let c = g.add_pi();
        let s = g.xor3(a, b, c);
        let m = g.maj3(a, b, c);
        g.add_po(s);
        g.add_po(m);
        g
    }

    #[test]
    fn full_adder_detected() {
        let g = full_adder_aig();
        let lib = CellLibrary::default();
        let res = detect(&g, &lib, &DetectConfig::default());
        assert!(res.found() >= 1, "the FA group must be found");
        assert_eq!(res.selected(), 1, "exactly one group selected");
        let group = &res.selection.groups[0];
        assert_eq!(group.members.len(), 2);
        assert!(group.gain > 0, "gain {}", group.gain);
        let ports: HashSet<u8> = group.members.iter().map(|m| m.port).collect();
        assert!(ports.contains(&T1_PORT_SUM));
        assert!(ports.contains(&T1_PORT_CARRY));
    }

    #[test]
    fn single_function_not_grouped() {
        // Only a MAJ3: fewer than min_members functions share the cut.
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let c = g.add_pi();
        let m = g.maj3(a, b, c);
        g.add_po(m);
        let lib = CellLibrary::default();
        let res = detect(&g, &lib, &DetectConfig::default());
        assert_eq!(res.selected(), 0);
    }

    #[test]
    fn unrelated_logic_yields_nothing() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let x = g.and(a, b);
        g.add_po(x);
        let lib = CellLibrary::default();
        let res = detect(&g, &lib, &DetectConfig::default());
        assert_eq!(res.found(), 0);
    }

    #[test]
    fn ripple_adder_detects_one_group_per_bit() {
        let bits = 16;
        let g = adder(bits);
        let lib = CellLibrary::default();
        let res = detect(&g, &lib, &DetectConfig::default());
        // One FA per bit; the first bit has no carry-in (half adder), so
        // bits-1 groups are expected (paper: 127 for the 128-bit adder).
        assert!(
            res.selected() >= bits - 2 && res.selected() <= bits,
            "selected {} groups for {bits}-bit adder",
            res.selected()
        );
        for gsel in &res.selection.groups {
            assert!(gsel.gain > 0);
            assert!(gsel.members.len() >= 2);
        }
    }

    #[test]
    fn negated_operand_candidate_has_correct_mask() {
        let mut g = Aig::new();
        let a = g.add_pi();
        let b = g.add_pi();
        let c = g.add_pi();
        let s = g.xor3(!a, b, c);
        let m = g.maj3(!a, b, c);
        g.add_po(s);
        g.add_po(m);
        let lib = CellLibrary::default();
        let res = detect(&g, &lib, &DetectConfig::default());
        // The candidate exists and MAJ3 pins its mask to the actual operand
        // negation (either exactly !a or its complement-all dual)…
        assert_eq!(res.found(), 1);
        let cand = &res.candidates[0];
        assert!(
            cand.input_neg == 0b001 || cand.input_neg == 0b110,
            "mask {:#05b}",
            cand.input_neg
        );
        // …but standalone it is rejected: the baseline MAJ3/XOR3 cells
        // absorb the input polarity for free (34 JJ) while the T1 needs a
        // real inverter for its pulse stream (29 + 9 JJ). Only chained
        // structures (ripple carry), where a preceding T1's inverted output
        // supplies the negation, make such groups profitable.
        assert!(cand.gain < 0, "gain {}", cand.gain);
        assert_eq!(res.selected(), 0);
    }

    #[test]
    fn selection_respects_conflicts() {
        // Two overlapping FAs sharing the carry: both want the same interior.
        let g = adder(8);
        let lib = CellLibrary::default();
        let res = detect(&g, &lib, &DetectConfig::default());
        // Verify no two selected groups claim the same member root.
        let mut seen = HashSet::new();
        for gr in &res.selection.groups {
            for m in &gr.members {
                assert!(seen.insert(m.root), "root claimed twice");
            }
        }
    }

    #[test]
    fn found_at_least_selected() {
        let g = adder(12);
        let lib = CellLibrary::default();
        let res = detect(&g, &lib, &DetectConfig::default());
        assert!(res.found() >= res.selected());
    }

    #[test]
    fn exact_selection_at_least_greedy_gain() {
        let g = adder(8);
        let lib = CellLibrary::default();
        let res = detect(&g, &lib, &DetectConfig::default());
        let exact = select_exact(&g, &res.candidates).expect("solvable");
        let greedy_gain: i64 = res.selection.groups.iter().map(|x| x.gain.max(0)).sum();
        let exact_gain: i64 = exact.groups.iter().map(|x| x.gain.max(0)).sum();
        assert!(
            exact_gain >= greedy_gain,
            "exact {exact_gain} below greedy {greedy_gain}"
        );
        // The exact selection is itself mappable.
        let mapped = map(&g, &lib, Some(&exact)).circuit;
        let mut state = 0x0FEDCBA987654321u64;
        for _ in 0..4 {
            let inputs: Vec<u64> = (0..g.pi_count())
                .map(|_| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state
                })
                .collect();
            assert_eq!(g.eval64(&inputs), mapped.eval64(&inputs));
        }
    }

    #[test]
    fn exact_selection_respects_conflicts() {
        let g = adder(6);
        let lib = CellLibrary::default();
        let res = detect(&g, &lib, &DetectConfig::default());
        let exact = select_exact(&g, &res.candidates).expect("solvable");
        let mut seen = HashSet::new();
        for gr in &exact.groups {
            assert!(gr.gain > 0, "only beneficial groups selected");
            for m in &gr.members {
                assert!(seen.insert(m.root), "root claimed twice");
            }
        }
    }
}
