//! SFQ standard-cell library and area model.
//!
//! The paper measures area in Josephson-junction (JJ) counts, following the
//! standard cell library of Yorozu et al. (ref \[6\]). We use a parametric
//! [`CellLibrary`]; the defaults are calibrated so the derived quantities the
//! paper states hold:
//!
//! - a T1-based full adder costs [`CellLibrary::t1_assembly`] = 29 JJ
//!   (T1 core + the two mergers funnelling three operands into `T`),
//! - the conventional full adder (XOR3 + MAJ3 from 2-input clocked cells,
//!   with input splitters) costs ≈ 72 JJ — i.e. the T1 realization needs
//!   only ~40 % of the area, the paper's §I claim.
//!
//! Two-input clocked gates are charged by NPN class: AND-class cells
//! (AND/NAND/OR/NOR and inverted-input variants) share one cost, XOR-class
//! (XOR/XNOR) another; single-input cells are NOT/BUF. Input polarity is
//! absorbed into the cell variant, which is why costs are per class
//! (DESIGN.md §4).

use sfq_netlist::truth_table::TruthTable;

/// Functional class of a (≤ 3)-input clocked SFQ cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateClass {
    /// Constant output (degenerate; realized as omitted wiring).
    Constant,
    /// Buffer / DFF-like single-input pass.
    Buffer,
    /// Inverter.
    Not,
    /// AND/OR/NAND/NOR and inverted-input variants.
    AndClass,
    /// XOR/XNOR.
    XorClass,
    /// 3-input majority (carry cell), any polarity variant.
    Maj3Class,
}

/// Classifies a gate truth table into its cost class, or `None` if no
/// library cell implements it (3-input functions other than ±MAJ3/±XOR3
/// modulo input polarities).
///
/// # Panics
///
/// Panics if `tt` has more than three variables (wider cells do not exist
/// in the baseline library; the T1 cell is costed separately).
pub fn classify(tt: TruthTable) -> Option<GateClass> {
    assert!(
        tt.num_vars() <= 3,
        "baseline SFQ cells have at most 3 inputs"
    );
    let support = tt.support_size();
    match support {
        0 => Some(GateClass::Constant),
        1 => {
            // Project onto the support variable and inspect polarity.
            let (small, _) = tt.shrink_to_support();
            if small == TruthTable::var(1, 0) {
                Some(GateClass::Buffer)
            } else {
                Some(GateClass::Not)
            }
        }
        2 => {
            let (small, _) = tt.shrink_to_support();
            let xor = TruthTable::var(2, 0) ^ TruthTable::var(2, 1);
            if small == xor || small == !xor {
                Some(GateClass::XorClass)
            } else {
                Some(GateClass::AndClass)
            }
        }
        _ => {
            let (small, _) = tt.shrink_to_support();
            // MAJ3's orbit under input negation: flip any subset of inputs.
            // No other 3-input cell exists in the library — in particular no
            // XOR3: like the standard cell library of ref [6], sums are
            // realized as two XOR2 levels, which is what gives the paper's
            // baseline its fourth path-balancing chain per adder bit (and
            // the T1 flow its 25% adder win).
            let m3 = TruthTable::maj3();
            for mask in 0u8..8 {
                let mut t = m3;
                for v in 0..3 {
                    if mask >> v & 1 == 1 {
                        t = t.flip_var(v);
                    }
                }
                if small == t || small == !t {
                    return Some(GateClass::Maj3Class);
                }
            }
            None
        }
    }
}

/// JJ-count area model for all cells used by the flows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellLibrary {
    /// Path-balancing D flip-flop.
    pub dff: u32,
    /// Splitter (one extra fanout branch each).
    pub splitter: u32,
    /// Clocked inverter.
    pub not: u32,
    /// Clocked buffer (rarely instantiated; DFFs serve as buffers).
    pub buffer: u32,
    /// AND-class 2-input clocked gate.
    pub and2: u32,
    /// XOR-class 2-input clocked gate.
    pub xor2: u32,
    /// 3-input majority (carry) cell.
    pub maj3: u32,
    /// Confluence buffer (merger).
    pub merger: u32,
    /// T1 flip-flop core (Fig. 1a of the paper).
    pub t1_core: u32,
}

impl Default for CellLibrary {
    /// Default JJ counts (approximating ref \[6\]; see module docs).
    fn default() -> Self {
        CellLibrary {
            dff: 6,
            splitter: 3,
            not: 9,
            buffer: 4,
            and2: 10,
            xor2: 10,
            maj3: 14,
            merger: 5,
            t1_core: 19,
        }
    }
}

impl CellLibrary {
    /// Creates the default library.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cost of a library gate given its truth table, or `None` if no cell
    /// implements the function.
    ///
    /// # Panics
    ///
    /// Panics if `tt` has more than three variables.
    pub fn gate_cost_checked(&self, tt: TruthTable) -> Option<u32> {
        classify(tt).map(|class| match class {
            GateClass::Constant => 0,
            GateClass::Buffer => self.buffer,
            GateClass::Not => self.not,
            GateClass::AndClass => self.and2,
            GateClass::XorClass => self.xor2,
            GateClass::Maj3Class => self.maj3,
        })
    }

    /// Cost of a library gate given its truth table.
    ///
    /// # Panics
    ///
    /// Panics if `tt` has more than three variables or no cell implements
    /// the function (use [`CellLibrary::gate_cost_checked`] to filter).
    pub fn gate_cost(&self, tt: TruthTable) -> u32 {
        self.gate_cost_checked(tt)
            .expect("no library cell implements this function")
    }

    /// Full cost of one T1 assembly: core plus the two mergers combining the
    /// three operand streams onto the `T` input.
    pub fn t1_assembly(&self) -> u32 {
        self.t1_core + 2 * self.merger
    }

    /// Feeds a canonical encoding of the library into `h` — every JJ cost in
    /// fixed declaration order behind a version tag — so equal libraries
    /// produce equal digests across processes. Part of the `sfq-engine`
    /// content-addressed cache key.
    pub fn fingerprint(&self, h: &mut impl std::hash::Hasher) {
        h.write_u8(1); // encoding version
        for cost in [
            self.dff,
            self.splitter,
            self.not,
            self.buffer,
            self.and2,
            self.xor2,
            self.maj3,
            self.merger,
            self.t1_core,
        ] {
            h.write_u32(cost);
        }
    }

    /// Cost of the conventional (non-T1) full adder for reference: XOR3 as
    /// two XOR2 levels, MAJ3 as three AND2 + two OR2(-class) cells
    /// (splitters excluded — they are charged at the netlist level).
    pub fn conventional_full_adder(&self) -> u32 {
        2 * self.xor2 + 5 * self.and2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> TruthTable {
        TruthTable::var(2, i)
    }

    #[test]
    fn classification_covers_all_2var_functions() {
        for bits in 0u64..16 {
            let tt = TruthTable::from_bits(2, bits);
            let class = classify(tt).expect("all 2-var functions are cells");
            match bits {
                0b0000 | 0b1111 => assert_eq!(class, GateClass::Constant),
                0b1010 | 0b1100 => assert_eq!(class, GateClass::Buffer),
                0b0101 | 0b0011 => assert_eq!(class, GateClass::Not),
                0b0110 | 0b1001 => assert_eq!(class, GateClass::XorClass),
                _ => assert_eq!(class, GateClass::AndClass, "bits {bits:#06b}"),
            }
        }
    }

    #[test]
    fn and_or_nand_nor_share_class() {
        let and = v(0) & v(1);
        let or = v(0) | v(1);
        assert_eq!(classify(and), classify(or));
        assert_eq!(classify(!and), Some(GateClass::AndClass));
        assert_eq!(classify(!or), Some(GateClass::AndClass));
    }

    #[test]
    fn three_input_cells_classified() {
        assert_eq!(classify(TruthTable::maj3()), Some(GateClass::Maj3Class));
        assert_eq!(classify(!TruthTable::maj3()), Some(GateClass::Maj3Class));
        assert_eq!(
            classify(TruthTable::maj3().flip_var(1)),
            Some(GateClass::Maj3Class),
            "negated-input majority variant"
        );
        // XOR3 is intentionally NOT a baseline cell (sums are 2-level XOR2).
        assert_eq!(classify(TruthTable::xor3()), None);
        assert_eq!(classify(!TruthTable::xor3()), None);
        // OR3 and other 3-input functions are not baseline cells either.
        assert_eq!(classify(TruthTable::or3()), None);
        let and3 = TruthTable::var(3, 0) & TruthTable::var(3, 1) & TruthTable::var(3, 2);
        assert_eq!(classify(and3), None);
        // A 3-var table with 2-var support still classifies as 2-input.
        let xor_pair = TruthTable::var(3, 0) ^ TruthTable::var(3, 2);
        assert_eq!(classify(xor_pair), Some(GateClass::XorClass));
    }

    #[test]
    fn mapped_full_adder_uses_efficient_cells() {
        // With the MAJ3 carry cell and 2-level XOR2 sums the conventional
        // mapped FA is 34 JJ — the baseline the T1 (29 JJ + shared outputs
        // + one fewer balancing chain) competes against.
        let lib = CellLibrary::default();
        assert_eq!(lib.maj3 + 2 * lib.xor2, 34);
        assert!(lib.t1_assembly() < lib.maj3 + 2 * lib.xor2);
    }

    #[test]
    fn paper_area_claims_hold() {
        let lib = CellLibrary::default();
        // §I: T1 full adder = 29 JJ.
        assert_eq!(lib.t1_assembly(), 29);
        // §I: "only 40% of the area required by the conventional realization"
        // and "60% fewer JJs": conventional ≈ 72.
        let conv = lib.conventional_full_adder();
        assert!((69..=79).contains(&conv), "conventional FA = {conv} JJ");
        let ratio = lib.t1_assembly() as f64 / conv as f64;
        assert!(ratio > 0.35 && ratio < 0.45, "T1/conventional = {ratio:.2}");
    }

    #[test]
    fn gate_costs() {
        let lib = CellLibrary::default();
        assert_eq!(lib.gate_cost(v(0) & v(1)), 10);
        assert_eq!(lib.gate_cost(v(0) ^ v(1)), 10);
        assert_eq!(lib.gate_cost(!TruthTable::var(1, 0).extend_to(2)), 9);
        assert_eq!(lib.gate_cost(TruthTable::zero(2)), 0);
    }
}
