//! End-to-end mapping flows (§III of the paper).
//!
//! Three flows are compared in Table I:
//!
//! - **1φ** — baseline mapping, single-phase clocking (classic full path
//!   balancing),
//! - **4φ** — baseline mapping, multiphase clocking without T1 cells
//!   (ref \[10\]),
//! - **T1** — the proposed flow: T1 detection → T1-aware mapping →
//!   multiphase phase assignment with eq. (3) → DFF insertion with eq. (5).
//!
//! Each flow produces a [`FlowResult`] bundling the mapped netlist, the
//! schedule, the DFF plan and the aggregate [`FlowStats`] (the paper's
//! Table-I metrics: #DFF, area in JJs, depth in cycles, T1 found/used).

use crate::cells::CellLibrary;
use crate::detect::{detect_with_attribution, DetectConfig};
use crate::dff::{insert_dffs, DffPlan};
use crate::mapped::MappedCircuit;
use crate::mapper::{map, MapResult};
use crate::phase::{assign_phases, assign_phases_exact, Schedule};
use crate::timing::{analyze_mapped, TimingConfig, TimingSummary};
use sfq_netlist::aig::Aig;
use sfq_opt::{OptConfig, OptReport};

/// Phase-assignment engine selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PhaseEngine {
    /// ASAP + DFF-aware local search (scalable; Table-I default).
    #[default]
    Heuristic,
    /// Exact MILP (§II-B); small instances only.
    Exact,
}

/// Configuration of a mapping flow.
#[derive(Debug, Clone)]
pub struct FlowConfig {
    /// Number of clock phases `n`.
    pub phases: u32,
    /// Enable T1 detection and instantiation.
    pub use_t1: bool,
    /// Phase-assignment engine.
    pub engine: PhaseEngine,
    /// Local-search passes for the heuristic engine.
    pub opt_passes: usize,
    /// T1 detection parameters.
    pub detect: DetectConfig,
    /// Pre-mapping AIG optimization stage (`sfq-opt`); disabled by default
    /// so the flow maps the network exactly as the generators emit it.
    pub pre_opt: OptConfig,
    /// Post-scheduling timing-analysis stage (`sfq-sta`); disabled by
    /// default. When enabled, the flow attaches a phase-granular
    /// [`TimingSummary`] to its result.
    pub timing: TimingConfig,
}

impl FlowConfig {
    /// The paper's single-phase baseline (1φ).
    pub fn single_phase() -> Self {
        FlowConfig {
            phases: 1,
            use_t1: false,
            engine: PhaseEngine::Heuristic,
            opt_passes: 2,
            detect: DetectConfig::default(),
            pre_opt: OptConfig::disabled(),
            timing: TimingConfig::disabled(),
        }
    }

    /// The paper's multiphase baseline without T1 (4φ by default).
    pub fn multiphase(n: u32) -> Self {
        FlowConfig {
            phases: n,
            ..Self::single_phase()
        }
    }

    /// The proposed T1 flow under `n` phases (the paper evaluates n = 4).
    pub fn t1(n: u32) -> Self {
        FlowConfig {
            phases: n,
            use_t1: true,
            ..Self::single_phase()
        }
    }

    /// Feeds a canonical encoding of the configuration into `h` — every
    /// field in fixed order and width behind a version tag — so equal
    /// configurations produce equal digests across processes. Together with
    /// [`CellLibrary::fingerprint`] and
    /// [`Aig::structural_hash`](sfq_netlist::aig::Aig::structural_hash) this
    /// forms the `sfq-engine` content-addressed cache key.
    pub fn fingerprint(&self, h: &mut impl std::hash::Hasher) {
        h.write_u8(4); // encoding version (4: pre-opt analysis-manager passes)
        h.write_u32(self.phases);
        h.write_u8(self.use_t1 as u8);
        h.write_u8(match self.engine {
            PhaseEngine::Heuristic => 0,
            PhaseEngine::Exact => 1,
        });
        h.write_usize(self.opt_passes);
        self.detect.fingerprint(h);
        self.pre_opt.fingerprint(h);
        self.timing.fingerprint(h);
    }

    /// Starts a [`FlowBuilder`] at `n` phases with every optional stage
    /// disabled — the single entry point for composing flow variants
    /// (replaces the removed `with_pre_opt`/`with_slack_opt`/
    /// `with_dff_opt`/`with_timing` accretion methods).
    pub fn builder(phases: u32) -> FlowBuilder {
        FlowBuilder {
            cfg: FlowConfig {
                phases,
                ..Self::single_phase()
            },
        }
    }

    /// Reopens this configuration as a [`FlowBuilder`], for deriving a
    /// variant from an existing config (e.g. a CLI preset plus `--pre-opt`).
    pub fn to_builder(self) -> FlowBuilder {
        FlowBuilder { cfg: self }
    }
}

/// Chainable construction of a [`FlowConfig`].
///
/// Every method returns `Self`, so flow variants compose in one
/// expression; [`FlowBuilder::build`] yields the finished configuration.
/// Presets ([`FlowConfig::single_phase`], [`FlowConfig::multiphase`],
/// [`FlowConfig::t1`]) remain the spelling for the three paper flows;
/// the builder is how optional stages attach to them:
///
/// ```
/// use t1map::flow::FlowConfig;
///
/// let cfg = FlowConfig::builder(4).t1(true).standard_opt().timing(true).build();
/// assert!(cfg.use_t1 && cfg.pre_opt.enabled && cfg.timing.enabled);
/// ```
#[derive(Debug, Clone)]
pub struct FlowBuilder {
    cfg: FlowConfig,
}

impl FlowBuilder {
    /// Enables or disables T1 detection and instantiation.
    pub fn t1(mut self, enable: bool) -> Self {
        self.cfg.use_t1 = enable;
        self
    }

    /// Selects the phase-assignment engine.
    pub fn engine(mut self, engine: PhaseEngine) -> Self {
        self.cfg.engine = engine;
        self
    }

    /// Local-search passes for the heuristic engine.
    pub fn opt_passes(mut self, passes: usize) -> Self {
        self.cfg.opt_passes = passes;
        self
    }

    /// Replaces the T1 detection parameters.
    pub fn detect(mut self, detect: DetectConfig) -> Self {
        self.cfg.detect = detect;
        self
    }

    /// Replaces the pre-mapping optimization stage wholesale (the escape
    /// hatch; the named variants below cover the shipped pipelines).
    pub fn pre_opt(mut self, pre_opt: OptConfig) -> Self {
        self.cfg.pre_opt = pre_opt;
        self
    }

    /// The standard pre-mapping optimization stage (`--pre-opt` on the CLI
    /// and the bench binaries).
    pub fn standard_opt(self) -> Self {
        self.pre_opt(OptConfig::standard())
    }

    /// The slack-aware pre-mapping optimization stage (`sfq-opt`'s
    /// `rewrite-slack` pipeline).
    pub fn slack_opt(self) -> Self {
        self.pre_opt(OptConfig::slack_aware())
    }

    /// The DFF-objective pre-mapping optimization stage (`sfq-opt`'s
    /// `rewrite-dff` pipeline): rewrite sites are priced by their projected
    /// per-edge DFF cost under **this builder's** phase count, bridging the
    /// §II-B `edge_dff_objective` accounting of `t1map::timing` into
    /// pre-mapping synthesis.
    pub fn dff_opt(self) -> Self {
        let n = self.cfg.phases.max(1);
        self.pre_opt(OptConfig::dff_aware(n))
    }

    /// Enables or disables the post-scheduling timing-analysis stage.
    pub fn timing(mut self, enable: bool) -> Self {
        self.cfg.timing = if enable {
            TimingConfig::standard()
        } else {
            TimingConfig::disabled()
        };
        self
    }

    /// Finishes the configuration.
    pub fn build(self) -> FlowConfig {
        self.cfg
    }
}

/// Aggregate metrics of a flow run (one Table-I cell group).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowStats {
    /// Candidate T1 groups found (0 for non-T1 flows).
    pub t1_found: usize,
    /// T1 cells instantiated.
    pub t1_used: usize,
    /// Path-balancing DFFs.
    pub dffs: u64,
    /// Splitters.
    pub splitters: u64,
    /// Logic-cell area in JJs (gates + T1 assemblies).
    pub cell_area: u64,
    /// Total area in JJs (cells + DFFs + splitters).
    pub area: u64,
    /// Logic depth in clock cycles.
    pub depth_cycles: i64,
    /// Number of logic gates.
    pub gates: usize,
}

/// Everything produced by one flow run.
///
/// `PartialEq` compares every component (netlist, schedule, plan, stats and
/// the optional stage reports) — the equality the `sfq-engine` store codec's
/// round-trip guarantee is stated in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowResult {
    /// The mapped netlist.
    pub mapped: MappedCircuit,
    /// The stage assignment.
    pub schedule: Schedule,
    /// The DFF-insertion plan.
    pub plan: DffPlan,
    /// Aggregate metrics.
    pub stats: FlowStats,
    /// Per-pass report of the pre-mapping optimization stage, present when
    /// it is enabled (saves consumers like the `abl-sta` ablation from
    /// re-running the whole pipeline just to read the AIG-level deltas).
    pub pre_opt: Option<OptReport>,
    /// Schedule-slack summary, present when the timing stage is enabled.
    pub timing: Option<TimingSummary>,
}

/// Runs a complete flow on `aig`.
///
/// # Panics
///
/// Panics if `config.use_t1` with fewer than 3 phases, or if the exact
/// engine fails on an instance it cannot solve (use the heuristic for large
/// netlists).
pub fn run_flow(aig: &Aig, lib: &CellLibrary, config: &FlowConfig) -> FlowResult {
    assert!(
        !config.use_t1 || config.phases >= 3,
        "T1 staggering needs at least 3 phases"
    );
    let _flow_span = sfq_obs::span("flow:run");
    // Pre-mapping optimization: a guarded `sfq-opt` pipeline run, so the
    // mapped network is never larger or deeper than the subject network.
    let optimized;
    let mut pre_opt = None;
    let aig = if config.pre_opt.enabled {
        let _span = sfq_obs::span("flow:pre-opt");
        let (net, report) = sfq_opt::optimize(aig, &config.pre_opt);
        optimized = net;
        pre_opt = Some(report);
        &optimized
    } else {
        aig
    };
    let (map_result, t1_found): (MapResult, usize) = if config.use_t1 {
        let det = {
            let _span = sfq_obs::span("flow:detect");
            let baseline = map(aig, lib, None);
            detect_with_attribution(aig, lib, &config.detect, &baseline.attribution)
        };
        let found = det.found();
        let mapped = {
            let _span = sfq_obs::span("flow:map");
            map(aig, lib, Some(&det.selection))
        };
        (mapped, found)
    } else {
        let _span = sfq_obs::span("flow:map");
        (map(aig, lib, None), 0)
    };
    let mc = map_result.circuit;
    let schedule = {
        let _span = sfq_obs::span("flow:phase-assign");
        match config.engine {
            PhaseEngine::Heuristic => assign_phases(&mc, config.phases, config.opt_passes),
            PhaseEngine::Exact => {
                assign_phases_exact(&mc, config.phases).expect("exact phase assignment failed")
            }
        }
    };
    let plan = {
        let _span = sfq_obs::span("flow:dff-insert");
        insert_dffs(&mc, &schedule)
    };
    let timing = config.timing.enabled.then(|| {
        let _span = sfq_obs::span("flow:timing");
        analyze_mapped(&mc, &schedule).summary(&mc, &schedule, &plan)
    });
    let cell_area = mc.cell_area(lib);
    let area =
        cell_area + plan.total_dffs * lib.dff as u64 + plan.total_splitters * lib.splitter as u64;
    let stats = FlowStats {
        t1_found,
        t1_used: map_result.t1_used,
        dffs: plan.total_dffs,
        splitters: plan.total_splitters,
        cell_area,
        area,
        depth_cycles: schedule.depth_cycles(),
        gates: mc.gate_count(),
    };
    FlowResult {
        mapped: mc,
        schedule,
        plan,
        stats,
        pre_opt,
        timing,
    }
}

// Compile-time Send + Sync audit: `sfq-engine` moves jobs (AIG + library +
// config) into worker threads and shares `Arc<FlowResult>`s across them, so
// every type on that path must stay thread-safe. Adding an `Rc`/`RefCell`
// or a raw pointer to any of these breaks this constant, not the engine.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Aig>();
    assert_send_sync::<CellLibrary>();
    assert_send_sync::<FlowConfig>();
    assert_send_sync::<FlowStats>();
    assert_send_sync::<FlowResult>();
    assert_send_sync::<MappedCircuit>();
    assert_send_sync::<Schedule>();
    assert_send_sync::<DffPlan>();
    assert_send_sync::<TimingSummary>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use sfq_circuits::epfl::adder;

    #[test]
    fn three_flows_on_small_adder() {
        let lib = CellLibrary::default();
        let aig = adder(8);
        let f1 = run_flow(&aig, &lib, &FlowConfig::single_phase());
        let f4 = run_flow(&aig, &lib, &FlowConfig::multiphase(4));
        let ft = run_flow(&aig, &lib, &FlowConfig::t1(4));

        // Multiphase slashes DFFs relative to single phase (paper: ~0.18–0.5×).
        assert!(
            f4.stats.dffs * 2 < f1.stats.dffs,
            "4φ DFFs {} vs 1φ {}",
            f4.stats.dffs,
            f1.stats.dffs
        );
        // T1 flow finds and uses cells on an adder.
        assert!(ft.stats.t1_used >= 6, "t1 used {}", ft.stats.t1_used);
        // T1 area beats the 4φ baseline on adders (paper: 0.75×).
        assert!(
            ft.stats.area < f4.stats.area,
            "T1 area {} vs 4φ {}",
            ft.stats.area,
            f4.stats.area
        );
        // Depth in cycles: 4φ ≈ depth/4.
        assert!(f4.stats.depth_cycles <= f1.stats.depth_cycles / 3);
    }

    #[test]
    fn flows_preserve_function() {
        let lib = CellLibrary::default();
        let aig = adder(6);
        for cfg in [
            FlowConfig::single_phase(),
            FlowConfig::multiphase(4),
            FlowConfig::t1(4),
        ] {
            let res = run_flow(&aig, &lib, &cfg);
            let mut state = 0x9E3779B97F4A7C15u64;
            for _ in 0..4 {
                let inputs: Vec<u64> = (0..aig.pi_count())
                    .map(|_| {
                        state ^= state << 13;
                        state ^= state >> 7;
                        state ^= state << 17;
                        state
                    })
                    .collect();
                assert_eq!(aig.eval64(&inputs), res.mapped.eval64(&inputs));
            }
        }
    }

    #[test]
    fn exact_engine_on_tiny_circuit() {
        let lib = CellLibrary::default();
        let aig = adder(2);
        let mut cfg = FlowConfig::multiphase(2);
        cfg.engine = PhaseEngine::Exact;
        let exact = run_flow(&aig, &lib, &cfg);
        let heur = run_flow(&aig, &lib, &FlowConfig::multiphase(2));
        assert!(exact.stats.dffs <= heur.stats.dffs + 2);
    }

    #[test]
    fn pre_opt_stage_preserves_function_and_never_grows_the_mapping() {
        let lib = CellLibrary::default();
        let aig = adder(8);
        let plain = run_flow(&aig, &lib, &FlowConfig::t1(4));
        let pre = run_flow(
            &aig,
            &lib,
            &FlowConfig::t1(4).to_builder().standard_opt().build(),
        );
        // The mapped result of the optimized network still computes the
        // subject functions.
        let mut state = 0xA5A5_F00D_1234_5678u64;
        for _ in 0..4 {
            let inputs: Vec<u64> = (0..aig.pi_count())
                .map(|_| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state
                })
                .collect();
            assert_eq!(aig.eval64(&inputs), pre.mapped.eval64(&inputs));
        }
        // The guard bounds the AIG handed to the mapper, not the mapped
        // gate count (a heuristic cover of a smaller AIG may legally use
        // more gates), so only sanity-check that both flows produced a
        // real mapping.
        assert!(pre.stats.gates > 0 && plain.stats.gates > 0);
        assert!(
            sfq_opt::optimize(
                &aig,
                &FlowConfig::t1(4)
                    .to_builder()
                    .standard_opt()
                    .build()
                    .pre_opt
            )
            .0
            .and_count()
                <= aig.and_count(),
            "the pre-opt stage itself never grows the AIG"
        );
    }

    #[test]
    fn dff_opt_stage_preserves_function_and_rekeys() {
        use sfq_netlist::fnv::Fnv1a;
        use std::hash::Hasher;
        let lib = CellLibrary::default();
        let aig = adder(8);
        let res = run_flow(
            &aig,
            &lib,
            &FlowConfig::t1(4).to_builder().dff_opt().build(),
        );
        let mut state = 0x0DFF_0DFF_0DFF_0DFFu64 | 1;
        for _ in 0..4 {
            let inputs: Vec<u64> = (0..aig.pi_count())
                .map(|_| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state
                })
                .collect();
            assert_eq!(aig.eval64(&inputs), res.mapped.eval64(&inputs));
        }
        // The stage rides the phase count of its flow and re-keys the
        // engine cache relative to every other pre-opt flavor.
        let fp = |cfg: &FlowConfig| {
            let mut h = Fnv1a::new();
            cfg.fingerprint(&mut h);
            h.finish()
        };
        let plain = FlowConfig::t1(4);
        assert_ne!(
            fp(&plain),
            fp(&plain.clone().to_builder().dff_opt().build())
        );
        assert_ne!(
            fp(&plain.clone().to_builder().slack_opt().build()),
            fp(&plain.clone().to_builder().dff_opt().build())
        );
        // Same flow phase count, different pricing phase count: only the
        // pre-opt stage encoding separates these two, so this pins the
        // RewriteDff parameter actually reaching the fingerprint.
        let mut price4 = FlowConfig::t1(4);
        price4.pre_opt = sfq_opt::OptConfig::dff_aware(4);
        let mut price8 = FlowConfig::t1(4);
        price8.pre_opt = sfq_opt::OptConfig::dff_aware(8);
        assert_ne!(fp(&price4), fp(&price8), "the pricing phase count must key");
    }

    #[test]
    fn timing_stage_attaches_a_summary() {
        let lib = CellLibrary::default();
        let aig = adder(6);
        let plain = run_flow(&aig, &lib, &FlowConfig::t1(4));
        assert!(plain.timing.is_none(), "disabled stage reports nothing");
        let timed = run_flow(
            &aig,
            &lib,
            &FlowConfig::t1(4).to_builder().timing(true).build(),
        );
        let summary = timed.timing.expect("enabled stage attaches a summary");
        assert_eq!(summary.horizon, timed.schedule.horizon);
        assert_eq!(summary.chained_dffs, timed.stats.dffs);
        assert_eq!(summary.worst_slack, 0);
        assert!(summary.zero_slack_cells > 0);
        // The stage is pure analysis: mapping results are untouched.
        assert_eq!(plain.stats, timed.stats);
    }

    #[test]
    fn builder_reproduces_preset_fingerprints() {
        use sfq_netlist::fnv::Fnv1a;
        use std::hash::Hasher;
        let fp = |cfg: &FlowConfig| {
            let mut h = Fnv1a::new();
            cfg.fingerprint(&mut h);
            h.finish()
        };
        // The builder is a pure re-spelling: it must hit the exact content
        // addresses the presets produce, or every persisted store entry
        // written before this API existed would silently invalidate.
        assert_eq!(
            fp(&FlowConfig::builder(1).build()),
            fp(&FlowConfig::single_phase())
        );
        assert_eq!(
            fp(&FlowConfig::builder(4).build()),
            fp(&FlowConfig::multiphase(4))
        );
        assert_eq!(
            fp(&FlowConfig::builder(4).t1(true).build()),
            fp(&FlowConfig::t1(4))
        );
        // dff_opt prices at the builder's phase count, not a global default.
        let priced = FlowConfig::builder(6).t1(true).dff_opt().build();
        assert_eq!(priced.pre_opt, OptConfig::dff_aware(6));
        // Stages toggle off again, landing back on the preset address.
        let toggled = FlowConfig::builder(4).timing(true).timing(false).build();
        assert_eq!(fp(&toggled), fp(&FlowConfig::multiphase(4)));
        // Exact-engine selection flows through the builder.
        let exact = FlowConfig::builder(2).engine(PhaseEngine::Exact).build();
        assert_eq!(exact.engine, PhaseEngine::Exact);
    }

    #[test]
    fn stats_are_consistent() {
        let lib = CellLibrary::default();
        let aig = adder(5);
        let res = run_flow(&aig, &lib, &FlowConfig::t1(4));
        assert_eq!(
            res.stats.area,
            res.stats.cell_area
                + res.stats.dffs * lib.dff as u64
                + res.stats.splitters * lib.splitter as u64
        );
        assert_eq!(res.stats.dffs, res.plan.total_dffs);
        res.schedule.validate(&res.mapped).unwrap();
    }
}
