//! Technology-mapped SFQ netlists.
//!
//! A [`MappedCircuit`] is the output of the mapping stage: a DAG of clocked
//! SFQ cells — 1/2-input gates and multi-output T1 cells — prior to phase
//! assignment and DFF insertion. Cells are stored in topological order
//! (builders may only reference already-created cells), which every later
//! stage of the flow relies on.
//!
//! Input-port polarities live on [`Edge`]s and are absorbed by the consuming
//! cell variant (see `cells` module); T1 fanins are always positive —
//! negated T1 operands get explicit NOT gates during mapping, since a
//! pulse-absence cannot toggle the T input.

use crate::cells::CellLibrary;
use sfq_netlist::truth_table::TruthTable;
use std::fmt;

/// Identifier of a cell inside a [`MappedCircuit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId(pub u32);

impl CellId {
    /// Index into cell vectors.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// T1 output ports.
pub const T1_PORT_SUM: u8 = 0;
/// T1 carry port (MAJ3).
pub const T1_PORT_CARRY: u8 = 1;
/// T1 or port (OR3).
pub const T1_PORT_OR: u8 = 2;

/// A connection from an output port of a producing cell, with consumer-side
/// inversion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    /// Producing cell.
    pub cell: CellId,
    /// Output port (0 for everything except T1: 0 = S, 1 = C, 2 = Q).
    pub port: u8,
    /// Whether the consumer reads the complement.
    pub invert: bool,
}

impl Edge {
    /// Plain non-inverted edge from port 0.
    pub fn plain(cell: CellId) -> Self {
        Edge {
            cell,
            port: 0,
            invert: false,
        }
    }

    /// The same edge with inversion toggled by `flip`.
    pub fn xor_invert(self, flip: bool) -> Self {
        Edge {
            invert: self.invert ^ flip,
            ..self
        }
    }
}

/// A mapped cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MappedCell {
    /// Primary input (released at stage 0, phase 0).
    Input {
        /// Input ordinal.
        index: u32,
    },
    /// Constant-false driver.
    Const0,
    /// Clocked combinational cell computing `tt` over its fanins.
    Gate {
        /// Function over the fanin slots (after per-edge inversion).
        tt: TruthTable,
        /// Fanin edges (slot `i` is variable `i` of `tt`).
        fanins: Vec<Edge>,
    },
    /// T1 cell; fanins are merged into the `T` input, the clock acts as `R`.
    T1 {
        /// The three operand edges (always `invert == false`).
        fanins: [Edge; 3],
    },
}

/// A technology-mapped netlist.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MappedCircuit {
    cells: Vec<MappedCell>,
    pos: Vec<Edge>,
    num_inputs: usize,
}

impl MappedCircuit {
    /// Creates an empty netlist.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a primary input cell.
    pub fn add_input(&mut self) -> CellId {
        let id = CellId(self.cells.len() as u32);
        self.cells.push(MappedCell::Input {
            index: self.num_inputs as u32,
        });
        self.num_inputs += 1;
        id
    }

    /// Adds a constant-false cell.
    pub fn add_const0(&mut self) -> CellId {
        let id = CellId(self.cells.len() as u32);
        self.cells.push(MappedCell::Const0);
        id
    }

    /// Adds a clocked gate.
    ///
    /// # Panics
    ///
    /// Panics if `tt.num_vars() != fanins.len()`, if any fanin references a
    /// not-yet-created cell (topological order violation), or if a fanin
    /// references a non-existent T1 port.
    pub fn add_gate(&mut self, tt: TruthTable, fanins: Vec<Edge>) -> CellId {
        assert_eq!(tt.num_vars(), fanins.len(), "gate arity mismatch");
        for e in &fanins {
            self.check_edge(e);
        }
        let id = CellId(self.cells.len() as u32);
        self.cells.push(MappedCell::Gate { tt, fanins });
        id
    }

    /// Adds a T1 cell over three positive operand edges.
    ///
    /// # Panics
    ///
    /// Panics on topological-order violations or if any edge is inverted
    /// (negated operands need explicit NOT gates).
    pub fn add_t1(&mut self, fanins: [Edge; 3]) -> CellId {
        for e in &fanins {
            self.check_edge(e);
            assert!(!e.invert, "T1 operands must be positive; insert a NOT gate");
        }
        let id = CellId(self.cells.len() as u32);
        self.cells.push(MappedCell::T1 { fanins });
        id
    }

    /// Registers a primary output.
    ///
    /// # Panics
    ///
    /// Panics if the edge is invalid.
    pub fn add_po(&mut self, edge: Edge) {
        self.check_edge(&edge);
        self.pos.push(edge);
    }

    fn check_edge(&self, e: &Edge) {
        assert!(
            (e.cell.index()) < self.cells.len(),
            "edge references cell {} before creation",
            e.cell.0
        );
        let ports = self.num_ports(e.cell);
        assert!((e.port as usize) < ports, "port {} out of range", e.port);
    }

    /// Number of output ports of `cell` (3 for T1, 1 otherwise).
    pub fn num_ports(&self, cell: CellId) -> usize {
        match self.cells[cell.index()] {
            MappedCell::T1 { .. } => 3,
            _ => 1,
        }
    }

    /// The cell payload.
    pub fn cell(&self, id: CellId) -> &MappedCell {
        &self.cells[id.index()]
    }

    /// All cells in topological order.
    pub fn cells(&self) -> impl Iterator<Item = (CellId, &MappedCell)> {
        self.cells
            .iter()
            .enumerate()
            .map(|(i, c)| (CellId(i as u32), c))
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Returns `true` if the netlist is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Primary output edges.
    pub fn pos(&self) -> &[Edge] {
        &self.pos
    }

    /// Fanin edges of a cell.
    pub fn fanins(&self, id: CellId) -> Vec<Edge> {
        match &self.cells[id.index()] {
            MappedCell::Input { .. } | MappedCell::Const0 => vec![],
            MappedCell::Gate { fanins, .. } => fanins.clone(),
            MappedCell::T1 { fanins } => fanins.to_vec(),
        }
    }

    /// Number of logic gates (excluding inputs/constants/T1).
    pub fn gate_count(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| matches!(c, MappedCell::Gate { .. }))
            .count()
    }

    /// Number of T1 cells.
    pub fn t1_count(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| matches!(c, MappedCell::T1 { .. }))
            .count()
    }

    /// Total cell area in JJs (gates + T1 assemblies; no DFFs/splitters,
    /// which are accounted by the DFF-insertion plan).
    pub fn cell_area(&self, lib: &CellLibrary) -> u64 {
        self.cells
            .iter()
            .map(|c| match c {
                MappedCell::Input { .. } | MappedCell::Const0 => 0u64,
                MappedCell::Gate { tt, .. } => lib.gate_cost(*tt) as u64,
                MappedCell::T1 { .. } => lib.t1_assembly() as u64,
            })
            .sum()
    }

    /// Evaluates all primary outputs on 64 packed input vectors
    /// (combinational semantics, ignoring timing).
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != num_inputs()`.
    pub fn eval64(&self, inputs: &[u64]) -> Vec<u64> {
        assert_eq!(inputs.len(), self.num_inputs, "one word per input required");
        // Values per (cell, port): T1 uses 3 slots.
        let mut values: Vec<[u64; 3]> = vec![[0; 3]; self.cells.len()];
        let read = |values: &[[u64; 3]], e: &Edge| -> u64 {
            let v = values[e.cell.index()][e.port as usize];
            if e.invert {
                !v
            } else {
                v
            }
        };
        for (i, c) in self.cells.iter().enumerate() {
            match c {
                MappedCell::Input { index } => values[i][0] = inputs[*index as usize],
                MappedCell::Const0 => values[i][0] = 0,
                MappedCell::Gate { tt, fanins } => {
                    let mut out = 0u64;
                    for bit in 0..64 {
                        let mut idx = 0usize;
                        for (s, e) in fanins.iter().enumerate() {
                            if (read(&values, e) >> bit) & 1 == 1 {
                                idx |= 1 << s;
                            }
                        }
                        if tt.get(idx) {
                            out |= 1 << bit;
                        }
                    }
                    values[i][0] = out;
                }
                MappedCell::T1 { fanins } => {
                    let a = read(&values, &fanins[0]);
                    let b = read(&values, &fanins[1]);
                    let c3 = read(&values, &fanins[2]);
                    values[i][T1_PORT_SUM as usize] = a ^ b ^ c3;
                    values[i][T1_PORT_CARRY as usize] = (a & b) | (a & c3) | (b & c3);
                    values[i][T1_PORT_OR as usize] = a | b | c3;
                }
            }
        }
        self.pos.iter().map(|e| read(&values, e)).collect()
    }

    /// Evaluates on a single Boolean assignment.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != num_inputs()`.
    pub fn eval(&self, inputs: &[bool]) -> Vec<bool> {
        let words: Vec<u64> = inputs
            .iter()
            .map(|&b| if b { u64::MAX } else { 0 })
            .collect();
        self.eval64(&words)
            .into_iter()
            .map(|w| w & 1 == 1)
            .collect()
    }
}

impl fmt::Display for MappedCircuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MappedCircuit: {} inputs, {} gates, {} T1 cells, {} outputs",
            self.num_inputs,
            self.gate_count(),
            self.t1_count(),
            self.pos.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn and2() -> TruthTable {
        TruthTable::var(2, 0) & TruthTable::var(2, 1)
    }

    #[test]
    fn build_and_eval_gate() {
        let mut m = MappedCircuit::new();
        let a = m.add_input();
        let b = m.add_input();
        let g = m.add_gate(and2(), vec![Edge::plain(a), Edge::plain(b)]);
        m.add_po(Edge::plain(g));
        assert_eq!(m.eval(&[true, true]), vec![true]);
        assert_eq!(m.eval(&[true, false]), vec![false]);
    }

    #[test]
    fn inverted_edges() {
        let mut m = MappedCircuit::new();
        let a = m.add_input();
        let b = m.add_input();
        let g = m.add_gate(
            and2(),
            vec![
                Edge::plain(a),
                Edge {
                    cell: b,
                    port: 0,
                    invert: true,
                },
            ],
        );
        m.add_po(Edge {
            cell: g,
            port: 0,
            invert: true,
        });
        // !(a & !b)
        assert_eq!(m.eval(&[true, false]), vec![false]);
        assert_eq!(m.eval(&[true, true]), vec![true]);
    }

    #[test]
    fn t1_ports_compute_fa() {
        let mut m = MappedCircuit::new();
        let a = m.add_input();
        let b = m.add_input();
        let c = m.add_input();
        let t1 = m.add_t1([Edge::plain(a), Edge::plain(b), Edge::plain(c)]);
        m.add_po(Edge {
            cell: t1,
            port: T1_PORT_SUM,
            invert: false,
        });
        m.add_po(Edge {
            cell: t1,
            port: T1_PORT_CARRY,
            invert: false,
        });
        m.add_po(Edge {
            cell: t1,
            port: T1_PORT_OR,
            invert: false,
        });
        for i in 0..8u32 {
            let bits = [i & 1 == 1, i >> 1 & 1 == 1, i >> 2 & 1 == 1];
            let out = m.eval(&bits);
            let ones = i.count_ones();
            assert_eq!(out[0], ones % 2 == 1, "sum at {i}");
            assert_eq!(out[1], ones >= 2, "carry at {i}");
            assert_eq!(out[2], ones >= 1, "or at {i}");
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn t1_rejects_inverted_operand() {
        let mut m = MappedCircuit::new();
        let a = m.add_input();
        let b = m.add_input();
        let c = m.add_input();
        m.add_t1([
            Edge {
                cell: a,
                port: 0,
                invert: true,
            },
            Edge::plain(b),
            Edge::plain(c),
        ]);
    }

    #[test]
    #[should_panic(expected = "before creation")]
    fn forward_reference_rejected() {
        let mut m = MappedCircuit::new();
        let a = m.add_input();
        m.add_gate(and2(), vec![Edge::plain(a), Edge::plain(CellId(99))]);
    }

    #[test]
    fn area_accounting() {
        let lib = CellLibrary::default();
        let mut m = MappedCircuit::new();
        let a = m.add_input();
        let b = m.add_input();
        let c = m.add_input();
        let g = m.add_gate(and2(), vec![Edge::plain(a), Edge::plain(b)]);
        let t1 = m.add_t1([Edge::plain(a), Edge::plain(b), Edge::plain(c)]);
        m.add_po(Edge::plain(g));
        m.add_po(Edge {
            cell: t1,
            port: 0,
            invert: false,
        });
        assert_eq!(m.cell_area(&lib), (lib.and2 + lib.t1_assembly()) as u64);
        assert_eq!(m.gate_count(), 1);
        assert_eq!(m.t1_count(), 1);
    }

    #[test]
    fn const0_evaluates_false() {
        let mut m = MappedCircuit::new();
        let k = m.add_const0();
        m.add_po(Edge::plain(k));
        m.add_po(Edge {
            cell: k,
            port: 0,
            invert: true,
        });
        assert_eq!(m.eval(&[]), vec![false, true]);
    }
}
