//! Path-balancing DFF insertion with fanout sharing (§II-C of the paper).
//!
//! Under `n`-phase clocking, a datum produced at stage `s` must be re-latched
//! at least every `n` stages, and a consumer clocked at stage `t` must
//! capture from an element at a stage in the window `[t − n, t − 1]`. All
//! fanouts of one driver share a single DFF chain; consumers tap the chain
//! at a suitable element.
//!
//! Two requirement kinds exist:
//!
//! - **Window(t)** — an ordinary clocked consumer at stage `t`: any tap in
//!   `[t − n, t − 1]` works.
//! - **Exact(τ)** — a T1 operand (eq. 5: the three deliveries must sit at
//!   *pairwise distinct* stages `σ_T1 − 3, σ_T1 − 2, σ_T1 − 1`) or a primary
//!   output (all outputs equalized to the horizon stage): the delivering
//!   element must sit exactly at `τ`.
//!
//! The chain builder places members greedily, which is *optimal* for a fixed
//! stage assignment: every exact stage is forced, and between forced points
//! the gap constraint admits at most `⌈gap/n⌉ − 1` free members, which the
//! greedy `+n` stepping achieves; window extension beyond the last forced
//! point likewise adds the provably minimal `⌊(t − p − 1)/n⌋` members.

use crate::mapped::{CellId, MappedCell, MappedCircuit};
use crate::phase::Schedule;
use std::collections::BTreeSet;
use std::collections::HashMap;

/// A delivery requirement placed on a driver's DFF chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Requirement {
    /// Consumer clocked at the given stage; tap within `[t − n, t − 1]`.
    Window(i64),
    /// Delivering element must sit exactly at the given stage.
    Exact(i64),
}

/// Who a requirement belongs to (used to rebuild the netlist for simulation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Consumer {
    /// Fanin slot of an ordinary gate.
    GateInput {
        /// Consuming cell.
        cell: CellId,
        /// Fanin slot.
        slot: usize,
    },
    /// Operand slot of a T1 cell.
    T1Input {
        /// Consuming T1 cell.
        cell: CellId,
        /// Operand slot.
        slot: usize,
    },
    /// Primary output.
    Output {
        /// Output index.
        index: usize,
    },
}

/// A shared DFF chain for one driver.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Chain {
    /// Stages of the chain DFFs, ascending (the driver itself is not listed).
    pub members: Vec<i64>,
    /// For each requirement (in input order): the stage of the serving
    /// element (`source` stage means the driver serves directly).
    pub taps: Vec<i64>,
}

impl Chain {
    /// Number of DFFs in the chain.
    pub fn dff_count(&self) -> usize {
        self.members.len()
    }

    /// Number of splitters needed: each element (driver or DFF) with
    /// fanout `f > 1` needs `f − 1` splitters.
    pub fn splitter_count(&self, source: i64) -> u64 {
        let mut fanout: HashMap<i64, u64> = HashMap::new();
        for &t in &self.taps {
            *fanout.entry(t).or_insert(0) += 1;
        }
        // Chain succession: source → members[0] → members[1] → …
        if !self.members.is_empty() {
            *fanout.entry(source).or_insert(0) += 1;
            for w in self.members.windows(2) {
                *fanout.entry(w[0]).or_insert(0) += 1;
            }
        }
        fanout.values().map(|&f| f.saturating_sub(1)).sum()
    }
}

/// Builds the minimal shared chain for one driver.
///
/// # Panics
///
/// Panics if a requirement is infeasible for the given source stage:
/// `Exact(τ)` with `τ < source`, or `Window(t)` with `t <= source`.
pub fn build_chain(source: i64, reqs: &[Requirement], n: i64) -> Chain {
    assert!(n >= 1, "need at least one phase");
    let mut members: BTreeSet<i64> = BTreeSet::new();
    for r in reqs {
        match *r {
            Requirement::Exact(tau) => {
                assert!(
                    tau >= source,
                    "exact delivery at {tau} before source {source}"
                );
                if tau > source {
                    members.insert(tau);
                }
            }
            Requirement::Window(t) => {
                assert!(t > source, "consumer at {t} not after source {source}");
            }
        }
    }
    // Fill gaps so consecutive elements are at most n apart.
    let mut filled: BTreeSet<i64> = BTreeSet::new();
    let mut prev = source;
    for &m in &members {
        let mut p = prev;
        while m - p > n {
            p += n;
            filled.insert(p);
        }
        filled.insert(m);
        prev = m;
    }
    let mut members = filled;
    // Extend for window consumers beyond the current chain end.
    let mut windows: Vec<i64> = reqs
        .iter()
        .filter_map(|r| match *r {
            Requirement::Window(t) => Some(t),
            Requirement::Exact(_) => None,
        })
        .collect();
    windows.sort_unstable();
    for &t in &windows {
        let mut p = members
            .range(..=t - 1)
            .next_back()
            .copied()
            .unwrap_or(source);
        while p < t - n {
            p += n;
            members.insert(p);
        }
    }
    // Assign taps.
    let member_vec: Vec<i64> = members.iter().copied().collect();
    let taps: Vec<i64> = reqs
        .iter()
        .map(|r| match *r {
            Requirement::Exact(tau) => tau,
            Requirement::Window(t) => {
                let p = members
                    .range(..=t - 1)
                    .next_back()
                    .copied()
                    .unwrap_or(source);
                debug_assert!(p >= t - n, "window consumer unserved");
                p
            }
        })
        .collect();
    Chain {
        members: member_vec,
        taps,
    }
}

/// The DFF chain of one driver, with its consumers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DriverPlan {
    /// Driving cell and output port.
    pub source: (CellId, u8),
    /// Stage of the driver.
    pub source_stage: i64,
    /// The shared chain.
    pub chain: Chain,
    /// Consumers in the same order as `chain.taps`.
    pub consumers: Vec<(Consumer, Requirement)>,
}

/// Complete DFF-insertion plan for a scheduled netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DffPlan {
    /// Per-driver chains (only drivers with at least one consumer).
    pub drivers: Vec<DriverPlan>,
    /// Total path-balancing DFFs.
    pub total_dffs: u64,
    /// Total splitters.
    pub total_splitters: u64,
}

impl DffPlan {
    /// Looks up the plan for a given driver.
    pub fn driver(&self, source: (CellId, u8)) -> Option<&DriverPlan> {
        self.drivers.iter().find(|d| d.source == source)
    }
}

/// Collects the consumer requirements of every driver under `sched`.
pub fn collect_requirements(
    mc: &MappedCircuit,
    sched: &Schedule,
) -> HashMap<(CellId, u8), Vec<(Consumer, Requirement)>> {
    let mut map: HashMap<(CellId, u8), Vec<(Consumer, Requirement)>> = HashMap::new();
    for (id, cell) in mc.cells() {
        match cell {
            MappedCell::Input { .. } | MappedCell::Const0 => {}
            MappedCell::Gate { fanins, .. } => {
                for (slot, e) in fanins.iter().enumerate() {
                    map.entry((e.cell, e.port)).or_default().push((
                        Consumer::GateInput { cell: id, slot },
                        Requirement::Window(sched.stages[id.index()]),
                    ));
                }
            }
            MappedCell::T1 { fanins } => {
                let offsets = sched.t1_offsets[id.index()].expect("T1 cell has offsets");
                for (slot, e) in fanins.iter().enumerate() {
                    let tau = sched.stages[id.index()] - offsets[slot];
                    map.entry((e.cell, e.port)).or_default().push((
                        Consumer::T1Input { cell: id, slot },
                        Requirement::Exact(tau),
                    ));
                }
            }
        }
    }
    for (index, e) in mc.pos().iter().enumerate() {
        // Constant outputs need no balancing.
        if matches!(mc.cell(e.cell), MappedCell::Const0) {
            continue;
        }
        // Outputs are captured by the environment at stage horizon + 1:
        // every PO must deliver within that capture window (same epoch),
        // i.e. latency-equalized to the cycle granularity.
        map.entry((e.cell, e.port)).or_default().push((
            Consumer::Output { index },
            Requirement::Window(sched.horizon + 1),
        ));
    }
    map
}

/// Inserts shared DFF chains for every driver of the scheduled netlist.
pub fn insert_dffs(mc: &MappedCircuit, sched: &Schedule) -> DffPlan {
    let reqs = collect_requirements(mc, sched);
    let n = sched.n as i64;
    let mut drivers = Vec::with_capacity(reqs.len());
    let mut total_dffs = 0u64;
    let mut total_splitters = 0u64;
    let mut sorted: Vec<_> = reqs.into_iter().collect();
    sorted.sort_by_key(|((c, p), _)| (*c, *p));
    for ((cell, port), consumers) in sorted {
        let source_stage = sched.stages[cell.index()];
        let rs: Vec<Requirement> = consumers.iter().map(|&(_, r)| r).collect();
        let chain = build_chain(source_stage, &rs, n);
        total_dffs += chain.dff_count() as u64;
        total_splitters += chain.splitter_count(source_stage);
        drivers.push(DriverPlan {
            source: (cell, port),
            source_stage,
            chain,
            consumers,
        });
    }
    DffPlan {
        drivers,
        total_dffs,
        total_splitters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_phase_full_balancing() {
        // Source at 0, consumer window at stage 5, n = 1: 4 DFFs at 1..4.
        let c = build_chain(0, &[Requirement::Window(5)], 1);
        assert_eq!(c.members, vec![1, 2, 3, 4]);
        assert_eq!(c.taps, vec![4]);
    }

    #[test]
    fn four_phase_reduces_dffs() {
        // Same span under n = 4: data survives 4 stages → 1 DFF.
        let c = build_chain(0, &[Requirement::Window(5)], 4);
        assert_eq!(c.members, vec![4]);
        assert_eq!(c.taps, vec![4]);
    }

    #[test]
    fn adjacent_consumer_needs_nothing() {
        let c = build_chain(3, &[Requirement::Window(4)], 1);
        assert!(c.members.is_empty());
        assert_eq!(c.taps, vec![3]);
    }

    #[test]
    fn shared_chain_is_max_not_sum() {
        // Consumers at 3, 5, 9 under n = 1: one chain of 8 DFFs serves all.
        let c = build_chain(
            0,
            &[
                Requirement::Window(3),
                Requirement::Window(5),
                Requirement::Window(9),
            ],
            1,
        );
        assert_eq!(c.dff_count(), 8);
        assert_eq!(c.taps, vec![2, 4, 8]);
    }

    #[test]
    fn window_taps_latest_feasible() {
        let c = build_chain(0, &[Requirement::Window(10), Requirement::Window(6)], 4);
        // Chain: 4, 8 (gap-filled by extension); consumer 6 taps 4, 10 taps 8.
        assert_eq!(c.members, vec![4, 8]);
        assert_eq!(c.taps, vec![8, 4]);
    }

    #[test]
    fn exact_requirements_are_members() {
        let c = build_chain(
            2,
            &[
                Requirement::Exact(7),
                Requirement::Exact(6),
                Requirement::Exact(5),
            ],
            4,
        );
        assert_eq!(c.members, vec![5, 6, 7]);
        assert_eq!(c.taps, vec![7, 6, 5]);
    }

    #[test]
    fn exact_at_source_taps_driver() {
        let c = build_chain(4, &[Requirement::Exact(4)], 4);
        assert!(c.members.is_empty());
        assert_eq!(c.taps, vec![4]);
    }

    #[test]
    fn gap_filling_between_exacts() {
        // Source 0, exact at 9, n = 4 → fill 4, 8, then 9.
        let c = build_chain(0, &[Requirement::Exact(9)], 4);
        assert_eq!(c.members, vec![4, 8, 9]);
    }

    #[test]
    fn count_matches_closed_form_for_single_window() {
        for n in 1..=6i64 {
            for t in 1..=20i64 {
                let c = build_chain(0, &[Requirement::Window(t)], n);
                let expect = ((t - 1).max(0)) / n; // floor((t − s − 1)/n)
                assert_eq!(c.dff_count() as i64, expect, "t={t} n={n}");
            }
        }
    }

    #[test]
    fn splitter_counting() {
        // Source drives chain + a direct tap → 1 splitter at the source.
        let c = build_chain(0, &[Requirement::Window(1), Requirement::Window(5)], 1);
        // Members 1..4; taps: 0 (direct) and 4.
        assert_eq!(c.taps, vec![0, 4]);
        // Source fanout: chain successor + direct tap = 2 → 1 splitter.
        // Member 4 is the last and taps one consumer → fanout 1 → 0.
        // Members 1..3 drive only successors → 0.
        assert_eq!(c.splitter_count(0), 1);
    }

    #[test]
    #[should_panic(expected = "before source")]
    fn infeasible_exact_panics() {
        build_chain(5, &[Requirement::Exact(3)], 2);
    }

    #[test]
    fn mixed_exact_and_window() {
        // T1 deliveries at 5,6,7 plus a window consumer at 12, n = 4.
        let c = build_chain(
            1,
            &[
                Requirement::Exact(5),
                Requirement::Exact(6),
                Requirement::Exact(7),
                Requirement::Window(12),
            ],
            4,
        );
        // 5,6,7 forced; window 12 needs an element ≥ 8: extend with 11.
        assert_eq!(c.members, vec![5, 6, 7, 11]);
        assert_eq!(c.taps, vec![5, 6, 7, 11]);
    }
}
