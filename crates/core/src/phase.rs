//! Multiphase stage/phase assignment (§II-B of the paper).
//!
//! Every clocked element `g` receives a stage `σ(g) = n·S(g) + φ(g)`
//! (eq. 1). Ordinary gates need `σ(j) ≥ σ(i) + 1` for every fanin `i`; a
//! T1 cell needs its three operands *delivered* at the distinct stages
//! `σ_T1 − 3, σ_T1 − 2, σ_T1 − 1`, which is feasible iff eq. (3) holds:
//!
//! ```text
//! σ(j) ≥ max(σ(i1) + 3, σ(i2) + 2, σ(i3) + 1),   σ(i1) ≤ σ(i2) ≤ σ(i3).
//! ```
//!
//! The offsets are frozen at ASAP time into *delivery slots* per operand; a
//! schedule is valid as long as each operand's stage stays at or below its
//! slot, which keeps the staggering constraint linear for both the local
//! search and the exact ILP.
//!
//! Two engines are provided, mirroring the paper's setup (ILP via OR-Tools
//! there, our own MILP here — DESIGN.md §2):
//!
//! - [`assign_phases`] — ASAP schedule + DFF-aware local search
//!   (scales to the Table-I benchmarks),
//! - [`assign_phases_exact`] — the ILP of §II-B with the per-edge DFF-count
//!   linearization `n·d ≥ σ(j) − σ(i) − n` (exact, for small instances and
//!   cross-validation).

use crate::dff::{build_chain, Requirement};
use crate::mapped::{CellId, MappedCell, MappedCircuit};
use sfq_solver::linear::{LinExpr, Sense};
use sfq_solver::milp::{MilpError, MilpProblem};
use std::collections::HashMap;

/// A stage assignment for a mapped netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Number of clock phases.
    pub n: u32,
    /// Stage per cell (inputs and constants at 0).
    pub stages: Vec<i64>,
    /// Delivery target for primary outputs (the maximum PO driver stage).
    pub horizon: i64,
    /// For T1 cells: the frozen delivery offset of each operand slot
    /// (delivery at `σ(T1) − offset`); `None` for other cells.
    pub t1_offsets: Vec<Option<[i64; 3]>>,
}

impl Schedule {
    /// Logic depth in clock cycles: `⌈horizon / n⌉`.
    pub fn depth_cycles(&self) -> i64 {
        self.horizon.div_euclid(self.n as i64)
            + i64::from(self.horizon.rem_euclid(self.n as i64) != 0)
    }

    /// Checks all scheduling constraints; returns a description of the first
    /// violation.
    pub fn validate(&self, mc: &MappedCircuit) -> Result<(), String> {
        for (id, cell) in mc.cells() {
            let s = self.stages[id.index()];
            match cell {
                MappedCell::Input { .. } | MappedCell::Const0 => {
                    if s != 0 {
                        return Err(format!("source cell {} not at stage 0", id.0));
                    }
                }
                MappedCell::Gate { fanins, .. } => {
                    for e in fanins {
                        if self.stages[e.cell.index()] >= s {
                            return Err(format!("gate {} not after fanin {}", id.0, e.cell.0));
                        }
                    }
                }
                MappedCell::T1 { fanins } => {
                    let offsets = self.t1_offsets[id.index()]
                        .ok_or_else(|| format!("T1 {} lacks offsets", id.0))?;
                    for (k, e) in fanins.iter().enumerate() {
                        let o = offsets[k];
                        if !(1..=self.n as i64).contains(&o) {
                            return Err(format!("T1 {} offset {o} out of range", id.0));
                        }
                        if offsets.iter().filter(|&&x| x == o).count() > 1 {
                            return Err(format!("T1 {} duplicate offset {o}", id.0));
                        }
                        if self.stages[e.cell.index()] > s - o {
                            return Err(format!(
                                "T1 {} operand {k} (stage {}) misses slot {}",
                                id.0,
                                self.stages[e.cell.index()],
                                s - o
                            ));
                        }
                    }
                }
            }
        }
        for e in mc.pos() {
            if !matches!(mc.cell(e.cell), MappedCell::Const0)
                && self.stages[e.cell.index()] > self.horizon
            {
                return Err(format!("PO driver {} beyond horizon", e.cell.0));
            }
        }
        Ok(())
    }
}

/// Computes the ASAP schedule with frozen T1 delivery offsets.
fn asap(mc: &MappedCircuit, n: u32) -> Schedule {
    let mut stages = vec![0i64; mc.len()];
    let mut t1_offsets = vec![None; mc.len()];
    for (id, cell) in mc.cells() {
        match cell {
            MappedCell::Input { .. } | MappedCell::Const0 => {}
            MappedCell::Gate { fanins, .. } => {
                let lo = fanins
                    .iter()
                    .map(|e| stages[e.cell.index()])
                    .max()
                    .unwrap_or(0);
                stages[id.index()] = lo + 1;
            }
            MappedCell::T1 { fanins } => {
                // Choose three *distinct* delivery offsets in 1..=n (eq. 5
                // generalized to the full capture window), minimizing first
                // the T1 stage (eq. 3) and then the DFFs needed to reach the
                // slots. With n ≤ 4 the brute-force assignment is tiny.
                let srcs = [
                    stages[fanins[0].cell.index()],
                    stages[fanins[1].cell.index()],
                    stages[fanins[2].cell.index()],
                ];
                let (sigma, offsets) = best_t1_slots(&srcs, n as i64);
                stages[id.index()] = sigma;
                t1_offsets[id.index()] = Some(offsets);
            }
        }
    }
    let horizon = mc
        .pos()
        .iter()
        .filter(|e| !matches!(mc.cell(e.cell), MappedCell::Const0))
        .map(|e| stages[e.cell.index()])
        .max()
        .unwrap_or(0);
    Schedule {
        n,
        stages,
        horizon,
        t1_offsets,
    }
}

/// Chooses distinct delivery offsets (in `1..=n`) for a T1's three operands
/// given their source stages: minimal feasible σ first (eq. 3), then minimal
/// chain DFFs `Σ ⌈(σ − oₖ − srcₖ)/n⌉` as a tiebreak.
fn best_t1_slots(srcs: &[i64; 3], n: i64) -> (i64, [i64; 3]) {
    let n = n.max(3);
    let ceil_div = |a: i64, b: i64| if a <= 0 { 0 } else { (a + b - 1) / b };
    let mut best: Option<(i64, i64, [i64; 3])> = None;
    let mut offs = [0i64; 3];
    for o0 in 1..=n {
        for o1 in 1..=n {
            if o1 == o0 {
                continue;
            }
            for o2 in 1..=n {
                if o2 == o0 || o2 == o1 {
                    continue;
                }
                offs[0] = o0;
                offs[1] = o1;
                offs[2] = o2;
                let sigma = (0..3).map(|k| srcs[k] + offs[k]).max().unwrap();
                let cost: i64 = (0..3).map(|k| ceil_div(sigma - offs[k] - srcs[k], n)).sum();
                if best.is_none_or(|(s, c, _)| (sigma, cost) < (s, c)) {
                    best = Some((sigma, cost, offs));
                }
            }
        }
    }
    let (sigma, _, offsets) = best.expect("n >= 3 always admits an assignment");
    (sigma, offsets)
}

/// Cost model minimized by the local search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SearchObjective {
    /// The paper's ILP objective: per-edge DFF counts, no fanout sharing
    /// (§II-B; matches [`assign_phases_exact`]). The realized counts after
    /// shared-chain insertion can be lower.
    #[default]
    PerEdge,
    /// Our extension: the true shared-chain DFF count (fanout sharing aware).
    /// Finds schedules the per-edge objective cannot distinguish; see the
    /// `abl-retime` ablation in EXPERIMENTS.md.
    SharedChains,
}

/// Consumer bookkeeping for the local search.
#[derive(Debug, Clone, Copy)]
enum Use {
    /// (consumer cell, weight 1)
    Gate(CellId),
    /// (T1 cell, operand slot)
    T1(CellId, usize),
    /// Primary output.
    Po,
}

/// Heuristic phase assignment: ASAP followed by `passes` rounds of DFF-aware
/// local search (coordinate descent on σ in reverse topological order),
/// minimizing the paper's per-edge objective.
///
/// # Panics
///
/// Panics if `n == 0`, or if the netlist contains T1 cells and `n < 3`
/// (staggering needs three distinct phases).
pub fn assign_phases(mc: &MappedCircuit, n: u32, passes: usize) -> Schedule {
    assign_phases_with(mc, n, passes, SearchObjective::PerEdge)
}

/// [`assign_phases`] with an explicit search objective.
///
/// # Panics
///
/// Same conditions as [`assign_phases`].
pub fn assign_phases_with(
    mc: &MappedCircuit,
    n: u32,
    passes: usize,
    objective: SearchObjective,
) -> Schedule {
    assert!(n >= 1, "need at least one phase");
    if mc.t1_count() > 0 {
        assert!(n >= 3, "T1 cells need at least 3 phases");
    }
    let mut sched = asap(mc, n);

    // users[(cell, port)] = consumers.
    let mut users: HashMap<(CellId, u8), Vec<Use>> = HashMap::new();
    for (id, cell) in mc.cells() {
        match cell {
            MappedCell::Gate { fanins, .. } => {
                for e in fanins {
                    users
                        .entry((e.cell, e.port))
                        .or_default()
                        .push(Use::Gate(id));
                }
            }
            MappedCell::T1 { fanins } => {
                for (slot, e) in fanins.iter().enumerate() {
                    users
                        .entry((e.cell, e.port))
                        .or_default()
                        .push(Use::T1(id, slot));
                }
            }
            _ => {}
        }
    }
    for e in mc.pos() {
        if !matches!(mc.cell(e.cell), MappedCell::Const0) {
            users.entry((e.cell, e.port)).or_default().push(Use::Po);
        }
    }

    let nn = n as i64;
    let max_fanout_for_eval = 64usize;
    // Cost of one driver's requirement set under the chosen objective.
    let req_cost = |source: i64, reqs: &[Requirement]| -> u64 {
        match objective {
            SearchObjective::SharedChains => build_chain(source, reqs, nn).dff_count() as u64,
            SearchObjective::PerEdge => reqs
                .iter()
                .map(|r| match *r {
                    Requirement::Window(t) => ((t - source - 1).max(0) / nn) as u64,
                    Requirement::Exact(tau) => {
                        let d = tau - source;
                        if d <= 0 {
                            0
                        } else {
                            ((d + nn - 1) / nn) as u64
                        }
                    }
                })
                .sum(),
        }
    };
    for _ in 0..passes {
        let mut improved = false;
        for idx in (0..mc.len()).rev() {
            let id = CellId(idx as u32);
            let cell = mc.cell(id);
            if matches!(cell, MappedCell::Input { .. } | MappedCell::Const0) {
                continue;
            }
            // Feasible range.
            let lo = match cell {
                MappedCell::Gate { fanins, .. } => {
                    fanins
                        .iter()
                        .map(|e| sched.stages[e.cell.index()])
                        .max()
                        .unwrap_or(0)
                        + 1
                }
                MappedCell::T1 { fanins } => {
                    let offsets = sched.t1_offsets[idx].expect("offsets");
                    (0..3)
                        .map(|k| sched.stages[fanins[k].cell.index()] + offsets[k])
                        .max()
                        .unwrap()
                }
                _ => unreachable!(),
            };
            let mut hi = i64::MAX;
            for port in 0..mc.num_ports(id) as u8 {
                if let Some(us) = users.get(&(id, port)) {
                    for u in us {
                        let bound = match u {
                            Use::Gate(j) => sched.stages[j.index()] - 1,
                            Use::T1(t, slot) => {
                                let o = sched.t1_offsets[t.index()].expect("offsets")[*slot];
                                sched.stages[t.index()] - o
                            }
                            Use::Po => sched.horizon,
                        };
                        hi = hi.min(bound);
                    }
                } else if port == 0 && mc.num_ports(id) == 1 {
                    // Dead cell: keep at lo.
                    hi = hi.min(lo);
                }
            }
            if hi == i64::MAX {
                hi = lo; // fully unused multi-port cell
            }
            if hi <= lo {
                sched.stages[idx] = lo.min(hi.max(lo));
                continue;
            }
            // Cost of a candidate stage: own chains + fanin-driver chains.
            let current = sched.stages[idx];
            let eval = |s: i64, sched: &Schedule| -> u64 {
                let mut cost = 0u64;
                for port in 0..mc.num_ports(id) as u8 {
                    if let Some(us) = users.get(&(id, port)) {
                        let reqs: Vec<Requirement> = us
                            .iter()
                            .map(|u| match u {
                                Use::Gate(j) => Requirement::Window(sched.stages[j.index()]),
                                Use::T1(t, slot) => {
                                    let o = sched.t1_offsets[t.index()].expect("offsets")[*slot];
                                    Requirement::Exact(sched.stages[t.index()] - o)
                                }
                                Use::Po => Requirement::Window(sched.horizon + 1),
                            })
                            .collect();
                        cost += req_cost(s, &reqs);
                    }
                }
                // Fanin drivers: recompute with this cell's requirement at s.
                for e in mc.fanins(id).iter() {
                    let Some(us) = users.get(&(e.cell, e.port)) else {
                        continue;
                    };
                    if us.len() > max_fanout_for_eval {
                        continue;
                    }
                    let src = sched.stages[e.cell.index()];
                    let reqs: Vec<Requirement> = us
                        .iter()
                        .map(|u| match u {
                            Use::Gate(j) => {
                                let t = if *j == id { s } else { sched.stages[j.index()] };
                                Requirement::Window(t)
                            }
                            Use::T1(t, sl) => {
                                let o = sched.t1_offsets[t.index()].expect("offsets")[*sl];
                                // The moved cell may itself be this consumer.
                                let ts = if *t == id { s } else { sched.stages[t.index()] };
                                Requirement::Exact(ts - o)
                            }
                            Use::Po => Requirement::Window(sched.horizon + 1),
                        })
                        .collect();
                    cost += req_cost(src, &reqs);
                }
                cost
            };
            // Candidate set: bounded sweep of the feasible range.
            let span = hi - lo;
            let mut candidates: Vec<i64> = if span <= 40 {
                (lo..=hi).collect()
            } else {
                let stride = span / 40 + 1;
                let mut v: Vec<i64> = (lo..=hi).step_by(stride as usize).collect();
                v.push(hi);
                v.push(current);
                v.sort_unstable();
                v.dedup();
                v
            };
            candidates.retain(|&s| s >= lo && s <= hi);
            let mut best = (eval(current, &sched), current);
            for &s in &candidates {
                if s == current {
                    continue;
                }
                let c = eval(s, &sched);
                if c < best.0 {
                    best = (c, s);
                }
            }
            if best.1 != current {
                sched.stages[idx] = best.1;
                improved = true;
            }
        }
        // Horizon can only stay or shrink (PO drivers never move past it).
        sched.horizon = mc
            .pos()
            .iter()
            .filter(|e| !matches!(mc.cell(e.cell), MappedCell::Const0))
            .map(|e| sched.stages[e.cell.index()])
            .max()
            .unwrap_or(0);
        if !improved {
            break;
        }
    }
    debug_assert_eq!(sched.validate(mc), Ok(()));
    sched
}

/// Exact phase assignment via the MILP of §II-B (per-edge linearized DFF
/// objective `n·d ≥ σ(j) − σ(i) − n`), with T1 delivery-slot constraints.
///
/// The horizon is fixed to the ASAP depth; T1 offsets are frozen from ASAP.
/// Intended for small netlists (tests, ablations, heuristic validation).
///
/// # Errors
///
/// Propagates [`MilpError`] from the underlying solver.
///
/// # Panics
///
/// Panics under the same conditions as [`assign_phases`].
pub fn assign_phases_exact(mc: &MappedCircuit, n: u32) -> Result<Schedule, MilpError> {
    assert!(n >= 1, "need at least one phase");
    if mc.t1_count() > 0 {
        assert!(n >= 3, "T1 cells need at least 3 phases");
    }
    let base = asap(mc, n);
    let horizon = base.horizon;
    let nn = n as f64;

    let mut p = MilpProblem::new();
    // σ variables.
    let sigma: Vec<_> = (0..mc.len())
        .map(|i| {
            let cell = mc.cell(CellId(i as u32));
            if matches!(cell, MappedCell::Input { .. } | MappedCell::Const0) {
                p.add_int_var(0.0, Some(0.0))
            } else {
                p.add_int_var(base.stages[i] as f64, Some(horizon as f64))
            }
        })
        .collect();

    let mut objective = LinExpr::new();
    // Posts `n·d >= expr − shift` with fresh integer d >= 0 in the objective.
    let add_edge_cost = |p: &mut MilpProblem, obj: &mut LinExpr, expr: LinExpr, shift: f64| {
        let d = p.add_int_var(0.0, None);
        // n·d − expr >= −shift
        p.add_constraint(LinExpr::var(d) * nn - expr, Sense::Ge, -shift);
        obj.add_term(d, 1.0);
    };

    for (id, cell) in mc.cells() {
        match cell {
            MappedCell::Input { .. } | MappedCell::Const0 => {}
            MappedCell::Gate { fanins, .. } => {
                for e in fanins {
                    // σ(j) − σ(i) >= 1
                    let diff =
                        LinExpr::var(sigma[id.index()]) - LinExpr::var(sigma[e.cell.index()]);
                    p.add_constraint(diff.clone(), Sense::Ge, 1.0);
                    // DFFs: n·d >= σ(j) − σ(i) − n.
                    add_edge_cost(&mut p, &mut objective, diff, nn);
                }
            }
            MappedCell::T1 { fanins } => {
                let offsets = base.t1_offsets[id.index()].expect("offsets");
                for (k, e) in fanins.iter().enumerate() {
                    let o = offsets[k] as f64;
                    // Delivery slot: σ(T1) − o >= σ(i).
                    let diff =
                        LinExpr::var(sigma[id.index()]) - LinExpr::var(sigma[e.cell.index()]);
                    p.add_constraint(diff.clone(), Sense::Ge, o);
                    // DFFs to reach the slot exactly: n·d >= σ(T1) − σ(i) − o.
                    add_edge_cost(&mut p, &mut objective, diff, o);
                }
            }
        }
    }
    for e in mc.pos() {
        if matches!(mc.cell(e.cell), MappedCell::Const0) {
            continue;
        }
        // Window capture at horizon + 1: d = ⌊(horizon − σ)/n⌋, i.e.
        // n·d >= horizon − σ(driver) − (n − 1).
        let expr = LinExpr::new() - LinExpr::var(sigma[e.cell.index()]);
        add_edge_cost(&mut p, &mut objective, expr, -(horizon as f64) + nn - 1.0);
    }
    p.set_objective(objective);
    let sol = p.solve()?;

    let stages: Vec<i64> = (0..mc.len()).map(|i| sol.int_value(sigma[i])).collect();
    let sched = Schedule {
        n,
        stages,
        horizon,
        t1_offsets: base.t1_offsets,
    };
    debug_assert_eq!(sched.validate(mc), Ok(()));
    Ok(sched)
}

/// The per-edge linearized DFF objective of §II-B: for every fanin edge,
/// `⌊(σ(j) − σ(i) − 1)/n⌋` (T1 operands: `⌈(slot − σ(i))/n⌉`, primary
/// outputs: `⌈(horizon − σ)/n⌉`). This is what [`assign_phases_exact`]
/// minimizes; realized DFF counts after fanout-shared insertion can be
/// lower.
pub fn edge_dff_objective(mc: &MappedCircuit, sched: &Schedule) -> u64 {
    let n = sched.n as i64;
    let ceil_div = |a: i64, b: i64| -> i64 {
        if a <= 0 {
            0
        } else {
            a.div_euclid(b) + i64::from(a.rem_euclid(b) != 0)
        }
    };
    let mut total = 0i64;
    for (id, cell) in mc.cells() {
        let s = sched.stages[id.index()];
        match cell {
            MappedCell::Input { .. } | MappedCell::Const0 => {}
            MappedCell::Gate { fanins, .. } => {
                for e in fanins {
                    total += (s - sched.stages[e.cell.index()] - 1).max(0) / n;
                }
            }
            MappedCell::T1 { fanins } => {
                let offsets = sched.t1_offsets[id.index()].expect("offsets");
                for (k, e) in fanins.iter().enumerate() {
                    total += ceil_div(s - offsets[k] - sched.stages[e.cell.index()], n);
                }
            }
        }
    }
    for e in mc.pos() {
        if !matches!(mc.cell(e.cell), MappedCell::Const0) {
            // Window capture at horizon + 1: ⌊(horizon − σ)/n⌋.
            total += (sched.horizon - sched.stages[e.cell.index()]).max(0) / n;
        }
    }
    total as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::CellLibrary;
    use crate::dff::insert_dffs;
    use crate::mapped::Edge;
    use crate::mapper::map;
    use sfq_netlist::truth_table::TruthTable;

    fn and2() -> TruthTable {
        TruthTable::var(2, 0) & TruthTable::var(2, 1)
    }

    fn chain_circuit(depth: usize) -> MappedCircuit {
        let mut m = MappedCircuit::new();
        let a = m.add_input();
        let b = m.add_input();
        let mut prev = m.add_gate(and2(), vec![Edge::plain(a), Edge::plain(b)]);
        for _ in 1..depth {
            prev = m.add_gate(and2(), vec![Edge::plain(prev), Edge::plain(a)]);
        }
        m.add_po(Edge::plain(prev));
        m
    }

    #[test]
    fn asap_chain_stages() {
        let mc = chain_circuit(5);
        let s = assign_phases(&mc, 1, 0);
        assert_eq!(s.horizon, 5);
        assert_eq!(s.depth_cycles(), 5);
        s.validate(&mc).unwrap();
    }

    #[test]
    fn depth_cycles_divides_by_phases() {
        let mc = chain_circuit(8);
        let s = assign_phases(&mc, 4, 0);
        assert_eq!(s.horizon, 8);
        assert_eq!(s.depth_cycles(), 2);
    }

    #[test]
    fn t1_asap_respects_eq3() {
        let mut m = MappedCircuit::new();
        let a = m.add_input();
        let b = m.add_input();
        let c = m.add_input();
        let g = m.add_gate(and2(), vec![Edge::plain(a), Edge::plain(b)]); // stage 1
        let t1 = m.add_t1([Edge::plain(g), Edge::plain(b), Edge::plain(c)]);
        m.add_po(Edge {
            cell: t1,
            port: 0,
            invert: false,
        });
        let s = assign_phases(&m, 4, 0);
        // Operands at stages 1, 0, 0 → sorted (0,0,1) with offsets (3,2,1)
        // → σ(T1) >= max(0+3, 0+2, 1+1) = 3... but offsets are assigned by
        // ascending stage with slot tiebreak: b (slot1, stage0) → 3,
        // c (slot2, stage0) → 2, g (slot0, stage1) → 1 → σ = max(3,2,2)=3.
        assert_eq!(s.stages[t1.index()], 3);
        s.validate(&m).unwrap();
    }

    #[test]
    fn local_search_reduces_dffs_on_unbalanced_tree() {
        // A deep chain alternating over inputs a and b: both input chains
        // already span all stages. A shallow side gate over the same inputs
        // pays a long balancing chain under ASAP; moving it later is free
        // (its operands' chains already have members near the top) and
        // saves the side chain — exactly what the local search must find.
        let mut m = MappedCircuit::new();
        let a = m.add_input();
        let b = m.add_input();
        let mut prev = m.add_gate(and2(), vec![Edge::plain(a), Edge::plain(b)]);
        for i in 0..6 {
            let other = if i % 2 == 0 { a } else { b };
            prev = m.add_gate(and2(), vec![Edge::plain(prev), Edge::plain(other)]);
        }
        // Shallow side gate: ASAP stage 1, but its consumer is at stage 8.
        let side = m.add_gate(and2(), vec![Edge::plain(a), Edge::plain(b)]);
        let top = m.add_gate(and2(), vec![Edge::plain(prev), Edge::plain(side)]);
        m.add_po(Edge::plain(top));
        let asap_s = assign_phases(&m, 1, 0);
        let opt_s = assign_phases_with(&m, 1, 3, SearchObjective::SharedChains);
        let asap_d = insert_dffs(&m, &asap_s).total_dffs;
        let opt_d = insert_dffs(&m, &opt_s).total_dffs;
        assert!(
            opt_d < asap_d,
            "local search must help: {opt_d} vs {asap_d}"
        );
        opt_s.validate(&m).unwrap();
    }

    #[test]
    fn shared_chain_objective_never_worse_than_per_edge() {
        use sfq_circuits::epfl::adder;
        let lib = CellLibrary::default();
        let aig = adder(8);
        let mc = map(&aig, &lib, None).circuit;
        for n in [1u32, 4] {
            let pe = assign_phases_with(&mc, n, 3, SearchObjective::PerEdge);
            let sc = assign_phases_with(&mc, n, 3, SearchObjective::SharedChains);
            let pe_d = insert_dffs(&mc, &pe).total_dffs;
            let sc_d = insert_dffs(&mc, &sc).total_dffs;
            assert!(
                sc_d <= pe_d,
                "sharing-aware search ({sc_d}) worse than per-edge ({pe_d}) at n={n}"
            );
        }
    }

    #[test]
    fn exact_optimal_on_linearized_objective() {
        use sfq_circuits::epfl::adder;
        let lib = CellLibrary::default();
        let aig = adder(3);
        let mc = map(&aig, &lib, None).circuit;
        for n in [1u32, 2, 4] {
            let h = assign_phases(&mc, n, 3);
            let e = assign_phases_exact(&mc, n).expect("solvable");
            // The ILP minimizes the per-edge objective of §II-B exactly;
            // the heuristic can never beat it on that metric (it optimizes
            // the richer shared-chain count instead).
            let ho = edge_dff_objective(&mc, &h);
            let eo = edge_dff_objective(&mc, &e);
            assert!(
                eo <= ho,
                "exact ({eo}) worse than heuristic ({ho}) on ILP objective, n={n}"
            );
            e.validate(&mc).unwrap();
        }
    }

    #[test]
    fn four_phase_needs_fewer_dffs_than_single() {
        let mc = chain_circuit(12);
        let s1 = assign_phases(&mc, 1, 2);
        let s4 = assign_phases(&mc, 4, 2);
        let d1 = insert_dffs(&mc, &s1).total_dffs;
        let d4 = insert_dffs(&mc, &s4).total_dffs;
        assert!(d4 < d1, "4-phase {d4} must beat 1-phase {d1}");
    }

    #[test]
    fn validate_catches_bad_stage() {
        let mc = chain_circuit(3);
        let mut s = assign_phases(&mc, 1, 0);
        s.stages[3] = 0; // gate forced to stage 0
        assert!(s.validate(&mc).is_err());
    }
}
