//! Energy and power estimation for mapped SFQ circuits.
//!
//! The paper's motivation (§I) is RSFQ's "two to three orders of magnitude"
//! lower power than CMOS. This module quantifies the mapped designs with
//! the standard first-order RSFQ model:
//!
//! - **static power** — each JJ is biased at roughly `I_b · V_b` (the bias
//!   resistor burn of classic RSFQ): proportional to the JJ count, so the
//!   area savings of the T1 flow translate 1:1 into static-power savings;
//! - **dynamic energy** — every SFQ pulse dissipates `≈ I_c · Φ₀` in the
//!   switching junction; the simulator's pulse count gives the per-wave
//!   switching energy.
//!
//! Default constants (documented per field) follow the textbook values for
//! a 10 kA/cm² niobium process; all are overridable.
//!
//! # Examples
//!
//! ```
//! use t1map::energy::EnergyModel;
//!
//! let model = EnergyModel::default();
//! // A 1000-JJ circuit clocked at 20 GHz with 300 pulses per wave:
//! let report = model.report(1000, 300.0, 20.0e9);
//! assert!(report.static_power_w > 0.0);
//! assert!(report.dynamic_power_w < report.static_power_w,
//!         "classic RSFQ is static-dominated");
//! ```

/// First-order RSFQ energy model constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Average critical current per JJ \[A\] (typ. 0.1–0.25 mA).
    pub critical_current_a: f64,
    /// Flux quantum Φ₀ \[Wb\].
    pub flux_quantum_wb: f64,
    /// Average static bias power per JJ \[W\] (bias-resistor RSFQ;
    /// ERSFQ/eSFQ variants make this ~0).
    pub static_power_per_jj_w: f64,
}

impl Default for EnergyModel {
    /// Textbook 10 kA/cm² Nb process: `I_c = 0.15 mA`,
    /// `Φ₀ = 2.07e-15 Wb`, static ≈ 100 nW/JJ.
    fn default() -> Self {
        EnergyModel {
            critical_current_a: 0.15e-3,
            flux_quantum_wb: 2.07e-15,
            static_power_per_jj_w: 100e-9,
        }
    }
}

/// Estimated power/energy of a mapped design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyReport {
    /// Energy of one SFQ pulse \[J\].
    pub pulse_energy_j: f64,
    /// Switching energy per processed wave \[J\].
    pub energy_per_wave_j: f64,
    /// Dynamic power at the given clock frequency \[W\].
    pub dynamic_power_w: f64,
    /// Static bias power \[W\].
    pub static_power_w: f64,
    /// Total power \[W\].
    pub total_power_w: f64,
}

impl EnergyModel {
    /// Builds a report for a circuit with `jj_count` junctions switching
    /// `pulses_per_wave` pulses per processed input vector at `clock_hz`
    /// (one wave per clock cycle under gate-level pipelining).
    ///
    /// # Panics
    ///
    /// Panics if `clock_hz` is not positive.
    pub fn report(&self, jj_count: u64, pulses_per_wave: f64, clock_hz: f64) -> EnergyReport {
        assert!(clock_hz > 0.0, "clock frequency must be positive");
        let pulse_energy_j = self.critical_current_a * self.flux_quantum_wb;
        let energy_per_wave_j = pulse_energy_j * pulses_per_wave;
        let dynamic_power_w = energy_per_wave_j * clock_hz;
        let static_power_w = self.static_power_per_jj_w * jj_count as f64;
        EnergyReport {
            pulse_energy_j,
            energy_per_wave_j,
            dynamic_power_w,
            static_power_w,
            total_power_w: dynamic_power_w + static_power_w,
        }
    }
}

/// Convenience: report for a flow result verified in the pulse simulator.
///
/// `outcome.pulses` is divided by the number of waves to obtain the average
/// per-wave switching activity.
///
/// # Panics
///
/// Panics if `waves == 0` or `clock_hz <= 0`.
pub fn report_from_sim(
    model: &EnergyModel,
    area_jj: u64,
    outcome: &sfq_sim::pulse::SimOutcome,
    waves: usize,
    clock_hz: f64,
) -> EnergyReport {
    assert!(waves > 0, "at least one wave required");
    model.report(area_jj, outcome.pulses as f64 / waves as f64, clock_hz)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::CellLibrary;
    use crate::flow::{run_flow, FlowConfig};
    use crate::sim_bridge::to_pulse_circuit;
    use sfq_circuits::epfl;

    #[test]
    fn pulse_energy_magnitude() {
        let m = EnergyModel::default();
        let r = m.report(1, 1.0, 1.0);
        // I_c·Φ₀ ≈ 3.1e-19 J — the canonical "a few 10⁻¹⁹ J" figure.
        assert!(r.pulse_energy_j > 1e-19 && r.pulse_energy_j < 1e-18);
    }

    #[test]
    fn static_dominates_at_classic_bias() {
        let m = EnergyModel::default();
        // 10k JJ at 20 GHz with 3k pulses/wave.
        let r = m.report(10_000, 3000.0, 20e9);
        assert!(r.static_power_w > r.dynamic_power_w);
        assert!((r.total_power_w - r.static_power_w - r.dynamic_power_w).abs() < 1e-12);
    }

    #[test]
    fn t1_flow_saves_power_on_adder() {
        let lib = CellLibrary::default();
        let aig = epfl::adder(12);
        let model = EnergyModel::default();
        let mut powers = Vec::new();
        for cfg in [FlowConfig::multiphase(4), FlowConfig::t1(4)] {
            let res = run_flow(&aig, &lib, &cfg);
            let pc = to_pulse_circuit(&res.mapped, &res.schedule, &res.plan);
            let vectors: Vec<Vec<bool>> = (0..8u64)
                .map(|k| {
                    (0..24)
                        .map(|i| (k.wrapping_mul(0x9E37) >> (i % 13)) & 1 == 1)
                        .collect()
                })
                .collect();
            let outcome = pc.simulate(&vectors, 4).expect("valid");
            let report = report_from_sim(&model, res.stats.area, &outcome, 8, 20e9);
            powers.push(report.total_power_w);
        }
        assert!(
            powers[1] < powers[0],
            "T1 flow total power {} must beat baseline {}",
            powers[1],
            powers[0]
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_clock_rejected() {
        EnergyModel::default().report(1, 1.0, 0.0);
    }
}
