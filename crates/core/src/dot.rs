//! Graphviz DOT export of mapped netlists for visual inspection.
//!
//! Cells are ranked by stage (one column per pipeline stage), T1 cells are
//! highlighted, and DFF chains are drawn as grey boxes — handy for
//! understanding small mapped designs and for documentation figures.
//!
//! # Examples
//!
//! ```
//! use sfq_netlist::aig::Aig;
//! use t1map::cells::CellLibrary;
//! use t1map::flow::{run_flow, FlowConfig};
//! use t1map::dot::to_dot;
//!
//! let mut aig = Aig::new();
//! let a = aig.add_pi();
//! let b = aig.add_pi();
//! let c = aig.add_pi();
//! let s = aig.xor3(a, b, c);
//! aig.add_po(s);
//! let lib = CellLibrary::default();
//! let res = run_flow(&aig, &lib, &FlowConfig::t1(4));
//! let dot = to_dot(&res);
//! assert!(dot.starts_with("digraph"));
//! ```

use crate::dff::Consumer;
use crate::flow::FlowResult;
use crate::mapped::MappedCell;
use std::fmt::Write as _;

/// Renders a flow result as a Graphviz DOT digraph.
pub fn to_dot(res: &FlowResult) -> String {
    let mc = &res.mapped;
    let sched = &res.schedule;
    let mut out = String::from("digraph sfq {\n  rankdir=LR;\n  node [fontsize=10];\n");

    for (id, cell) in mc.cells() {
        let stage = sched.stages[id.index()];
        match cell {
            MappedCell::Input { index } => {
                let _ = writeln!(
                    out,
                    "  c{} [label=\"pi{index}\" shape=triangle color=blue];",
                    id.0
                );
            }
            MappedCell::Const0 => {
                let _ = writeln!(out, "  c{} [label=\"0\" shape=plaintext];", id.0);
            }
            MappedCell::Gate { tt, fanins } => {
                let _ = writeln!(
                    out,
                    "  c{} [label=\"g{}\\nσ{stage} tt={}\" shape=box];",
                    id.0, id.0, tt
                );
                let _ = fanins;
            }
            MappedCell::T1 { .. } => {
                let _ = writeln!(
                    out,
                    "  c{} [label=\"T1\\nσ{stage}\" shape=box style=filled fillcolor=gold];",
                    id.0
                );
            }
        }
    }
    // DFF chains as intermediate nodes; edges follow the tap resolution.
    for d in &res.plan.drivers {
        let (cell, port) = d.source;
        let src_name = |stage: i64| {
            if stage == d.source_stage {
                format!("c{}", cell.0)
            } else {
                format!("d{}_{}_{}", cell.0, port, stage)
            }
        };
        let mut prev = d.source_stage;
        for &m in &d.chain.members {
            let _ = writeln!(
                out,
                "  {} [label=\"DFF σ{m}\" shape=box style=filled fillcolor=lightgrey fontsize=8];",
                src_name(m)
            );
            let _ = writeln!(out, "  {} -> {};", src_name(prev), src_name(m));
            prev = m;
        }
        for ((consumer, _), &tap) in d.consumers.iter().zip(d.chain.taps.iter()) {
            match *consumer {
                Consumer::GateInput { cell: c, .. } | Consumer::T1Input { cell: c, .. } => {
                    let _ = writeln!(out, "  {} -> c{};", src_name(tap), c.0);
                }
                Consumer::Output { index } => {
                    let _ = writeln!(out, "  po{index} [shape=triangle color=red];");
                    let _ = writeln!(out, "  {} -> po{index};", src_name(tap));
                }
            }
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::CellLibrary;
    use crate::flow::{run_flow, FlowConfig};
    use sfq_circuits::epfl;

    #[test]
    fn dot_structure() {
        let lib = CellLibrary::default();
        let res = run_flow(&epfl::adder(3), &lib, &FlowConfig::t1(4));
        let dot = to_dot(&res);
        assert!(dot.starts_with("digraph sfq {"));
        assert!(dot.trim_end().ends_with('}'));
        assert!(dot.contains("fillcolor=gold"), "T1 cells highlighted");
        assert!(
            dot.matches("shape=triangle color=blue").count() == 6,
            "6 inputs"
        );
        assert!(dot.contains("po0"), "outputs present");
    }

    #[test]
    fn dff_nodes_match_plan() {
        let lib = CellLibrary::default();
        let res = run_flow(&epfl::adder(4), &lib, &FlowConfig::multiphase(4));
        let dot = to_dot(&res);
        assert_eq!(
            dot.matches("label=\"DFF").count() as u64,
            res.plan.total_dffs
        );
    }
}
