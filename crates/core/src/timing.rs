//! Phase-granular timing of a mapped, scheduled netlist.
//!
//! Bridges a [`MappedCircuit`] + [`Schedule`] pair onto `sfq-sta`'s generic
//! [`TimingGraph`]: every fanin edge of an ordinary gate carries delay 1
//! (the consumer must be clocked at least one stage later), every T1
//! operand carries its frozen delivery offset (eq. 3), and PO drivers are
//! the sinks with the schedule horizon as deadline.
//!
//! Slack here is measured **in clock phases** and is taken against the
//! *actual* schedule, not just the ASAP lower bound:
//!
//! ```text
//! slack(c) = required(c) − σ(c)
//! ```
//!
//! where `required` is the ALAP stage under the horizon. A valid schedule
//! always has non-negative slack everywhere, and a zero-slack cell cannot
//! be clocked any later without missing a deadline downstream. Because a
//! DFF chain spanning `k` stages under `n`-phase clocking costs about
//! `⌈k/n⌉` DFFs per edge (`edge_dff_objective`-style accounting), per-cell
//! slack converts directly into the DFF headroom retiming can still
//! harvest: the schedule's total per-edge DFF cost is part of the summary.

use crate::dff::DffPlan;
use crate::mapped::{MappedCell, MappedCircuit};
use crate::phase::{edge_dff_objective, Schedule};
pub use sfq_sta::TimingConfig;
use sfq_sta::{top_paths_bounded, TimingAnalysis, TimingGraph, TimingPath};

/// The timing view of one scheduled netlist.
#[derive(Debug, Clone)]
pub struct MappedTiming {
    graph: TimingGraph,
    analysis: TimingAnalysis,
}

/// Builds the phase-granular timing graph of a scheduled netlist.
///
/// # Panics
///
/// Panics if `sched` does not belong to `mc` (missing T1 offsets).
pub fn timing_graph(mc: &MappedCircuit, sched: &Schedule) -> TimingGraph {
    let mut graph = TimingGraph::new();
    for (id, cell) in mc.cells() {
        match cell {
            MappedCell::Input { .. } | MappedCell::Const0 => {
                graph.add_node(&[]);
            }
            MappedCell::Gate { fanins, .. } => {
                let edges: Vec<(usize, i64)> = fanins.iter().map(|e| (e.cell.index(), 1)).collect();
                graph.add_node(&edges);
            }
            MappedCell::T1 { fanins } => {
                let offsets = sched.t1_offsets[id.index()].expect("T1 cell has offsets");
                let edges: Vec<(usize, i64)> = fanins
                    .iter()
                    .zip(offsets)
                    .map(|(e, o)| (e.cell.index(), o))
                    .collect();
                graph.add_node(&edges);
            }
        }
    }
    for e in mc.pos() {
        if !matches!(mc.cell(e.cell), MappedCell::Const0) {
            graph.mark_sink(e.cell.index());
        }
    }
    graph
}

/// Analyzes the scheduled netlist against its horizon.
pub fn analyze_mapped(mc: &MappedCircuit, sched: &Schedule) -> MappedTiming {
    let graph = timing_graph(mc, sched);
    let analysis = TimingAnalysis::analyze_with_horizon(&graph, sched.horizon);
    MappedTiming { graph, analysis }
}

impl MappedTiming {
    /// Earliest feasible stage of `cell` (the ASAP bound).
    pub fn earliest(&self, cell: crate::mapped::CellId) -> i64 {
        self.analysis.arrival[cell.index()]
    }

    /// Latest feasible stage of `cell` under the horizon (`i64::MAX` for
    /// cells that reach no output).
    pub fn latest(&self, cell: crate::mapped::CellId) -> i64 {
        self.analysis.required[cell.index()]
    }

    /// Slack of `cell` in clock phases against the actual schedule:
    /// `latest − σ(cell)`. Non-negative for every valid schedule.
    pub fn schedule_slack(&self, sched: &Schedule, cell: crate::mapped::CellId) -> i64 {
        self.latest(cell).saturating_sub(sched.stages[cell.index()])
    }

    /// The `k` structurally longest PI→PO paths (stage-weighted).
    pub fn critical_paths(&self, k: usize) -> Vec<TimingPath> {
        self.critical_paths_bounded(k).0
    }

    /// [`MappedTiming::critical_paths`] that also reports whether the
    /// search budget expired before `k` paths were found.
    pub fn critical_paths_bounded(&self, k: usize) -> (Vec<TimingPath>, bool) {
        top_paths_bounded(&self.graph, &self.analysis, k)
    }

    /// Borrow of the underlying graph.
    pub fn graph(&self) -> &TimingGraph {
        &self.graph
    }

    /// Borrow of the underlying analysis.
    pub fn analysis(&self) -> &TimingAnalysis {
        &self.analysis
    }

    /// Condenses the analysis into the flow-level [`TimingSummary`].
    /// `plan` is the schedule's DFF-insertion plan — passed in rather than
    /// recomputed, since every caller (the flow, the CLI) already has one.
    pub fn summary(&self, mc: &MappedCircuit, sched: &Schedule, plan: &DffPlan) -> TimingSummary {
        let mut scheduled_cells = 0usize;
        let mut zero_slack_cells = 0usize;
        let mut worst_slack = i64::MAX;
        let mut total_slack = 0i64;
        for (id, cell) in mc.cells() {
            if matches!(cell, MappedCell::Input { .. } | MappedCell::Const0) {
                continue;
            }
            let lat = self.latest(id);
            if lat == i64::MAX {
                continue; // dead cell: no deadline
            }
            let s = lat - sched.stages[id.index()];
            scheduled_cells += 1;
            worst_slack = worst_slack.min(s);
            total_slack += s;
            if s == 0 {
                zero_slack_cells += 1;
            }
        }
        TimingSummary {
            horizon: sched.horizon,
            phases: sched.n,
            scheduled_cells,
            zero_slack_cells,
            worst_slack: if scheduled_cells == 0 { 0 } else { worst_slack },
            total_slack,
            edge_dffs: edge_dff_objective(mc, sched),
            chained_dffs: plan.total_dffs,
        }
    }
}

/// Flow-level timing numbers (attached to `FlowResult` when the
/// [`TimingConfig`] stage is enabled).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingSummary {
    /// Schedule horizon in stages.
    pub horizon: i64,
    /// Clock phases `n`.
    pub phases: u32,
    /// Clocked cells with a deadline (inputs/constants/dead cells excluded).
    pub scheduled_cells: usize,
    /// Cells that cannot be clocked any later.
    pub zero_slack_cells: usize,
    /// Minimum schedule slack in phases.
    pub worst_slack: i64,
    /// Sum of schedule slack over all scheduled cells — the total phase
    /// headroom still available to retiming.
    pub total_slack: i64,
    /// The per-edge DFF objective of §II-B at this schedule (no fanout
    /// sharing) — the edge-wise conversion of stage gaps into DFF cost.
    pub edge_dffs: u64,
    /// Realized DFF count with fanout-shared chains.
    pub chained_dffs: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::CellLibrary;
    use crate::flow::{run_flow, FlowConfig};
    use crate::phase::assign_phases;
    use sfq_circuits::epfl::adder;

    #[test]
    fn valid_schedules_have_nonnegative_slack() {
        let lib = CellLibrary::default();
        let aig = adder(8);
        for cfg in [
            FlowConfig::single_phase(),
            FlowConfig::multiphase(4),
            FlowConfig::t1(4),
        ] {
            let res = run_flow(&aig, &lib, &cfg);
            let timing = analyze_mapped(&res.mapped, &res.schedule);
            let mut tight = 0usize;
            for (id, cell) in res.mapped.cells() {
                if matches!(cell, MappedCell::Input { .. } | MappedCell::Const0) {
                    continue;
                }
                let s = timing.schedule_slack(&res.schedule, id);
                assert!(s >= 0, "cell {} has negative slack {s}", id.0);
                if s == 0 {
                    tight += 1;
                }
            }
            assert!(tight > 0, "some cell must be at its deadline");
        }
    }

    #[test]
    fn arrival_matches_asap_and_paths_span_the_horizon() {
        let lib = CellLibrary::default();
        let aig = adder(6);
        let res = run_flow(&aig, &lib, &FlowConfig::t1(4));
        let timing = analyze_mapped(&res.mapped, &res.schedule);
        // ASAP arrival is a lower bound on every scheduled stage.
        for (id, cell) in res.mapped.cells() {
            if matches!(cell, MappedCell::Input { .. } | MappedCell::Const0) {
                continue;
            }
            assert!(timing.earliest(id) <= res.schedule.stages[id.index()]);
        }
        let paths = timing.critical_paths(2);
        assert!(!paths.is_empty());
        assert_eq!(paths[0].length, res.schedule.horizon, "ASAP top path");
        assert_eq!(paths[0].slack, 0);
    }

    #[test]
    fn summary_is_consistent() {
        let lib = CellLibrary::default();
        let aig = adder(6);
        let res = run_flow(&aig, &lib, &FlowConfig::t1(4));
        let timing = analyze_mapped(&res.mapped, &res.schedule);
        let s = timing.summary(&res.mapped, &res.schedule, &res.plan);
        assert_eq!(s.horizon, res.schedule.horizon);
        assert_eq!(s.phases, 4);
        assert!(s.zero_slack_cells > 0);
        assert!(s.zero_slack_cells <= s.scheduled_cells);
        assert_eq!(s.worst_slack, 0, "a tight cell exists");
        assert!(s.total_slack >= 0);
        assert_eq!(s.chained_dffs, res.plan.total_dffs);
        assert_eq!(s.edge_dffs, edge_dff_objective(&res.mapped, &res.schedule));
    }

    #[test]
    fn deeper_schedules_expose_more_slack_at_more_phases() {
        // With more phases the ASAP window widens relative to deadlines,
        // so aggregate slack cannot shrink when n grows on the same map.
        let lib = CellLibrary::default();
        let aig = adder(8);
        let mc = crate::mapper::map(&aig, &lib, None).circuit;
        let s2 = assign_phases(&mc, 2, 0);
        let plan = crate::dff::insert_dffs(&mc, &s2);
        let t2 = analyze_mapped(&mc, &s2).summary(&mc, &s2, &plan);
        assert!(t2.scheduled_cells > 0);
        assert_eq!(t2.worst_slack, 0);
    }
}
