//! The sweep-spec text format and the shared configuration-token table.
//!
//! A sweep spec is a line-oriented, zero-dependency text file declaring
//! the axes of a design-space sweep. Each non-empty line is
//! `key value value ...`; `#` starts a comment. Every key is optional
//! except `benchmarks`:
//!
//! ```text
//! # Table-I neighbourhood sweep.
//! sweep       table1
//! benchmarks  adder:16 multiplier:8
//! flows       1phi nphi t1
//! phases      3 4 6
//! opt         none pre-opt
//! timing      off on
//! library     default cheap-dff
//! objectives  gates depth dffs area
//! ```
//!
//! Parsing is *hard-error validating*: an unknown key, an unknown value,
//! a duplicate key or a duplicate value within an axis aborts with a
//! message listing every legal alternative — a typo can never silently
//! shrink a sweep. Cross-axis contradictions (the `t1` flow under fewer
//! than 3 phases) are rejected at parse time, naming the combination.
//!
//! The module also owns [`CONFIG_TOKENS`] and [`apply_config_token`]:
//! the single table of flow-configuration suffix tokens shared by the
//! spec's `opt`/`timing` axes and the CLI `serve` request parser, so
//! both spell options identically and reject unknown ones with the same
//! exhaustive list.

use t1map::cells::CellLibrary;
use t1map::flow::{FlowBuilder, FlowConfig, FlowStats};

/// Legal `flows` axis values.
pub const FLOW_TOKENS: [&str; 3] = ["1phi", "nphi", "t1"];
/// Legal `opt` axis values (`none` is the identity pipeline).
pub const OPT_TOKENS: [&str; 4] = ["none", "pre-opt", "slack-opt", "dff-opt"];
/// Legal `timing` axis values.
pub const TIMING_TOKENS: [&str; 2] = ["off", "on"];
/// Legal `library` axis values (named [`CellLibrary`] variants).
pub const LIBRARY_VARIANTS: [&str; 3] = ["default", "cheap-dff", "costly-dff"];
/// Legal `objectives` values.
pub const OBJECTIVE_TOKENS: [&str; 4] = ["gates", "depth", "dffs", "area"];
/// Keys a sweep spec may contain.
pub const SPEC_KEYS: [&str; 8] = [
    "sweep",
    "benchmarks",
    "flows",
    "phases",
    "opt",
    "timing",
    "library",
    "objectives",
];

/// Every flow-configuration suffix token [`apply_config_token`] accepts —
/// the one table behind the spec's `opt`/`timing` axes *and* the
/// `serve` request suffix, so the two interfaces cannot drift apart.
pub const CONFIG_TOKENS: [&str; 6] = [
    "none",
    "pre-opt",
    "slack-opt",
    "dff-opt",
    "timing",
    "no-timing",
];

/// Applies one configuration token to a [`FlowBuilder`].
///
/// # Errors
///
/// Unknown tokens are a hard error listing all of [`CONFIG_TOKENS`].
pub fn apply_config_token(builder: FlowBuilder, token: &str) -> Result<FlowBuilder, String> {
    Ok(match token {
        "none" => builder,
        "pre-opt" => builder.standard_opt(),
        "slack-opt" => builder.slack_opt(),
        "dff-opt" => builder.dff_opt(),
        "timing" => builder.timing(true),
        "no-timing" => builder.timing(false),
        other => {
            return Err(format!(
                "unknown option '{other}' (one of: {})",
                CONFIG_TOKENS.join(", ")
            ))
        }
    })
}

/// Resolves a named [`CellLibrary`] variant.
///
/// # Errors
///
/// Unknown names are a hard error listing all of [`LIBRARY_VARIANTS`].
pub fn library_variant(name: &str) -> Result<CellLibrary, String> {
    let mut lib = CellLibrary::default();
    match name {
        "default" => {}
        "cheap-dff" => lib.dff = 3,
        "costly-dff" => lib.dff = 12,
        other => {
            return Err(format!(
                "unknown library '{other}' (one of: {})",
                LIBRARY_VARIANTS.join(", ")
            ))
        }
    }
    Ok(lib)
}

/// One of the three paper flows, as a sweep axis value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flow {
    /// Single-phase baseline; ignores the `phases` axis.
    SinglePhase,
    /// Multiphase clocking without T1 cells.
    Multiphase,
    /// Multiphase clocking with T1 detection (needs ≥ 3 phases).
    T1,
}

impl Flow {
    /// The spec/serve spelling of this flow.
    pub fn token(self) -> &'static str {
        match self {
            Flow::SinglePhase => "1phi",
            Flow::Multiphase => "nphi",
            Flow::T1 => "t1",
        }
    }

    /// Parses a `flows` axis value.
    ///
    /// # Errors
    ///
    /// Unknown tokens list all of [`FLOW_TOKENS`].
    pub fn parse(token: &str) -> Result<Self, String> {
        match token {
            "1phi" => Ok(Flow::SinglePhase),
            "nphi" => Ok(Flow::Multiphase),
            "t1" => Ok(Flow::T1),
            other => Err(format!(
                "unknown flow '{other}' (one of: {})",
                FLOW_TOKENS.join(", ")
            )),
        }
    }

    /// The preset configuration of this flow at `phases`, as a builder.
    pub fn preset(self, phases: u32) -> FlowBuilder {
        match self {
            Flow::SinglePhase => FlowConfig::single_phase().to_builder(),
            Flow::Multiphase => FlowConfig::multiphase(phases).to_builder(),
            Flow::T1 => FlowConfig::t1(phases).to_builder(),
        }
    }
}

/// A minimization objective over [`FlowStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Mapped gate count.
    Gates,
    /// Pipeline depth in clock cycles.
    Depth,
    /// Path-balancing DFF count.
    Dffs,
    /// Total area including DFFs and splitters.
    Area,
}

/// Every objective, in the canonical (default) order.
pub const ALL_OBJECTIVES: [Objective; 4] = [
    Objective::Gates,
    Objective::Depth,
    Objective::Dffs,
    Objective::Area,
];

impl Objective {
    /// The spec spelling of this objective.
    pub fn token(self) -> &'static str {
        match self {
            Objective::Gates => "gates",
            Objective::Depth => "depth",
            Objective::Dffs => "dffs",
            Objective::Area => "area",
        }
    }

    /// Parses an `objectives` value.
    ///
    /// # Errors
    ///
    /// Unknown tokens list all of [`OBJECTIVE_TOKENS`].
    pub fn parse(token: &str) -> Result<Self, String> {
        match token {
            "gates" => Ok(Objective::Gates),
            "depth" => Ok(Objective::Depth),
            "dffs" => Ok(Objective::Dffs),
            "area" => Ok(Objective::Area),
            other => Err(format!(
                "unknown objective '{other}' (one of: {})",
                OBJECTIVE_TOKENS.join(", ")
            )),
        }
    }

    /// Extracts this objective's value from a result (minimize; depth is
    /// clamped at zero, exact for every real schedule).
    pub fn extract(self, stats: &FlowStats) -> u64 {
        match self {
            Objective::Gates => stats.gates as u64,
            Objective::Depth => stats.depth_cycles.max(0) as u64,
            Objective::Dffs => stats.dffs,
            Objective::Area => stats.area,
        }
    }
}

/// A parsed, validated sweep specification. Every axis is non-empty and
/// duplicate-free; the cross product of the axes is the sweep's point
/// grid (see [`expand`](crate::sweep::expand)).
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Sweep name (names the default report file); `"sweep"` by default.
    pub name: String,
    /// `name[:width]` benchmark subjects, resolved through
    /// [`sfq_circuits::named`].
    pub benchmarks: Vec<String>,
    /// Flows axis (default: `t1`).
    pub flows: Vec<Flow>,
    /// Phase counts axis (default: `4`).
    pub phases: Vec<u32>,
    /// Optimization-pipeline axis (default: `none`).
    pub opts: Vec<&'static str>,
    /// Timing-analysis axis (default: off).
    pub timing: Vec<bool>,
    /// Cell-library variant axis (default: `default`).
    pub libraries: Vec<&'static str>,
    /// Objectives of the Pareto analysis (default: all four).
    pub objectives: Vec<Objective>,
}

impl Default for SweepSpec {
    fn default() -> Self {
        SweepSpec {
            name: "sweep".into(),
            benchmarks: Vec::new(),
            flows: vec![Flow::T1],
            phases: vec![4],
            opts: vec!["none"],
            timing: vec![false],
            libraries: vec!["default"],
            objectives: ALL_OBJECTIVES.to_vec(),
        }
    }
}

/// Canonicalizes `token` to its `&'static str` spelling in `table`.
fn canon(key: &str, token: &str, table: &'static [&'static str]) -> Result<&'static str, String> {
    table.iter().find(|t| **t == token).copied().ok_or_else(|| {
        format!(
            "unknown {key} value '{token}' (one of: {})",
            table.join(", ")
        )
    })
}

/// Rejects duplicate values within one axis.
fn reject_duplicate<T: PartialEq>(
    key: &str,
    token: &str,
    seen: &[T],
    value: &T,
) -> Result<(), String> {
    if seen.contains(value) {
        return Err(format!("duplicate {key} value '{token}'"));
    }
    Ok(())
}

/// Parses a sweep spec.
///
/// # Errors
///
/// Unknown keys, unknown values, duplicate keys, duplicate axis values,
/// a missing `benchmarks` line, and the `t1` flow crossed with fewer
/// than 3 phases are all hard errors; every message lists the legal
/// alternatives (or names the contradicting combination).
pub fn parse(text: &str) -> Result<SweepSpec, String> {
    let mut spec = SweepSpec::default();
    let mut seen_keys: Vec<String> = Vec::new();
    let mut have_benchmarks = false;

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let key = tokens.next().expect("non-empty line has a first token");
        let values: Vec<&str> = tokens.collect();
        let at = |msg: String| format!("sweep spec line {}: {msg}", lineno + 1);

        if !SPEC_KEYS.contains(&key) {
            return Err(at(format!(
                "unknown key '{key}' (one of: {})",
                SPEC_KEYS.join(", ")
            )));
        }
        if seen_keys.iter().any(|k| k == key) {
            return Err(at(format!("duplicate key '{key}'")));
        }
        seen_keys.push(key.to_string());
        if values.is_empty() {
            return Err(at(format!("key '{key}' needs at least one value")));
        }

        match key {
            "sweep" => {
                if values.len() != 1 {
                    return Err(at(format!(
                        "key 'sweep' takes exactly one name, got {}",
                        values.len()
                    )));
                }
                spec.name = values[0].to_string();
            }
            "benchmarks" => {
                let mut subjects = Vec::new();
                for subject in values {
                    let name = subject.split(':').next().unwrap_or(subject);
                    if !sfq_circuits::named::is_known(name) {
                        return Err(at(format!(
                            "unknown benchmark '{name}' (known benchmarks: {})",
                            sfq_circuits::named::known_names().join(", ")
                        )));
                    }
                    if let Some((_, w)) = subject.split_once(':') {
                        if !w.parse::<usize>().is_ok_and(|w| w >= 1) {
                            return Err(at(format!("bad width '{w}' in '{subject}'")));
                        }
                    }
                    reject_duplicate("benchmarks", subject, &subjects, &subject.to_string())
                        .map_err(&at)?;
                    subjects.push(subject.to_string());
                }
                spec.benchmarks = subjects;
                have_benchmarks = true;
            }
            "flows" => {
                let mut flows = Vec::new();
                for token in values {
                    let flow = Flow::parse(token).map_err(&at)?;
                    reject_duplicate("flows", token, &flows, &flow).map_err(&at)?;
                    flows.push(flow);
                }
                spec.flows = flows;
            }
            "phases" => {
                let mut phases = Vec::new();
                for token in values {
                    let n: u32 = token.parse().ok().filter(|&n| n >= 1).ok_or_else(|| {
                        at(format!(
                            "bad phases value '{token}' (need a positive integer)"
                        ))
                    })?;
                    reject_duplicate("phases", token, &phases, &n).map_err(&at)?;
                    phases.push(n);
                }
                spec.phases = phases;
            }
            "opt" => {
                let mut opts = Vec::new();
                for token in values {
                    let opt = canon("opt", token, &OPT_TOKENS).map_err(&at)?;
                    reject_duplicate("opt", token, &opts, &opt).map_err(&at)?;
                    opts.push(opt);
                }
                spec.opts = opts;
            }
            "timing" => {
                let mut timing = Vec::new();
                for token in values {
                    let on = canon("timing", token, &TIMING_TOKENS).map_err(&at)? == "on";
                    reject_duplicate("timing", token, &timing, &on).map_err(&at)?;
                    timing.push(on);
                }
                spec.timing = timing;
            }
            "library" => {
                let mut libraries = Vec::new();
                for token in values {
                    let lib = canon("library", token, &LIBRARY_VARIANTS).map_err(&at)?;
                    reject_duplicate("library", token, &libraries, &lib).map_err(&at)?;
                    libraries.push(lib);
                }
                spec.libraries = libraries;
            }
            "objectives" => {
                let mut objectives = Vec::new();
                for token in values {
                    let obj = Objective::parse(token).map_err(&at)?;
                    reject_duplicate("objectives", token, &objectives, &obj).map_err(&at)?;
                    objectives.push(obj);
                }
                spec.objectives = objectives;
            }
            _ => unreachable!("key validated against SPEC_KEYS above"),
        }
    }

    if !have_benchmarks {
        return Err("sweep spec has no 'benchmarks' line (it is the one required key)".into());
    }
    if spec.flows.contains(&Flow::T1) {
        if let Some(&p) = spec.phases.iter().find(|&&p| p < 3) {
            return Err(format!(
                "flow 't1' needs at least 3 phases, but the phases axis contains {p} \
                 (drop 't1' from 'flows' or raise 'phases')"
            ));
        }
    }
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_spec_fills_defaults() {
        let spec = parse("benchmarks adder:8\n").unwrap();
        assert_eq!(spec.name, "sweep");
        assert_eq!(spec.benchmarks, ["adder:8"]);
        assert_eq!(spec.flows, [Flow::T1]);
        assert_eq!(spec.phases, [4]);
        assert_eq!(spec.opts, ["none"]);
        assert_eq!(spec.timing, [false]);
        assert_eq!(spec.libraries, ["default"]);
        assert_eq!(spec.objectives.len(), 4);
    }

    #[test]
    fn full_spec_round_trips_every_axis() {
        let spec = parse(
            "# comment\n\
             sweep demo\n\
             benchmarks adder:8 c6288  # trailing comment\n\
             flows 1phi nphi t1\n\
             phases 3 4 6\n\
             opt none pre-opt slack-opt dff-opt\n\
             timing off on\n\
             library default cheap-dff costly-dff\n\
             objectives area depth\n",
        )
        .unwrap();
        assert_eq!(spec.name, "demo");
        assert_eq!(spec.benchmarks, ["adder:8", "c6288"]);
        assert_eq!(spec.flows.len(), 3);
        assert_eq!(spec.phases, [3, 4, 6]);
        assert_eq!(spec.opts.len(), 4);
        assert_eq!(spec.timing, [false, true]);
        assert_eq!(spec.libraries.len(), 3);
        assert_eq!(spec.objectives, [Objective::Area, Objective::Depth]);
    }

    #[test]
    fn unknown_keys_and_values_list_the_legal_ones() {
        let err = parse("benchmarks adder\nflavor mild\n").unwrap_err();
        assert!(err.contains("unknown key 'flavor'"), "{err}");
        for key in SPEC_KEYS {
            assert!(err.contains(key), "error must list {key}: {err}");
        }
        let err = parse("benchmarks adder\nflows 2phi\n").unwrap_err();
        assert!(err.contains("unknown flow '2phi'"), "{err}");
        for token in FLOW_TOKENS {
            assert!(err.contains(token), "error must list {token}: {err}");
        }
        let err = parse("benchmarks adder\nopt fast\n").unwrap_err();
        for token in OPT_TOKENS {
            assert!(err.contains(token), "error must list {token}: {err}");
        }
        let err = parse("benchmarks adder\nlibrary exotic\n").unwrap_err();
        for token in LIBRARY_VARIANTS {
            assert!(err.contains(token), "error must list {token}: {err}");
        }
        let err = parse("benchmarks adder\nobjectives speed\n").unwrap_err();
        for token in OBJECTIVE_TOKENS {
            assert!(err.contains(token), "error must list {token}: {err}");
        }
        let err = parse("benchmarks nosuch\n").unwrap_err();
        assert!(err.contains("unknown benchmark 'nosuch'"), "{err}");
        assert!(err.contains("adder"), "{err}");
    }

    #[test]
    fn duplicates_and_contradictions_are_hard_errors() {
        assert!(parse("benchmarks adder\nphases 4 4\n")
            .unwrap_err()
            .contains("duplicate phases value '4'"));
        assert!(parse("benchmarks adder\nflows t1\nflows t1\n")
            .unwrap_err()
            .contains("duplicate key 'flows'"));
        assert!(parse("flows t1\n").unwrap_err().contains("benchmarks"));
        let err = parse("benchmarks adder\nflows t1\nphases 2 4\n").unwrap_err();
        assert!(err.contains("at least 3 phases"), "{err}");
        assert!(err.contains('2'), "{err}");
        // The same axis is fine without t1.
        assert!(parse("benchmarks adder\nflows nphi\nphases 2 4\n").is_ok());
    }

    #[test]
    fn config_tokens_cover_opt_axis_and_timing() {
        for token in OPT_TOKENS {
            assert!(CONFIG_TOKENS.contains(&token), "{token} must be shared");
            assert!(apply_config_token(FlowConfig::builder(4), token).is_ok());
        }
        let cfg = apply_config_token(FlowConfig::builder(4), "timing")
            .unwrap()
            .build();
        assert!(cfg.timing.enabled);
        let err = apply_config_token(FlowConfig::builder(4), "fast").unwrap_err();
        assert!(err.contains("unknown option 'fast'"), "{err}");
        for token in CONFIG_TOKENS {
            assert!(err.contains(token), "error must list {token}: {err}");
        }
    }

    #[test]
    fn library_variants_differ_in_fingerprint() {
        use std::hash::Hasher;
        fn digest(lib: &CellLibrary) -> u64 {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            lib.fingerprint(&mut h);
            h.finish()
        }
        let default = library_variant("default").unwrap();
        let cheap = library_variant("cheap-dff").unwrap();
        let costly = library_variant("costly-dff").unwrap();
        assert_eq!(digest(&default), digest(&CellLibrary::default()));
        assert_ne!(digest(&default), digest(&cheap));
        assert_ne!(digest(&cheap), digest(&costly));
        assert!(library_variant("exotic").is_err());
    }
}
