//! # sfq-explore
//!
//! Design-space exploration autopilot: declare a sweep over the flow
//! parameter space in a small text spec, execute it through the
//! `sfq-engine` worker pool (with full result-store reuse), and reduce
//! the results to per-benchmark Pareto frontiers with dominated-by
//! witnesses and a schema-versioned `EXPLORE_*.json` report.
//!
//! The crate is four modules, composed left to right:
//!
//! - [`spec`] — the hand-rolled sweep-spec text format (axes:
//!   benchmarks, flows, phase counts, optimization pipelines, timing,
//!   cell-library variants, objectives), with hard-error validation
//!   that lists every legal alternative on any unknown key or value.
//!   Also home of [`spec::CONFIG_TOKENS`] and
//!   [`spec::apply_config_token`], the single flow-option token table
//!   shared with the CLI `serve` request parser.
//! - [`sweep`] — combinatorial expansion of a spec into grid
//!   [`sweep::Point`]s with *fingerprint-deduplicated* engine jobs
//!   (coordinates whose configurations content-address identically are
//!   computed once and counted once), and the streaming runner that
//!   executes them on a [`SuiteRunner`](sfq_engine::SuiteRunner) —
//!   honoring any attached result store, so a warm `--cache-dir` rerun
//!   recomputes nothing.
//! - [`pareto`] — exact integer multi-objective non-domination:
//!   frontier membership plus a deterministic dominating witness for
//!   every pruned point.
//! - [`report`] — the `"sfq-t1/explore"` v1 JSON report (validated by
//!   its own [`report::validate`] before writing), the human frontier
//!   table, the per-point CSV and the provenance normalizer backing the
//!   cold/warm byte-identity guarantee.
//!
//! # Example
//!
//! ```
//! use sfq_engine::SuiteRunner;
//!
//! let spec = sfq_explore::spec::parse(
//!     "benchmarks adder:4\nflows 1phi t1\nphases 3 4\n",
//! )
//! .unwrap();
//! let run = sfq_explore::sweep::run_sweep(spec, &SuiteRunner::new(2), |_| {}).unwrap();
//! assert_eq!(run.points.len(), 4);
//! assert_eq!(run.jobs.len(), 3, "the two 1phi points share one job");
//! let report = sfq_explore::report::explore_report_json(&run);
//! sfq_explore::report::validate(&report).unwrap();
//! ```

pub mod pareto;
pub mod report;
pub mod spec;
pub mod sweep;

pub use report::{explore_report_json, explore_summary, frontier_table, validate};
pub use spec::{apply_config_token, SweepSpec, CONFIG_TOKENS};
pub use sweep::{expand, run_sweep, ExploreRun};
